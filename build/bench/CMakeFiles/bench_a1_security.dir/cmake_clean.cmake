file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_security.dir/bench_a1_security.cc.o"
  "CMakeFiles/bench_a1_security.dir/bench_a1_security.cc.o.d"
  "bench_a1_security"
  "bench_a1_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
