# Empty dependencies file for bench_e3_interop.
# This may be replaced when dependencies are built.
