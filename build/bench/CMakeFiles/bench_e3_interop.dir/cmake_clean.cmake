file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_interop.dir/bench_e3_interop.cc.o"
  "CMakeFiles/bench_e3_interop.dir/bench_e3_interop.cc.o.d"
  "bench_e3_interop"
  "bench_e3_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
