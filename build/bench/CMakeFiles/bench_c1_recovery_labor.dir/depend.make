# Empty dependencies file for bench_c1_recovery_labor.
# This may be replaced when dependencies are built.
