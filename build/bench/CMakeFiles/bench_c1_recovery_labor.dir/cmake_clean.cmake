file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_recovery_labor.dir/bench_c1_recovery_labor.cc.o"
  "CMakeFiles/bench_c1_recovery_labor.dir/bench_c1_recovery_labor.cc.o.d"
  "bench_c1_recovery_labor"
  "bench_c1_recovery_labor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_recovery_labor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
