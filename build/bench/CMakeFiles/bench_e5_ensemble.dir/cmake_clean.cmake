file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_ensemble.dir/bench_e5_ensemble.cc.o"
  "CMakeFiles/bench_e5_ensemble.dir/bench_e5_ensemble.cc.o.d"
  "bench_e5_ensemble"
  "bench_e5_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
