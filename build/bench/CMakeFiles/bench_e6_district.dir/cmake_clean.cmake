file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_district.dir/bench_e6_district.cc.o"
  "CMakeFiles/bench_e6_district.dir/bench_e6_district.cc.o.d"
  "bench_e6_district"
  "bench_e6_district.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_district.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
