# Empty dependencies file for bench_c9_deployment_cost.
# This may be replaced when dependencies are built.
