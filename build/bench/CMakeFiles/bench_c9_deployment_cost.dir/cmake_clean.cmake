file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_deployment_cost.dir/bench_c9_deployment_cost.cc.o"
  "CMakeFiles/bench_c9_deployment_cost.dir/bench_c9_deployment_cost.cc.o.d"
  "bench_c9_deployment_cost"
  "bench_c9_deployment_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_deployment_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
