# Empty compiler generated dependencies file for bench_e2_theseus_century.
# This may be replaced when dependencies are built.
