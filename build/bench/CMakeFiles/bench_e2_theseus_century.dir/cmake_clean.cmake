file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_theseus_century.dir/bench_e2_theseus_century.cc.o"
  "CMakeFiles/bench_e2_theseus_century.dir/bench_e2_theseus_century.cc.o.d"
  "bench_e2_theseus_century"
  "bench_e2_theseus_century.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_theseus_century.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
