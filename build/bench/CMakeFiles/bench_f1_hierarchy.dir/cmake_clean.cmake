file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_hierarchy.dir/bench_f1_hierarchy.cc.o"
  "CMakeFiles/bench_f1_hierarchy.dir/bench_f1_hierarchy.cc.o.d"
  "bench_f1_hierarchy"
  "bench_f1_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
