file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_static_vs_adr.dir/bench_a2_static_vs_adr.cc.o"
  "CMakeFiles/bench_a2_static_vs_adr.dir/bench_a2_static_vs_adr.cc.o.d"
  "bench_a2_static_vs_adr"
  "bench_a2_static_vs_adr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_static_vs_adr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
