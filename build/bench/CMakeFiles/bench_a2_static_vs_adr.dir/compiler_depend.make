# Empty compiler generated dependencies file for bench_a2_static_vs_adr.
# This may be replaced when dependencies are built.
