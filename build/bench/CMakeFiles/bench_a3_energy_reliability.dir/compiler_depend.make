# Empty compiler generated dependencies file for bench_a3_energy_reliability.
# This may be replaced when dependencies are built.
