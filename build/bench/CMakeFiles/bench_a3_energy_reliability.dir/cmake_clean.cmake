file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_energy_reliability.dir/bench_a3_energy_reliability.cc.o"
  "CMakeFiles/bench_a3_energy_reliability.dir/bench_a3_energy_reliability.cc.o.d"
  "bench_a3_energy_reliability"
  "bench_a3_energy_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_energy_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
