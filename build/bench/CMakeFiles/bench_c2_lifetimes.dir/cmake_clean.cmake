file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_lifetimes.dir/bench_c2_lifetimes.cc.o"
  "CMakeFiles/bench_c2_lifetimes.dir/bench_c2_lifetimes.cc.o.d"
  "bench_c2_lifetimes"
  "bench_c2_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
