# Empty dependencies file for bench_e4_sunset.
# This may be replaced when dependencies are built.
