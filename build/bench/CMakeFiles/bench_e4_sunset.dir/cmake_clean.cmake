file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_sunset.dir/bench_e4_sunset.cc.o"
  "CMakeFiles/bench_e4_sunset.dir/bench_e4_sunset.cc.o.d"
  "bench_e4_sunset"
  "bench_e4_sunset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sunset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
