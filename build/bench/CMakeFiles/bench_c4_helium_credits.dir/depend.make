# Empty dependencies file for bench_c4_helium_credits.
# This may be replaced when dependencies are built.
