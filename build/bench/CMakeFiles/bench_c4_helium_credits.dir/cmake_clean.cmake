file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_helium_credits.dir/bench_c4_helium_credits.cc.o"
  "CMakeFiles/bench_c4_helium_credits.dir/bench_c4_helium_credits.cc.o.d"
  "bench_c4_helium_credits"
  "bench_c4_helium_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_helium_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
