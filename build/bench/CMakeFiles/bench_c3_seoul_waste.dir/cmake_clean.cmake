file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_seoul_waste.dir/bench_c3_seoul_waste.cc.o"
  "CMakeFiles/bench_c3_seoul_waste.dir/bench_c3_seoul_waste.cc.o.d"
  "bench_c3_seoul_waste"
  "bench_c3_seoul_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_seoul_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
