# Empty compiler generated dependencies file for bench_c3_seoul_waste.
# This may be replaced when dependencies are built.
