file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_backhaul_cost.dir/bench_c6_backhaul_cost.cc.o"
  "CMakeFiles/bench_c6_backhaul_cost.dir/bench_c6_backhaul_cost.cc.o.d"
  "bench_c6_backhaul_cost"
  "bench_c6_backhaul_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_backhaul_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
