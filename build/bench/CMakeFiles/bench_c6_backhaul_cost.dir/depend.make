# Empty dependencies file for bench_c6_backhaul_cost.
# This may be replaced when dependencies are built.
