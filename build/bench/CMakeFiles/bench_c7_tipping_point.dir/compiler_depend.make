# Empty compiler generated dependencies file for bench_c7_tipping_point.
# This may be replaced when dependencies are built.
