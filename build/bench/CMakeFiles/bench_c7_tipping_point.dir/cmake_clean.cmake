file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_tipping_point.dir/bench_c7_tipping_point.cc.o"
  "CMakeFiles/bench_c7_tipping_point.dir/bench_c7_tipping_point.cc.o.d"
  "bench_c7_tipping_point"
  "bench_c7_tipping_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_tipping_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
