file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_fifty_year.dir/bench_e1_fifty_year.cc.o"
  "CMakeFiles/bench_e1_fifty_year.dir/bench_e1_fifty_year.cc.o.d"
  "bench_e1_fifty_year"
  "bench_e1_fifty_year.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_fifty_year.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
