# Empty compiler generated dependencies file for bench_e1_fifty_year.
# This may be replaced when dependencies are built.
