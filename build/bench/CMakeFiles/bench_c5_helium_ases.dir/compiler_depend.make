# Empty compiler generated dependencies file for bench_c5_helium_ases.
# This may be replaced when dependencies are built.
