file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_helium_ases.dir/bench_c5_helium_ases.cc.o"
  "CMakeFiles/bench_c5_helium_ases.dir/bench_c5_helium_ases.cc.o.d"
  "bench_c5_helium_ases"
  "bench_c5_helium_ases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_helium_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
