
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_p1_engine.cc" "bench/CMakeFiles/bench_p1_engine.dir/bench_p1_engine.cc.o" "gcc" "bench/CMakeFiles/bench_p1_engine.dir/bench_p1_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/centsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/centsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/centsim_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/centsim_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/centsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/centsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/centsim_security.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/centsim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/centsim_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/centsim_city.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
