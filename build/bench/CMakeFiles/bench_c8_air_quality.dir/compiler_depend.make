# Empty compiler generated dependencies file for bench_c8_air_quality.
# This may be replaced when dependencies are built.
