file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_air_quality.dir/bench_c8_air_quality.cc.o"
  "CMakeFiles/bench_c8_air_quality.dir/bench_c8_air_quality.cc.o.d"
  "bench_c8_air_quality"
  "bench_c8_air_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_air_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
