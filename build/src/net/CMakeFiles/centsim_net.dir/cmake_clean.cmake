file(REMOVE_RECURSE
  "CMakeFiles/centsim_net.dir/backhaul.cc.o"
  "CMakeFiles/centsim_net.dir/backhaul.cc.o.d"
  "CMakeFiles/centsim_net.dir/blocklist.cc.o"
  "CMakeFiles/centsim_net.dir/blocklist.cc.o.d"
  "CMakeFiles/centsim_net.dir/cloud_endpoint.cc.o"
  "CMakeFiles/centsim_net.dir/cloud_endpoint.cc.o.d"
  "CMakeFiles/centsim_net.dir/commissioning.cc.o"
  "CMakeFiles/centsim_net.dir/commissioning.cc.o.d"
  "CMakeFiles/centsim_net.dir/gateway.cc.o"
  "CMakeFiles/centsim_net.dir/gateway.cc.o.d"
  "CMakeFiles/centsim_net.dir/helium.cc.o"
  "CMakeFiles/centsim_net.dir/helium.cc.o.d"
  "CMakeFiles/centsim_net.dir/network_server.cc.o"
  "CMakeFiles/centsim_net.dir/network_server.cc.o.d"
  "CMakeFiles/centsim_net.dir/packet.cc.o"
  "CMakeFiles/centsim_net.dir/packet.cc.o.d"
  "libcentsim_net.a"
  "libcentsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
