
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/backhaul.cc" "src/net/CMakeFiles/centsim_net.dir/backhaul.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/backhaul.cc.o.d"
  "/root/repo/src/net/blocklist.cc" "src/net/CMakeFiles/centsim_net.dir/blocklist.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/blocklist.cc.o.d"
  "/root/repo/src/net/cloud_endpoint.cc" "src/net/CMakeFiles/centsim_net.dir/cloud_endpoint.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/cloud_endpoint.cc.o.d"
  "/root/repo/src/net/commissioning.cc" "src/net/CMakeFiles/centsim_net.dir/commissioning.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/commissioning.cc.o.d"
  "/root/repo/src/net/gateway.cc" "src/net/CMakeFiles/centsim_net.dir/gateway.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/gateway.cc.o.d"
  "/root/repo/src/net/helium.cc" "src/net/CMakeFiles/centsim_net.dir/helium.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/helium.cc.o.d"
  "/root/repo/src/net/network_server.cc" "src/net/CMakeFiles/centsim_net.dir/network_server.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/network_server.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/centsim_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/centsim_net.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/centsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/centsim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/centsim_security.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
