# Empty compiler generated dependencies file for centsim_net.
# This may be replaced when dependencies are built.
