file(REMOVE_RECURSE
  "libcentsim_net.a"
)
