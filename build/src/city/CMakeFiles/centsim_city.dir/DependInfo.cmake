
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/city/air_quality.cc" "src/city/CMakeFiles/centsim_city.dir/air_quality.cc.o" "gcc" "src/city/CMakeFiles/centsim_city.dir/air_quality.cc.o.d"
  "/root/repo/src/city/city_model.cc" "src/city/CMakeFiles/centsim_city.dir/city_model.cc.o" "gcc" "src/city/CMakeFiles/centsim_city.dir/city_model.cc.o.d"
  "/root/repo/src/city/deployment.cc" "src/city/CMakeFiles/centsim_city.dir/deployment.cc.o" "gcc" "src/city/CMakeFiles/centsim_city.dir/deployment.cc.o.d"
  "/root/repo/src/city/waste.cc" "src/city/CMakeFiles/centsim_city.dir/waste.cc.o" "gcc" "src/city/CMakeFiles/centsim_city.dir/waste.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
