file(REMOVE_RECURSE
  "CMakeFiles/centsim_city.dir/air_quality.cc.o"
  "CMakeFiles/centsim_city.dir/air_quality.cc.o.d"
  "CMakeFiles/centsim_city.dir/city_model.cc.o"
  "CMakeFiles/centsim_city.dir/city_model.cc.o.d"
  "CMakeFiles/centsim_city.dir/deployment.cc.o"
  "CMakeFiles/centsim_city.dir/deployment.cc.o.d"
  "CMakeFiles/centsim_city.dir/waste.cc.o"
  "CMakeFiles/centsim_city.dir/waste.cc.o.d"
  "libcentsim_city.a"
  "libcentsim_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
