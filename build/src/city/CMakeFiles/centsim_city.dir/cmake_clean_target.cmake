file(REMOVE_RECURSE
  "libcentsim_city.a"
)
