# Empty compiler generated dependencies file for centsim_city.
# This may be replaced when dependencies are built.
