# CMake generated Testfile for 
# Source directory: /root/repo/src/city
# Build directory: /root/repo/build/src/city
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
