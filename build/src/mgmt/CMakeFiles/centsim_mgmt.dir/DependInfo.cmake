
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgmt/batch_project.cc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/batch_project.cc.o" "gcc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/batch_project.cc.o.d"
  "/root/repo/src/mgmt/diary.cc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/diary.cc.o" "gcc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/diary.cc.o.d"
  "/root/repo/src/mgmt/domain_lease.cc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/domain_lease.cc.o" "gcc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/domain_lease.cc.o.d"
  "/root/repo/src/mgmt/maintenance.cc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/maintenance.cc.o" "gcc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/maintenance.cc.o.d"
  "/root/repo/src/mgmt/succession.cc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/succession.cc.o" "gcc" "src/mgmt/CMakeFiles/centsim_mgmt.dir/succession.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/centsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/centsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/centsim_security.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/centsim_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
