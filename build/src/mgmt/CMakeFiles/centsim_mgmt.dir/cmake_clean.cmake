file(REMOVE_RECURSE
  "CMakeFiles/centsim_mgmt.dir/batch_project.cc.o"
  "CMakeFiles/centsim_mgmt.dir/batch_project.cc.o.d"
  "CMakeFiles/centsim_mgmt.dir/diary.cc.o"
  "CMakeFiles/centsim_mgmt.dir/diary.cc.o.d"
  "CMakeFiles/centsim_mgmt.dir/domain_lease.cc.o"
  "CMakeFiles/centsim_mgmt.dir/domain_lease.cc.o.d"
  "CMakeFiles/centsim_mgmt.dir/maintenance.cc.o"
  "CMakeFiles/centsim_mgmt.dir/maintenance.cc.o.d"
  "CMakeFiles/centsim_mgmt.dir/succession.cc.o"
  "CMakeFiles/centsim_mgmt.dir/succession.cc.o.d"
  "libcentsim_mgmt.a"
  "libcentsim_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
