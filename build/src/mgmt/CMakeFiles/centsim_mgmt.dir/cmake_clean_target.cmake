file(REMOVE_RECURSE
  "libcentsim_mgmt.a"
)
