# Empty compiler generated dependencies file for centsim_mgmt.
# This may be replaced when dependencies are built.
