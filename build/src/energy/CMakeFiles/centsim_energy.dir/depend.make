# Empty dependencies file for centsim_energy.
# This may be replaced when dependencies are built.
