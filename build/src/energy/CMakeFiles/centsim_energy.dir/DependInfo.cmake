
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/energy_manager.cc" "src/energy/CMakeFiles/centsim_energy.dir/energy_manager.cc.o" "gcc" "src/energy/CMakeFiles/centsim_energy.dir/energy_manager.cc.o.d"
  "/root/repo/src/energy/harvester.cc" "src/energy/CMakeFiles/centsim_energy.dir/harvester.cc.o" "gcc" "src/energy/CMakeFiles/centsim_energy.dir/harvester.cc.o.d"
  "/root/repo/src/energy/harvester_stats.cc" "src/energy/CMakeFiles/centsim_energy.dir/harvester_stats.cc.o" "gcc" "src/energy/CMakeFiles/centsim_energy.dir/harvester_stats.cc.o.d"
  "/root/repo/src/energy/intermittent.cc" "src/energy/CMakeFiles/centsim_energy.dir/intermittent.cc.o" "gcc" "src/energy/CMakeFiles/centsim_energy.dir/intermittent.cc.o.d"
  "/root/repo/src/energy/storage.cc" "src/energy/CMakeFiles/centsim_energy.dir/storage.cc.o" "gcc" "src/energy/CMakeFiles/centsim_energy.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
