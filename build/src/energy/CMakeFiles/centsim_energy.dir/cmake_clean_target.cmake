file(REMOVE_RECURSE
  "libcentsim_energy.a"
)
