file(REMOVE_RECURSE
  "CMakeFiles/centsim_energy.dir/energy_manager.cc.o"
  "CMakeFiles/centsim_energy.dir/energy_manager.cc.o.d"
  "CMakeFiles/centsim_energy.dir/harvester.cc.o"
  "CMakeFiles/centsim_energy.dir/harvester.cc.o.d"
  "CMakeFiles/centsim_energy.dir/harvester_stats.cc.o"
  "CMakeFiles/centsim_energy.dir/harvester_stats.cc.o.d"
  "CMakeFiles/centsim_energy.dir/intermittent.cc.o"
  "CMakeFiles/centsim_energy.dir/intermittent.cc.o.d"
  "CMakeFiles/centsim_energy.dir/storage.cc.o"
  "CMakeFiles/centsim_energy.dir/storage.cc.o.d"
  "libcentsim_energy.a"
  "libcentsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
