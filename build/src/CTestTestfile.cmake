# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("reliability")
subdirs("energy")
subdirs("radio")
subdirs("net")
subdirs("econ")
subdirs("security")
subdirs("telemetry")
subdirs("city")
subdirs("mgmt")
subdirs("core")
