file(REMOVE_RECURSE
  "libcentsim_econ.a"
)
