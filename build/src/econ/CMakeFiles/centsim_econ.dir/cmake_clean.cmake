file(REMOVE_RECURSE
  "CMakeFiles/centsim_econ.dir/data_credits.cc.o"
  "CMakeFiles/centsim_econ.dir/data_credits.cc.o.d"
  "CMakeFiles/centsim_econ.dir/deployment_cost.cc.o"
  "CMakeFiles/centsim_econ.dir/deployment_cost.cc.o.d"
  "CMakeFiles/centsim_econ.dir/labor.cc.o"
  "CMakeFiles/centsim_econ.dir/labor.cc.o.d"
  "CMakeFiles/centsim_econ.dir/npv.cc.o"
  "CMakeFiles/centsim_econ.dir/npv.cc.o.d"
  "CMakeFiles/centsim_econ.dir/replacement_planning.cc.o"
  "CMakeFiles/centsim_econ.dir/replacement_planning.cc.o.d"
  "CMakeFiles/centsim_econ.dir/tariff.cc.o"
  "CMakeFiles/centsim_econ.dir/tariff.cc.o.d"
  "CMakeFiles/centsim_econ.dir/tipping_point.cc.o"
  "CMakeFiles/centsim_econ.dir/tipping_point.cc.o.d"
  "libcentsim_econ.a"
  "libcentsim_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
