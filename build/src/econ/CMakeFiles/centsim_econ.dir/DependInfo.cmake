
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/data_credits.cc" "src/econ/CMakeFiles/centsim_econ.dir/data_credits.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/data_credits.cc.o.d"
  "/root/repo/src/econ/deployment_cost.cc" "src/econ/CMakeFiles/centsim_econ.dir/deployment_cost.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/deployment_cost.cc.o.d"
  "/root/repo/src/econ/labor.cc" "src/econ/CMakeFiles/centsim_econ.dir/labor.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/labor.cc.o.d"
  "/root/repo/src/econ/npv.cc" "src/econ/CMakeFiles/centsim_econ.dir/npv.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/npv.cc.o.d"
  "/root/repo/src/econ/replacement_planning.cc" "src/econ/CMakeFiles/centsim_econ.dir/replacement_planning.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/replacement_planning.cc.o.d"
  "/root/repo/src/econ/tariff.cc" "src/econ/CMakeFiles/centsim_econ.dir/tariff.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/tariff.cc.o.d"
  "/root/repo/src/econ/tipping_point.cc" "src/econ/CMakeFiles/centsim_econ.dir/tipping_point.cc.o" "gcc" "src/econ/CMakeFiles/centsim_econ.dir/tipping_point.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/centsim_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
