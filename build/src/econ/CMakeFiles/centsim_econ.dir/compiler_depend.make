# Empty compiler generated dependencies file for centsim_econ.
# This may be replaced when dependencies are built.
