file(REMOVE_RECURSE
  "libcentsim_telemetry.a"
)
