
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/csv.cc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/csv.cc.o" "gcc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/csv.cc.o.d"
  "/root/repo/src/telemetry/report.cc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/report.cc.o" "gcc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/report.cc.o.d"
  "/root/repo/src/telemetry/sensors.cc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/sensors.cc.o" "gcc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/sensors.cc.o.d"
  "/root/repo/src/telemetry/timeseries.cc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/timeseries.cc.o" "gcc" "src/telemetry/CMakeFiles/centsim_telemetry.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
