file(REMOVE_RECURSE
  "CMakeFiles/centsim_telemetry.dir/csv.cc.o"
  "CMakeFiles/centsim_telemetry.dir/csv.cc.o.d"
  "CMakeFiles/centsim_telemetry.dir/report.cc.o"
  "CMakeFiles/centsim_telemetry.dir/report.cc.o.d"
  "CMakeFiles/centsim_telemetry.dir/sensors.cc.o"
  "CMakeFiles/centsim_telemetry.dir/sensors.cc.o.d"
  "CMakeFiles/centsim_telemetry.dir/timeseries.cc.o"
  "CMakeFiles/centsim_telemetry.dir/timeseries.cc.o.d"
  "libcentsim_telemetry.a"
  "libcentsim_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
