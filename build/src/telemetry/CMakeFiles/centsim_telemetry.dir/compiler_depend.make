# Empty compiler generated dependencies file for centsim_telemetry.
# This may be replaced when dependencies are built.
