# Empty dependencies file for centsim_security.
# This may be replaced when dependencies are built.
