file(REMOVE_RECURSE
  "libcentsim_security.a"
)
