
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/patching.cc" "src/security/CMakeFiles/centsim_security.dir/patching.cc.o" "gcc" "src/security/CMakeFiles/centsim_security.dir/patching.cc.o.d"
  "/root/repo/src/security/report_auth.cc" "src/security/CMakeFiles/centsim_security.dir/report_auth.cc.o" "gcc" "src/security/CMakeFiles/centsim_security.dir/report_auth.cc.o.d"
  "/root/repo/src/security/signing.cc" "src/security/CMakeFiles/centsim_security.dir/signing.cc.o" "gcc" "src/security/CMakeFiles/centsim_security.dir/signing.cc.o.d"
  "/root/repo/src/security/siphash.cc" "src/security/CMakeFiles/centsim_security.dir/siphash.cc.o" "gcc" "src/security/CMakeFiles/centsim_security.dir/siphash.cc.o.d"
  "/root/repo/src/security/trust.cc" "src/security/CMakeFiles/centsim_security.dir/trust.cc.o" "gcc" "src/security/CMakeFiles/centsim_security.dir/trust.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/centsim_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
