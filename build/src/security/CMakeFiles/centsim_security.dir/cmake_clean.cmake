file(REMOVE_RECURSE
  "CMakeFiles/centsim_security.dir/patching.cc.o"
  "CMakeFiles/centsim_security.dir/patching.cc.o.d"
  "CMakeFiles/centsim_security.dir/report_auth.cc.o"
  "CMakeFiles/centsim_security.dir/report_auth.cc.o.d"
  "CMakeFiles/centsim_security.dir/signing.cc.o"
  "CMakeFiles/centsim_security.dir/signing.cc.o.d"
  "CMakeFiles/centsim_security.dir/siphash.cc.o"
  "CMakeFiles/centsim_security.dir/siphash.cc.o.d"
  "CMakeFiles/centsim_security.dir/trust.cc.o"
  "CMakeFiles/centsim_security.dir/trust.cc.o.d"
  "libcentsim_security.a"
  "libcentsim_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
