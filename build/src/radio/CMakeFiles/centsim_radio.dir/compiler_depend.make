# Empty compiler generated dependencies file for centsim_radio.
# This may be replaced when dependencies are built.
