file(REMOVE_RECURSE
  "libcentsim_radio.a"
)
