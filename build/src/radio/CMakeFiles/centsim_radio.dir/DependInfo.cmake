
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/frame.cc" "src/radio/CMakeFiles/centsim_radio.dir/frame.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/frame.cc.o.d"
  "/root/repo/src/radio/link_budget.cc" "src/radio/CMakeFiles/centsim_radio.dir/link_budget.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/link_budget.cc.o.d"
  "/root/repo/src/radio/lora.cc" "src/radio/CMakeFiles/centsim_radio.dir/lora.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/lora.cc.o.d"
  "/root/repo/src/radio/lorawan.cc" "src/radio/CMakeFiles/centsim_radio.dir/lorawan.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/lorawan.cc.o.d"
  "/root/repo/src/radio/mac_802154.cc" "src/radio/CMakeFiles/centsim_radio.dir/mac_802154.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/mac_802154.cc.o.d"
  "/root/repo/src/radio/medium.cc" "src/radio/CMakeFiles/centsim_radio.dir/medium.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/medium.cc.o.d"
  "/root/repo/src/radio/phy_802154.cc" "src/radio/CMakeFiles/centsim_radio.dir/phy_802154.cc.o" "gcc" "src/radio/CMakeFiles/centsim_radio.dir/phy_802154.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
