file(REMOVE_RECURSE
  "CMakeFiles/centsim_radio.dir/frame.cc.o"
  "CMakeFiles/centsim_radio.dir/frame.cc.o.d"
  "CMakeFiles/centsim_radio.dir/link_budget.cc.o"
  "CMakeFiles/centsim_radio.dir/link_budget.cc.o.d"
  "CMakeFiles/centsim_radio.dir/lora.cc.o"
  "CMakeFiles/centsim_radio.dir/lora.cc.o.d"
  "CMakeFiles/centsim_radio.dir/lorawan.cc.o"
  "CMakeFiles/centsim_radio.dir/lorawan.cc.o.d"
  "CMakeFiles/centsim_radio.dir/mac_802154.cc.o"
  "CMakeFiles/centsim_radio.dir/mac_802154.cc.o.d"
  "CMakeFiles/centsim_radio.dir/medium.cc.o"
  "CMakeFiles/centsim_radio.dir/medium.cc.o.d"
  "CMakeFiles/centsim_radio.dir/phy_802154.cc.o"
  "CMakeFiles/centsim_radio.dir/phy_802154.cc.o.d"
  "libcentsim_radio.a"
  "libcentsim_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
