# Empty compiler generated dependencies file for centsim_reliability.
# This may be replaced when dependencies are built.
