
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/burn_in.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/burn_in.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/burn_in.cc.o.d"
  "/root/repo/src/reliability/component.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/component.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/component.cc.o.d"
  "/root/repo/src/reliability/fitting.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/fitting.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/fitting.cc.o.d"
  "/root/repo/src/reliability/hazard.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/hazard.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/hazard.cc.o.d"
  "/root/repo/src/reliability/obsolescence.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/obsolescence.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/obsolescence.cc.o.d"
  "/root/repo/src/reliability/survival.cc" "src/reliability/CMakeFiles/centsim_reliability.dir/survival.cc.o" "gcc" "src/reliability/CMakeFiles/centsim_reliability.dir/survival.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
