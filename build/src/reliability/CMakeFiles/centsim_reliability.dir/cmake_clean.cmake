file(REMOVE_RECURSE
  "CMakeFiles/centsim_reliability.dir/burn_in.cc.o"
  "CMakeFiles/centsim_reliability.dir/burn_in.cc.o.d"
  "CMakeFiles/centsim_reliability.dir/component.cc.o"
  "CMakeFiles/centsim_reliability.dir/component.cc.o.d"
  "CMakeFiles/centsim_reliability.dir/fitting.cc.o"
  "CMakeFiles/centsim_reliability.dir/fitting.cc.o.d"
  "CMakeFiles/centsim_reliability.dir/hazard.cc.o"
  "CMakeFiles/centsim_reliability.dir/hazard.cc.o.d"
  "CMakeFiles/centsim_reliability.dir/obsolescence.cc.o"
  "CMakeFiles/centsim_reliability.dir/obsolescence.cc.o.d"
  "CMakeFiles/centsim_reliability.dir/survival.cc.o"
  "CMakeFiles/centsim_reliability.dir/survival.cc.o.d"
  "libcentsim_reliability.a"
  "libcentsim_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
