file(REMOVE_RECURSE
  "libcentsim_reliability.a"
)
