file(REMOVE_RECURSE
  "CMakeFiles/centsim_sim.dir/config.cc.o"
  "CMakeFiles/centsim_sim.dir/config.cc.o.d"
  "CMakeFiles/centsim_sim.dir/random.cc.o"
  "CMakeFiles/centsim_sim.dir/random.cc.o.d"
  "CMakeFiles/centsim_sim.dir/scheduler.cc.o"
  "CMakeFiles/centsim_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/centsim_sim.dir/stats.cc.o"
  "CMakeFiles/centsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/centsim_sim.dir/time.cc.o"
  "CMakeFiles/centsim_sim.dir/time.cc.o.d"
  "CMakeFiles/centsim_sim.dir/trace.cc.o"
  "CMakeFiles/centsim_sim.dir/trace.cc.o.d"
  "libcentsim_sim.a"
  "libcentsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
