file(REMOVE_RECURSE
  "libcentsim_sim.a"
)
