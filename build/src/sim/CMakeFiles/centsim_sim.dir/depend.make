# Empty dependencies file for centsim_sim.
# This may be replaced when dependencies are built.
