
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/centsim_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/sim/CMakeFiles/centsim_sim.dir/random.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/random.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/centsim_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/centsim_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/sim/CMakeFiles/centsim_sim.dir/time.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/time.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/centsim_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/centsim_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
