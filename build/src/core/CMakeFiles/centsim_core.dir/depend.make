# Empty dependencies file for centsim_core.
# This may be replaced when dependencies are built.
