file(REMOVE_RECURSE
  "CMakeFiles/centsim_core.dir/device.cc.o"
  "CMakeFiles/centsim_core.dir/device.cc.o.d"
  "CMakeFiles/centsim_core.dir/district.cc.o"
  "CMakeFiles/centsim_core.dir/district.cc.o.d"
  "CMakeFiles/centsim_core.dir/experiment.cc.o"
  "CMakeFiles/centsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/centsim_core.dir/hierarchy.cc.o"
  "CMakeFiles/centsim_core.dir/hierarchy.cc.o.d"
  "CMakeFiles/centsim_core.dir/montecarlo.cc.o"
  "CMakeFiles/centsim_core.dir/montecarlo.cc.o.d"
  "CMakeFiles/centsim_core.dir/network_fabric.cc.o"
  "CMakeFiles/centsim_core.dir/network_fabric.cc.o.d"
  "CMakeFiles/centsim_core.dir/scenario.cc.o"
  "CMakeFiles/centsim_core.dir/scenario.cc.o.d"
  "CMakeFiles/centsim_core.dir/theseus.cc.o"
  "CMakeFiles/centsim_core.dir/theseus.cc.o.d"
  "libcentsim_core.a"
  "libcentsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
