file(REMOVE_RECURSE
  "libcentsim_core.a"
)
