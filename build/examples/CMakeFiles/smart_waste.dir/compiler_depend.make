# Empty compiler generated dependencies file for smart_waste.
# This may be replaced when dependencies are built.
