file(REMOVE_RECURSE
  "CMakeFiles/smart_waste.dir/smart_waste.cpp.o"
  "CMakeFiles/smart_waste.dir/smart_waste.cpp.o.d"
  "smart_waste"
  "smart_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
