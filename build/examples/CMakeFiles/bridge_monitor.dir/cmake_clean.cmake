file(REMOVE_RECURSE
  "CMakeFiles/bridge_monitor.dir/bridge_monitor.cpp.o"
  "CMakeFiles/bridge_monitor.dir/bridge_monitor.cpp.o.d"
  "bridge_monitor"
  "bridge_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
