# Empty compiler generated dependencies file for bridge_monitor.
# This may be replaced when dependencies are built.
