# Empty compiler generated dependencies file for district_rollout.
# This may be replaced when dependencies are built.
