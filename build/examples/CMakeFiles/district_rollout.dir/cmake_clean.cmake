file(REMOVE_RECURSE
  "CMakeFiles/district_rollout.dir/district_rollout.cpp.o"
  "CMakeFiles/district_rollout.dir/district_rollout.cpp.o.d"
  "district_rollout"
  "district_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/district_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
