# Empty dependencies file for fifty_year_experiment.
# This may be replaced when dependencies are built.
