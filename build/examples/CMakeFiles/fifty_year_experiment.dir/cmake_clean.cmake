file(REMOVE_RECURSE
  "CMakeFiles/fifty_year_experiment.dir/fifty_year_experiment.cpp.o"
  "CMakeFiles/fifty_year_experiment.dir/fifty_year_experiment.cpp.o.d"
  "fifty_year_experiment"
  "fifty_year_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifty_year_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
