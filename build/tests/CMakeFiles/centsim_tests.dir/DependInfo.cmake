
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/city_air_quality_test.cc" "tests/CMakeFiles/centsim_tests.dir/city_air_quality_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/city_air_quality_test.cc.o.d"
  "/root/repo/tests/city_deployment_test.cc" "tests/CMakeFiles/centsim_tests.dir/city_deployment_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/city_deployment_test.cc.o.d"
  "/root/repo/tests/city_waste_test.cc" "tests/CMakeFiles/centsim_tests.dir/city_waste_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/city_waste_test.cc.o.d"
  "/root/repo/tests/core_device_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_device_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_device_test.cc.o.d"
  "/root/repo/tests/core_district_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_district_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_district_test.cc.o.d"
  "/root/repo/tests/core_experiment_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_experiment_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_experiment_test.cc.o.d"
  "/root/repo/tests/core_fabric_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_fabric_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_fabric_test.cc.o.d"
  "/root/repo/tests/core_hierarchy_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_hierarchy_test.cc.o.d"
  "/root/repo/tests/core_scenario_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_scenario_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_scenario_test.cc.o.d"
  "/root/repo/tests/core_theseus_test.cc" "tests/CMakeFiles/centsim_tests.dir/core_theseus_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/core_theseus_test.cc.o.d"
  "/root/repo/tests/econ_credits_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_credits_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_credits_test.cc.o.d"
  "/root/repo/tests/econ_deployment_cost_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_deployment_cost_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_deployment_cost_test.cc.o.d"
  "/root/repo/tests/econ_labor_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_labor_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_labor_test.cc.o.d"
  "/root/repo/tests/econ_npv_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_npv_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_npv_test.cc.o.d"
  "/root/repo/tests/econ_replacement_planning_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_replacement_planning_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_replacement_planning_test.cc.o.d"
  "/root/repo/tests/econ_tariff_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_tariff_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_tariff_test.cc.o.d"
  "/root/repo/tests/econ_tipping_test.cc" "tests/CMakeFiles/centsim_tests.dir/econ_tipping_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/econ_tipping_test.cc.o.d"
  "/root/repo/tests/energy_harvester_stats_test.cc" "tests/CMakeFiles/centsim_tests.dir/energy_harvester_stats_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/energy_harvester_stats_test.cc.o.d"
  "/root/repo/tests/energy_harvester_test.cc" "tests/CMakeFiles/centsim_tests.dir/energy_harvester_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/energy_harvester_test.cc.o.d"
  "/root/repo/tests/energy_intermittent_test.cc" "tests/CMakeFiles/centsim_tests.dir/energy_intermittent_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/energy_intermittent_test.cc.o.d"
  "/root/repo/tests/energy_manager_test.cc" "tests/CMakeFiles/centsim_tests.dir/energy_manager_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/energy_manager_test.cc.o.d"
  "/root/repo/tests/energy_storage_test.cc" "tests/CMakeFiles/centsim_tests.dir/energy_storage_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/energy_storage_test.cc.o.d"
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/centsim_tests.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/fault_injection_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/centsim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/medium_validation_test.cc" "tests/CMakeFiles/centsim_tests.dir/medium_validation_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/medium_validation_test.cc.o.d"
  "/root/repo/tests/mgmt_batch_diary_test.cc" "tests/CMakeFiles/centsim_tests.dir/mgmt_batch_diary_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/mgmt_batch_diary_test.cc.o.d"
  "/root/repo/tests/mgmt_domain_test.cc" "tests/CMakeFiles/centsim_tests.dir/mgmt_domain_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/mgmt_domain_test.cc.o.d"
  "/root/repo/tests/mgmt_maintenance_test.cc" "tests/CMakeFiles/centsim_tests.dir/mgmt_maintenance_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/mgmt_maintenance_test.cc.o.d"
  "/root/repo/tests/mgmt_succession_test.cc" "tests/CMakeFiles/centsim_tests.dir/mgmt_succession_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/mgmt_succession_test.cc.o.d"
  "/root/repo/tests/net_backhaul_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_backhaul_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_backhaul_test.cc.o.d"
  "/root/repo/tests/net_commissioning_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_commissioning_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_commissioning_test.cc.o.d"
  "/root/repo/tests/net_endpoint_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_endpoint_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_endpoint_test.cc.o.d"
  "/root/repo/tests/net_gateway_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_gateway_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_gateway_test.cc.o.d"
  "/root/repo/tests/net_helium_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_helium_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_helium_test.cc.o.d"
  "/root/repo/tests/net_network_server_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_network_server_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_network_server_test.cc.o.d"
  "/root/repo/tests/net_packet_test.cc" "tests/CMakeFiles/centsim_tests.dir/net_packet_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/net_packet_test.cc.o.d"
  "/root/repo/tests/property_sweeps_test.cc" "tests/CMakeFiles/centsim_tests.dir/property_sweeps_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/property_sweeps_test.cc.o.d"
  "/root/repo/tests/radio_frame_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_frame_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_frame_test.cc.o.d"
  "/root/repo/tests/radio_link_budget_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_link_budget_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_link_budget_test.cc.o.d"
  "/root/repo/tests/radio_lora_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_lora_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_lora_test.cc.o.d"
  "/root/repo/tests/radio_lorawan_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_lorawan_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_lorawan_test.cc.o.d"
  "/root/repo/tests/radio_mac802154_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_mac802154_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_mac802154_test.cc.o.d"
  "/root/repo/tests/radio_medium_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_medium_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_medium_test.cc.o.d"
  "/root/repo/tests/radio_phy802154_test.cc" "tests/CMakeFiles/centsim_tests.dir/radio_phy802154_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/radio_phy802154_test.cc.o.d"
  "/root/repo/tests/reliability_burnin_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_burnin_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_burnin_test.cc.o.d"
  "/root/repo/tests/reliability_component_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_component_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_component_test.cc.o.d"
  "/root/repo/tests/reliability_fitting_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_fitting_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_fitting_test.cc.o.d"
  "/root/repo/tests/reliability_hazard_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_hazard_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_hazard_test.cc.o.d"
  "/root/repo/tests/reliability_obsolescence_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_obsolescence_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_obsolescence_test.cc.o.d"
  "/root/repo/tests/reliability_survival_test.cc" "tests/CMakeFiles/centsim_tests.dir/reliability_survival_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/reliability_survival_test.cc.o.d"
  "/root/repo/tests/security_patching_test.cc" "tests/CMakeFiles/centsim_tests.dir/security_patching_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/security_patching_test.cc.o.d"
  "/root/repo/tests/security_signing_test.cc" "tests/CMakeFiles/centsim_tests.dir/security_signing_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/security_signing_test.cc.o.d"
  "/root/repo/tests/security_siphash_test.cc" "tests/CMakeFiles/centsim_tests.dir/security_siphash_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/security_siphash_test.cc.o.d"
  "/root/repo/tests/security_trust_test.cc" "tests/CMakeFiles/centsim_tests.dir/security_trust_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/security_trust_test.cc.o.d"
  "/root/repo/tests/sim_config_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_config_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_config_test.cc.o.d"
  "/root/repo/tests/sim_random_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_random_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_random_test.cc.o.d"
  "/root/repo/tests/sim_scheduler_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_scheduler_test.cc.o.d"
  "/root/repo/tests/sim_stats_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_stats_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_stats_test.cc.o.d"
  "/root/repo/tests/sim_time_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_time_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_time_test.cc.o.d"
  "/root/repo/tests/sim_trace_test.cc" "tests/CMakeFiles/centsim_tests.dir/sim_trace_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/sim_trace_test.cc.o.d"
  "/root/repo/tests/telemetry_sensors_test.cc" "tests/CMakeFiles/centsim_tests.dir/telemetry_sensors_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/telemetry_sensors_test.cc.o.d"
  "/root/repo/tests/telemetry_test.cc" "tests/CMakeFiles/centsim_tests.dir/telemetry_test.cc.o" "gcc" "tests/CMakeFiles/centsim_tests.dir/telemetry_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/centsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/centsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/centsim_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/centsim_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/centsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/centsim_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/centsim_security.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/centsim_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/centsim_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/city/CMakeFiles/centsim_city.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/centsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
