# Empty dependencies file for centsim_tests.
# This may be replaced when dependencies are built.
