// Versioned binary checkpoint container (ROADMAP item 4).
//
// File layout (all integers little-endian):
//
//   [0..7]   magic  "centsnap"
//   [8..11]  format version (u32, kSnapshotFormatVersion)
//   [12..15] chunk count (u32)
//   then, per chunk:
//   [0..3]   tag (u32 fourcc, e.g. 'meta', 'flet')
//   [4..7]   reserved (u32, 0)
//   [8..15]  payload length in bytes (u64)
//   [16..23] SipHash-2-4 of the payload under kSnapshotHashKey (u64)
//   [24..]   payload
//
// The checksum is an integrity check against bit rot and truncation, not
// authentication — the key is a published format constant. The reader
// validates the header, walks the chunk table checking every declared
// length against the bytes actually present BEFORE touching a payload,
// and verifies every checksum up front; a corrupted, truncated, or
// version-mismatched file yields `false` + a diagnostic, never UB or an
// attacker-sized allocation.
//
// What goes in the chunks is the experiment driver's business (the codecs
// in src/snapshot/codec.h and the drivers' own save/restore members); this
// layer only moves tagged, checksummed byte spans. The `meta` chunk is
// special-cased just enough for ProbeSnapshot to answer "is this a valid
// snapshot of experiment X at barrier T" without a driver.

#ifndef SRC_SNAPSHOT_SNAPSHOT_H_
#define SRC_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/snapshot/bytes.h"

namespace centsim {

inline constexpr uint32_t kSnapshotFormatVersion = 1;

// Four-character chunk tags.
constexpr uint32_t SnapshotTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
         static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

// The well-known `meta` chunk every snapshot carries: enough to identify
// what was snapshotted without the owning driver.
inline constexpr uint32_t kMetaChunk = SnapshotTag('m', 'e', 't', 'a');
struct SnapshotMeta {
  std::string experiment;        // Driver id ("district", "century", ...).
  std::string library_version;   // kCentsimVersion at save time.
  std::string structural_digest; // Driver's digest of rebuild-from-config state.
  int64_t barrier_us = 0;        // Quiescent barrier the snapshot was taken at.
  uint64_t seed = 0;
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotMeta meta);

  // Adds one chunk. Tags must be unique per snapshot (the reader indexes
  // by tag); the meta chunk is added by the constructor.
  void Add(uint32_t tag, const ByteWriter& payload);

  // Assembles the file image and atomically writes it (durable grade:
  // fsync before rename — see src/telemetry/atomic_file.h). Returns the
  // byte count written, or 0 with `error` set.
  uint64_t Write(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Chunk {
    uint32_t tag;
    std::vector<uint8_t> payload;
  };
  std::vector<Chunk> chunks_;
};

class SnapshotReader {
 public:
  // Loads and fully validates `path` (header, chunk table bounds, every
  // checksum, meta chunk decode). False + `error` on any defect.
  bool Open(const std::string& path, std::string* error = nullptr);
  // Same validation over an in-memory image (corruption tests).
  bool OpenBytes(std::vector<uint8_t> image, std::string* error = nullptr);

  const SnapshotMeta& meta() const { return meta_; }

  bool HasChunk(uint32_t tag) const;
  // Reader over a chunk's payload; a missing tag yields an empty reader
  // that immediately fails, so drivers can decode unconditionally and
  // check ok() once. Spans point into this object — keep it alive.
  ByteReader Chunk(uint32_t tag) const;

 private:
  struct ChunkSpan {
    uint32_t tag;
    size_t offset;
    size_t size;
  };

  std::vector<uint8_t> image_;
  std::vector<ChunkSpan> chunks_;
  SnapshotMeta meta_;
};

// Order-sensitive 64-bit digest of a canonical byte encoding, as a fixed
// 16-hex-digit string. Drivers encode their structural (rebuilt-from-
// config) fields through a ByteWriter and pin the digest in SnapshotMeta;
// a restoring run recomputes it and refuses a mismatched snapshot.
std::string StructuralDigestHex(const ByteWriter& encoded);

// Cheap validity probe: Open + meta extraction. True iff `path` is a
// well-formed snapshot; fills `meta` when given.
bool ProbeSnapshot(const std::string& path, SnapshotMeta* meta = nullptr,
                   std::string* error = nullptr);

// --- Latest-checkpoint marker ----------------------------------------------
//
// After each successful checkpoint write, drivers publish
// `<dir>/LATEST.json` ({"path":..., "barrier_us":...}) with the same
// durable atomic write. Because the marker is only written after the
// snapshot it names is safely on disk, anything that reads it — the
// run-status watchdog noting where an operator can resume a stalled
// replica, or a resuming driver — gets a path to a complete checkpoint.
inline constexpr const char* kLatestMarkerFile = "LATEST.json";

bool WriteLatestMarker(const std::string& dir, const std::string& snapshot_path,
                       int64_t barrier_us, std::string* error = nullptr);

// Resolves the directory's latest VALID checkpoint: the marker's path if
// it probes clean, else the newest-barrier `*.snap` in `dir` that does
// (the marker write itself could have been lost in a crash). Empty string
// when the directory holds no usable snapshot.
std::string FindLatestValidSnapshot(const std::string& dir, SnapshotMeta* meta = nullptr);

// Canonical checkpoint file name for a barrier time.
std::string CheckpointFileName(int64_t barrier_us);

}  // namespace centsim

#endif  // SRC_SNAPSHOT_SNAPSHOT_H_
