// Typed pending-timer table: the event-reconstruction registry snapshots
// are built on.
//
// EventFn closures cannot be serialized, so checkpoints do not pickle the
// scheduler queue. Instead, drivers route every DOMAIN timer (batch-visit,
// gateway failure/repair, device failure, ...) through this table, which
// keeps one plain-data TimerRecord — a tag naming the timer's type plus
// the small integers/doubles needed to rebuild its closure — per pending
// event. At a quiescent barrier the table IS the scheduler state: Save()
// returns the live records, and Restore() hands each one to the re-arm
// callback its layer registered for that tag, which re-creates the closure
// from domain state and schedules it again.
//
// Determinism contract: records are saved sorted by (at, original seq) and
// re-armed in that order, so the fresh monotonically-increasing sequence
// numbers preserve the exact relative order of every pending pair — and
// every event scheduled after restore gets a later sequence number than
// all re-armed ones, exactly as post-barrier schedules did in the
// original run. Same-timestamp ties therefore fire in the same order as
// the straight-through run, which is what makes restored runs
// bit-identical.
//
// Record-keeping costs a few cache lines per timer lifecycle (the record,
// the slot→ticket note, and the free list), which is measurable in
// timer-heavy drivers. Runs that will never save a checkpoint don't need
// records at all, so the table can be constructed with track=false: then
// Schedule() forwards closures straight to the scheduler with zero
// bookkeeping and the routed driver runs at exactly the unrouted speed.
// Tracking never changes event order, so tracked and untracked runs are
// bit-identical. When tracking, the table allocates only when the
// scheduler's pool grows, so routed drivers keep their steady-state
// allocation-free property.

#ifndef SRC_SNAPSHOT_TIMER_TABLE_H_
#define SRC_SNAPSHOT_TIMER_TABLE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/snapshot/bytes.h"

namespace centsim {

// Everything needed to rebuild one pending timer's closure: its type tag
// plus three scratch operands whose meaning the tag's re-arm fn defines
// (zone ids, device slots, a sampled lifetime...).
struct TimerRecord {
  uint64_t tag = 0;
  int64_t at_us = 0;   // Absolute fire time.
  uint64_t seq = 0;    // Scheduler sequence at arm time (ordering only).
  uint64_t a = 0;
  uint64_t b = 0;
  double x = 0.0;
};

class TimerTable {
 public:
  // `track` = false skips all record bookkeeping (see file comment): for
  // runs that will never Save(). Restore() through registered re-arm fns
  // still works either way — re-armed closures just aren't re-recorded.
  explicit TimerTable(Scheduler& sched, bool track = true)
      : sched_(sched), track_(track) {}
  TimerTable(const TimerTable&) = delete;
  TimerTable& operator=(const TimerTable&) = delete;

  // Registers the re-arm callback for `tag`: given a saved record, it must
  // schedule an equivalent timer (through this table) at record.at_us.
  // Register every tag BEFORE Restore(); replacing a tag is allowed.
  using RearmFn = std::function<void(const TimerRecord&)>;
  void Register(uint64_t tag, RearmFn fn);

  // Schedules `fn` at absolute time `at` and records (tag, a, b, x) for
  // reconstruction. The wrapper releases the record when the timer fires,
  // so Save() only ever sees genuinely pending timers.
  template <typename F>
  EventId Schedule(SimTime at, uint64_t tag, uint64_t a, uint64_t b, double x, F&& fn) {
    if (!track_) {
      return sched_.ScheduleAt(at, std::forward<F>(fn));
    }
    const uint32_t ticket = AcquireTicket();
    Entry& e = entries_[ticket];
    e.rec.tag = tag;
    e.rec.at_us = at.micros();
    e.rec.seq = sched_.next_sequence();
    e.rec.a = a;
    e.rec.b = b;
    e.rec.x = x;
    e.live = true;
    const EventId id =
        sched_.ScheduleAt(at, [this, ticket, f = std::forward<F>(fn)]() mutable {
          ReleaseTicket(ticket);
          f();
        });
    NoteEvent(id, ticket);
    return id;
  }

  // Cancels a table-scheduled timer and releases its record. Returns false
  // if the event already fired or was cancelled (record already released).
  bool Cancel(EventId id);

  // Live records sorted by (at, seq) — the re-arm order.
  std::vector<TimerRecord> Save() const;

  // Re-arms every record through its tag's registered callback, in the
  // given order. Records carrying an unregistered tag are counted (return
  // value) and skipped — a driver asserting the count is zero turns a
  // missing registration into a clean failure instead of silent state loss.
  size_t Restore(const std::vector<TimerRecord>& records);

  size_t live_count() const { return live_; }
  bool tracking() const { return track_; }

  // Codec helpers for the snapshot chunk.
  static void Encode(const std::vector<TimerRecord>& records, ByteWriter& w);
  static std::vector<TimerRecord> Decode(ByteReader& r);

 private:
  struct Entry {
    TimerRecord rec;
    bool live = false;
  };

  uint32_t AcquireTicket();
  void ReleaseTicket(uint32_t ticket);
  // Remembers which ticket the event occupying `id`'s pool slot carries.
  // Valid for exactly the lifetime of `id` (pool slots recycle, but a
  // recycled slot's id dies with it, and Cancel consults the note only
  // after Scheduler::Cancel confirmed `id` was still live).
  void NoteEvent(EventId id, uint32_t ticket);

  Scheduler& sched_;
  const bool track_;
  std::vector<std::pair<uint64_t, RearmFn>> rearm_;  // Small; linear scan.
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_;
  std::vector<uint32_t> ticket_by_slot_;  // Scheduler pool slot -> ticket+1.
  size_t live_ = 0;
};

}  // namespace centsim

#endif  // SRC_SNAPSHOT_TIMER_TABLE_H_
