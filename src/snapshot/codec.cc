#include "src/snapshot/codec.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace centsim {
namespace {

void EncodeLabels(const MetricLabels& labels, ByteWriter& w) {
  w.U64(labels.pairs().size());
  for (const auto& [key, value] : labels.pairs()) {
    w.Str(key);
    w.Str(value);
  }
}

MetricLabels DecodeLabels(ByteReader& r) {
  MetricLabels labels;
  const uint64_t count = r.U64();
  // Each pair costs at least 8 bytes of length prefixes.
  if (!r.ok() || count > r.remaining() / 8) {
    r.Fail();
    return labels;
  }
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.Str();
    std::string value = r.Str();
    labels.Set(std::move(key), std::move(value));
  }
  return labels;
}

void EncodeHistogramBins(const Histogram* bins, ByteWriter& w) {
  if (bins == nullptr) {
    w.U8(0);
    return;
  }
  w.U8(1);
  w.F64(bins->BinLow(0));
  w.F64(bins->BinHigh(bins->num_bins() - 1));
  std::vector<uint64_t> counts(bins->num_bins());
  for (uint32_t i = 0; i < bins->num_bins(); ++i) {
    counts[i] = bins->BinCount(i);
  }
  w.U64Vec(counts);
}

// Returns true when the saved bins (if any) were overlaid onto `metric`
// successfully; false on a shape mismatch. Stream errors set r's flag.
bool DecodeHistogramBinsInto(ByteReader& r, HistogramMetric* metric) {
  const uint8_t has_bins = r.U8();
  if (!r.ok() || has_bins == 0) {
    return r.ok();
  }
  (void)r.F64();  // lo — informational; shape is checked via the bin count.
  (void)r.F64();  // hi
  const std::vector<uint64_t> counts = r.U64Vec();
  if (!r.ok()) {
    return false;
  }
  Histogram* bins = metric->mutable_bins();
  if (bins == nullptr) {
    return false;
  }
  return bins->RestoreCounts(counts);
}

}  // namespace

void EncodeRngState(const RandomStream::State& state, ByteWriter& w) {
  w.U64(state.seed);
  w.U64(state.stream);
  for (uint64_t word : state.s) {
    w.U64(word);
  }
}

RandomStream::State DecodeRngState(ByteReader& r) {
  RandomStream::State state;
  state.seed = r.U64();
  state.stream = r.U64();
  for (uint64_t& word : state.s) {
    word = r.U64();
  }
  return state;
}

void EncodeSummaryStats(const SummaryStats& stats, ByteWriter& w) {
  w.U64(stats.count());
  // Raw accumulators, not the public clamped views: an empty accumulator's
  // +/-inf min/max sentinels must round-trip for Welford to continue.
  w.F64(stats.count() ? stats.mean() : 0.0);
  w.F64(stats.m2());
  w.F64(stats.raw_min());
  w.F64(stats.raw_max());
}

SummaryStats DecodeSummaryStats(ByteReader& r) {
  const uint64_t count = r.U64();
  const double mean = r.F64();
  const double m2 = r.F64();
  const double min = r.F64();
  const double max = r.F64();
  if (!r.ok()) {
    return SummaryStats();
  }
  return SummaryStats::FromRaw(count, mean, m2, min, max);
}

void EncodeSampleSet(const SampleSet& samples, ByteWriter& w) {
  w.F64Vec(samples.values());
}

bool DecodeSampleSet(ByteReader& r, SampleSet& samples) {
  std::vector<double> values = r.F64Vec();
  if (!r.ok()) {
    return false;
  }
  samples.RestoreValues(std::move(values));
  return true;
}

void EncodeMetrics(const MetricsRegistry& registry, ByteWriter& w) {
  uint64_t counters = 0, gauges = 0, histograms = 0;
  registry.VisitCounters(
      [&](const std::string&, const MetricLabels&, const Counter&) { ++counters; });
  registry.VisitGauges([&](const std::string&, const MetricLabels&, const Gauge&) { ++gauges; });
  registry.VisitHistograms(
      [&](const std::string&, const MetricLabels&, const HistogramMetric&) { ++histograms; });

  w.U64(counters);
  registry.VisitCounters([&](const std::string& name, const MetricLabels& labels,
                             const Counter& c) {
    w.Str(name);
    EncodeLabels(labels, w);
    w.F64(c.value());
  });
  w.U64(gauges);
  registry.VisitGauges([&](const std::string& name, const MetricLabels& labels, const Gauge& g) {
    w.Str(name);
    EncodeLabels(labels, w);
    w.F64(g.value());
  });
  w.U64(histograms);
  registry.VisitHistograms([&](const std::string& name, const MetricLabels& labels,
                               const HistogramMetric& h) {
    w.Str(name);
    EncodeLabels(labels, w);
    EncodeSummaryStats(h.stats(), w);
    EncodeHistogramBins(h.bins(), w);
  });
}

size_t DecodeMetricsOverlay(ByteReader& r, MetricsRegistry& registry) {
  size_t mismatches = 0;

  const uint64_t counters = r.U64();
  if (!r.ok() || counters > r.remaining() / 8) {
    r.Fail();
    return SIZE_MAX;
  }
  for (uint64_t i = 0; i < counters && r.ok(); ++i) {
    std::string name = r.Str();
    MetricLabels labels = DecodeLabels(r);
    const double value = r.F64();
    if (r.ok()) {
      // Incrementing a fresh counter by the saved total is exact: the
      // restored value is bit-identical to the saved double.
      registry.GetCounter(name, std::move(labels))->Increment(value);
    }
  }

  const uint64_t gauges = r.U64();
  if (!r.ok() || gauges > r.remaining() / 8) {
    r.Fail();
    return SIZE_MAX;
  }
  for (uint64_t i = 0; i < gauges && r.ok(); ++i) {
    std::string name = r.Str();
    MetricLabels labels = DecodeLabels(r);
    const double value = r.F64();
    if (r.ok()) {
      registry.GetGauge(name, std::move(labels))->Set(value);
    }
  }

  const uint64_t histograms = r.U64();
  if (!r.ok() || histograms > r.remaining() / 8) {
    r.Fail();
    return SIZE_MAX;
  }
  for (uint64_t i = 0; i < histograms && r.ok(); ++i) {
    std::string name = r.Str();
    MetricLabels labels = DecodeLabels(r);
    const SummaryStats stats = DecodeSummaryStats(r);
    if (!r.ok()) {
      break;
    }
    HistogramMetric* metric = registry.GetHistogram(name, std::move(labels));
    metric->RestoreStats(stats);
    if (!DecodeHistogramBinsInto(r, metric)) {
      ++mismatches;
    }
  }

  return r.ok() ? mismatches : SIZE_MAX;
}

}  // namespace centsim
