#include "src/snapshot/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/security/siphash.h"
#include "src/telemetry/atomic_file.h"

namespace centsim {
namespace {

constexpr char kMagic[8] = {'c', 'e', 'n', 't', 's', 'n', 'a', 'p'};
constexpr size_t kFileHeaderSize = 8 + 4 + 4;
constexpr size_t kChunkHeaderSize = 4 + 4 + 8 + 8;

// Published format constant: integrity, not authentication.
constexpr SipHashKey kSnapshotHashKey = {'c', 'e', 'n', 't', 's', 'i', 'm', '-',
                                         's', 'n', 'a', 'p', 'k', 'e', 'y', '1'};

void SetError(std::string* error, std::string what) {
  if (error != nullptr) {
    *error = std::move(what);
  }
}

void EncodeMeta(const SnapshotMeta& meta, ByteWriter& w) {
  w.Str(meta.experiment);
  w.Str(meta.library_version);
  w.Str(meta.structural_digest);
  w.I64(meta.barrier_us);
  w.U64(meta.seed);
}

bool DecodeMeta(ByteReader r, SnapshotMeta& meta) {
  meta.experiment = r.Str();
  meta.library_version = r.Str();
  meta.structural_digest = r.Str();
  meta.barrier_us = r.I64();
  meta.seed = r.U64();
  return r.ok();
}

}  // namespace

SnapshotWriter::SnapshotWriter(SnapshotMeta meta) {
  ByteWriter w;
  EncodeMeta(meta, w);
  Add(kMetaChunk, w);
}

void SnapshotWriter::Add(uint32_t tag, const ByteWriter& payload) {
  chunks_.push_back({tag, payload.bytes()});
}

uint64_t SnapshotWriter::Write(const std::string& path, std::string* error) const {
  ByteWriter out;
  out.Bytes(kMagic, sizeof(kMagic));
  out.U32(kSnapshotFormatVersion);
  out.U32(static_cast<uint32_t>(chunks_.size()));
  for (const Chunk& c : chunks_) {
    out.U32(c.tag);
    out.U32(0);  // Reserved.
    out.U64(c.payload.size());
    out.U64(SipHash24(kSnapshotHashKey, c.payload.data(), c.payload.size()));
    out.Bytes(c.payload.data(), c.payload.size());
  }
  if (!AtomicWriteFileBytes(out.bytes().data(), out.size(), path, /*durable=*/true, error)) {
    return 0;
  }
  return out.size();
}

bool SnapshotReader::Open(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open " + path);
    return false;
  }
  std::vector<uint8_t> image((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    SetError(error, "read failed for " + path);
    return false;
  }
  return OpenBytes(std::move(image), error);
}

bool SnapshotReader::OpenBytes(std::vector<uint8_t> image, std::string* error) {
  image_ = std::move(image);
  chunks_.clear();
  if (image_.size() < kFileHeaderSize) {
    SetError(error, "snapshot truncated: no file header");
    return false;
  }
  if (std::memcmp(image_.data(), kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "not a snapshot file (bad magic)");
    return false;
  }
  ByteReader header(image_.data() + sizeof(kMagic), kFileHeaderSize - sizeof(kMagic));
  const uint32_t version = header.U32();
  if (version != kSnapshotFormatVersion) {
    SetError(error, "unsupported snapshot format version " + std::to_string(version) +
                        " (expected " + std::to_string(kSnapshotFormatVersion) + ")");
    return false;
  }
  const uint32_t chunk_count = header.U32();

  size_t pos = kFileHeaderSize;
  for (uint32_t i = 0; i < chunk_count; ++i) {
    if (image_.size() - pos < kChunkHeaderSize) {
      SetError(error, "snapshot truncated in chunk header " + std::to_string(i));
      return false;
    }
    ByteReader ch(image_.data() + pos, kChunkHeaderSize);
    const uint32_t tag = ch.U32();
    // Reserved must be zero: rejecting nonzero keeps every header bit
    // load-bearing (a flipped bit can never yield a "valid" file) and the
    // field free for a future format revision.
    if (ch.U32() != 0) {
      SetError(error, "snapshot chunk " + std::to_string(i) + " has nonzero reserved field");
      return false;
    }
    const uint64_t len = ch.U64();
    const uint64_t sum = ch.U64();
    pos += kChunkHeaderSize;
    // Length validated against the file BEFORE any payload access: an
    // oversized declared length fails here instead of sizing a read or an
    // allocation.
    if (len > image_.size() - pos) {
      SetError(error, "snapshot chunk " + std::to_string(i) + " declares " +
                          std::to_string(len) + " bytes but only " +
                          std::to_string(image_.size() - pos) + " remain");
      return false;
    }
    if (SipHash24(kSnapshotHashKey, image_.data() + pos, len) != sum) {
      SetError(error, "snapshot chunk " + std::to_string(i) + " failed its checksum");
      return false;
    }
    for (const ChunkSpan& existing : chunks_) {
      if (existing.tag == tag) {
        SetError(error, "snapshot has duplicate chunk tag " + std::to_string(tag));
        return false;
      }
    }
    chunks_.push_back({tag, pos, static_cast<size_t>(len)});
    pos += len;
  }
  if (pos != image_.size()) {
    SetError(error, "snapshot has " + std::to_string(image_.size() - pos) +
                        " trailing bytes after the last chunk");
    return false;
  }
  if (!HasChunk(kMetaChunk) || !DecodeMeta(Chunk(kMetaChunk), meta_)) {
    SetError(error, "snapshot meta chunk missing or undecodable");
    return false;
  }
  return true;
}

bool SnapshotReader::HasChunk(uint32_t tag) const {
  for (const ChunkSpan& c : chunks_) {
    if (c.tag == tag) {
      return true;
    }
  }
  return false;
}

ByteReader SnapshotReader::Chunk(uint32_t tag) const {
  for (const ChunkSpan& c : chunks_) {
    if (c.tag == tag) {
      return ByteReader(image_.data() + c.offset, c.size);
    }
  }
  // Missing chunk: an empty reader whose first read fails.
  ByteReader r(nullptr, 0);
  r.Fail();
  return r;
}

std::string StructuralDigestHex(const ByteWriter& encoded) {
  const uint64_t digest = SipHash24(kSnapshotHashKey, encoded.bytes().data(), encoded.size());
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

bool ProbeSnapshot(const std::string& path, SnapshotMeta* meta, std::string* error) {
  SnapshotReader reader;
  if (!reader.Open(path, error)) {
    return false;
  }
  if (meta != nullptr) {
    *meta = reader.meta();
  }
  return true;
}

bool WriteLatestMarker(const std::string& dir, const std::string& snapshot_path,
                       int64_t barrier_us, std::string* error) {
  char buf[640];
  // Paths land in JSON; checkpoint paths are machine-generated (no quotes
  // or control characters), so plain interpolation is safe here.
  const int n =
      std::snprintf(buf, sizeof(buf), "{\"path\": \"%s\", \"barrier_us\": %" PRId64 "}\n",
                    snapshot_path.c_str(), barrier_us);
  if (n < 0 || static_cast<size_t>(n) >= sizeof(buf)) {
    SetError(error, "checkpoint path too long for LATEST marker");
    return false;
  }
  return AtomicWriteFileBytes(buf, static_cast<size_t>(n), dir + "/" + kLatestMarkerFile,
                              /*durable=*/true, error);
}

std::string FindLatestValidSnapshot(const std::string& dir, SnapshotMeta* meta) {
  namespace fs = std::filesystem;
  // First choice: the marker, written only after its snapshot was durable.
  std::ifstream marker(dir + "/" + kLatestMarkerFile);
  if (marker) {
    std::string text((std::istreambuf_iterator<char>(marker)),
                     std::istreambuf_iterator<char>());
    const std::string key = "\"path\": \"";
    const size_t start = text.find(key);
    if (start != std::string::npos) {
      const size_t from = start + key.size();
      const size_t end = text.find('"', from);
      if (end != std::string::npos) {
        const std::string path = text.substr(from, end - from);
        if (ProbeSnapshot(path, meta)) {
          return path;
        }
      }
    }
  }
  // Fallback: scan for the newest-barrier snapshot that validates (the
  // marker itself may be stale or lost).
  std::string best;
  int64_t best_barrier = INT64_MIN;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".snap") {
      continue;
    }
    SnapshotMeta m;
    if (ProbeSnapshot(entry.path().string(), &m) && m.barrier_us > best_barrier) {
      best = entry.path().string();
      best_barrier = m.barrier_us;
      if (meta != nullptr) {
        *meta = m;
      }
    }
  }
  return best;
}

std::string CheckpointFileName(int64_t barrier_us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "checkpoint_%020" PRId64 ".snap", barrier_us);
  return buf;
}

}  // namespace centsim
