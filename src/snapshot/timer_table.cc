#include "src/snapshot/timer_table.h"

#include <algorithm>

namespace centsim {

void TimerTable::Register(uint64_t tag, RearmFn fn) {
  for (auto& [existing, cb] : rearm_) {
    if (existing == tag) {
      cb = std::move(fn);
      return;
    }
  }
  rearm_.emplace_back(tag, std::move(fn));
}

bool TimerTable::Cancel(EventId id) {
  if (!sched_.Cancel(id)) {
    return false;
  }
  if (track_) {
    // Cancel succeeded, so `id` was live until this call — its slot note is
    // current by construction (NoteEvent wrote it when `id` was created and
    // no later event can have reused the slot while `id` lived).
    const uint32_t slot = EventPool::SlotOf(id);
    ReleaseTicket(ticket_by_slot_[slot] - 1);
  }
  return true;
}

std::vector<TimerRecord> TimerTable::Save() const {
  std::vector<TimerRecord> records;
  records.reserve(live_);
  for (const Entry& e : entries_) {
    if (e.live) {
      records.push_back(e.rec);
    }
  }
  std::sort(records.begin(), records.end(), [](const TimerRecord& a, const TimerRecord& b) {
    if (a.at_us != b.at_us) {
      return a.at_us < b.at_us;
    }
    return a.seq < b.seq;
  });
  return records;
}

size_t TimerTable::Restore(const std::vector<TimerRecord>& records) {
  size_t unregistered = 0;
  for (const TimerRecord& rec : records) {
    const RearmFn* fn = nullptr;
    for (const auto& [tag, cb] : rearm_) {
      if (tag == rec.tag) {
        fn = &cb;
        break;
      }
    }
    if (fn == nullptr) {
      ++unregistered;
      continue;
    }
    (*fn)(rec);
  }
  return unregistered;
}

void TimerTable::Encode(const std::vector<TimerRecord>& records, ByteWriter& w) {
  w.U64(records.size());
  for (const TimerRecord& rec : records) {
    w.U64(rec.tag);
    w.I64(rec.at_us);
    w.U64(rec.seq);
    w.U64(rec.a);
    w.U64(rec.b);
    w.F64(rec.x);
  }
}

std::vector<TimerRecord> TimerTable::Decode(ByteReader& r) {
  const uint64_t count = r.U64();
  // 48 bytes per record; clamp against the stream before allocating.
  if (!r.ok() || count > r.remaining() / 48) {
    r.Fail();
    return {};
  }
  std::vector<TimerRecord> records(count);
  for (TimerRecord& rec : records) {
    rec.tag = r.U64();
    rec.at_us = r.I64();
    rec.seq = r.U64();
    rec.a = r.U64();
    rec.b = r.U64();
    rec.x = r.F64();
  }
  return records;
}

uint32_t TimerTable::AcquireTicket() {
  if (free_.empty()) {
    entries_.emplace_back();
    free_.push_back(static_cast<uint32_t>(entries_.size() - 1));
  }
  const uint32_t ticket = free_.back();
  free_.pop_back();
  return ticket;
}

void TimerTable::ReleaseTicket(uint32_t ticket) {
  Entry& e = entries_[ticket];
  e.live = false;
  free_.push_back(ticket);
  --live_;
}

void TimerTable::NoteEvent(EventId id, uint32_t ticket) {
  const uint32_t slot = EventPool::SlotOf(id);
  if (slot >= ticket_by_slot_.size()) {
    ticket_by_slot_.resize(slot + 1, 0);
  }
  ticket_by_slot_[slot] = ticket + 1;
  ++live_;
}

}  // namespace centsim
