// Branching what-if engine.
//
// BranchRunner<Experiment> takes one snapshot (a run checkpointed at some
// barrier year) and fans out N config variants from it in parallel: every
// branch restores the identical saved state, applies its own policy deltas
// (repair delays, refresh ages, ...), and simulates only the remaining
// years. The shared history is paid for once, by the run that wrote the
// snapshot — branches never re-simulate it.
//
// Determinism: each branch writes into its own preallocated result slot and
// all slots are returned in branch order, so the output is bit-identical
// for a given snapshot regardless of worker count or completion order.
//
// RNG policy: by default every branch resumes the parent's RNG streams
// unchanged — common random numbers, so two branches differ only where
// their policies causally diverge (the variance-reduction default for
// policy comparisons, and what makes an identity branch reproduce the
// parent run exactly). Opt into `reseed` to give branch i the salt
// DeriveReplicaSeed(salt_seed, i) | 1 instead, decorrelating the futures
// for uncertainty sweeps.
//
// Duck-typed like EnsembleRunner: any experiment with Name()/Run()/Config::
// Validate() and a `snapshot` SnapshotPlan field works.

#ifndef SRC_SNAPSHOT_BRANCH_H_
#define SRC_SNAPSHOT_BRANCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/ensemble.h"
#include "src/sim/thread_pool.h"
#include "src/sim/time.h"

namespace centsim {

struct BranchOptions {
  // Worker threads; 0 means ThreadPool::DefaultThreadCount(), capped at the
  // branch count.
  uint32_t threads = 1;
  // false = common random numbers (all branches share the parent's
  // streams); true = re-key branch i's streams with a salt derived from
  // (salt_seed, i).
  bool reseed = false;
  uint64_t salt_seed = 0;
};

template <typename Experiment>
class BranchRunner {
 public:
  using Config = typename Experiment::Config;
  using Report = typename Experiment::Report;

  struct Branch {
    std::string name;  // "baseline", "faster_repairs", ... for reporting.
    Config config;     // Structural fields must match the snapshot's run.
  };

  struct BranchRun {
    uint32_t index = 0;
    std::string name;
    uint64_t branch_salt = 0;  // 0 = common random numbers.
    double wall_seconds = 0.0;
    Report report;
  };

  // Restores every branch from `snapshot_path` and runs it to its horizon.
  // Results are in branch order. Aborts (via CheckConfigOrDie) on an
  // invalid branch config; a branch whose structural config does not match
  // the snapshot fails inside Experiment::Run with a digest diagnostic.
  static std::vector<BranchRun> Run(const std::string& snapshot_path,
                                    std::vector<Branch> branches,
                                    const BranchOptions& options = {}) {
    static_assert(
        requires(Config& c) {
          { Experiment::Name() };
          { Experiment::Run(c) };
          { c.Validate() };
          c.snapshot.resume_from = std::string();
          c.snapshot.branch_salt = uint64_t{0};
        },
        "Experiment must follow the unified Experiment API and carry a "
        "`snapshot` SnapshotPlan field (src/snapshot/snapshot_plan.h)");

    std::vector<BranchRun> runs(branches.size());
    if (branches.empty()) {
      return runs;
    }

    // Pin every branch to the snapshot and strip any checkpointing the
    // caller left in the variant configs: branches are read-only consumers
    // of the snapshot, never writers into the parent's checkpoint_dir.
    for (uint32_t i = 0; i < branches.size(); ++i) {
      Config& cfg = branches[i].config;
      cfg.snapshot.resume_from = snapshot_path;
      cfg.snapshot.resume_latest = false;
      cfg.snapshot.checkpoint_every = SimTime();
      cfg.snapshot.checkpoint_dir.clear();
      cfg.snapshot.branch_salt =
          options.reseed ? (DeriveReplicaSeed(options.salt_seed, i) | 1) : 0;
      CheckConfigOrDie(Experiment::Name(), cfg.Validate());
    }

    uint32_t threads =
        options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads;
    threads = std::min<uint32_t>(threads, static_cast<uint32_t>(branches.size()));
    {
      ThreadPool pool(threads);
      for (uint32_t i = 0; i < branches.size(); ++i) {
        pool.Submit([&runs, &branches, i] {
          BranchRun& slot = runs[i];
          slot.index = i;
          slot.name = branches[i].name;
          slot.branch_salt = branches[i].config.snapshot.branch_salt;
          const auto start = std::chrono::steady_clock::now();
          slot.report = Experiment::Run(branches[i].config);
          slot.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        });
      }
      pool.Wait();
    }
    return runs;
  }
};

}  // namespace centsim

#endif  // SRC_SNAPSHOT_BRANCH_H_
