// Little-endian byte codec for the snapshot format.
//
// ByteWriter appends into an owned buffer; ByteReader walks a borrowed
// span with strict bounds checking. The reader NEVER trusts an embedded
// length: every Read* checks the remaining byte count first and latches a
// sticky failure flag instead of reading past the end, so a truncated or
// bit-flipped snapshot degrades to `ok() == false`, not UB. Sized reads
// (strings, vectors) additionally clamp the declared element count against
// the bytes actually remaining BEFORE allocating, so a corrupted length
// field cannot trigger a multi-gigabyte allocation.
//
// Doubles travel as their IEEE-754 bit patterns (bit_cast), so a
// save/restore round trip reproduces every value bit-for-bit — including
// the signed zeros, infinities, and accumulated-rounding states that the
// restore-parity digests depend on.

#ifndef SRC_SNAPSHOT_BYTES_H_
#define SRC_SNAPSHOT_BYTES_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace centsim {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) { AppendLe(std::bit_cast<uint64_t>(v)); }

  void Bytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  // Length-prefixed string (u32 length, no terminator).
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (const double x : v) {
      F64(x);
    }
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (const uint64_t x : v) {
      U64(x);
    }
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() { return Take(1) ? data_[pos_++] : 0; }
  uint32_t U32() { return static_cast<uint32_t>(TakeLe(4)); }
  uint64_t U64() { return TakeLe(8); }
  int64_t I64() { return static_cast<int64_t>(TakeLe(8)); }
  double F64() { return std::bit_cast<double>(TakeLe(8)); }

  std::string Str() {
    const uint32_t len = U32();
    if (!Take(len)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  std::vector<double> F64Vec() {
    const uint64_t count = U64();
    // Clamp BEFORE allocating: 8 bytes per element must fit in what's left.
    if (failed_ || count > remaining() / 8) {
      failed_ = true;
      return {};
    }
    std::vector<double> v(count);
    for (auto& x : v) {
      x = F64();
    }
    return v;
  }
  std::vector<uint64_t> U64Vec() {
    const uint64_t count = U64();
    if (failed_ || count > remaining() / 8) {
      failed_ = true;
      return {};
    }
    std::vector<uint64_t> v(count);
    for (auto& x : v) {
      x = U64();
    }
    return v;
  }
  bool ReadBytes(void* out, size_t size) {
    if (!Take(size)) {
      std::memset(out, 0, size);
      return false;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool ok() const { return !failed_; }
  // Marks the stream failed (callers finding semantic nonsense use this so
  // one `ok()` check at the end covers both syntax and semantics).
  void Fail() { failed_ = true; }

 private:
  // True iff `n` more bytes exist; latches failure otherwise.
  bool Take(size_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }
  uint64_t TakeLe(size_t n) {
    if (!Take(n)) {
      return 0;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace centsim

#endif  // SRC_SNAPSHOT_BYTES_H_
