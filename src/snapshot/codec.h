// Binary codecs for the sim-layer state that checkpoints carry.
//
// Each Encode writes a self-delimiting record into a ByteWriter; each Decode
// consumes exactly that record from a ByteReader, propagating the reader's
// sticky failure flag on any truncation or shape mismatch. Floating-point
// accumulators travel as raw IEEE-754 bit patterns so a restored run
// continues the saved run's arithmetic bit-identically.

#ifndef SRC_SNAPSHOT_CODEC_H_
#define SRC_SNAPSHOT_CODEC_H_

#include <cstddef>

#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/snapshot/bytes.h"

namespace centsim {

void EncodeRngState(const RandomStream::State& state, ByteWriter& w);
RandomStream::State DecodeRngState(ByteReader& r);

void EncodeSummaryStats(const SummaryStats& stats, ByteWriter& w);
SummaryStats DecodeSummaryStats(ByteReader& r);

void EncodeSampleSet(const SampleSet& samples, ByteWriter& w);
bool DecodeSampleSet(ByteReader& r, SampleSet& samples);

// Serializes every instrument in creation order: kind, name, labels, value.
void EncodeMetrics(const MetricsRegistry& registry, ByteWriter& w);

// Overlays saved instrument values onto `registry`, creating instruments as
// needed (find-or-create by name + labels, the registry's identity rule).
// Counters/gauges/summary stats restore exactly; histogram bin counts
// restore only onto an instrument whose bin shape matches the saved one.
// Returns the number of instruments whose bins could not be overlaid, or
// SIZE_MAX when the stream itself is malformed (reader failed).
size_t DecodeMetricsOverlay(ByteReader& r, MetricsRegistry& registry);

}  // namespace centsim

#endif  // SRC_SNAPSHOT_CODEC_H_
