// Checkpoint/restore plan carried by experiment configs.
//
// Plain data (no snapshot-library types) so core config headers can embed
// it; the drivers and EnsembleRunner/BranchRunner fill it in. All fields
// inert by default: a default-constructed plan means "no checkpointing,
// fresh run", and costs a routed driver nothing — drivers construct their
// TimerTable untracked when checkpoint_every is 0, so timers pass straight
// through to the scheduler.

#ifndef SRC_SNAPSHOT_SNAPSHOT_PLAN_H_
#define SRC_SNAPSHOT_SNAPSHOT_PLAN_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

struct SnapshotPlan {
  // Periodic checkpoints: every this much sim time, the driver drains the
  // scheduler to a quiescent barrier and writes
  // `<checkpoint_dir>/checkpoint_<barrier_us>.snap` plus the LATEST.json
  // marker. 0 disables.
  SimTime checkpoint_every;
  std::string checkpoint_dir;

  // Resume path: restore from this snapshot instead of simulating from
  // year zero. Structural config fields (seed, fleet geometry, horizon)
  // must match the saving run — the driver verifies its structural digest
  // and fails fast on a mismatch; policy fields (repair delays, refresh
  // ages) may differ, which is what BranchRunner's what-if deltas change.
  std::string resume_from;
  // Crash-recovery convenience: when set (and resume_from is empty), scan
  // checkpoint_dir for the latest valid snapshot and resume from it; start
  // fresh when none exists. Re-running the same command after a crash
  // therefore continues where the last durable checkpoint left off.
  bool resume_latest = false;

  // Branch divergence: when non-zero, the driver re-keys its RNG stream
  // with this salt after restoring, so the branch draws a different future
  // than the parent run. 0 keeps the parent's streams — common random
  // numbers, the variance-reduction default for policy comparisons.
  uint64_t branch_salt = 0;

  bool enabled() const {
    return checkpoint_every.micros() > 0 || !resume_from.empty() || resume_latest;
  }

  // Actionable diagnostics (empty = valid); folded into each experiment
  // config's Validate().
  std::vector<std::string> Validate() const {
    std::vector<std::string> diagnostics;
    if (checkpoint_every.micros() < 0) {
      diagnostics.push_back("negative snapshot.checkpoint_every: use 0 to disable checkpoints");
    }
    if (checkpoint_every.micros() > 0 && checkpoint_dir.empty()) {
      diagnostics.push_back(
          "snapshot.checkpoint_every set without snapshot.checkpoint_dir: checkpoints need a "
          "directory to land in");
    }
    if (resume_latest && checkpoint_dir.empty()) {
      diagnostics.push_back(
          "snapshot.resume_latest set without snapshot.checkpoint_dir: there is no directory "
          "to scan for checkpoints");
    }
    if (resume_latest && !resume_from.empty()) {
      diagnostics.push_back(
          "snapshot.resume_latest and snapshot.resume_from are both set: pick one resume "
          "source");
    }
    return diagnostics;
  }
};

}  // namespace centsim

#endif  // SRC_SNAPSHOT_SNAPSHOT_PLAN_H_
