#include "src/radio/medium.h"

#include <cassert>
#include <cmath>

namespace centsim {

void SharedMedium::Register(const Transmission& tx) {
  assert(active_.empty() || tx.start >= active_.back().start);
  active_.push_back(tx);
}

bool SharedMedium::Delivered(const Transmission& tx, double capture_margin_db) const {
  double interference_mw = 0.0;
  for (const auto& other : active_) {
    if (other.tx_id == tx.tx_id || other.channel != tx.channel) {
      continue;
    }
    const bool overlaps = other.start < tx.end && tx.start < other.end;
    if (overlaps) {
      interference_mw += DbmToMilliwatts(other.rx_power_dbm);
    }
  }
  bool delivered = true;
  if (interference_mw > 0.0) {
    const double margin = tx.rx_power_dbm - MilliwattsToDbm(interference_mw);
    delivered = margin >= capture_margin_db;
  }
  MetricInc(delivered ? delivered_metric_ : lost_metric_);
  return delivered;
}

void SharedMedium::ExpireBefore(SimTime t) {
  while (!active_.empty() && active_.front().end < t) {
    active_.pop_front();
  }
}

double AlohaModel::SuccessProbability(double arrival_rate_hz, SimTime airtime) {
  const double g = arrival_rate_hz * airtime.ToSeconds();
  return std::exp(-2.0 * g);
}

double CsmaModel::SuccessProbability(double arrival_rate_hz, SimTime airtime, SimTime slot) {
  // Non-persistent CSMA (Kleinrock-Tobagi): with normalized propagation
  // a = slot/airtime, S/G relation gives per-attempt success
  //   P = exp(-a G) / (G (1 + 2a) + exp(-a G))  ... we use the standard
  // vulnerable-window form: collisions only if another arrival falls in
  // the slot window before carrier is sensed.
  const double g_slot = arrival_rate_hz * slot.ToSeconds();
  (void)airtime;
  return std::exp(-g_slot);
}

double CsmaModel::ExpectedAttempts(double arrival_rate_hz, SimTime airtime, SimTime slot) {
  // Each attempt defers while the channel is busy; attempts until success
  // is geometric in the per-attempt success probability.
  const double p = SuccessProbability(arrival_rate_hz, airtime, slot);
  // Busy-channel probability adds deferrals (not failures): expected
  // sensing rounds per attempt = 1 / (1 - busy).
  const double busy = 1.0 - std::exp(-arrival_rate_hz * airtime.ToSeconds());
  const double rounds_per_attempt = 1.0 / std::max(1e-9, 1.0 - busy);
  return rounds_per_attempt / std::max(1e-9, p);
}

}  // namespace centsim
