#include "src/radio/contention.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/sim/random.h"

namespace centsim {
namespace {

// Counter-based draws: every stochastic decision is a pure hash of its
// identity, never a stream position, so grid and oracle iteration orders
// produce bit-identical results.
uint64_t HashMix(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ull) ^ 0xD1B54A32D192ED03ull;
  return SplitMix64(s);
}

double HashUniform(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kCadSalt = 0xCADCADCADCADull;
constexpr uint64_t kPerSalt = 0x9E12BADF00Dull;
constexpr uint64_t kNoPriority = std::numeric_limits<uint64_t>::max();

// Per-tx bookkeeping bits for the final outcome fold.
constexpr uint8_t kHeard = 1;       // Some gateway's PHY saw the preamble.
constexpr uint8_t kInterfered = 2;  // Received but lost the capture contest.

}  // namespace

uint64_t RadioLinkSeed(uint64_t sim_seed, uint32_t tx_id, uint32_t gateway_id) {
  uint64_t sm = sim_seed ^ (static_cast<uint64_t>(tx_id) << 32) ^ gateway_id;
  return SplitMix64(sm);
}

GatewayCellGrid::GatewayCellGrid(const std::vector<double>& gw_x,
                                 const std::vector<double>& gw_y, double cell_m)
    : cell_m_(cell_m > 0.0 ? cell_m : 1.0) {
  if (gw_x.empty()) {
    return;
  }
  min_x_ = *std::min_element(gw_x.begin(), gw_x.end());
  min_y_ = *std::min_element(gw_y.begin(), gw_y.end());
  const double max_x = *std::max_element(gw_x.begin(), gw_x.end());
  const double max_y = *std::max_element(gw_y.begin(), gw_y.end());
  nx_ = static_cast<uint32_t>((max_x - min_x_) / cell_m_) + 1;
  ny_ = static_cast<uint32_t>((max_y - min_y_) / cell_m_) + 1;

  // Counting-sort gateways into CSR cell lists; ids stay ascending within
  // a cell because we insert in id order.
  const size_t cells = static_cast<size_t>(nx_) * ny_;
  offsets_.assign(cells + 1, 0);
  std::vector<uint32_t> cell_of(gw_x.size());
  for (size_t g = 0; g < gw_x.size(); ++g) {
    cell_of[g] = CellOf(gw_x[g], gw_y[g]);
    ++offsets_[cell_of[g] + 1];
  }
  for (size_t c = 0; c < cells; ++c) {
    offsets_[c + 1] += offsets_[c];
  }
  ids_.resize(gw_x.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t g = 0; g < gw_x.size(); ++g) {
    ids_[cursor[cell_of[g]]++] = g;
  }
}

int32_t GatewayCellGrid::ClampX(double x) const {
  const double fx = (x - min_x_) / cell_m_;
  if (fx < 0.0) {
    return 0;
  }
  const int32_t cx = static_cast<int32_t>(fx);
  return cx >= static_cast<int32_t>(nx_) ? static_cast<int32_t>(nx_) - 1 : cx;
}

int32_t GatewayCellGrid::ClampY(double y) const {
  const double fy = (y - min_y_) / cell_m_;
  if (fy < 0.0) {
    return 0;
  }
  const int32_t cy = static_cast<int32_t>(fy);
  return cy >= static_cast<int32_t>(ny_) ? static_cast<int32_t>(ny_) - 1 : cy;
}

uint32_t GatewayCellGrid::CellOf(double x, double y) const {
  return static_cast<uint32_t>(ClampY(y)) * nx_ + static_cast<uint32_t>(ClampX(x));
}

ContentionResolver::ContentionResolver(ContentionParams params, std::vector<double> gw_x,
                                       std::vector<double> gw_y)
    : params_(std::move(params)),
      path_loss_(params_.path_loss),
      gw_x_(std::move(gw_x)),
      gw_y_(std::move(gw_y)),
      // The grid is built even in oracle mode: CAD cell identity must not
      // depend on which enumeration strategy the caller picked.
      grid_(gw_x_, gw_y_, params_.range_m) {
  if (params_.groups.empty()) {
    params_.groups.push_back(PhyModel::ForLora(LoraConfig{}));
  }
}

void ContentionResolver::Resolve(const TxColumns& tx, uint32_t round,
                                 std::vector<DeliveryReport>& out) {
  const size_t n = tx.count;
  const size_t n_groups = params_.groups.size();
  const size_t n_gw = gw_x_.size();
  const double r2 = params_.range_m * params_.range_m;
  const uint64_t round_seed = HashMix(params_.seed, round);

  out.assign(n, DeliveryReport{});
  tx_flags_.assign(n, 0);
  hearings_.clear();

  auto group_of = [&](size_t i) -> size_t {
    return tx.group == nullptr ? 0 : std::min<size_t>(tx.group[i], n_groups - 1);
  };

  // --- CAD pass: per (cell, group) minimum start priority. -------------
  // The earliest frame in a cell transmits; every later co-group frame in
  // the same cell senses its preamble and politely defers. Start order is
  // a counter hash, so grid and oracle agree exactly.
  if (params_.cad && !grid_.empty()) {
    const size_t keys = static_cast<size_t>(grid_.cells_x()) * grid_.cells_y() * n_groups;
    if (cad_min_.size() != keys) {
      cad_min_.assign(keys, kNoPriority);
    }
    cad_cells_.clear();
    for (size_t i = 0; i < n; ++i) {
      const size_t key = grid_.CellOf(tx.x[i], tx.y[i]) * n_groups + group_of(i);
      const uint64_t pri = HashMix(round_seed ^ kCadSalt, tx.index_base + i);
      if (cad_min_[key] == kNoPriority) {
        cad_cells_.push_back(static_cast<uint32_t>(key));
      }
      cad_min_[key] = std::min(cad_min_[key], pri);
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t key = grid_.CellOf(tx.x[i], tx.y[i]) * n_groups + group_of(i);
      const uint64_t pri = HashMix(round_seed ^ kCadSalt, tx.index_base + i);
      if (pri > cad_min_[key]) {
        out[i].outcome = DeliveryOutcome::kCadBusy;
      }
    }
    for (uint32_t key : cad_cells_) {
      cad_min_[key] = kNoPriority;
    }
  }

  // --- Hearing pass: who can hear whom, grid-bucketed or all-pairs. ----
  // Candidacy is geometric (dist^2 <= range^2) in BOTH modes, so the grid
  // path and the brute-force oracle enumerate exactly the same links; only
  // the enumeration cost differs.
  for (size_t i = 0; i < n; ++i) {
    if (out[i].outcome == DeliveryOutcome::kCadBusy) {
      continue;
    }
    const PhyModel& phy = params_.groups[group_of(i)];
    const double hear_dbm = phy.SensitivityDbm() - 3.0;  // Fabric's marginal-link rule.
    const double xi = tx.x[i];
    const double yi = tx.y[i];
    auto consider = [&](uint32_t gw) {
      const double dx = xi - gw_x_[gw];
      const double dy = yi - gw_y_[gw];
      const double d2 = dx * dx + dy * dy;
      if (d2 > r2) {
        return;
      }
      const double loss = path_loss_.LinkLossDb(
          std::sqrt(d2),
          RadioLinkSeed(params_.seed, static_cast<uint32_t>(tx.index_base + i), gw));
      const double rx = tx.tx_power_dbm[i] + params_.rx_antenna_gain_db - loss;
      if (rx >= hear_dbm) {
        hearings_.push_back({static_cast<uint32_t>(i), gw, rx});
      }
    };
    if (params_.use_grid) {
      grid_.ForNeighbors(xi, yi, consider);
    } else {
      for (uint32_t gw = 0; gw < n_gw; ++gw) {
        consider(gw);
      }
    }
  }

  // --- Interference totals per (gateway, group). -----------------------
  // hearings_ is tx-major in both modes and each tx contributes at most
  // one term per gateway, so every (gw, group) bucket accumulates its
  // terms in ascending-tx order regardless of enumeration strategy:
  // floating-point sums are bit-identical between grid and oracle.
  totals_mw_.assign(n_gw * n_groups, 0.0);
  for (const Hearing& h : hearings_) {
    totals_mw_[h.gw * n_groups + group_of(h.tx)] += DbmToMilliwatts(h.rx_dbm);
  }

  // --- Capture + PER: each heard frame's fate. -------------------------
  for (const Hearing& h : hearings_) {
    const size_t g = group_of(h.tx);
    const PhyModel& phy = params_.groups[g];
    const double self_mw = DbmToMilliwatts(h.rx_dbm);
    const double interference_mw = totals_mw_[h.gw * n_groups + g] - self_mw;
    // Alone in the bucket: totals == self bitwise, so this is exact.
    const bool survived =
        interference_mw <= 0.0 ||
        h.rx_dbm - MilliwattsToDbm(interference_mw) >= params_.capture_margin_db;
    const double per = phy.PacketErrorRate(h.rx_dbm, params_.payload_bytes);
    const double u = HashUniform(
        HashMix(round_seed ^ kPerSalt,
                (static_cast<uint64_t>(tx.index_base + h.tx) << 32) | h.gw));
    const bool received = u >= per;

    tx_flags_[h.tx] |= kHeard;
    if (!survived && received) {
      tx_flags_[h.tx] |= kInterfered;
    }
    if (survived && received) {
      DeliveryReport& r = out[h.tx];
      ++r.witnesses;
      // Best gateway by received power; ties break to the lower id so the
      // report is independent of enumeration order.
      if (h.rx_dbm > r.rssi_dbm ||
          (h.rx_dbm == r.rssi_dbm && (r.witnesses == 1 || h.gw < r.gateway_id))) {
        r.rssi_dbm = h.rx_dbm;
        r.snr_db = phy.SnrDb(h.rx_dbm);
        r.gateway_id = h.gw;
        r.captured = interference_mw > 0.0;
      }
    }
  }

  // --- Fold per-tx bookkeeping into final outcomes. --------------------
  for (size_t i = 0; i < n; ++i) {
    DeliveryReport& r = out[i];
    if (r.outcome == DeliveryOutcome::kCadBusy) {
      continue;
    }
    if (r.witnesses > 0) {
      r.outcome = DeliveryOutcome::kDelivered;
    } else if (tx_flags_[i] & kInterfered) {
      r.outcome = DeliveryOutcome::kCollision;
    } else if (tx_flags_[i] & kHeard) {
      r.outcome = DeliveryOutcome::kPhyLoss;
    } else {
      r.outcome = DeliveryOutcome::kNoGatewayInRange;
    }
  }
}

}  // namespace centsim
