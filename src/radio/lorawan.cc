#include "src/radio/lorawan.h"

#include <algorithm>

namespace centsim {

ChannelPlan ChannelPlan::Eu868() {
  ChannelPlan plan;
  plan.region = LorawanRegion::kEu868;
  plan.uplink_channels_hz = {868.1e6, 868.3e6, 868.5e6};
  plan.max_eirp_dbm = 16.0;
  plan.duty_cycle_limit = 0.01;
  plan.dwell_time_limit = SimTime();
  return plan;
}

ChannelPlan ChannelPlan::Us915() {
  ChannelPlan plan;
  plan.region = LorawanRegion::kUs915;
  plan.uplink_channels_hz.reserve(8);
  for (int i = 0; i < 8; ++i) {  // Sub-band 2, the common private plan.
    plan.uplink_channels_hz.push_back(903.9e6 + i * 200e3);
  }
  plan.max_eirp_dbm = 30.0;
  plan.duty_cycle_limit = 0.0;
  plan.dwell_time_limit = SimTime::Millis(400);
  return plan;
}

double ChannelPlan::MaxUplinksPerDay(SimTime airtime) const {
  if (airtime.micros() <= 0) {
    return 0.0;
  }
  if (duty_cycle_limit > 0.0) {
    // Duty cycle binds the band as a whole; hopping does not help.
    return 86400.0 * duty_cycle_limit / airtime.ToSeconds();
  }
  if (dwell_time_limit.micros() > 0 && airtime > dwell_time_limit) {
    return 0.0;  // Frame illegal at this data rate in this region.
  }
  // Dwell-limited regions: no aggregate cap beyond per-frame dwell.
  return 86400.0 / airtime.ToSeconds();
}

AdrDecision ComputeAdr(const AdrInput& input) {
  AdrDecision out;
  out.sf = input.current_sf;
  out.tx_power_dbm = input.current_tx_power_dbm;

  // Margin above the demodulation floor at the current SF.
  double headroom = input.best_snr_db - LoraPhy::DemodSnrDb(input.current_sf) - input.margin_db;
  // Each SF step down buys 2.5 dB of required SNR; spend headroom there
  // first (faster + cheaper), then on TX power in 2 dB steps (min 2 dBm).
  int sf_index = static_cast<int>(out.sf);
  while (headroom >= 2.5 && sf_index > static_cast<int>(LoraSf::kSf7)) {
    headroom -= 2.5;
    --sf_index;
    ++out.steps_applied;
  }
  out.sf = static_cast<LoraSf>(sf_index);
  while (headroom >= 2.0 && out.tx_power_dbm > 2.0) {
    headroom -= 2.0;
    out.tx_power_dbm = std::max(2.0, out.tx_power_dbm - 2.0);
    ++out.steps_applied;
  }
  return out;
}

LoraSf StaticSfForMargin(double expected_snr_db, double fade_margin_db) {
  const double worst_case = expected_snr_db - fade_margin_db;
  for (LoraSf sf : {LoraSf::kSf7, LoraSf::kSf8, LoraSf::kSf9, LoraSf::kSf10, LoraSf::kSf11}) {
    if (LoraPhy::DemodSnrDb(sf) <= worst_case) {
      return sf;
    }
  }
  return LoraSf::kSf12;
}

uint32_t LorawanWireBytes(uint32_t app_payload) {
  return app_payload + kLorawanOverheadBytes;
}

}  // namespace centsim
