// Shared-medium contention models.
//
// Two levels of fidelity:
//  - SharedMedium: exact overlap bookkeeping. Transmissions register their
//    (start, end, channel, rx power at the gateway); a frame is lost if a
//    co-channel frame overlaps it, unless it captures (is sufficiently
//    stronger than the interference sum). Used by packet-level tests and
//    small scenarios.
//  - AlohaModel / CsmaModel: closed-form success probability under Poisson
//    offered load. Used by fleet-scale scenarios where simulating every
//    frame of 200k devices over 50 years would be wasteful: each frame's
//    fate is an independent draw against the analytic collision probability.

#ifndef SRC_RADIO_MEDIUM_H_
#define SRC_RADIO_MEDIUM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/radio/link_budget.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace centsim {

// Exact event-window medium for one receiver location.
class SharedMedium {
 public:
  struct Transmission {
    SimTime start;
    SimTime end;
    uint32_t channel;
    double rx_power_dbm;  // At the receiver this medium instance models.
    uint64_t tx_id;
  };

  // Registers a transmission. Call in non-decreasing start order.
  void Register(const Transmission& tx);

  // Decides whether `tx` (already registered) was received, considering
  // every overlapping co-channel transmission registered so far. The frame
  // survives if no overlap, or if its power exceeds the aggregate
  // interference by `capture_margin_db`.
  bool Delivered(const Transmission& tx, double capture_margin_db) const;

  // Drops transmissions ending before `t` (they can no longer interfere).
  void ExpireBefore(SimTime t);

  size_t active_count() const { return active_.size(); }

  // Attaches delivered/lost counters (e.g. medium.delivered{tech},
  // medium.lost{tech}); incremented by Delivered(). Either may be null.
  void BindMetrics(Counter* delivered, Counter* lost) {
    delivered_metric_ = delivered;
    lost_metric_ = lost;
  }

 private:
  std::deque<Transmission> active_;
  Counter* delivered_metric_ = nullptr;
  Counter* lost_metric_ = nullptr;
};

// Pure ALOHA success probability: P = exp(-2 G) for normalized offered
// load G = lambda * airtime (frames arriving per frame-time).
class AlohaModel {
 public:
  // `arrival_rate_hz`: aggregate frame arrivals visible at the gateway.
  static double SuccessProbability(double arrival_rate_hz, SimTime airtime);
};

// Non-persistent CSMA-CA success probability approximation: carrier sensing
// prevents most overlaps; residual collisions come from the vulnerable
// window of one propagation+turnaround slot.
class CsmaModel {
 public:
  // `slot`: the vulnerable window (CCA duration + turnaround), 802.15.4
  // default 128 us + 192 us.
  static double SuccessProbability(double arrival_rate_hz, SimTime airtime,
                                   SimTime slot = SimTime::Micros(320));
  // Expected number of backoff attempts per delivered frame.
  static double ExpectedAttempts(double arrival_rate_hz, SimTime airtime,
                                 SimTime slot = SimTime::Micros(320));
};

}  // namespace centsim

#endif  // SRC_RADIO_MEDIUM_H_
