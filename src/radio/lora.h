// LoRa PHY model: airtime per the Semtech LoRa Modem Designer formula,
// per-spreading-factor sensitivity and SNR demodulation limits, and the
// regulatory duty-cycle / dwell-time constraints LoRaWAN MACs must obey.

#ifndef SRC_RADIO_LORA_H_
#define SRC_RADIO_LORA_H_

#include <cstdint>

#include "src/sim/time.h"

namespace centsim {

enum class LoraSf : uint8_t { kSf7 = 7, kSf8 = 8, kSf9 = 9, kSf10 = 10, kSf11 = 11, kSf12 = 12 };

// LoRaWAN device receive classes. Class A devices open receive windows
// only after their own uplinks (the transmit-only default: effectively no
// downlink). Class B devices track gateway beacons (every
// LoraPhy::kBeaconPeriodS seconds) and open scheduled ping slots — each
// beacon costs receive energy. Class C devices listen continuously: the
// sleep floor becomes the receiver's listen power.
enum class LoraDeviceClass : uint8_t { kClassA = 0, kClassB = 1, kClassC = 2 };

const char* LoraDeviceClassName(LoraDeviceClass cls);

struct LoraConfig {
  LoraSf sf = LoraSf::kSf9;
  double bandwidth_hz = 125e3;
  uint8_t coding_rate = 1;     // CR index: 1 => 4/5 ... 4 => 4/8.
  uint8_t preamble_symbols = 8;
  bool explicit_header = true;
  bool low_data_rate_optimize_auto = true;  // Per spec for SF11/12 @125k.
  bool crc_on = true;
};

class LoraPhy {
 public:
  // Time-on-air for a `payload_bytes` uplink under `cfg` (Semtech AN1200.13).
  static SimTime Airtime(const LoraConfig& cfg, size_t payload_bytes);

  // Receiver sensitivity (dBm) at the SF/BW point (SX1276-class numbers).
  static double SensitivityDbm(LoraSf sf, double bandwidth_hz = 125e3);

  // Minimum demodulation SNR (dB) for each SF (negative: below noise).
  static double DemodSnrDb(LoraSf sf);

  // Packet delivered iff received power >= sensitivity; on top of that,
  // an SNR-margin-based PER ramp models the transition region.
  static double PacketErrorRate(LoraSf sf, double rx_power_dbm, double bandwidth_hz = 125e3);

  // TX energy for one uplink at `tx_power_dbm` (PA efficiency ~ 20%).
  static double TxEnergyJoules(const LoraConfig& cfg, double tx_power_dbm, size_t payload_bytes);

  // The co-channel capture margin: a frame survives interference if it is
  // at least this much stronger than the sum of colliders (dB). Different
  // SFs are quasi-orthogonal and do not collide in this model.
  static constexpr double kCaptureMarginDb = 6.0;

  // Receiver listen power (SX127x-class RX current ~11 mA at 3.3 V): the
  // continuous draw of a class C device, and the per-beacon cost basis for
  // class B.
  static constexpr double kRxListenPowerW = 0.036;

  // Class B beacon cadence (LoRaWAN spec: 128 s) and the receive window a
  // tracking device keeps open per beacon (beacon frame + guard).
  static constexpr double kBeaconPeriodS = 128.0;
  static constexpr double kBeaconRxS = 0.15;
  // Energy one device spends receiving one beacon.
  static constexpr double kBeaconRxEnergyJ = kRxListenPowerW * kBeaconRxS;

  // Channel-activity detection: a CAD scan costs roughly two symbol times
  // of receive current, far below a transmission. The scan detects any
  // co-SF preamble currently on the air.
  static double CadEnergyJoules(const LoraConfig& cfg);
};

// Regional duty-cycle limits (EU868-style band rules; US915 uses dwell time
// which we convert to an equivalent duty bound for planning).
struct DutyCycleRule {
  double max_duty = 0.01;  // 1% in EU 868 main band.

  // Earliest next transmission start after a frame of `airtime` sent at
  // `started`: enforced as a per-frame off period airtime*(1/duty - 1).
  SimTime NextAllowed(SimTime started, SimTime airtime) const {
    return started + airtime + airtime * (1.0 / max_duty - 1.0);
  }
  // Max frames/day for a fixed airtime per frame.
  double MaxFramesPerDay(SimTime airtime) const {
    return 86400.0 * max_duty / airtime.ToSeconds();
  }
};

}  // namespace centsim

#endif  // SRC_RADIO_LORA_H_
