// Unified PHY surface over the per-technology models.
//
// Phy802154 and LoraPhy are static-method families with divergent call
// shapes (802.15.4 PER wants an SNR, LoRa PER wants received power; LoRa
// airtime wants a LoraConfig, 802.15.4 wants nothing). Every caller that
// served both technologies — the network fabric, the device load-profile
// builder, the batch contention resolver — used to branch on RadioTech at
// each call site. PhyModel collapses those branches into one value type:
// construct it once from (tech, LoraConfig) and call the shared
// Airtime/SensitivityDbm/PacketErrorRate/TxEnergyJoules signatures.
//
// PhyModel is a 24-byte value (tech tag + LoraConfig), not a virtual
// hierarchy: it is copied into batch kernels and fleet class specs, and
// the internal tech switch is branch-predictable in column loops where
// every row shares one technology.

#ifndef SRC_RADIO_PHY_MODEL_H_
#define SRC_RADIO_PHY_MODEL_H_

#include <cstddef>

#include "src/net/packet.h"
#include "src/radio/lora.h"
#include "src/sim/time.h"

namespace centsim {

class PhyModel {
 public:
  // 802.15.4 model; the LoraConfig is ignored.
  static PhyModel For802154() { return PhyModel(RadioTech::k802154, LoraConfig{}); }
  // LoRa model at the given radio configuration.
  static PhyModel ForLora(const LoraConfig& cfg) { return PhyModel(RadioTech::kLoRa, cfg); }
  // Generic dispatch for callers holding (tech, lora) pairs.
  static PhyModel For(RadioTech tech, const LoraConfig& cfg) { return PhyModel(tech, cfg); }

  RadioTech tech() const { return tech_; }
  const LoraConfig& lora() const { return lora_; }

  // Time-on-air of a frame carrying `payload_bytes`.
  SimTime Airtime(size_t payload_bytes) const;

  // Receiver sensitivity (dBm): the weakest power the radio demodulates.
  double SensitivityDbm() const;

  // Thermal noise floor (dBm) at this PHY's bandwidth and noise figure.
  double NoiseFloorDbm() const;

  // SNR (dB) seen by the demodulator for a given received power.
  double SnrDb(double rx_power_dbm) const { return rx_power_dbm - NoiseFloorDbm(); }

  // Packet error rate for a frame received at `rx_power_dbm`. Internally
  // converts to SNR for the 802.15.4 waterfall; LoRa uses the power-domain
  // sensitivity ramp. Identical doubles to the per-tech statics.
  double PacketErrorRate(double rx_power_dbm, size_t payload_bytes) const;

  // TX energy for one frame at `tx_power_dbm`.
  double TxEnergyJoules(double tx_power_dbm, size_t payload_bytes) const;

  // Co-channel capture margin (dB): a frame survives interference when it
  // exceeds the aggregate interferer power by this much.
  double CaptureMarginDb() const;

  // Analytic per-attempt success probability under Poisson offered load
  // (`arrival_rate_hz` frames/s visible at the receiver): non-persistent
  // CSMA for 802.15.4, pure ALOHA for LoRa.
  double ContentionSuccessProbability(double arrival_rate_hz, size_t payload_bytes) const;

 private:
  PhyModel(RadioTech tech, const LoraConfig& cfg) : tech_(tech), lora_(cfg) {}

  RadioTech tech_;
  LoraConfig lora_;
};

}  // namespace centsim

#endif  // SRC_RADIO_PHY_MODEL_H_
