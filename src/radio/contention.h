// Fleet-scale radio contention: grid-bucketed neighbor sets and a
// column-batched single-round resolver.
//
// The event-driven fabric resolves one frame at a time against analytic
// offered load; that is the right shape for sparse traffic, but a
// million-transmitter contention study wants the dual: take ONE round of
// simultaneous transmissions as parallel columns (x, y, tx power, channel
// group) and resolve every frame's fate in a few linear passes —
//
//   1. CAD pass (optional): per (cell, group) minimum start-priority;
//      a transmitter whose cell already carries an earlier co-group frame
//      senses the preamble and defers (kCadBusy).
//   2. Hearing pass: each transmitter consults only the gateways in its
//      3x3 grid neighborhood (cell size = radio range, the CoverageCsr
//      trick from src/city/deployment.*), computing received power with
//      the same frozen per-link shadowing the fabric uses.
//   3. Capture pass: per (gateway, group) interference totals, then each
//      heard frame survives iff it clears the aggregate interference by
//      the capture margin (the SharedMedium rule) AND its PER draw.
//
// Every random decision is a counter-based hash of (seed, round, tx, gw),
// so results are independent of iteration order: the grid-bucketed path
// and the brute-force all-pairs oracle produce bit-identical reports,
// which the tests pin at small n.

#ifndef SRC_RADIO_CONTENTION_H_
#define SRC_RADIO_CONTENTION_H_

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/radio/link_budget.h"
#include "src/radio/phy_model.h"

namespace centsim {

// Frozen per-link shadowing identity: the same SplitMix64 mix the
// event-driven fabric has always used, exported so the batch resolver and
// the fabric see the identical channel for a given (seed, tx, gw) triple.
uint64_t RadioLinkSeed(uint64_t sim_seed, uint32_t tx_id, uint32_t gateway_id);

// Uniform spatial hash over gateway positions: cell size = radio range, so
// every gateway within range of a point lies in the 3x3 neighborhood of
// the point's cell. Positions outside the bounding box clamp to the edge
// cells; the caller's exact distance test keeps membership correct.
class GatewayCellGrid {
 public:
  GatewayCellGrid() = default;
  GatewayCellGrid(const std::vector<double>& gw_x, const std::vector<double>& gw_y,
                  double cell_m);

  bool empty() const { return ids_.empty(); }
  double cell_m() const { return cell_m_; }
  uint32_t cells_x() const { return nx_; }
  uint32_t cells_y() const { return ny_; }

  // Flat index of the cell containing (x, y), clamped into the grid.
  uint32_t CellOf(double x, double y) const;

  // Invokes `fn(gateway_id)` for every gateway in the 3x3 neighborhood of
  // (x, y), in ascending cell order (ascending id within a cell).
  template <typename F>
  void ForNeighbors(double x, double y, F&& fn) const {
    if (ids_.empty()) {
      return;
    }
    const int32_t cx = ClampX(x);
    const int32_t cy = ClampY(y);
    for (int32_t dy = -1; dy <= 1; ++dy) {
      const int32_t yy = cy + dy;
      if (yy < 0 || yy >= static_cast<int32_t>(ny_)) {
        continue;
      }
      for (int32_t dx = -1; dx <= 1; ++dx) {
        const int32_t xx = cx + dx;
        if (xx < 0 || xx >= static_cast<int32_t>(nx_)) {
          continue;
        }
        const uint32_t cell = static_cast<uint32_t>(yy) * nx_ + static_cast<uint32_t>(xx);
        for (uint32_t k = offsets_[cell]; k < offsets_[cell + 1]; ++k) {
          fn(ids_[k]);
        }
      }
    }
  }

 private:
  int32_t ClampX(double x) const;
  int32_t ClampY(double y) const;

  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_m_ = 1.0;
  uint32_t nx_ = 0;
  uint32_t ny_ = 0;
  std::vector<uint32_t> offsets_;  // Size nx*ny + 1 (CSR).
  std::vector<uint32_t> ids_;      // Gateway ids, cell-major ascending.
};

struct ContentionParams {
  // One PhyModel per co-channel group; frames in different groups are
  // orthogonal (LoRa SFs) and never interfere. A single entry models one
  // shared channel (802.15.4).
  std::vector<PhyModel> groups;
  PathLossModel::Params path_loss = PathLossModel::Urban915MHz().params();
  double range_m = 2000.0;          // Geometric candidacy radius (= grid cell).
  double rx_antenna_gain_db = 3.0;
  double capture_margin_db = 6.0;
  uint32_t payload_bytes = 12;
  uint64_t seed = 1;
  bool use_grid = true;             // false: brute-force all-pairs (oracle/tests).
  bool cad = false;                 // Channel-activity detection before TX.
};

class ContentionResolver {
 public:
  ContentionResolver(ContentionParams params, std::vector<double> gw_x,
                     std::vector<double> gw_y);

  // One round of simultaneous transmissions as parallel columns. `group`
  // may be null when params.groups has exactly one entry.
  //
  // `index_base` offsets every identity-keyed draw (per-link shadowing,
  // CAD start priority, PER): column i is transmitter `index_base + i`.
  // A shard lane resolving its fleet column range [base, base + count)
  // therefore draws exactly what a whole-fleet resolve would draw for
  // those transmitters — per-frame fates match bit-for-bit wherever the
  // contending sets coincide (e.g. ranges split on grid-cell boundaries).
  struct TxColumns {
    const double* x = nullptr;
    const double* y = nullptr;
    const double* tx_power_dbm = nullptr;
    const uint8_t* group = nullptr;
    size_t count = 0;
    size_t index_base = 0;
  };

  // Resolves every transmitter's fate for round `round`. out is resized to
  // tx.count; per-frame outcomes are kDelivered / kCollision / kPhyLoss /
  // kNoGatewayInRange / kCadBusy with RSSI/SNR/capture detail filled in.
  void Resolve(const TxColumns& tx, uint32_t round, std::vector<DeliveryReport>& out);

  size_t gateway_count() const { return gw_x_.size(); }
  const ContentionParams& params() const { return params_; }

 private:
  ContentionParams params_;
  PathLossModel path_loss_;
  std::vector<double> gw_x_;
  std::vector<double> gw_y_;
  GatewayCellGrid grid_;

  // Scratch reused across Resolve calls (steady-state allocation-free).
  struct Hearing {
    uint32_t tx;
    uint32_t gw;
    double rx_dbm;
  };
  std::vector<Hearing> hearings_;
  std::vector<double> totals_mw_;       // gw-major x group.
  std::vector<uint64_t> cad_min_;       // (cell, group) -> min priority.
  std::vector<uint32_t> cad_cells_;     // Touched (cell, group) keys.
  std::vector<uint8_t> tx_flags_;       // Per-tx: candidacy / interference bits.
};

}  // namespace centsim

#endif  // SRC_RADIO_CONTENTION_H_
