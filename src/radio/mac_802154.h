// IEEE 802.15.4 unslotted CSMA-CA, simulated exactly (per-attempt backoff
// state machine, 802.15.4-2006 §7.5.1.4) rather than through the analytic
// CsmaModel. Used by packet-level tests and the engine ablation bench; the
// fleet-scale scenarios keep the analytic model.

#ifndef SRC_RADIO_MAC_802154_H_
#define SRC_RADIO_MAC_802154_H_

#include <cstdint>
#include <functional>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

struct CsmaParams {
  uint8_t mac_min_be = 3;       // Minimum backoff exponent.
  uint8_t mac_max_be = 5;       // Maximum backoff exponent.
  uint8_t max_csma_backoffs = 4;  // NB limit before channel-access failure.
  // aUnitBackoffPeriod = 20 symbols @ 62.5 ksym/s = 320 us.
  SimTime unit_backoff = SimTime::Micros(320);
  SimTime cca_duration = SimTime::Micros(128);  // 8 symbols.
};

enum class CsmaResult : uint8_t {
  kSuccess,                // Channel clear; frame may be transmitted.
  kChannelAccessFailure,   // NB exceeded macMaxCSMABackoffs.
};

struct CsmaOutcome {
  CsmaResult result = CsmaResult::kSuccess;
  SimTime access_delay;    // Time from request to CCA success/failure.
  uint8_t backoffs = 0;    // Number of backoff rounds performed.
};

// One channel-access attempt. `channel_busy(t)` answers whether the medium
// is busy at absolute time `t` (the caller owns the medium model).
CsmaOutcome RunCsmaCa(const CsmaParams& params, SimTime start, RandomStream& rng,
                      const std::function<bool(SimTime)>& channel_busy);

// Expected access delay under a constant channel-busy probability, in
// closed form — used to cross-check the simulation in tests.
SimTime ExpectedAccessDelay(const CsmaParams& params, double p_busy);

// Probability the attempt ends in kChannelAccessFailure under a constant
// busy probability: p_busy^(max_csma_backoffs + 1).
double ChannelAccessFailureProbability(const CsmaParams& params, double p_busy);

}  // namespace centsim

#endif  // SRC_RADIO_MAC_802154_H_
