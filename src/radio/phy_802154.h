// IEEE 802.15.4 (2.4 GHz O-QPSK, 250 kb/s) PHY model: airtime, sensitivity,
// and packet-error rate as a function of SNR.

#ifndef SRC_RADIO_PHY_802154_H_
#define SRC_RADIO_PHY_802154_H_

#include <cstddef>

#include "src/sim/time.h"

namespace centsim {

class Phy802154 {
 public:
  static constexpr double kBitRate = 250e3;        // b/s.
  static constexpr double kBandwidthHz = 2e6;      // Channel bandwidth.
  static constexpr double kSensitivityDbm = -95.0; // Typical receiver.
  static constexpr double kNoiseFigureDb = 7.0;
  static constexpr size_t kMaxPayload = 127;       // PSDU bytes.
  static constexpr size_t kPhyOverheadBytes = 6;   // Preamble 4 + SFD 1 + len 1.
  static constexpr size_t kMacOverheadBytes = 11;  // Short-addr data frame + FCS.

  // Airtime of a frame carrying `payload_bytes` of MAC payload.
  static SimTime Airtime(size_t payload_bytes);

  // Bit error rate for O-QPSK with DSSS at the given SNR (dB), per the
  // standard's matched-filter approximation.
  static double BitErrorRate(double snr_db);

  // Packet error rate for a frame of `payload_bytes` at the given SNR.
  static double PacketErrorRate(double snr_db, size_t payload_bytes);

  // TX energy at `tx_power_dbm` for one frame, including a fixed wakeup
  // overhead (radio startup + CSMA listen), at a nominal 3 V rail.
  static double TxEnergyJoules(double tx_power_dbm, size_t payload_bytes);
};

}  // namespace centsim

#endif  // SRC_RADIO_PHY_802154_H_
