#include "src/radio/lora.h"

#include <algorithm>
#include <cmath>

#include "src/radio/link_budget.h"

namespace centsim {

SimTime LoraPhy::Airtime(const LoraConfig& cfg, size_t payload_bytes) {
  const int sf = static_cast<int>(cfg.sf);
  const double t_symbol = std::pow(2.0, sf) / cfg.bandwidth_hz;
  const double t_preamble = (cfg.preamble_symbols + 4.25) * t_symbol;

  const bool ldro = cfg.low_data_rate_optimize_auto && sf >= 11 && cfg.bandwidth_hz <= 125e3;
  const int de = ldro ? 1 : 0;
  const int ih = cfg.explicit_header ? 0 : 1;
  const int crc = cfg.crc_on ? 1 : 0;
  const double pl = static_cast<double>(payload_bytes);

  const double num = 8.0 * pl - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
  const double den = 4.0 * (sf - 2 * de);
  const double n_payload = 8.0 + std::max(std::ceil(num / den) * (cfg.coding_rate + 4.0), 0.0);
  const double t_payload = n_payload * t_symbol;
  return SimTime::Seconds(t_preamble + t_payload);
}

double LoraPhy::SensitivityDbm(LoraSf sf, double bandwidth_hz) {
  // S = noise floor (NF ~ 6 dB) + demod SNR.
  return NoiseFloorDbm(bandwidth_hz, 6.0) + DemodSnrDb(sf);
}

double LoraPhy::DemodSnrDb(LoraSf sf) {
  switch (sf) {
    case LoraSf::kSf7:
      return -7.5;
    case LoraSf::kSf8:
      return -10.0;
    case LoraSf::kSf9:
      return -12.5;
    case LoraSf::kSf10:
      return -15.0;
    case LoraSf::kSf11:
      return -17.5;
    case LoraSf::kSf12:
      return -20.0;
  }
  return -7.5;
}

double LoraPhy::PacketErrorRate(LoraSf sf, double rx_power_dbm, double bandwidth_hz) {
  const double sens = SensitivityDbm(sf, bandwidth_hz);
  const double margin = rx_power_dbm - sens;
  // Logistic ramp ~3 dB wide centered at sensitivity: PER 0.5 at margin 0,
  // <1% at +3 dB, >99% at -3 dB. Matches measured SX127x waterfalls.
  return 1.0 / (1.0 + std::exp(1.7 * margin));
}

const char* LoraDeviceClassName(LoraDeviceClass cls) {
  switch (cls) {
    case LoraDeviceClass::kClassA:
      return "A";
    case LoraDeviceClass::kClassB:
      return "B";
    case LoraDeviceClass::kClassC:
      return "C";
  }
  return "?";
}

double LoraPhy::CadEnergyJoules(const LoraConfig& cfg) {
  const double t_symbol = std::pow(2.0, static_cast<int>(cfg.sf)) / cfg.bandwidth_hz;
  return kRxListenPowerW * 2.0 * t_symbol;
}

double LoraPhy::TxEnergyJoules(const LoraConfig& cfg, double tx_power_dbm,
                               size_t payload_bytes) {
  const double pa_eff = 0.20;
  const double tx_w = DbmToMilliwatts(tx_power_dbm) / 1000.0 / pa_eff + 0.012;
  const double airtime_s = Airtime(cfg, payload_bytes).ToSeconds();
  const double wakeup_j = 0.8e-3;
  return tx_w * airtime_s + wakeup_j;
}

}  // namespace centsim
