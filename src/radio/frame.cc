#include "src/radio/frame.h"

namespace centsim {

uint16_t Crc16Ccitt(const uint8_t* data, size_t len) {
  uint16_t crc = 0xFFFF;
  for (size_t i = 0; i < len; ++i) {
    crc ^= static_cast<uint16_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::vector<uint8_t> SensorReading::Serialize() const {
  std::vector<uint8_t> out(12);
  auto put32 = [&](size_t at, uint32_t v) {
    out[at] = static_cast<uint8_t>(v);
    out[at + 1] = static_cast<uint8_t>(v >> 8);
    out[at + 2] = static_cast<uint8_t>(v >> 16);
    out[at + 3] = static_cast<uint8_t>(v >> 24);
  };
  put32(0, device_id);
  put32(4, sequence);
  out[8] = static_cast<uint8_t>(static_cast<uint16_t>(value_centi));
  out[9] = static_cast<uint8_t>(static_cast<uint16_t>(value_centi) >> 8);
  out[10] = sensor_type;
  out[11] = battery_soc;
  return out;
}

std::optional<SensorReading> SensorReading::Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != 12) {
    return std::nullopt;
  }
  auto get32 = [&](size_t at) {
    return static_cast<uint32_t>(bytes[at]) | static_cast<uint32_t>(bytes[at + 1]) << 8 |
           static_cast<uint32_t>(bytes[at + 2]) << 16 | static_cast<uint32_t>(bytes[at + 3]) << 24;
  };
  SensorReading r;
  r.device_id = get32(0);
  r.sequence = get32(4);
  r.value_centi = static_cast<int16_t>(static_cast<uint16_t>(bytes[8]) |
                                       static_cast<uint16_t>(bytes[9]) << 8);
  r.sensor_type = bytes[10];
  r.battery_soc = bytes[11];
  return r;
}

Frame Frame::WithFcs(std::vector<uint8_t> payload) {
  Frame f;
  f.fcs = Crc16Ccitt(payload.data(), payload.size());
  f.payload = std::move(payload);
  return f;
}

bool Frame::Validate() const { return Crc16Ccitt(payload.data(), payload.size()) == fcs; }

void Frame::CorruptBit(size_t bit_index) {
  const size_t byte = bit_index / 8;
  if (byte < payload.size()) {
    payload[byte] ^= static_cast<uint8_t>(1u << (bit_index % 8));
  } else {
    fcs ^= static_cast<uint16_t>(1u << (bit_index % 16));
  }
}

}  // namespace centsim
