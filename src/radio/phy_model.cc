#include "src/radio/phy_model.h"

#include "src/radio/link_budget.h"
#include "src/radio/medium.h"
#include "src/radio/phy_802154.h"

namespace centsim {

SimTime PhyModel::Airtime(size_t payload_bytes) const {
  return tech_ == RadioTech::k802154 ? Phy802154::Airtime(payload_bytes)
                                     : LoraPhy::Airtime(lora_, payload_bytes);
}

double PhyModel::SensitivityDbm() const {
  return tech_ == RadioTech::k802154 ? Phy802154::kSensitivityDbm
                                     : LoraPhy::SensitivityDbm(lora_.sf, lora_.bandwidth_hz);
}

double PhyModel::NoiseFloorDbm() const {
  return tech_ == RadioTech::k802154
             ? centsim::NoiseFloorDbm(Phy802154::kBandwidthHz, Phy802154::kNoiseFigureDb)
             : centsim::NoiseFloorDbm(lora_.bandwidth_hz, 6.0);
}

double PhyModel::PacketErrorRate(double rx_power_dbm, size_t payload_bytes) const {
  if (tech_ == RadioTech::k802154) {
    const double noise =
        centsim::NoiseFloorDbm(Phy802154::kBandwidthHz, Phy802154::kNoiseFigureDb);
    return Phy802154::PacketErrorRate(rx_power_dbm - noise, payload_bytes);
  }
  return LoraPhy::PacketErrorRate(lora_.sf, rx_power_dbm, lora_.bandwidth_hz);
}

double PhyModel::TxEnergyJoules(double tx_power_dbm, size_t payload_bytes) const {
  return tech_ == RadioTech::k802154
             ? Phy802154::TxEnergyJoules(tx_power_dbm, payload_bytes)
             : LoraPhy::TxEnergyJoules(lora_, tx_power_dbm, payload_bytes);
}

double PhyModel::CaptureMarginDb() const {
  // 802.15.4 O-QPSK needs co-channel dominance similar to LoRa's 6 dB;
  // the shared constant keeps the capture path technology-agnostic.
  return LoraPhy::kCaptureMarginDb;
}

double PhyModel::ContentionSuccessProbability(double arrival_rate_hz,
                                              size_t payload_bytes) const {
  const SimTime airtime = Airtime(payload_bytes);
  return tech_ == RadioTech::k802154 ? CsmaModel::SuccessProbability(arrival_rate_hz, airtime)
                                     : AlohaModel::SuccessProbability(arrival_rate_hz, airtime);
}

}  // namespace centsim
