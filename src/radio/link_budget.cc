#include "src/radio/link_budget.h"

#include <cassert>
#include <cmath>

namespace centsim {

double DbmToMilliwatts(double dbm) { return std::pow(10.0, dbm / 10.0); }

double MilliwattsToDbm(double mw) {
  assert(mw > 0);
  return 10.0 * std::log10(mw);
}

double NoiseFloorDbm(double bandwidth_hz, double noise_figure_db) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double PathLossModel::MedianLossDb(double distance_m) const {
  const double d = distance_m < params_.reference_distance_m ? params_.reference_distance_m
                                                             : distance_m;
  return params_.reference_loss_db +
         10.0 * params_.exponent * std::log10(d / params_.reference_distance_m);
}

double PathLossModel::LinkLossDb(double distance_m, uint64_t link_seed) const {
  // Frozen shadowing: hash the link id into a deterministic normal draw.
  RandomStream rng(link_seed);
  const double shadow = rng.Normal(0.0, params_.shadowing_sigma_db);
  return MedianLossDb(distance_m) + shadow;
}

double PathLossModel::RangeForLossDb(double max_loss_db) const {
  const double excess = (max_loss_db - params_.reference_loss_db) / (10.0 * params_.exponent);
  return params_.reference_distance_m * std::pow(10.0, excess);
}

PathLossModel PathLossModel::Urban24GHz() {
  Params p;
  p.reference_loss_db = 40.0;
  p.exponent = 2.9;
  p.shadowing_sigma_db = 6.0;
  return PathLossModel(p);
}

PathLossModel PathLossModel::Urban915MHz() {
  Params p;
  p.reference_loss_db = 31.5;  // Free space @ 1 m, 915 MHz.
  p.exponent = 2.7;
  p.shadowing_sigma_db = 7.0;
  return PathLossModel(p);
}

}  // namespace centsim
