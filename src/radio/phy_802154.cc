#include "src/radio/phy_802154.h"

#include <algorithm>
#include <cmath>

#include "src/radio/link_budget.h"

namespace centsim {

SimTime Phy802154::Airtime(size_t payload_bytes) {
  const size_t total = std::min(payload_bytes, kMaxPayload) + kPhyOverheadBytes +
                       kMacOverheadBytes;
  const double seconds = static_cast<double>(total) * 8.0 / kBitRate;
  return SimTime::Seconds(seconds);
}

double Phy802154::BitErrorRate(double snr_db) {
  // 802.15.4 O-QPSK DSSS BER approximation (IEEE 802.15.4-2006 Annex E):
  // BER = (8/15)(1/16) sum_{k=2}^{16} (-1)^k C(16,k) exp(20 SINR (1/k - 1)).
  const double sinr = std::pow(10.0, snr_db / 10.0);
  double sum = 0.0;
  double binom = 120.0;  // C(16,2).
  for (int k = 2; k <= 16; ++k) {
    if (k > 2) {
      binom = binom * (17 - k) / k;
    }
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    sum += sign * binom * std::exp(20.0 * sinr * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * sum;
  return std::clamp(ber, 0.0, 0.5);
}

double Phy802154::PacketErrorRate(double snr_db, size_t payload_bytes) {
  const size_t bits = (std::min(payload_bytes, kMaxPayload) + kMacOverheadBytes) * 8;
  const double ber = BitErrorRate(snr_db);
  return 1.0 - std::pow(1.0 - ber, static_cast<double>(bits));
}

double Phy802154::TxEnergyJoules(double tx_power_dbm, size_t payload_bytes) {
  // Radio current ~ TX power / PA efficiency plus digital overhead.
  const double pa_eff = 0.25;
  const double tx_w = DbmToMilliwatts(tx_power_dbm) / 1000.0 / pa_eff + 0.010;
  const double airtime_s = Airtime(payload_bytes).ToSeconds();
  const double wakeup_j = 0.4e-3;  // Crystal + PLL startup + CCA.
  return tx_w * airtime_s + wakeup_j;
}

}  // namespace centsim
