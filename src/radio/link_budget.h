// RF link-budget math: dBm/mW conversions, log-distance path loss with
// log-normal shadowing, thermal noise floor, and SNR computation.

#ifndef SRC_RADIO_LINK_BUDGET_H_
#define SRC_RADIO_LINK_BUDGET_H_

#include "src/sim/random.h"

namespace centsim {

double DbmToMilliwatts(double dbm);
double MilliwattsToDbm(double mw);

// Thermal noise floor in dBm for the given bandwidth (Hz) and noise figure
// (dB): -174 dBm/Hz + 10 log10(BW) + NF.
double NoiseFloorDbm(double bandwidth_hz, double noise_figure_db);

// Log-distance path-loss channel. PL(d) = PL(d0) + 10 n log10(d/d0) + X,
// with X ~ Normal(0, sigma) shadowing frozen per link (slow fading).
class PathLossModel {
 public:
  struct Params {
    double reference_loss_db = 40.0;  // PL at d0 for 2.4 GHz free space ~40 dB @ 1 m.
    double reference_distance_m = 1.0;
    double exponent = 2.9;            // Urban street-level.
    double shadowing_sigma_db = 6.0;
  };

  explicit PathLossModel(const Params& params) : params_(params) {}

  // Deterministic median path loss at distance d (meters).
  double MedianLossDb(double distance_m) const;

  // Per-link loss including a frozen shadowing draw for the link identity.
  // Deterministic in (seed, link_id): the same link always sees the same
  // shadowing, as physical obstructions do not re-roll.
  double LinkLossDb(double distance_m, uint64_t link_seed) const;

  // Median range at which loss equals `max_loss_db`.
  double RangeForLossDb(double max_loss_db) const;

  const Params& params() const { return params_; }

  // Presets.
  static PathLossModel Urban24GHz();   // 802.15.4 @ 2.4 GHz street level.
  static PathLossModel Urban915MHz();  // LoRa US915; lower reference loss.

 private:
  Params params_;
};

struct LinkBudget {
  double tx_power_dbm;
  double tx_antenna_gain_db;
  double rx_antenna_gain_db;
  double path_loss_db;

  double ReceivedPowerDbm() const {
    return tx_power_dbm + tx_antenna_gain_db + rx_antenna_gain_db - path_loss_db;
  }
  double SnrDb(double noise_floor_dbm) const { return ReceivedPowerDbm() - noise_floor_dbm; }
};

}  // namespace centsim

#endif  // SRC_RADIO_LINK_BUDGET_H_
