// On-air frame representation and CRC-16/CCITT integrity check.
//
// The simulator mostly reasons about frames abstractly (length, airtime,
// delivery), but the frame codec is real: devices serialize sensor readings
// into the 802.15.4 / LoRaWAN payload byte layout and gateways parse them,
// which keeps payload-size accounting honest (the Helium 24-byte data-credit
// boundary in econ/ depends on it).

#ifndef SRC_RADIO_FRAME_H_
#define SRC_RADIO_FRAME_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace centsim {

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) as used by 802.15.4 FCS.
uint16_t Crc16Ccitt(const uint8_t* data, size_t len);

// Minimal sensor report payload: fits in 12 bytes, leaving headroom under
// the 24-byte Helium data-credit unit.
struct SensorReading {
  uint32_t device_id = 0;
  uint32_t sequence = 0;
  int16_t value_centi = 0;   // Fixed-point reading (e.g. centi-degrees).
  uint8_t sensor_type = 0;
  uint8_t battery_soc = 0;   // 0-255 state of charge indicator.

  // 12-byte little-endian layout.
  std::vector<uint8_t> Serialize() const;
  static std::optional<SensorReading> Parse(const std::vector<uint8_t>& bytes);

  bool operator==(const SensorReading&) const = default;
};

// A framed payload with FCS appended. `Validate` recomputes the CRC.
struct Frame {
  std::vector<uint8_t> payload;
  uint16_t fcs = 0;

  static Frame WithFcs(std::vector<uint8_t> payload);
  bool Validate() const;
  // Total over-the-air payload bytes including the 2-byte FCS.
  size_t WireSize() const { return payload.size() + 2; }
  // Flips a bit (for corruption testing/fault injection).
  void CorruptBit(size_t bit_index);
};

}  // namespace centsim

#endif  // SRC_RADIO_FRAME_H_
