#include "src/radio/mac_802154.h"

#include <cmath>

namespace centsim {

CsmaOutcome RunCsmaCa(const CsmaParams& params, SimTime start, RandomStream& rng,
                      const std::function<bool(SimTime)>& channel_busy) {
  CsmaOutcome out;
  uint8_t nb = 0;
  uint8_t be = params.mac_min_be;
  SimTime now = start;
  while (true) {
    // Random backoff of [0, 2^BE - 1] unit periods.
    const uint64_t slots = rng.NextBelow(1ULL << be);
    now += params.unit_backoff * static_cast<double>(slots);
    // Clear-channel assessment.
    now += params.cca_duration;
    ++out.backoffs;
    if (!channel_busy(now)) {
      out.result = CsmaResult::kSuccess;
      out.access_delay = now - start;
      return out;
    }
    ++nb;
    if (nb > params.max_csma_backoffs) {
      out.result = CsmaResult::kChannelAccessFailure;
      out.access_delay = now - start;
      return out;
    }
    be = static_cast<uint8_t>(std::min<int>(be + 1, params.mac_max_be));
  }
}

SimTime ExpectedAccessDelay(const CsmaParams& params, double p_busy) {
  // Sum over rounds r (0-indexed): probability of reaching round r is
  // p_busy^r; each round costs mean backoff (2^BE - 1)/2 units + CCA.
  double total_s = 0.0;
  double reach = 1.0;
  int be = params.mac_min_be;
  for (int r = 0; r <= params.max_csma_backoffs; ++r) {
    const double mean_slots = (std::pow(2.0, be) - 1.0) / 2.0;
    const double round_s =
        mean_slots * params.unit_backoff.ToSeconds() + params.cca_duration.ToSeconds();
    total_s += reach * round_s;
    reach *= p_busy;
    be = std::min<int>(be + 1, params.mac_max_be);
  }
  return SimTime::Seconds(total_s);
}

double ChannelAccessFailureProbability(const CsmaParams& params, double p_busy) {
  return std::pow(p_busy, static_cast<double>(params.max_csma_backoffs) + 1.0);
}

}  // namespace centsim
