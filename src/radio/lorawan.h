// LoRaWAN network-layer pieces: regional channel plans, the ADR
// (adaptive-data-rate) assignment a network server would compute from a
// device's measured link margin, and the class-A uplink frame header.
//
// Transmit-only devices (paper §4.1) cannot receive ADR downlinks, so they
// must be provisioned with a *static* data rate at deployment; the helper
// `StaticSfForMargin` captures that planning decision, while `AdrDecision`
// models the network-managed alternative used by serviceable devices.

#ifndef SRC_RADIO_LORAWAN_H_
#define SRC_RADIO_LORAWAN_H_

#include <cstdint>
#include <vector>

#include "src/radio/lora.h"

namespace centsim {

enum class LorawanRegion : uint8_t {
  kEu868,
  kUs915,
};

struct ChannelPlan {
  LorawanRegion region;
  std::vector<double> uplink_channels_hz;
  double max_eirp_dbm;
  // EU: per-band duty cycle; US: per-channel dwell limit.
  double duty_cycle_limit;          // 0 = not duty limited.
  SimTime dwell_time_limit;         // 0 = not dwell limited.

  static ChannelPlan Eu868();
  static ChannelPlan Us915();

  // Uplinks per day allowed by regulation for the given airtime, taking
  // channel count into account (devices hop across channels).
  double MaxUplinksPerDay(SimTime airtime) const;
};

// ADR as the LoRaWAN network server computes it: from the best SNR among
// recent uplinks, step the data rate down (toward SF7) while the margin
// allows, and trim TX power with what remains.
struct AdrInput {
  LoraSf current_sf = LoraSf::kSf12;
  double current_tx_power_dbm = 14.0;
  double best_snr_db = 0.0;       // Best SNR over the ADR window.
  double margin_db = 10.0;        // Installation margin (default per spec).
};

struct AdrDecision {
  LoraSf sf;
  double tx_power_dbm;
  int steps_applied = 0;
};

AdrDecision ComputeAdr(const AdrInput& input);

// Static SF choice for a transmit-only device: the slowest-airtime SF whose
// demodulation floor clears the expected worst-case margin. More margin =>
// higher SF => more airtime and energy per frame: the price of never being
// able to adapt.
LoraSf StaticSfForMargin(double expected_snr_db, double fade_margin_db);

// Class-A uplink MAC header layout (for payload accounting): MHDR(1) +
// DevAddr(4) + FCtrl(1) + FCnt(2) + FPort(1) + MIC(4) = 13 bytes around
// the application payload.
inline constexpr uint32_t kLorawanOverheadBytes = 13;

// Full on-air application payload incl. LoRaWAN overhead.
uint32_t LorawanWireBytes(uint32_t app_payload);

}  // namespace centsim

#endif  // SRC_RADIO_LORAWAN_H_
