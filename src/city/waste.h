// Smart waste-collection scenario (paper §2: Seoul "reduced overflow of
// trash bins by 66% and cost of waste collection by 83%").
//
// Bins fill stochastically; the baseline policy empties every bin on a
// fixed route schedule, while the sensor-driven policy dispatches to bins
// that report crossing a fill threshold. Overflow-hours and truck-visit
// costs are compared.

#ifndef SRC_CITY_WASTE_H_
#define SRC_CITY_WASTE_H_

#include <cstdint>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

struct WasteScenarioParams {
  uint32_t bin_count = 500;
  double mean_fill_days = 9.0;       // Median days for a bin to fill.
  double fill_dispersion = 1.0;      // Lognormal sigma of per-bin rates.
  double horizon_days = 365.0;
  // Baseline: every bin visited on this fixed cadence (dense urban route).
  double route_period_days = 1.5;
  // Smart policy: bins report at this threshold; pickup dispatched within
  // `dispatch_days` of the report.
  double report_threshold = 0.8;
  double dispatch_days = 0.3;
  double cost_per_visit_usd = 4.5;   // Marginal truck stop cost.
};

struct WastePolicyResult {
  uint64_t truck_visits = 0;
  uint64_t overflow_events = 0;
  double overflow_bin_days = 0.0;  // Integrated bin-days spent overflowing.
  double cost_usd = 0.0;
};

struct WasteComparison {
  WastePolicyResult scheduled;
  WastePolicyResult sensor_driven;

  double OverflowReduction() const;  // 0.66 target shape.
  double CostReduction() const;      // 0.83 target shape.
};

// Deterministic given (params, rng): simulates both policies over the same
// per-bin fill-rate population.
WasteComparison SimulateWasteScenario(const WasteScenarioParams& params, RandomStream rng);

}  // namespace centsim

#endif  // SRC_CITY_WASTE_H_
