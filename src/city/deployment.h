// Geometric deployment planning: place sensor sites over a city area,
// place gateways to cover them, and score coverage against a radio range.

#ifndef SRC_CITY_DEPLOYMENT_H_
#define SRC_CITY_DEPLOYMENT_H_

#include <cstdint>
#include <vector>

#include "src/city/city_model.h"
#include "src/sim/random.h"

namespace centsim {

struct Site {
  double x_m = 0.0;
  double y_m = 0.0;
  uint32_t zone = 0;  // Geographic batch zone (see mgmt/batch_project.h).
};

double DistanceM(const Site& a, const Site& b);

class DeploymentPlan {
 public:
  struct Params {
    uint32_t site_count = 1000;
    double area_km2 = 50.0;
    uint32_t zone_grid = 4;  // Zones per side: zone count = grid^2.
  };

  // Scatters `site_count` sites uniformly over a square of the given area,
  // assigning each to a zone on a `zone_grid` x `zone_grid` partition.
  DeploymentPlan(const Params& params, RandomStream rng);

  const std::vector<Site>& sites() const { return sites_; }
  double side_m() const { return side_m_; }
  uint32_t zone_count() const { return params_.zone_grid * params_.zone_grid; }
  std::vector<uint32_t> SitesPerZone() const;

  // Gateways on a hexagonal-ish grid with spacing `range_m * sqrt(2)` so
  // neighboring circles overlap. Returns gateway positions.
  std::vector<Site> PlanGatewayGrid(double range_m) const;

  struct CoverageReport {
    uint32_t covered = 0;
    uint32_t uncovered = 0;
    double mean_best_distance_m = 0.0;
    double CoveredFraction() const {
      const uint32_t total = covered + uncovered;
      return total > 0 ? static_cast<double>(covered) / total : 0.0;
    }
  };
  // Fraction of sites within `range_m` of at least one gateway.
  CoverageReport ScoreCoverage(const std::vector<Site>& gateways, double range_m) const;

 private:
  Params params_;
  double side_m_;
  std::vector<Site> sites_;
};

// Compressed sparse coverage map: for each gateway, the ascending list of
// site indices within radio range.
struct CoverageCsr {
  std::vector<uint32_t> offsets;   // Size gateways + 1.
  std::vector<uint32_t> site_ids;  // Gateway g covers [offsets[g], offsets[g+1]).

  uint32_t begin(uint32_t g) const { return offsets[g]; }
  uint32_t end(uint32_t g) const { return offsets[g + 1]; }
};

// Builds the coverage map with a uniform spatial grid (cell size = range),
// so cost is O(sites + gateways * sites-per-cell) instead of the quadratic
// all-pairs scan. Membership is identical to the brute-force distance test,
// and each gateway's list is sorted ascending, matching the order the
// all-pairs loop would have produced.
CoverageCsr BuildCoverageCsr(const std::vector<Site>& sites, const std::vector<Site>& gateways,
                             double range_m);

}  // namespace centsim

#endif  // SRC_CITY_DEPLOYMENT_H_
