#include "src/city/air_quality.h"

#include <algorithm>
#include <cmath>

#include "src/sim/stats.h"

namespace centsim {

PollutionField::PollutionField(const Params& params, RandomStream rng) : params_(params) {
  side_m_ = std::sqrt(params.area_km2) * 1000.0;
  sources_.reserve(params.source_count);
  for (uint32_t i = 0; i < params.source_count; ++i) {
    Source s;
    s.x_m = rng.Uniform(0.0, side_m_);
    s.y_m = rng.Uniform(0.0, side_m_);
    s.peak = rng.Uniform(params.source_peak_min, params.source_peak_max);
    s.sigma_m = rng.Uniform(params.plume_sigma_min_m, params.plume_sigma_max_m);
    sources_.push_back(s);
  }
}

double PollutionField::ConcentrationAt(double x_m, double y_m) const {
  double total = params_.background;
  for (const auto& s : sources_) {
    const double dx = x_m - s.x_m;
    const double dy = y_m - s.y_m;
    const double d2 = dx * dx + dy * dy;
    total += s.peak * std::exp(-d2 / (2.0 * s.sigma_m * s.sigma_m));
  }
  return total;
}

DensityResult EvaluateSensorDensity(const PollutionField& field, uint32_t sensor_count,
                                    RandomStream rng) {
  DensityResult result;
  result.sensor_count = sensor_count;
  const double side = field.side_m();
  const double area_km2 = side * side / 1e6;
  result.sensors_per_km2 = sensor_count / area_km2;
  if (sensor_count == 0) {
    return result;
  }

  struct Probe {
    double x;
    double y;
    double value;
  };
  std::vector<Probe> probes;
  probes.reserve(sensor_count);
  for (uint32_t i = 0; i < sensor_count; ++i) {
    Probe p;
    p.x = rng.Uniform(0.0, side);
    p.y = rng.Uniform(0.0, side);
    p.value = field.ConcentrationAt(p.x, p.y);
    probes.push_back(p);
  }

  // Inverse-distance-weighted reconstruction scored on a 50x50 grid.
  const int kGrid = 50;
  SampleSet errors;
  uint32_t hotspots = 0;
  uint32_t hotspots_found = 0;
  const double background = field.ConcentrationAt(-1e7, -1e7);  // Far away.
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const double x = (gx + 0.5) * side / kGrid;
      const double y = (gy + 0.5) * side / kGrid;
      const double truth = field.ConcentrationAt(x, y);

      double num = 0.0;
      double den = 0.0;
      bool exact = false;
      for (const auto& p : probes) {
        const double dx = x - p.x;
        const double dy = y - p.y;
        const double d2 = dx * dx + dy * dy;
        if (d2 < 1.0) {
          num = p.value;
          den = 1.0;
          exact = true;
          break;
        }
        const double w = 1.0 / d2;  // IDW power 2.
        num += w * p.value;
        den += w;
      }
      const double estimate = exact ? num : num / den;
      errors.Add(std::abs(estimate - truth));
      if (truth > 2.0 * background) {
        ++hotspots;
        if (estimate > 2.0 * background) {
          ++hotspots_found;
        }
      }
    }
  }
  result.mean_abs_error = errors.Mean();
  result.p95_abs_error = errors.Quantile(0.95);
  result.hotspot_recall = hotspots > 0 ? static_cast<double>(hotspots_found) / hotspots : 1.0;
  return result;
}

}  // namespace centsim
