// Air-quality sensing-density scenario (paper §2): "Air pollution is
// highly localized, and requires measurement at city-block granularity."
//
// A synthetic pollution field over a district is built from localized
// source plumes (roads, industry). Sensor networks of varying density
// sample the field; the interpolated map's error versus ground truth shows
// the density the application actually needs — the quantitative backing
// for "the success of an IoT application is tied to the scale of the
// network".

#ifndef SRC_CITY_AIR_QUALITY_H_
#define SRC_CITY_AIR_QUALITY_H_

#include <cstdint>
#include <vector>

#include "src/city/deployment.h"
#include "src/sim/random.h"

namespace centsim {

// A static pollution surface: sum of Gaussian plumes plus a regional
// background. Length scale of the plumes is ~1-2 city blocks.
class PollutionField {
 public:
  struct Params {
    double area_km2 = 25.0;
    uint32_t source_count = 60;
    double background = 8.0;          // ug/m^3.
    double source_peak_min = 10.0;
    double source_peak_max = 60.0;
    double plume_sigma_min_m = 80.0;  // ~one block.
    double plume_sigma_max_m = 250.0;
  };

  PollutionField(const Params& params, RandomStream rng);

  double ConcentrationAt(double x_m, double y_m) const;
  double side_m() const { return side_m_; }

 private:
  struct Source {
    double x_m;
    double y_m;
    double peak;
    double sigma_m;
  };
  Params params_;
  double side_m_;
  std::vector<Source> sources_;
};

struct DensityResult {
  uint32_t sensor_count = 0;
  double sensors_per_km2 = 0.0;
  double mean_abs_error = 0.0;    // IDW-interpolated map vs truth.
  double p95_abs_error = 0.0;
  double hotspot_recall = 0.0;    // Fraction of >2x-background cells found.
};

// Samples the field with `sensor_count` uniformly placed sensors,
// reconstructs by inverse-distance weighting, scores on a grid.
DensityResult EvaluateSensorDensity(const PollutionField& field, uint32_t sensor_count,
                                    RandomStream rng);

}  // namespace centsim

#endif  // SRC_CITY_AIR_QUALITY_H_
