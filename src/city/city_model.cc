#include "src/city/city_model.h"

namespace centsim {

CityAssets LosAngelesAssets() {
  CityAssets c;
  c.name = "Los Angeles";
  c.utility_poles = 320000;
  c.intersections = 61315;
  c.streetlights = 210000;
  c.area_km2 = 1302.0;
  return c;
}

CityAssets SanDiegoAssets() {
  CityAssets c;
  c.name = "San Diego";
  c.utility_poles = 8000;   // Smart-LED poles in the program.
  c.intersections = 1600;
  c.streetlights = 3300;    // Sensor-equipped nodes.
  c.area_km2 = 964.0;
  return c;
}

CityAssets SeoulDistrictAssets() {
  CityAssets c;
  c.name = "Seoul (district)";
  c.utility_poles = 4000;
  c.intersections = 900;
  c.streetlights = 6000;
  c.area_km2 = 47.0;
  return c;
}

CityAssets ChanuteAssets() {
  CityAssets c;
  c.name = "Chanute, KS";
  c.utility_poles = 2600;
  c.intersections = 180;
  c.streetlights = 1400;
  c.area_km2 = 20.0;
  return c;
}

}  // namespace centsim
