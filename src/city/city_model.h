// Municipal asset inventories and city presets (paper §1 and §2).

#ifndef SRC_CITY_CITY_MODEL_H_
#define SRC_CITY_CITY_MODEL_H_

#include <cstdint>
#include <string>

namespace centsim {

struct CityAssets {
  std::string name;
  uint64_t utility_poles = 0;
  uint64_t intersections = 0;
  uint64_t streetlights = 0;
  double area_km2 = 0.0;

  uint64_t TotalSensorSites() const { return utility_poles + intersections + streetlights; }
};

// Los Angeles (paper §1): 320,000 utility poles, 61,315 intersections,
// 210,000 streetlights.
CityAssets LosAngelesAssets();

// San Diego (paper §2): 8,000 smart LEDs with 3,300 sensor nodes. Pole and
// intersection counts scaled from city size for deployment geometry.
CityAssets SanDiegoAssets();

// Seoul (paper §2 waste case study): modeled district inventory.
CityAssets SeoulDistrictAssets();

// Chanute, KS (paper §3.3.3): a 9,000-resident city running its own
// fiber + WiMAX with 2 staff.
CityAssets ChanuteAssets();

}  // namespace centsim

#endif  // SRC_CITY_CITY_MODEL_H_
