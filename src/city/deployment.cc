#include "src/city/deployment.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace centsim {

double DistanceM(const Site& a, const Site& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

DeploymentPlan::DeploymentPlan(const Params& params, RandomStream rng) : params_(params) {
  side_m_ = std::sqrt(params.area_km2) * 1000.0;
  sites_.reserve(params.site_count);
  for (uint32_t i = 0; i < params.site_count; ++i) {
    Site s;
    s.x_m = rng.Uniform(0.0, side_m_);
    s.y_m = rng.Uniform(0.0, side_m_);
    const uint32_t zx = std::min<uint32_t>(
        params.zone_grid - 1, static_cast<uint32_t>(s.x_m / side_m_ * params.zone_grid));
    const uint32_t zy = std::min<uint32_t>(
        params.zone_grid - 1, static_cast<uint32_t>(s.y_m / side_m_ * params.zone_grid));
    s.zone = zy * params.zone_grid + zx;
    sites_.push_back(s);
  }
}

std::vector<uint32_t> DeploymentPlan::SitesPerZone() const {
  std::vector<uint32_t> counts(zone_count(), 0);
  for (const auto& s : sites_) {
    ++counts[s.zone];
  }
  return counts;
}

std::vector<Site> DeploymentPlan::PlanGatewayGrid(double range_m) const {
  std::vector<Site> gws;
  const double spacing = range_m * std::sqrt(2.0);
  const int per_side = std::max(1, static_cast<int>(std::ceil(side_m_ / spacing)));
  for (int gy = 0; gy < per_side; ++gy) {
    for (int gx = 0; gx < per_side; ++gx) {
      Site g;
      g.x_m = (gx + 0.5) * side_m_ / per_side;
      g.y_m = (gy + 0.5) * side_m_ / per_side;
      gws.push_back(g);
    }
  }
  return gws;
}

DeploymentPlan::CoverageReport DeploymentPlan::ScoreCoverage(const std::vector<Site>& gateways,
                                                             double range_m) const {
  CoverageReport rep;
  double dist_sum = 0.0;
  for (const auto& s : sites_) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& g : gateways) {
      best = std::min(best, DistanceM(s, g));
    }
    dist_sum += best;
    if (best <= range_m) {
      ++rep.covered;
    } else {
      ++rep.uncovered;
    }
  }
  rep.mean_best_distance_m = sites_.empty() ? 0.0 : dist_sum / sites_.size();
  return rep;
}

}  // namespace centsim
