#include "src/city/deployment.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace centsim {

double DistanceM(const Site& a, const Site& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

DeploymentPlan::DeploymentPlan(const Params& params, RandomStream rng) : params_(params) {
  side_m_ = std::sqrt(params.area_km2) * 1000.0;
  sites_.reserve(params.site_count);
  for (uint32_t i = 0; i < params.site_count; ++i) {
    Site s;
    s.x_m = rng.Uniform(0.0, side_m_);
    s.y_m = rng.Uniform(0.0, side_m_);
    const uint32_t zx = std::min<uint32_t>(
        params.zone_grid - 1, static_cast<uint32_t>(s.x_m / side_m_ * params.zone_grid));
    const uint32_t zy = std::min<uint32_t>(
        params.zone_grid - 1, static_cast<uint32_t>(s.y_m / side_m_ * params.zone_grid));
    s.zone = zy * params.zone_grid + zx;
    sites_.push_back(s);
  }
}

std::vector<uint32_t> DeploymentPlan::SitesPerZone() const {
  std::vector<uint32_t> counts(zone_count(), 0);
  for (const auto& s : sites_) {
    ++counts[s.zone];
  }
  return counts;
}

std::vector<Site> DeploymentPlan::PlanGatewayGrid(double range_m) const {
  std::vector<Site> gws;
  const double spacing = range_m * std::sqrt(2.0);
  const int per_side = std::max(1, static_cast<int>(std::ceil(side_m_ / spacing)));
  for (int gy = 0; gy < per_side; ++gy) {
    for (int gx = 0; gx < per_side; ++gx) {
      Site g;
      g.x_m = (gx + 0.5) * side_m_ / per_side;
      g.y_m = (gy + 0.5) * side_m_ / per_side;
      gws.push_back(g);
    }
  }
  return gws;
}

CoverageCsr BuildCoverageCsr(const std::vector<Site>& sites, const std::vector<Site>& gateways,
                             double range_m) {
  CoverageCsr csr;
  csr.offsets.assign(gateways.size() + 1, 0);
  if (sites.empty() || gateways.empty() || range_m <= 0.0) {
    return csr;
  }

  // Bounding box of the sites; cells are range-sized so any site within
  // range of a gateway lies in one of the 3x3 cells around it.
  double min_x = sites[0].x_m, max_x = sites[0].x_m;
  double min_y = sites[0].y_m, max_y = sites[0].y_m;
  for (const Site& s : sites) {
    min_x = std::min(min_x, s.x_m);
    max_x = std::max(max_x, s.x_m);
    min_y = std::min(min_y, s.y_m);
    max_y = std::max(max_y, s.y_m);
  }
  const double cell = range_m;
  const uint32_t nx =
      std::max<uint32_t>(1, static_cast<uint32_t>((max_x - min_x) / cell) + 1);
  const uint32_t ny =
      std::max<uint32_t>(1, static_cast<uint32_t>((max_y - min_y) / cell) + 1);
  auto cell_x = [&](double x) {
    const double fx = (x - min_x) / cell;
    if (fx <= 0.0) return 0u;
    const uint32_t cx = static_cast<uint32_t>(fx);
    return std::min(cx, nx - 1);
  };
  auto cell_y = [&](double y) {
    const double fy = (y - min_y) / cell;
    if (fy <= 0.0) return 0u;
    const uint32_t cy = static_cast<uint32_t>(fy);
    return std::min(cy, ny - 1);
  };

  // Counting-sort the sites into a cell-indexed CSR.
  std::vector<uint32_t> cell_offsets(static_cast<size_t>(nx) * ny + 1, 0);
  auto cell_of = [&](const Site& s) { return cell_y(s.y_m) * nx + cell_x(s.x_m); };
  for (const Site& s : sites) {
    ++cell_offsets[cell_of(s) + 1];
  }
  for (size_t c = 1; c < cell_offsets.size(); ++c) {
    cell_offsets[c] += cell_offsets[c - 1];
  }
  std::vector<uint32_t> cell_sites(sites.size());
  {
    std::vector<uint32_t> cursor(cell_offsets.begin(), cell_offsets.end() - 1);
    for (uint32_t i = 0; i < sites.size(); ++i) {
      cell_sites[cursor[cell_of(sites[i])]++] = i;
    }
  }

  // Pass 1: count matches per gateway; pass 2: fill, then sort each list
  // ascending (the counting sort above groups by cell, not by index).
  std::vector<std::vector<uint32_t>> per_gateway(gateways.size());
  for (uint32_t g = 0; g < gateways.size(); ++g) {
    const Site& gw = gateways[g];
    const uint32_t x0 = cell_x(gw.x_m - range_m);
    const uint32_t x1 = cell_x(gw.x_m + range_m);
    const uint32_t y0 = cell_y(gw.y_m - range_m);
    const uint32_t y1 = cell_y(gw.y_m + range_m);
    auto& covered = per_gateway[g];
    for (uint32_t cy = y0; cy <= y1; ++cy) {
      for (uint32_t cx = x0; cx <= x1; ++cx) {
        const size_t c = static_cast<size_t>(cy) * nx + cx;
        for (uint32_t k = cell_offsets[c]; k < cell_offsets[c + 1]; ++k) {
          const uint32_t d = cell_sites[k];
          if (DistanceM(sites[d], gw) <= range_m) {
            covered.push_back(d);
          }
        }
      }
    }
    std::sort(covered.begin(), covered.end());
  }

  for (uint32_t g = 0; g < gateways.size(); ++g) {
    csr.offsets[g + 1] = csr.offsets[g] + static_cast<uint32_t>(per_gateway[g].size());
  }
  csr.site_ids.resize(csr.offsets.back());
  for (uint32_t g = 0; g < gateways.size(); ++g) {
    std::copy(per_gateway[g].begin(), per_gateway[g].end(),
              csr.site_ids.begin() + csr.offsets[g]);
  }
  return csr;
}

DeploymentPlan::CoverageReport DeploymentPlan::ScoreCoverage(const std::vector<Site>& gateways,
                                                             double range_m) const {
  CoverageReport rep;
  double dist_sum = 0.0;
  for (const auto& s : sites_) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& g : gateways) {
      best = std::min(best, DistanceM(s, g));
    }
    dist_sum += best;
    if (best <= range_m) {
      ++rep.covered;
    } else {
      ++rep.uncovered;
    }
  }
  rep.mean_best_distance_m = sites_.empty() ? 0.0 : dist_sum / sites_.size();
  return rep;
}

}  // namespace centsim
