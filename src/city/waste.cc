#include "src/city/waste.h"

#include <algorithm>
#include <cmath>

namespace centsim {
namespace {

// Per-cycle fill-time jitter around the bin's base rate.
constexpr double kCycleSigma = 0.25;

}  // namespace

double WasteComparison::OverflowReduction() const {
  if (scheduled.overflow_bin_days <= 0) {
    return 0.0;
  }
  return 1.0 - sensor_driven.overflow_bin_days / scheduled.overflow_bin_days;
}

double WasteComparison::CostReduction() const {
  if (scheduled.cost_usd <= 0) {
    return 0.0;
  }
  return 1.0 - sensor_driven.cost_usd / scheduled.cost_usd;
}

WasteComparison SimulateWasteScenario(const WasteScenarioParams& params, RandomStream rng) {
  WasteComparison cmp;

  for (uint32_t bin = 0; bin < params.bin_count; ++bin) {
    // Heterogeneous population: lognormal fill times around the median.
    const double base_fill_days = std::clamp(
        params.mean_fill_days * std::exp(rng.Normal(0.0, params.fill_dispersion)), 0.25, 90.0);

    // --- Baseline: fixed route, every bin, every route_period_days. ---
    RandomStream sched_rng = rng.Derive(bin * 2 + 1);
    {
      double t = 0.0;
      while (t < params.horizon_days) {
        const double fill =
            base_fill_days * std::exp(sched_rng.Normal(0.0, kCycleSigma));
        ++cmp.scheduled.truck_visits;
        if (fill < params.route_period_days) {
          ++cmp.scheduled.overflow_events;
          cmp.scheduled.overflow_bin_days += params.route_period_days - fill;
        }
        t += params.route_period_days;
      }
    }

    // --- Sensor-driven: pickup dispatched at the report threshold. ---
    RandomStream smart_rng = rng.Derive(bin * 2 + 2);
    {
      double t = 0.0;
      while (t < params.horizon_days) {
        const double fill = base_fill_days * std::exp(smart_rng.Normal(0.0, kCycleSigma));
        const double to_threshold = params.report_threshold * fill;
        const double threshold_to_full = (1.0 - params.report_threshold) * fill;
        ++cmp.sensor_driven.truck_visits;
        if (threshold_to_full < params.dispatch_days) {
          ++cmp.sensor_driven.overflow_events;
          cmp.sensor_driven.overflow_bin_days += params.dispatch_days - threshold_to_full;
        }
        t += to_threshold + params.dispatch_days;
      }
    }
  }

  cmp.scheduled.cost_usd = cmp.scheduled.truck_visits * params.cost_per_visit_usd;
  cmp.sensor_driven.cost_usd = cmp.sensor_driven.truck_visits * params.cost_per_visit_usd;
  return cmp;
}

}  // namespace centsim
