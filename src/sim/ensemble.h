// Parallel deterministic ensemble engine.
//
// EnsembleRunner<Experiment> executes N replicas of any experiment that
// follows the unified Experiment API (src/core/experiment_api.h): a
// `Config` with `seed`/`horizon`/`Validate()`, a `Report`, a static
// `Run(const Config&)`, and a static `Name()`. Replicas are spread across
// a fixed-size ThreadPool; replica i always runs with seed
// DeriveReplicaSeed(base.seed, i), writes its report into slot i, and all
// cross-replica folding (metrics merge, manifest aggregation) happens on
// the calling thread in replica-index order after the pool drains. The
// result is therefore bit-identical for a given base seed regardless of
// worker count or completion order.
//
// Layering note: this header lives in src/sim and is deliberately
// duck-typed (requires-expressions, not the ExperimentType concept) so the
// engine does not depend on src/core; the concept in experiment_api.h is
// the authoritative statement of the API and is static_asserted against
// all three shipped experiments.

#ifndef SRC_SIM_ENSEMBLE_H_
#define SRC_SIM_ENSEMBLE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/thread_pool.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {

// Derives the seed for replica `replica_index` from the ensemble's base
// seed via two chained SplitMix64 steps (whiten the base seed, then mix in
// the index). Unlike the former `base_seed + i`, nearby indices land in
// unrelated regions of the seed space, so per-entity streams derived from
// neighbouring replicas never correlate.
uint64_t DeriveReplicaSeed(uint64_t base_seed, uint32_t replica_index);

// Prints one line per diagnostic to stderr and aborts when the list is
// non-empty; no-op otherwise. The shared fail-fast guard every Run*
// entrypoint routes its Config::Validate() result through.
void CheckConfigOrDie(std::string_view experiment, const std::vector<std::string>& diagnostics);

struct EnsembleOptions {
  uint32_t replicas = 1;
  // Worker threads; 0 means ThreadPool::DefaultThreadCount(). Capped at
  // `replicas` — extra workers would only idle.
  uint32_t threads = 1;
  // Attach a fresh MetricsRegistry to every replica (experiments whose
  // Config has a `metrics` hook only) and merge them in index order.
  bool collect_metrics = false;
  // When non-empty, write ensemble_manifest.json (and metrics.jsonl when
  // collecting) into this directory.
  std::string artifacts_dir;
  std::string run_name = "ensemble";
};

template <typename Experiment>
class EnsembleRunner {
 public:
  using Config = typename Experiment::Config;
  using Report = typename Experiment::Report;

  struct Replica {
    uint32_t index = 0;
    uint64_t seed = 0;
    double wall_seconds = 0.0;
    uint64_t events_executed = 0;  // 0 when the report does not track it.
    Report report;
  };

  struct Result {
    std::string experiment;
    uint64_t base_seed = 0;
    uint32_t threads_used = 0;
    double wall_seconds = 0.0;
    std::vector<Replica> replicas;  // Replica-index order, not finish order.
    // Merged per-replica registries (null unless collect_metrics was set
    // and the experiment's Config carries a `metrics` hook).
    std::unique_ptr<MetricsRegistry> metrics;
    EnsembleManifest manifest;
    std::string manifest_path;  // Set when artifacts_dir was written.
    std::string metrics_path;
  };

  static Result Run(Config base, const EnsembleOptions& options) {
    static_assert(
        requires(const Config& c) {
          { Experiment::Name() };
          { Experiment::Run(c) };
          { c.Validate() };
        },
        "Experiment must follow the unified Experiment API "
        "(src/core/experiment_api.h): Name(), Run(const Config&), "
        "Config::Validate()");
    CheckConfigOrDie(Experiment::Name(), base.Validate());

    constexpr bool kHasMetricsHook = requires(Config& c, MetricsRegistry* m) { c.metrics = m; };

    Result result;
    result.experiment = Experiment::Name();
    result.base_seed = base.seed;
    const uint32_t replicas = std::max(1u, options.replicas);
    uint32_t threads =
        options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads;
    threads = std::min(threads, replicas);
    result.threads_used = threads;

    // Per-replica registries are allocated up front so workers only ever
    // touch their own slot.
    std::vector<std::unique_ptr<MetricsRegistry>> registries;
    if (options.collect_metrics && kHasMetricsHook) {
      registries.resize(replicas);
      for (auto& registry : registries) {
        registry = std::make_unique<MetricsRegistry>();
      }
    }

    result.replicas.resize(replicas);
    const auto ensemble_start = std::chrono::steady_clock::now();
    {
      ThreadPool pool(threads);
      for (uint32_t i = 0; i < replicas; ++i) {
        pool.Submit([&result, &base, &registries, i] {
          Config cfg = base;
          cfg.seed = DeriveReplicaSeed(base.seed, i);
          // Observability plumbing is per-replica: a caller-supplied
          // registry/profiler must never be shared across workers, and a
          // caller artifacts_dir would make replicas overwrite each other.
          if constexpr (kHasMetricsHook) {
            cfg.metrics = registries.empty() ? nullptr : registries[i].get();
          }
          if constexpr (requires { cfg.profiler = nullptr; }) {
            cfg.profiler = nullptr;
          }
          if constexpr (requires { cfg.artifacts_dir.clear(); }) {
            cfg.artifacts_dir.clear();
          }

          Replica& slot = result.replicas[i];
          slot.index = i;
          slot.seed = cfg.seed;
          const auto replica_start = std::chrono::steady_clock::now();
          slot.report = Experiment::Run(cfg);
          slot.wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - replica_start)
                                  .count();
          if constexpr (requires { slot.report.events_executed; }) {
            slot.events_executed = slot.report.events_executed;
          }
        });
      }
      pool.Wait();
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ensemble_start)
            .count();

    // All folding below is single-threaded and index-ordered: this is what
    // makes the merged statistics independent of worker interleaving.
    if (!registries.empty()) {
      result.metrics = std::make_unique<MetricsRegistry>();
      for (const auto& registry : registries) {
        result.metrics->Merge(*registry);
      }
    }

    result.manifest.run_name = options.run_name;
    result.manifest.experiment = result.experiment;
    result.manifest.base_seed = result.base_seed;
    result.manifest.replicas = replicas;
    result.manifest.threads = threads;
    if constexpr (requires { base.horizon; }) {
      result.manifest.horizon = base.horizon;
    }
    result.manifest.wall_seconds = result.wall_seconds;
    result.manifest.replica_runs.reserve(replicas);
    for (const Replica& replica : result.replicas) {
      result.manifest.replica_runs.push_back(
          {replica.index, replica.seed, replica.wall_seconds, replica.events_executed});
    }

    if (!options.artifacts_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.artifacts_dir, ec);
      const std::string dir = options.artifacts_dir + "/";
      if (result.manifest.WriteFile(dir + "ensemble_manifest.json")) {
        result.manifest_path = dir + "ensemble_manifest.json";
      }
      if (result.metrics != nullptr &&
          WriteMetricsJsonlFile(*result.metrics, dir + "metrics.jsonl")) {
        result.metrics_path = dir + "metrics.jsonl";
      }
    }
    return result;
  }
};

}  // namespace centsim

#endif  // SRC_SIM_ENSEMBLE_H_
