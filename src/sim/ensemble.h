// Parallel deterministic ensemble engine.
//
// EnsembleRunner<Experiment> executes N replicas of any experiment that
// follows the unified Experiment API (src/core/experiment_api.h): a
// `Config` with `seed`/`horizon`/`Validate()`, a `Report`, a static
// `Run(const Config&)`, and a static `Name()`. Replicas are spread across
// a fixed-size ThreadPool; replica i always runs with seed
// DeriveReplicaSeed(base.seed, i), writes its report into slot i, and all
// cross-replica folding (metrics merge, manifest aggregation) happens on
// the calling thread in replica-index order after the pool drains. The
// result is therefore bit-identical for a given base seed regardless of
// worker count or completion order.
//
// Layering note: this header lives in src/sim and is deliberately
// duck-typed (requires-expressions, not the ExperimentType concept) so the
// engine does not depend on src/core; the concept in experiment_api.h is
// the authoritative statement of the API and is static_asserted against
// all three shipped experiments.

#ifndef SRC_SIM_ENSEMBLE_H_
#define SRC_SIM_ENSEMBLE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/flight_recorder.h"
#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/sim/run_progress.h"
#include "src/sim/thread_pool.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"
#include "src/telemetry/run_status.h"

namespace centsim {

// Derives the seed for replica `replica_index` from the ensemble's base
// seed via two chained SplitMix64 steps (whiten the base seed, then mix in
// the index). Unlike the former `base_seed + i`, nearby indices land in
// unrelated regions of the seed space, so per-entity streams derived from
// neighbouring replicas never correlate.
uint64_t DeriveReplicaSeed(uint64_t base_seed, uint32_t replica_index);

// Prints one line per diagnostic to stderr and aborts when the list is
// non-empty; no-op otherwise. The shared fail-fast guard every Run*
// entrypoint routes its Config::Validate() result through.
void CheckConfigOrDie(std::string_view experiment, const std::vector<std::string>& diagnostics);

struct EnsembleOptions {
  uint32_t replicas = 1;
  // Worker threads; 0 means ThreadPool::DefaultThreadCount(). Capped at
  // `replicas` — extra workers would only idle.
  uint32_t threads = 1;
  // Attach a fresh MetricsRegistry to every replica (experiments whose
  // Config has a `metrics` hook only) and merge them in index order.
  bool collect_metrics = false;
  // When non-empty, write ensemble_manifest.json (and metrics.jsonl when
  // collecting) into this directory.
  std::string artifacts_dir;
  std::string run_name = "ensemble";

  // Live run control. A non-empty status_dir — for experiments whose
  // Config carries a `control` hook (RunControlHooks) — attaches a
  // per-replica profiler/progress-cell/flight-recorder to every replica
  // and runs a RunStatusMonitor for the duration: run_status.json is
  // atomically rewritten and status.jsonl appended every
  // heartbeat_seconds, SIGUSR1 triggers an immediate status write, and
  // each replica's flight recorder is registered with the fatal-signal
  // crash-dump path. Empty = all of this off (the default; zero overhead).
  std::string status_dir;
  double heartbeat_seconds = 1.0;
  // > 0 arms the watchdog: a replica whose progress (sim time or executed
  // count) does not advance within this many wall seconds gets its flight
  // recorder + a scheduler snapshot dumped into status_dir and is flagged
  // `stalled` in the ensemble manifest (sticky).
  double stall_deadline_seconds = 0.0;
  // Per-replica flight-recorder ring capacity; 0 disables the recorders.
  size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;
  // Take a deep Scheduler::Snapshot() of a stalled replica (best-effort,
  // racy against a replica that is still limping along — see run_status.h).
  bool deep_stall_snapshot = true;

  // Checkpoint/resume — for experiments whose Config carries a `snapshot`
  // hook (SnapshotPlan, src/snapshot/snapshot_plan.h). A non-empty
  // checkpoint_dir gives replica i its own subdirectory
  // `<checkpoint_dir>/replica_<i>`; checkpoint_every > 0 makes each
  // replica drain to quiescent barriers on that cadence and write durable
  // snapshots there; resume_from_checkpoint makes each replica resume from
  // its latest valid snapshot when one exists (fresh start otherwise), so
  // re-running a crashed ensemble continues instead of recomputing. Any
  // snapshot plan on the base config is overridden — replicas sharing one
  // directory would clobber each other's checkpoints.
  SimTime checkpoint_every;
  std::string checkpoint_dir;
  bool resume_from_checkpoint = false;
};

template <typename Experiment>
class EnsembleRunner {
 public:
  using Config = typename Experiment::Config;
  using Report = typename Experiment::Report;

  struct Replica {
    uint32_t index = 0;
    uint64_t seed = 0;
    double wall_seconds = 0.0;
    uint64_t events_executed = 0;  // 0 when the report does not track it.
    double restore_seconds = 0.0;  // > 0 when the replica resumed from a checkpoint.
    Report report;
  };

  struct Result {
    std::string experiment;
    uint64_t base_seed = 0;
    uint32_t threads_used = 0;
    double wall_seconds = 0.0;
    std::vector<Replica> replicas;  // Replica-index order, not finish order.
    // Merged per-replica registries (null unless collect_metrics was set
    // and the experiment's Config carries a `metrics` hook).
    std::unique_ptr<MetricsRegistry> metrics;
    EnsembleManifest manifest;
    std::string manifest_path;  // Set when artifacts_dir was written.
    std::string metrics_path;
    // Set when run control was active: where run_status.json/status.jsonl
    // (and any stall/crash dumps) were written, and how many replicas the
    // watchdog flagged.
    std::string status_dir;
    uint32_t stalled_replicas = 0;
  };

  static Result Run(Config base, const EnsembleOptions& options) {
    static_assert(
        requires(const Config& c) {
          { Experiment::Name() };
          { Experiment::Run(c) };
          { c.Validate() };
        },
        "Experiment must follow the unified Experiment API "
        "(src/core/experiment_api.h): Name(), Run(const Config&), "
        "Config::Validate()");
    CheckConfigOrDie(Experiment::Name(), base.Validate());

    constexpr bool kHasMetricsHook = requires(Config& c, MetricsRegistry* m) { c.metrics = m; };
    constexpr bool kHasControlHook = requires(Config& c, RunControlHooks h) { c.control = h; };
    constexpr bool kHasSnapshotHook = requires(Config& c) { c.snapshot.checkpoint_every; };

    Result result;
    result.experiment = Experiment::Name();
    result.base_seed = base.seed;
    const uint32_t replicas = std::max(1u, options.replicas);
    uint32_t threads =
        options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads;
    threads = std::min(threads, replicas);
    result.threads_used = threads;

    // Per-replica registries are allocated up front so workers only ever
    // touch their own slot.
    std::vector<std::unique_ptr<MetricsRegistry>> registries;
    if (options.collect_metrics && kHasMetricsHook) {
      registries.resize(replicas);
      for (auto& registry : registries) {
        registry = std::make_unique<MetricsRegistry>();
      }
    }

    // Live run control: per-replica observability state, a monitor thread
    // aggregating it, and crash-dump registration. All allocated up front
    // (ProgressCell/SchedulerSlot hold atomics/mutexes, so raw arrays, not
    // vectors) — workers only ever touch their own slot.
    const bool run_control = kHasControlHook && !options.status_dir.empty();
    const int64_t horizon_us = [&] {
      if constexpr (requires { base.horizon; }) {
        return base.horizon.micros();
      } else {
        return int64_t{0};
      }
    }();
    std::vector<std::unique_ptr<SchedulerProfiler>> profilers;
    std::vector<std::unique_ptr<FlightRecorder>> recorders;
    std::unique_ptr<ProgressCell[]> cells;
    std::unique_ptr<SchedulerSlot[]> sched_slots;
    std::unique_ptr<RunStatusMonitor> monitor;
    CrashDumpScope crash_dumps;
    if (run_control) {
      std::error_code ec;
      std::filesystem::create_directories(options.status_dir, ec);
      profilers.resize(replicas);
      cells = std::make_unique<ProgressCell[]>(replicas);
      sched_slots = std::make_unique<SchedulerSlot[]>(replicas);
      if (options.flight_recorder_capacity > 0) {
        recorders.resize(replicas);
      }
      RunStatusMonitor::Options monitor_options;
      monitor_options.status_dir = options.status_dir;
      monitor_options.heartbeat_seconds = options.heartbeat_seconds;
      monitor_options.stall_deadline_seconds = options.stall_deadline_seconds;
      monitor_options.deep_stall_snapshot = options.deep_stall_snapshot;
      monitor_options.run_name = options.run_name;
      monitor_options.experiment = result.experiment;
      monitor_options.horizon_us = horizon_us;
      monitor_options.devices_per_replica = DevicesPerReplica(base);
      std::vector<RunStatusMonitor::ReplicaHooks> hooks(replicas);
      for (uint32_t i = 0; i < replicas; ++i) {
        profilers[i] = std::make_unique<SchedulerProfiler>();
        if (!recorders.empty()) {
          recorders[i] = std::make_unique<FlightRecorder>(options.flight_recorder_capacity);
          crash_dumps.Add(recorders[i].get(), options.status_dir + "/crash_replica_" +
                                                  std::to_string(i) + "_flight.jsonl");
        }
        hooks[i].cell = &cells[i];
        hooks[i].recorder = recorders.empty() ? nullptr : recorders[i].get();
        hooks[i].scheduler_slot = &sched_slots[i];
        hooks[i].seed = DeriveReplicaSeed(base.seed, i);
        if (kHasSnapshotHook && !options.checkpoint_dir.empty()) {
          hooks[i].checkpoint_dir = options.checkpoint_dir + "/replica_" + std::to_string(i);
        }
      }
      InstallStatusSignalHandler();
      monitor = std::make_unique<RunStatusMonitor>(std::move(monitor_options), std::move(hooks));
      monitor->Start();
      result.status_dir = options.status_dir;
    }

    result.replicas.resize(replicas);
    const auto ensemble_start = std::chrono::steady_clock::now();
    {
      ThreadPool pool(threads);
      for (uint32_t i = 0; i < replicas; ++i) {
        pool.Submit([&result, &base, &options, &registries, &profilers, &recorders, &cells,
                     &sched_slots, run_control, horizon_us, i] {
          Config cfg = base;
          cfg.seed = DeriveReplicaSeed(base.seed, i);
          // Observability plumbing is per-replica: a caller-supplied
          // registry/profiler must never be shared across workers, and a
          // caller artifacts_dir would make replicas overwrite each other.
          if constexpr (kHasMetricsHook) {
            cfg.metrics = registries.empty() ? nullptr : registries[i].get();
          }
          if constexpr (requires { cfg.profiler = nullptr; }) {
            cfg.profiler = nullptr;
          }
          if constexpr (requires { cfg.artifacts_dir.clear(); }) {
            cfg.artifacts_dir.clear();
          }
          if constexpr (kHasSnapshotHook) {
            cfg.snapshot = {};
            if (!options.checkpoint_dir.empty()) {
              cfg.snapshot.checkpoint_every = options.checkpoint_every;
              cfg.snapshot.checkpoint_dir =
                  options.checkpoint_dir + "/replica_" + std::to_string(i);
              cfg.snapshot.resume_latest = options.resume_from_checkpoint;
            }
          }
          if constexpr (kHasControlHook) {
            cfg.control = RunControlHooks{};
            if (run_control) {
              cfg.control.profiler = profilers[i].get();
              cfg.control.recorder = recorders.empty() ? nullptr : recorders[i].get();
              cfg.control.progress = &cells[i];
              cfg.control.scheduler_slot = &sched_slots[i];
            }
          }

          Replica& slot = result.replicas[i];
          slot.index = i;
          slot.seed = cfg.seed;
          const auto replica_start = std::chrono::steady_clock::now();
          slot.report = Experiment::Run(cfg);
          slot.wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - replica_start)
                                  .count();
          if constexpr (requires { slot.report.events_executed; }) {
            slot.events_executed = slot.report.events_executed;
          }
          if constexpr (requires { slot.report.restore_seconds; }) {
            slot.restore_seconds = slot.report.restore_seconds;
          }
          if (run_control) {
            cells[i].MarkDone(horizon_us, slot.events_executed);
          }
        });
      }
      pool.Wait();
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ensemble_start)
            .count();
    if (monitor != nullptr) {
      monitor->Stop();  // Final status write; watchdog verdicts are now fixed.
      result.stalled_replicas = monitor->stalled_count();
    }

    // All folding below is single-threaded and index-ordered: this is what
    // makes the merged statistics independent of worker interleaving.
    if (!registries.empty()) {
      result.metrics = std::make_unique<MetricsRegistry>();
      for (const auto& registry : registries) {
        result.metrics->Merge(*registry);
      }
    }

    result.manifest.run_name = options.run_name;
    result.manifest.experiment = result.experiment;
    result.manifest.base_seed = result.base_seed;
    result.manifest.replicas = replicas;
    result.manifest.threads = threads;
    if constexpr (requires { base.horizon; }) {
      result.manifest.horizon = base.horizon;
    }
    result.manifest.wall_seconds = result.wall_seconds;
    result.manifest.replica_runs.reserve(replicas);
    for (const Replica& replica : result.replicas) {
      const bool stalled = monitor != nullptr && monitor->WasStalled(replica.index);
      result.manifest.replica_runs.push_back({replica.index, replica.seed, replica.wall_seconds,
                                              replica.events_executed, stalled,
                                              replica.restore_seconds});
    }

    if (!options.artifacts_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.artifacts_dir, ec);
      const std::string dir = options.artifacts_dir + "/";
      if (result.manifest.WriteFile(dir + "ensemble_manifest.json")) {
        result.manifest_path = dir + "ensemble_manifest.json";
      }
      if (result.metrics != nullptr &&
          WriteMetricsJsonlFile(*result.metrics, dir + "metrics.jsonl")) {
        result.metrics_path = dir + "metrics.jsonl";
      }
    }
    return result;
  }

 private:
  // Devices simulated per replica, for the device-years/sec status gauge.
  // Duck-typed like the rest of the engine: picks up whichever population
  // field the experiment's Config exposes, 0 (gauge omitted) otherwise.
  static double DevicesPerReplica(const Config& base) {
    if constexpr (requires { base.device_count; }) {
      return static_cast<double>(base.device_count);
    } else if constexpr (requires { base.fleet_size; }) {
      return static_cast<double>(base.fleet_size);
    } else if constexpr (requires { base.devices_802154; base.devices_lora; }) {
      return static_cast<double>(base.devices_802154 + base.devices_lora);
    } else {
      return 0.0;
    }
  }
};

}  // namespace centsim

#endif  // SRC_SIM_ENSEMBLE_H_
