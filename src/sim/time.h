// Simulated-time representation for century-scale runs.
//
// The simulator spans at least 100 years of simulated time while individual
// radio transmissions last fractions of a millisecond, so the time base must
// cover ~3.2e9 seconds at sub-millisecond resolution. A signed 64-bit count
// of microseconds covers roughly 292,000 years, which is comfortable.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace centsim {

// A point in simulated time, measured in microseconds since the start of the
// simulation. Value type; freely copyable.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}

  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr SimTime Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr SimTime Days(double d) { return Hours(d * 24.0); }
  static constexpr SimTime Weeks(double w) { return Days(w * 7.0); }
  // A "year" is the Julian year (365.25 days), the convention used for
  // service-life figures in infrastructure planning.
  static constexpr SimTime Years(double y) { return Days(y * 365.25); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double ToHours() const { return ToSeconds() / 3600.0; }
  constexpr double ToDays() const { return ToHours() / 24.0; }
  constexpr double ToWeeks() const { return ToDays() / 7.0; }
  constexpr double ToYears() const { return ToDays() / 365.25; }

  constexpr SimTime operator+(SimTime other) const { return SimTime(micros_ + other.micros_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(micros_ - other.micros_); }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(micros_) * k));
  }
  SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    micros_ -= other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  // Renders as the largest natural unit, e.g. "3.42y", "17.5d", "220ms".
  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t us) : micros_(us) {}

  int64_t micros_;
};

}  // namespace centsim

#endif  // SRC_SIM_TIME_H_
