#include "src/sim/trace.h"

namespace centsim {

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kDebug:
      return "DEBUG";
    case TraceLevel::kInfo:
      return "INFO";
    case TraceLevel::kMaintenance:
      return "MAINT";
    case TraceLevel::kWarning:
      return "WARN";
    case TraceLevel::kFailure:
      return "FAIL";
  }
  return "?";
}

std::string TraceRecord::ToString() const {
  std::string out = "[" + at.ToString() + "] ";
  out += TraceLevelName(level);
  out += " ";
  out += component;
  out += ": ";
  out += message;
  return out;
}

void TraceLog::Emit(SimTime at, TraceLevel level, std::string component, std::string message) {
  if (!ShouldEmit(level)) {
    return;
  }
  ++emitted_;
  TraceRecord rec{at, level, std::move(component), std::move(message)};
  for (const auto& sink : sinks_) {
    sink(rec);
  }
  if (retain_) {
    records_.push_back(std::move(rec));
  }
}

std::vector<TraceRecord> TraceLog::FilterAtLeast(TraceLevel level) const {
  std::vector<TraceRecord> out;
  for (const auto& rec : records_) {
    if (rec.level >= level) {
      out.push_back(rec);
    }
  }
  return out;
}

}  // namespace centsim
