// Conservative windowed-barrier coordinator for intra-run sharding
// (ROADMAP item 1, after D'Angelo et al.'s PADS approach). Each ShardLane
// wraps one Scheduler over a column range of the fleet; the coordinator
// advances all lanes in lockstep windows on a ThreadPool:
//
//   setup:    lanes build state and pre-publish cross-shard effects
//             through the first barrier B1 (+ one window of cover)
//   window w: lanes drain the previous window's inboxes, extend their
//             cross-shard cover through barrier+W, then DrainToBarrier(Bw)
//   barrier:  main thread flips the bus planes, fires checkpoint hooks on
//             the grid, polls NextBound() for the next barrier
//
// Barrier placement: B_{w+1} = min(horizon, next checkpoint grid point,
// max(B_w + W, min over lanes NextBound())) — i.e. windows can skip ahead
// over quiescent stretches, but never past a checkpoint and never past any
// lane's earliest pending work. Lanes must publish every cross-shard
// effect at least one full window before it fires (they schedule their own
// local copy eagerly, so NextBound() covers in-flight messages); under
// that contract skipping is safe and results are invariant to W.

#ifndef SRC_SIM_SHARD_COORDINATOR_H_
#define SRC_SIM_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/run_progress.h"
#include "src/sim/time.h"

namespace centsim {

class ThreadPool;
class Scheduler;

class ShardLane {
 public:
  virtual ~ShardLane() = default;

  // Build lane-local state (fleet columns, coverage, timers) and
  // pre-publish cross-shard effects with fire times <= `cover`. Runs on a
  // worker thread; the first window's inbox drain delivers what Setup
  // published.
  virtual void Setup(SimTime cover) = 0;

  // Conservative lower bound on this lane's earliest future effect —
  // min(scheduler EarliestPending, earliest not-yet-published cross-shard
  // source). Called on the main thread while lanes are quiescent.
  virtual SimTime NextBound() = 0;

  // Drain inboxes, extend cross-shard cover through `cover`, then run to
  // `barrier`. Runs on a worker thread.
  virtual void RunWindow(SimTime barrier, SimTime cover) = 0;

  // Called on the main thread at checkpoint-grid barriers (all lanes
  // quiescent) so the lane can flush accumulators to the barrier before
  // the snapshot hook reads them.
  virtual void AtCheckpointBarrier(SimTime barrier) { (void)barrier; }

  virtual Scheduler& sched() = 0;
};

struct ShardWindowOptions {
  SimTime horizon;
  SimTime window;                    // W; must be > 0
  SimTime checkpoint_every;          // 0 = no checkpoint grid
  // Main thread, lanes quiescent and flushed, at each grid point < horizon.
  std::function<void(SimTime)> on_checkpoint;
  // Main thread, at every barrier after Wait (bus plane flip goes here).
  std::function<void()> on_barrier;
  // Per-lane cells, published by each lane's worker at its window end
  // (empty, or one per lane; nullptr entries skipped).
  std::vector<ProgressCell*> progress;
  // Replica-level roll-up, published by the main thread at each barrier.
  ProgressCell* replica_progress = nullptr;
};

// Runs every lane from Setup through the horizon. Returns total events
// executed across lanes. Lanes end with Now() == horizon.
uint64_t RunShardWindows(ThreadPool& pool, const std::vector<ShardLane*>& lanes,
                         const ShardWindowOptions& options);

}  // namespace centsim

#endif  // SRC_SIM_SHARD_COORDINATOR_H_
