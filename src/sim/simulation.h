// Top-level simulation context: the scheduler, the root RNG, and the trace
// log, bundled so components can be constructed against one object.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>

#include "src/sim/metrics.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace centsim {

class Simulation {
 public:
  explicit Simulation(uint64_t seed) : root_rng_(seed), seed_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }
  uint64_t seed() const { return seed_; }

  SimTime Now() const { return scheduler_.Now(); }

  // Independent RNG stream for entity `stream_id`.
  RandomStream StreamFor(uint64_t stream_id) const { return root_rng_.Derive(stream_id); }

  // --- Observability ------------------------------------------------------
  // Attach before constructing components: they grab their instruments at
  // construction time and keep null pointers when no registry is attached.
  void SetMetrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    scheduler_.SetMetrics(metrics);
  }
  MetricsRegistry* metrics() const { return metrics_; }

  // Null-safe instrument factories: nullptr when no registry is attached,
  // pairing with the MetricInc/MetricSet/MetricObserve helpers.
  Counter* MetricCounter(std::string_view name, MetricLabels labels = {}) {
    return metrics_ != nullptr ? metrics_->GetCounter(name, std::move(labels)) : nullptr;
  }
  Gauge* MetricGauge(std::string_view name, MetricLabels labels = {}) {
    return metrics_ != nullptr ? metrics_->GetGauge(name, std::move(labels)) : nullptr;
  }
  HistogramMetric* MetricHistogram(std::string_view name, MetricLabels labels = {}) {
    return metrics_ != nullptr ? metrics_->GetHistogram(name, std::move(labels)) : nullptr;
  }

  // Cheap pre-check for trace emission: callers building non-trivial
  // messages should guard with this so dropped records cost nothing.
  bool TraceEnabled(TraceLevel level) const { return trace_.ShouldEmit(level); }

  // Convenience trace emitters stamped with the current simulated time.
  void Info(const std::string& component, const std::string& message) {
    trace_.Emit(Now(), TraceLevel::kInfo, component, message);
  }
  void Warn(const std::string& component, const std::string& message) {
    trace_.Emit(Now(), TraceLevel::kWarning, component, message);
  }
  void Fail(const std::string& component, const std::string& message) {
    trace_.Emit(Now(), TraceLevel::kFailure, component, message);
  }
  void Maint(const std::string& component, const std::string& message) {
    trace_.Emit(Now(), TraceLevel::kMaintenance, component, message);
  }

  uint64_t RunUntil(SimTime horizon) { return scheduler_.RunUntil(horizon); }

 private:
  Scheduler scheduler_;
  TraceLog trace_;
  RandomStream root_rng_;
  MetricsRegistry* metrics_ = nullptr;
  uint64_t seed_;
};

}  // namespace centsim

#endif  // SRC_SIM_SIMULATION_H_
