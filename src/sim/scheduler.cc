#include "src/sim/scheduler.h"

#include <cassert>

namespace centsim {

EventId Scheduler::ScheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_);
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  actions_.emplace(id, std::move(fn));
  return id;
}

EventId Scheduler::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) {
    return false;
  }
  actions_.erase(it);
  cancelled_.insert(id);
  return true;
}

void Scheduler::SkimCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

void Scheduler::RunTop() {
  const Entry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  auto it = actions_.find(top.id);
  assert(it != actions_.end());
  // Move the closure out before running: the action may schedule/cancel.
  std::function<void()> fn = std::move(it->second);
  actions_.erase(it);
  ++executed_;
  fn();
}

bool Scheduler::Step() {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  RunTop();
  return true;
}

uint64_t Scheduler::RunUntil(SimTime horizon) {
  uint64_t ran = 0;
  while (true) {
    SkimCancelled();
    if (heap_.empty() || heap_.top().at > horizon) {
      break;
    }
    RunTop();
    ++ran;
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

PeriodicEvent::PeriodicEvent(Scheduler& sched, SimTime period, std::function<void()> fn)
    : sched_(sched), period_(period), fn_(std::move(fn)) {}

PeriodicEvent::~PeriodicEvent() { Stop(); }

void PeriodicEvent::Start(SimTime first_delay) {
  Stop();
  running_ = true;
  pending_ = sched_.ScheduleAfter(first_delay, [this] { Fire(); });
}

void PeriodicEvent::Stop() {
  if (pending_ != kInvalidEventId) {
    sched_.Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  running_ = false;
}

void PeriodicEvent::Fire() {
  pending_ = sched_.ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace centsim
