#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

#include "src/sim/flight_recorder.h"
#include "src/sim/metrics.h"

namespace centsim {

// A past-time schedule must not corrupt heap order or run the clock
// backwards: clamp to Now() and surface the bug as a metric.
SimTime Scheduler::ClampLateSchedule() {
  ++late_schedules_;
  if (late_schedule_metric_ == nullptr && metrics_ != nullptr) {
    late_schedule_metric_ = metrics_->GetCounter("scheduler.late_schedule");
  }
  MetricInc(late_schedule_metric_);
  return now_;
}

bool Scheduler::Cancel(EventId id) {
  if (!pool_.IsLive(id)) {
    return false;  // Already ran, already cancelled, or never existed.
  }
  // The heap entry stays; popping it later sees the bumped generation.
  pool_.Release(EventPool::SlotOf(id));
  --live_;
  return true;
}

void Scheduler::HeapPush(const HeapEntry& entry) {
  heap_.push_back(entry);
  size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const size_t parent = (hole - 1) / 4;
    if (!(entry < heap_[parent])) {
      break;
    }
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void Scheduler::SiftDown(size_t hole, HeapEntry value) {
  const size_t size = heap_.size();
  while (true) {
    const size_t first_child = hole * 4 + 1;
    if (first_child >= size) {
      break;
    }
    const size_t last_child = first_child + 4 < size ? first_child + 4 : size;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c] < heap_[best]) {
        best = c;
      }
    }
    if (!(heap_[best] < value)) {
      break;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = value;
}

void Scheduler::HeapPopMin() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0, last);
  }
}

void Scheduler::SkimStale() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (pool_.generation(top.slot) == top.generation) {
      return;  // Live.
    }
    HeapPopMin();
  }
}

void Scheduler::StagePush(const HeapEntry& entry) {
  const int64_t at = entry.at.micros();
  // back() covers the earliest remaining window, each rung below it a
  // later one, so the first rung whose end is past `at` is the right one.
  for (size_t i = rungs_.size(); i-- > 0;) {
    Rung& r = rungs_[i];
    if (at < r.end) {
      r.buckets[static_cast<size_t>((at - r.start) / r.width)].push_back(entry);
      ++staged_;
      return;
    }
  }
  far_.push_back(entry);
  ++staged_;
}

// Moves a batch of staged entries into the (empty) near heap, dropping
// entries cancelled while they were staged. Firing an entry touches its
// pool slot and generation lines, scattered across the pool; prefetching
// them now, a bucket at a time, overlaps those misses so the pop loop
// finds every line warm.
void Scheduler::LoadIntoNear(std::vector<HeapEntry>& entries) {
  for (const HeapEntry& e : entries) {
    if (pool_.generation(e.slot) == e.generation) {
      pool_.PrefetchSlot(e.slot);
      HeapPush(e);
    }
  }
  staged_ -= entries.size();
  entries.clear();
}

// Distributes `entries` into a new finest rung covering the inclusive
// window [win_lo, win_hi] (every entry's time lies inside it): enough
// buckets that each holds roughly kBucketTargetFill entries (the near
// heap stays small and cheap to pop), but no more than kMaxBuckets
// (bounds per-bucket bookkeeping for sparse windows). The rung spans the
// whole window, never just the entries' min/max: StagePush routes by
// rung windows, and a rung split out of a parent bucket must accept
// everything the parent's (already advanced) cursor can no longer take —
// an uncovered tail would send later schedules into a drained parent
// bucket, where they would be silently dropped.
void Scheduler::PushRung(std::vector<HeapEntry>& entries, int64_t win_lo, int64_t win_hi) {
  const uint64_t span = static_cast<uint64_t>(win_hi - win_lo);
  size_t target = entries.size() / kBucketTargetFill;
  target = target < 1 ? 1 : (target > kMaxBuckets ? kMaxBuckets : target);
  const int64_t width = static_cast<int64_t>(span / target + 1);
  const size_t nbuckets = static_cast<size_t>(span / static_cast<uint64_t>(width)) + 1;
  Rung r;
  if (!rung_pool_.empty()) {
    r = std::move(rung_pool_.back());
    rung_pool_.pop_back();
  }
  r.start = win_lo;
  r.width = width;
  r.next = 0;
  // Exclusive end == the window's exact edge, so the frontier (near_limit_
  // clamps to r.end) and StagePush routing agree bucket-for-bucket with
  // the rung below. A window abutting the time axis' top stays inclusive.
  r.end = win_hi == INT64_MAX ? INT64_MAX : win_hi + 1;
  r.buckets.resize(nbuckets);
  for (const HeapEntry& e : entries) {
    if (pool_.generation(e.slot) == e.generation) {
      r.buckets[static_cast<size_t>((e.at.micros() - win_lo) / width)].push_back(e);
    } else {
      --staged_;  // Cancelled while staged: drop it here.
    }
  }
  entries.clear();
  rungs_.push_back(std::move(r));
}

void Scheduler::RetireRung() {
  Rung r = std::move(rungs_.back());
  rungs_.pop_back();
  // The whole window is drained (trailing buckets may have been skipped
  // while empty): advance the frontier to its edge so a later schedule
  // into the tail goes to the heap, not into a dropped bucket.
  near_limit_ = r.end;
  for (auto& b : r.buckets) {
    b.clear();  // Keep capacity: the pool exists to recycle it.
  }
  r.next = 0;
  if (rung_pool_.size() < 4) {
    rung_pool_.push_back(std::move(r));
  }
}

// Refills the empty near heap with the next batch of staged entries.
void Scheduler::Advance() {
  while (!rungs_.empty()) {
    Rung& r = rungs_.back();
    while (r.next < r.buckets.size() && r.buckets[r.next].empty()) {
      ++r.next;
    }
    if (r.next == r.buckets.size()) {
      RetireRung();
      continue;
    }
    std::vector<HeapEntry>& bucket = r.buckets[r.next];
    // This bucket's window, [b_lo, b_hi] inclusive, clipped to the rung's
    // own edge (__int128: the unclipped end can overflow near the top of
    // the time axis).
    const int64_t b_lo = r.start + static_cast<int64_t>(r.next) * r.width;
    const __int128 b_end = static_cast<__int128>(b_lo) + r.width;
    const int64_t r_hi = r.end == INT64_MAX ? INT64_MAX : r.end - 1;
    const int64_t b_hi =
        b_end - 1 < static_cast<__int128>(r_hi) ? static_cast<int64_t>(b_end - 1) : r_hi;
    if (bucket.size() > kBucketLoadMax && r.width > 1) {
      // Too many entries to heap at once and still splittable: promote the
      // bucket to a finer rung covering this bucket's FULL window, not
      // just the entries' span. The parent's cursor moves past the bucket,
      // so the child must keep accepting schedules anywhere in its window
      // for StagePush's frontier-routing invariant to hold.
      std::vector<HeapEntry> items = std::move(bucket);
      bucket = std::vector<HeapEntry>();
      ++r.next;
      PushRung(items, b_lo, b_hi);  // Entries stay staged; PushRung drops cancelled ones.
      continue;
    }
    // Frontier moves to the bucket's edge. Never past r.end: beyond it the
    // rung below still holds staged entries, and sending later schedules
    // to the heap early would let them overtake those.
    near_limit_ = b_hi == INT64_MAX ? INT64_MAX : b_hi + 1;
    ++r.next;
    if (r.width == 1) {
      // Single-timestamp bucket: already in (time, seq) order, drain it
      // sequentially and keep the heap out of the picture. The swap passes
      // run_'s spent capacity back into the rung for its next cycle.
      std::swap(run_, bucket);
      staged_ -= run_.size();
      for (const HeapEntry& e : run_) {
        pool_.PrefetchSlot(e.slot);
      }
      return;
    }
    LoadIntoNear(bucket);
    return;
  }
  if (far_.size() <= kDirectLoadMax) {
    // Small queue: run on the bare heap. INT64_MAX routes every future
    // schedule straight to the heap until the queue fully drains.
    near_limit_ = INT64_MAX;
    LoadIntoNear(far_);
    return;
  }
  // Bottom rung: nothing is staged beyond far_, so its window is just the
  // entries' span — anything later routes back into far_.
  int64_t lo = INT64_MAX;
  int64_t hi = INT64_MIN;
  for (const HeapEntry& e : far_) {
    const int64_t at = e.at.micros();
    lo = at < lo ? at : lo;
    hi = at > hi ? at : hi;
  }
  PushRung(far_, lo, hi);
}

bool Scheduler::EnsureNext() {
  for (;;) {
    // An active sequential run goes first: the heap only holds entries
    // scheduled after the run's timestamp (same time, later seq).
    while (run_idx_ < run_.size()) {
      const HeapEntry& e = run_[run_idx_];
      if (pool_.generation(e.slot) == e.generation) {
        return true;
      }
      ++run_idx_;  // Cancelled while staged or while the run drained.
    }
    if (!run_.empty()) {
      run_.clear();
      run_idx_ = 0;
    }
    SkimStale();
    if (!heap_.empty()) {
      return true;
    }
    if (staged_ == 0) {
      near_limit_ = INT64_MIN;  // Fully drained: next wave picks its mode.
      return false;
    }
    Advance();
  }
}

void Scheduler::RunTop() {
  HeapEntry top;
  if (run_idx_ < run_.size()) {
    top = run_[run_idx_++];
  } else {
    top = heap_.front();
    HeapPopMin();
  }
  now_ = top.at;
  // The callback runs in place in its (address-stable) slot. BeginFire
  // bumps the generation first so the running event is no longer pending:
  // a Cancel of its own id reports false, and rescheduling from inside
  // the callback can never overwrite the executing closure (the slot
  // rejoins the free list only in FinishFire).
  EventPool::Slot& slot = pool_.at(top.slot);
  const char* category = slot.category;
  pool_.BeginFire(top.slot);
  --live_;
  ++executed_;
  if (profiler_ == nullptr) {
    slot.fn();
    pool_.FinishFire(top.slot);
    return;
  }
  const bool timed = profiler_->BeginEvent();
  const uint64_t t0 = timed ? profiler_->NowNs() : 0;
  slot.fn();
  const uint64_t t1 = timed ? profiler_->NowNs() : 0;
  pool_.FinishFire(top.slot);
  profiler_->EndEvent(category != nullptr ? category : kDefaultEventCategory, top.at, timed, t0,
                      t1);
  // Run-control hooks ride the profiler's two sampling countdowns, so the
  // unsampled hot path stays exactly as before: the flight recorder logs
  // the 1-in-time_sample_every events already being wall-timed, and the
  // progress mailbox publishes on the rarer depth samples.
  if (timed && recorder_ != nullptr) {
    // Reuse the profiler's post-event clock reading (absolute steady ns)
    // instead of paying a third read; re-based onto the recorder's epoch.
    recorder_->RecordAt(category != nullptr ? category : kDefaultEventCategory, top.at, live_,
                        t1 - recorder_->epoch_ns());
  }
  if (profiler_->DepthSampleDue()) {
    const uint64_t entries = heap_.size() + staged_ + (run_.size() - run_idx_);
    profiler_->RecordDepth(top.at, pending_count(), entries);
    if (progress_ != nullptr) {
      progress_->Publish(now_.micros(), NextEventLowerBound(), executed_, live_, entries);
    }
  }
}

void Scheduler::AttachRunControl(const RunControlHooks& hooks) {
  if (hooks.profiler != nullptr) {
    profiler_ = hooks.profiler;
  }
  if (hooks.recorder != nullptr) {
    recorder_ = hooks.recorder;
  }
  if (hooks.progress != nullptr) {
    progress_ = hooks.progress;
  }
  if (hooks.scheduler_slot != nullptr) {
    hooks.scheduler_slot->Set(this);
  }
}

void Scheduler::DetachRunControl(const RunControlHooks& hooks) {
  // Slot first: once cleared, no monitor thread can reach this scheduler,
  // so the plain-pointer resets below race with nothing.
  if (hooks.scheduler_slot != nullptr) {
    hooks.scheduler_slot->Set(nullptr);
  }
  if (hooks.profiler != nullptr && profiler_ == hooks.profiler) {
    profiler_ = nullptr;
  }
  if (hooks.recorder != nullptr && recorder_ == hooks.recorder) {
    recorder_ = nullptr;
  }
  if (hooks.progress != nullptr && progress_ == hooks.progress) {
    progress_ = nullptr;
  }
}

SchedulerSnapshot Scheduler::Snapshot() const {
  SchedulerSnapshot s;
  s.now_us = now_.micros();
  s.pending = live_;
  s.executed = executed_;
  s.late_schedules = late_schedules_;
  s.heap_size = heap_.size();
  s.staged = staged_;
  s.run_remaining = run_.size() - run_idx_;
  s.far_count = far_.size();
  s.queue_empty = live_ == 0;
  // Earliest queued entry: the run head / heap top when present, else the
  // minimum across staged entries. Stale (cancelled) entries are not
  // filtered — this is a lower bound, and a diagnostic one.
  int64_t next = INT64_MAX;
  bool have = false;
  if (run_idx_ < run_.size()) {
    next = run_[run_idx_].at.micros();
    have = true;
  } else if (!heap_.empty()) {
    next = heap_.front().at.micros();
    have = true;
  }
  s.rungs.reserve(rungs_.size());
  for (const Rung& r : rungs_) {
    SchedulerSnapshot::RungInfo info;
    info.start_us = r.start;
    info.end_us = r.end;
    info.width_us = r.width;
    info.bucket_count = r.buckets.size();
    info.next_bucket = r.next;
    for (size_t b = 0; b < r.buckets.size(); ++b) {
      info.entries += r.buckets[b].size();
      if (!have) {
        for (const HeapEntry& e : r.buckets[b]) {
          next = e.at.micros() < next ? e.at.micros() : next;
        }
      }
    }
    s.rungs.push_back(info);
  }
  if (!have) {
    for (const HeapEntry& e : far_) {
      next = e.at.micros() < next ? e.at.micros() : next;
    }
    have = next != INT64_MAX;
  }
  s.next_event_us = have ? next : s.now_us;
  return s;
}

bool Scheduler::Step() {
  if (!EnsureNext()) {
    return false;
  }
  RunTop();
  return true;
}

uint64_t Scheduler::RunUntil(SimTime horizon) {
  uint64_t ran = 0;
  while (EnsureNext() && !(horizon < NextAt())) {
    RunTop();
    ++ran;
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

SimTime Scheduler::EarliestPending() const {
  // An active run head or heap top dominates everything staged: staged
  // entries all sit at or past near_limit_, heap entries below it, and a
  // run's single timestamp precedes the heap it was split from.
  if (run_idx_ < run_.size()) {
    return run_[run_idx_].at;
  }
  if (!heap_.empty()) {
    return heap_.front().at;
  }
  int64_t next = INT64_MAX;
  // rungs_ is a stack — back() covers the earliest remaining window, and a
  // rung's buckets partition its window in ascending time — so the first
  // non-empty bucket of the topmost occupied rung bounds the staged
  // minimum. Only that one bucket needs scanning (entries within a bucket
  // are unsorted, in seq order).
  for (size_t i = rungs_.size(); i-- > 0;) {
    const Rung& r = rungs_[i];
    for (size_t b = r.next; b < r.buckets.size(); ++b) {
      if (r.buckets[b].empty()) {
        continue;
      }
      for (const HeapEntry& e : r.buckets[b]) {
        next = e.at.micros() < next ? e.at.micros() : next;
      }
      return SimTime::Micros(next);
    }
  }
  for (const HeapEntry& e : far_) {
    next = e.at.micros() < next ? e.at.micros() : next;
  }
  return SimTime::Micros(next);
}

uint64_t Scheduler::DrainToBarrier(SimTime barrier) {
  const uint64_t ran = RunUntil(barrier);
  // Quiescence on exit: the clock sits exactly on the barrier and nothing
  // queued is at or before it. The drain loop physically removes every
  // entry — live or stale — at or before the barrier (stale heap tops are
  // skimmed, cancelled staged entries dropped at load), so the
  // stale-inclusive probe agrees.
  assert(now_.micros() == barrier.micros());
  assert(barrier < EarliestPending());
  return ran;
}

void Scheduler::RestoreClock(SimTime now, uint64_t executed, uint64_t late_schedules) {
  // Restore targets a fresh scheduler: re-arming into a queue that still
  // holds events would interleave two runs' sequence spaces.
  assert(live_ == 0);
  now_ = now;
  executed_ = executed;
  late_schedules_ = late_schedules;
}

PeriodicEvent::PeriodicEvent(Scheduler& sched, SimTime period, EventFn fn, const char* category)
    : sched_(sched), period_(period), fn_(std::move(fn)), category_(category) {}

PeriodicEvent::~PeriodicEvent() { Stop(); }

void PeriodicEvent::Start(SimTime first_delay) {
  Stop();
  running_ = true;
  pending_ = sched_.ScheduleAfter(first_delay, [this] { Fire(); }, category_);
}

void PeriodicEvent::Stop() {
  if (pending_ != kInvalidEventId) {
    sched_.Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  running_ = false;
}

void PeriodicEvent::Fire() {
  // The firing event's slot was just released; the pool's LIFO free list
  // hands it straight back, so a periodic event ticks in place with zero
  // allocations (the [this] capture is far under the inline budget).
  pending_ = sched_.ScheduleAfter(period_, [this] { Fire(); }, category_);
  fn_();
}

}  // namespace centsim
