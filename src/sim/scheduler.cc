#include "src/sim/scheduler.h"

#include <cassert>

namespace centsim {

EventId Scheduler::ScheduleAt(SimTime at, std::function<void()> fn, const char* category) {
  assert(at >= now_);
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  actions_.emplace(id, Action{std::move(fn), category});
  return id;
}

EventId Scheduler::ScheduleAfter(SimTime delay, std::function<void()> fn, const char* category) {
  return ScheduleAt(now_ + delay, std::move(fn), category);
}

bool Scheduler::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) {
    return false;
  }
  actions_.erase(it);
  cancelled_.insert(id);
  return true;
}

void Scheduler::SkimCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

void Scheduler::RunTop() {
  const Entry top = heap_.top();
  heap_.pop();
  now_ = top.at;
  auto it = actions_.find(top.id);
  assert(it != actions_.end());
  // Move the closure out before running: the action may schedule/cancel.
  std::function<void()> fn = std::move(it->second.fn);
  const char* category = it->second.category;
  actions_.erase(it);
  ++executed_;
  if (profiler_ == nullptr) {
    fn();
    return;
  }
  const bool timed = profiler_->BeginEvent();
  const uint64_t t0 = timed ? profiler_->NowNs() : 0;
  fn();
  const uint64_t t1 = timed ? profiler_->NowNs() : 0;
  profiler_->EndEvent(category != nullptr ? category : kDefaultEventCategory, top.at, timed, t0,
                      t1);
  if (profiler_->DepthSampleDue()) {
    profiler_->RecordDepth(top.at, pending_count());
  }
}

bool Scheduler::Step() {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  RunTop();
  return true;
}

uint64_t Scheduler::RunUntil(SimTime horizon) {
  uint64_t ran = 0;
  while (true) {
    SkimCancelled();
    if (heap_.empty() || heap_.top().at > horizon) {
      break;
    }
    RunTop();
    ++ran;
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

PeriodicEvent::PeriodicEvent(Scheduler& sched, SimTime period, std::function<void()> fn,
                             const char* category)
    : sched_(sched), period_(period), fn_(std::move(fn)), category_(category) {}

PeriodicEvent::~PeriodicEvent() { Stop(); }

void PeriodicEvent::Start(SimTime first_delay) {
  Stop();
  running_ = true;
  pending_ = sched_.ScheduleAfter(first_delay, [this] { Fire(); }, category_);
}

void PeriodicEvent::Stop() {
  if (pending_ != kInvalidEventId) {
    sched_.Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  running_ = false;
}

void PeriodicEvent::Fire() {
  pending_ = sched_.ScheduleAfter(period_, [this] { Fire(); }, category_);
  fn_();
}

}  // namespace centsim
