// Deterministic random-number generation for the simulator.
//
// Every simulated entity draws from its own RandomStream, derived from the
// simulation seed and a stable stream identifier (typically the entity id).
// This makes any single entity's trajectory reproducible regardless of how
// many other entities exist or the order in which events interleave.
//
// The generator is xoshiro256++ seeded through splitmix64, which is fast,
// has a 2^256-1 period, and passes BigCrush. No global state.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>
#include <vector>

namespace centsim {

// Stateless 64-bit mix used for seeding and stream derivation.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256++ engine. Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()();

  // Raw state access for checkpoint codecs (src/snapshot): a restored
  // engine continues the saved engine's exact output sequence.
  void GetState(uint64_t out[4]) const;
  void SetState(const uint64_t in[4]);

 private:
  uint64_t s_[4];
};

// A stream of random variates with the distributions the simulator needs.
// Cheap to construct; derive one per entity via Derive().
class RandomStream {
 public:
  // Complete serializable state: the derivation key (seed, stream) plus the
  // engine's four state words. Restoring yields a stream whose future draws
  // and Derive() children are bit-identical to the saved stream's.
  struct State {
    uint64_t seed = 0;
    uint64_t stream = 0;
    uint64_t s[4] = {0, 0, 0, 0};
  };

  // Root stream for a simulation.
  explicit RandomStream(uint64_t seed);

  State SaveState() const;
  static RandomStream FromState(const State& state);

  // Derives an independent child stream keyed by `stream_id`. Two children
  // with distinct ids behave as statistically independent generators.
  RandomStream Derive(uint64_t stream_id) const;

  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);
  // Bernoulli trial.
  bool NextBool(double p_true);
  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double Normal(double mean, double stddev);
  // Exponential with the given mean (NOT rate). Requires mean > 0.
  double Exponential(double mean);
  // Weibull with shape k and scale lambda (both > 0).
  double Weibull(double shape, double scale);
  // Log-normal parameterized by the mean/stddev of the underlying normal.
  double LogNormal(double mu, double sigma);
  // Poisson-distributed count with the given mean (inversion for small
  // means, normal approximation above 64).
  int64_t Poisson(double mean);
  // Zipf-distributed rank in [1, n] with exponent s > 0. O(n) inversion
  // per draw — fine for occasional draws on small supports; use ZipfTable
  // for repeated draws over the same support.
  uint64_t Zipf(uint64_t n, double s);

  uint64_t NextUint64();

 private:
  RandomStream(uint64_t seed, uint64_t stream);

  uint64_t seed_;
  uint64_t stream_;
  Xoshiro256 engine_;
};

// Precomputed Zipf sampler for repeated draws over the same support.
// O(log n) per draw via binary search on the CDF.
class ZipfTable {
 public:
  ZipfTable(uint64_t n, double s);

  // Returns a rank in [1, n].
  uint64_t Sample(RandomStream& rng) const;

  uint64_t size() const { return cdf_.size(); }
  // P(rank <= k), 1-indexed.
  double CdfAt(uint64_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace centsim

#endif  // SRC_SIM_RANDOM_H_
