// Scheduler execution profiling.
//
// When attached to a Scheduler, records per-event-category execution
// counts, wall-clock time per category, and event-queue depth over
// simulated time, and retains a bounded buffer of spans for Chrome
// trace-event export (chrome://tracing / Perfetto).
//
// Cost control: every event is *counted* exactly, but wall-clock timing
// (two steady_clock reads) happens only on every `time_sample_every`-th
// event, and queue depth is sampled every `queue_depth_sample_every`-th.
// Wall totals are scaled up from the timed subsample at snapshot time.
// Which events get sampled depends only on the execution index, so two
// identical runs sample identical (sim-time, depth) sequences — profiling
// never perturbs simulation results.

#ifndef SRC_SIM_PROFILER_H_
#define SRC_SIM_PROFILER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace centsim {

class MetricsRegistry;

class SchedulerProfiler {
 public:
  struct Options {
    // Wall-clock one event in N. Two steady_clock reads cost ~40 ns, so at
    // N=64 the amortized timing cost stays well under a nanosecond per
    // event while a year-scale run still times millions of events.
    uint32_t time_sample_every = 64;
    uint32_t queue_depth_sample_every = 256; // Depth sample one event in N.
    size_t max_spans = 1 << 18;              // Retained spans (oldest kept).
  };

  struct CategorySnapshot {
    std::string category;
    uint64_t count = 0;         // Exact execution count.
    uint64_t timed_count = 0;   // Events actually wall-clocked.
    double wall_ns_estimate = 0.0;  // timed total scaled by count/timed_count.
    SummaryStats wall_ns;       // Distribution over the timed subsample.
  };

  struct Span {
    const char* category;   // Static string; never freed.
    SimTime sim_at;         // Simulated time the event ran at.
    uint64_t wall_start_ns; // Wall offset from profiler construction.
    uint64_t wall_ns;       // Wall duration of the event closure.
  };

  struct DepthSample {
    SimTime sim_at;
    uint64_t depth;      // Pending (non-cancelled) events after this one.
    uint64_t executed;   // Events executed so far.
    uint64_t heap_size;  // Raw heap entries, stale (cancelled) included.
  };

  SchedulerProfiler();
  explicit SchedulerProfiler(Options options);

  // --- Scheduler-facing hot path -----------------------------------------
  // Countdown counters (not modulo) keep the per-event cost to a few
  // branches: integer division per event would dominate small closures.

  // True when the next event should be wall-clocked.
  bool BeginEvent() {
    ++event_index_;
    if (time_countdown_ == 0) {
      return false;  // time_sample_every == 0: never time.
    }
    if (--time_countdown_ == 0) {
      time_countdown_ = options_.time_sample_every;
      return true;
    }
    return false;
  }
  uint64_t NowNs() const;
  // Records one executed event. `t0_ns`/`t1_ns` are NowNs() readings when
  // the event was timed, both 0 otherwise.
  void EndEvent(const char* category, SimTime at, bool timed, uint64_t t0_ns, uint64_t t1_ns) {
    if (!timed && category == last_category_) {
      ++last_cell_->count;  // Hot path: cached cell, nothing to time.
      return;
    }
    EndEventSlow(category, at, timed, t0_ns, t1_ns);
  }
  // True when this event's queue depth should be recorded; call exactly
  // once per event (it advances the sampling countdown).
  bool DepthSampleDue() {
    if (depth_countdown_ == 0) {
      return false;  // queue_depth_sample_every == 0: never sample.
    }
    if (--depth_countdown_ == 0) {
      depth_countdown_ = options_.queue_depth_sample_every;
      return true;
    }
    return false;
  }
  // `heap_size` is the scheduler's raw entry count (stale entries
  // included); heap_size - queue_depth measures lazy-cancel buildup.
  void RecordDepth(SimTime at, uint64_t queue_depth, uint64_t heap_size = 0);

  // --- Snapshots ----------------------------------------------------------

  uint64_t events_recorded() const { return event_index_; }
  // Categories with identical text merged, ordered by descending count.
  std::vector<CategorySnapshot> Categories() const;
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<DepthSample>& depth_samples() const { return depth_samples_; }
  const Options& options() const { return options_; }

  // Publishes the snapshot as metrics: counters `sched.events` and
  // histograms `sched.event_wall_ns`, both labelled {category=...}, plus a
  // gauge `sched.queue_depth_peak`.
  void ExportTo(MetricsRegistry& registry) const;

 private:
  struct CategoryCell {
    std::string category;
    uint64_t count = 0;
    uint64_t timed_count = 0;
    double timed_wall_ns = 0.0;
    SummaryStats wall_ns;
  };
  CategoryCell& CellFor(const char* category);
  void EndEventSlow(const char* category, SimTime at, bool timed, uint64_t t0_ns, uint64_t t1_ns);

  Options options_;
  uint64_t event_index_ = 0;
  uint32_t time_countdown_ = 0;   // Events until the next wall-clocked one.
  uint32_t depth_countdown_ = 0;  // Events until the next depth sample.
  uint64_t epoch_ns_;  // steady_clock at construction; spans are relative.

  // Keyed by string pointer identity (categories are string literals); the
  // one-entry cache exploits event-category runs. Identical text reached
  // via distinct pointers is merged in Categories(); cells are
  // pointer-stable, so the inline fast path bumps through `last_cell_`.
  std::unordered_map<const char*, CategoryCell> cells_;
  const char* last_category_ = nullptr;
  CategoryCell* last_cell_ = nullptr;

  std::vector<Span> spans_;
  std::vector<DepthSample> depth_samples_;
};

}  // namespace centsim

#endif  // SRC_SIM_PROFILER_H_
