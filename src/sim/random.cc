#include "src/sim/random.h"

#include <cassert>
#include <cmath>

namespace centsim {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
  // Guard against the all-zero state (probability ~0 but cheap to exclude).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x853c49e6748fea9bULL;
  }
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256::GetState(uint64_t out[4]) const {
  for (int i = 0; i < 4; ++i) {
    out[i] = s_[i];
  }
}

void Xoshiro256::SetState(const uint64_t in[4]) {
  for (int i = 0; i < 4; ++i) {
    s_[i] = in[i];
  }
}

RandomStream::RandomStream(uint64_t seed) : RandomStream(seed, 0) {}

RandomStream::State RandomStream::SaveState() const {
  State state;
  state.seed = seed_;
  state.stream = stream_;
  engine_.GetState(state.s);
  return state;
}

RandomStream RandomStream::FromState(const State& state) {
  RandomStream rs(state.seed, state.stream);
  rs.engine_.SetState(state.s);
  return rs;
}

RandomStream::RandomStream(uint64_t seed, uint64_t stream)
    : seed_(seed), stream_(stream), engine_([&] {
        // Mix seed and stream id into one 64-bit engine seed.
        uint64_t sm = seed ^ 0x6a09e667f3bcc909ULL;
        uint64_t a = SplitMix64(sm);
        sm ^= stream * 0x9e3779b97f4a7c15ULL;
        uint64_t b = SplitMix64(sm);
        return a ^ Rotl(b, 32);
      }()) {}

RandomStream RandomStream::Derive(uint64_t stream_id) const {
  uint64_t sm = stream_ ^ Rotl(stream_id, 17);
  return RandomStream(seed_, SplitMix64(sm) ^ stream_id);
}

uint64_t RandomStream::NextUint64() { return engine_(); }

double RandomStream::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RandomStream::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t RandomStream::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  __uint128_t m = static_cast<__uint128_t>(engine_()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    const uint64_t threshold = -n % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(engine_()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool RandomStream::NextBool(double p_true) { return NextDouble() < p_true; }

double RandomStream::Normal(double mean, double stddev) {
  // Box-Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double RandomStream::Exponential(double mean) {
  assert(mean > 0);
  return -mean * std::log(1.0 - NextDouble());
}

double RandomStream::Weibull(double shape, double scale) {
  assert(shape > 0 && scale > 0);
  const double u = 1.0 - NextDouble();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double RandomStream::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

int64_t RandomStream::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean > 64) {
    // Normal approximation with continuity correction.
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double prod = 1.0;
  int64_t count = -1;
  do {
    ++count;
    prod *= NextDouble();
  } while (prod > limit);
  return count;
}

uint64_t RandomStream::Zipf(uint64_t n, double s) {
  assert(n >= 1 && s > 0);
  // O(n) inversion against the running partial sums. Fine for occasional
  // draws on small supports; use ZipfTable for repeated draws.
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
  }
  const double target = NextDouble() * total;
  double cum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    cum += 1.0 / std::pow(static_cast<double>(k), s);
    if (cum >= target) {
      return k;
    }
  }
  return n;
}

ZipfTable::ZipfTable(uint64_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;
}

uint64_t ZipfTable::Sample(RandomStream& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  uint64_t lo = 0;
  uint64_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

double ZipfTable::CdfAt(uint64_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  return cdf_[k - 1];
}

}  // namespace centsim
