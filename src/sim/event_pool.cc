#include "src/sim/event_pool.h"

namespace centsim {

// One chunk at a time: growth cost is flat (512 slots ≈ 40 KB), chunk
// addresses are stable for the lifetime of the pool, and the free list is
// refilled in reverse so the lowest new slot is handed out first (stable,
// deterministic slot assignment for identical schedules).
void EventPool::Grow() {
  const uint32_t base = static_cast<uint32_t>(generations_.size());
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  generations_.resize(generations_.size() + kChunkSize, 1);
  free_.reserve(free_.size() + kChunkSize);
  for (uint32_t i = kChunkSize; i > 0; --i) {
    free_.push_back(base + i - 1);
  }
}

void EventPool::Reserve(size_t n) {
  while (generations_.size() < n) {
    Grow();
  }
}

}  // namespace centsim
