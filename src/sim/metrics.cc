#include "src/sim/metrics.h"

#include <algorithm>

namespace centsim {

MetricLabels::MetricLabels(std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [k, v] : kv) {
    Set(k, v);
  }
}

void MetricLabels::Set(std::string key, std::string value) {
  auto it = std::lower_bound(kv_.begin(), kv_.end(), key,
                             [](const auto& pair, const std::string& k) { return pair.first < k; });
  if (it != kv_.end() && it->first == key) {
    it->second = std::move(value);
    return;
  }
  kv_.insert(it, {std::move(key), std::move(value)});
}

std::string MetricLabels::ToString() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) {
      out += ',';
    }
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

void HistogramMetric::Merge(const HistogramMetric& other) {
  stats_.Merge(other.stats_);
  if (bins_ && other.bins_) {
    bins_->Merge(*other.bins_);
  }
}

namespace {

std::string InstrumentKey(std::string_view name, const MetricLabels& labels) {
  std::string key(name);
  key += '|';
  key += labels.ToString();
  return key;
}

}  // namespace

template <typename T>
T* MetricsRegistry::Family<T>::FindOrCreate(std::string_view name, MetricLabels labels) {
  const std::string key = InstrumentKey(name, labels);
  auto it = index.find(key);
  if (it != index.end()) {
    return entries[it->second].instrument.get();
  }
  entries.push_back({std::string(name), std::move(labels), std::make_unique<T>()});
  index.emplace(key, entries.size() - 1);
  return entries.back().instrument.get();
}

template <typename T>
T* MetricsRegistry::Family<T>::Find(std::string_view name, const MetricLabels& labels) const {
  auto it = index.find(InstrumentKey(name, labels));
  return it == index.end() ? nullptr : entries[it->second].instrument.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name, MetricLabels labels) {
  return counters_.FindOrCreate(name, std::move(labels));
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  return gauges_.FindOrCreate(name, std::move(labels));
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name, MetricLabels labels) {
  return histograms_.FindOrCreate(name, std::move(labels));
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name, MetricLabels labels,
                                               double lo, double hi, uint32_t bins) {
  const std::string key = InstrumentKey(name, labels);
  auto it = histograms_.index.find(key);
  if (it != histograms_.index.end()) {
    return histograms_.entries[it->second].instrument.get();
  }
  histograms_.entries.push_back(
      {std::string(name), std::move(labels), std::make_unique<HistogramMetric>(lo, hi, bins)});
  histograms_.index.emplace(key, histograms_.entries.size() - 1);
  return histograms_.entries.back().instrument.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            const MetricLabels& labels) const {
  return counters_.Find(name, labels);
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name, const MetricLabels& labels) const {
  return gauges_.Find(name, labels);
}

const HistogramMetric* MetricsRegistry::FindHistogram(std::string_view name,
                                                      const MetricLabels& labels) const {
  return histograms_.Find(name, labels);
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const MetricLabels&, const Counter&)>& fn) const {
  for (const auto& entry : counters_.entries) {
    fn(entry.name, entry.labels, *entry.instrument);
  }
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const MetricLabels&, const Gauge&)>& fn) const {
  for (const auto& entry : gauges_.entries) {
    fn(entry.name, entry.labels, *entry.instrument);
  }
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const MetricLabels&, const HistogramMetric&)>& fn)
    const {
  for (const auto& entry : histograms_.entries) {
    fn(entry.name, entry.labels, *entry.instrument);
  }
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& entry : other.counters_.entries) {
    GetCounter(entry.name, entry.labels)->Increment(entry.instrument->value());
  }
  for (const auto& entry : other.gauges_.entries) {
    GetGauge(entry.name, entry.labels)->Set(entry.instrument->value());
  }
  for (const auto& entry : other.histograms_.entries) {
    HistogramMetric* mine;
    if (const Histogram* bins = entry.instrument->bins()) {
      mine = GetHistogram(entry.name, entry.labels, bins->BinLow(0), bins->BinHigh(bins->num_bins() - 1),
                          bins->num_bins());
    } else {
      mine = GetHistogram(entry.name, entry.labels);
    }
    mine->Merge(*entry.instrument);
  }
}

}  // namespace centsim
