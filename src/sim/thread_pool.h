// Fixed-size worker pool for embarrassingly-parallel simulation work
// (ensemble replicas, parameter sweeps). Deliberately minimal: a FIFO task
// queue, Submit/Wait, no futures, no work stealing. Determinism is the
// caller's job — the pool guarantees only that every submitted task runs
// exactly once; callers that need a reproducible result must write into
// pre-assigned slots and fold them in a fixed order after Wait().

#ifndef SRC_SIM_THREAD_POOL_H_
#define SRC_SIM_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace centsim {

class ThreadPool {
 public:
  // `threads` == 0 is clamped to 1. The workers start immediately and idle
  // until work arrives.
  explicit ThreadPool(uint32_t threads);
  // Waits for all pending work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task. Tasks must not throw (the simulator is
  // exception-free); a task may Submit further tasks.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far (and any they spawned) has
  // finished. The pool is reusable after Wait().
  void Wait();

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()); }

  // std::thread::hardware_concurrency with a floor of 1 (the standard
  // allows it to report 0 when unknown).
  static uint32_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Work queued, or shutdown.
  std::condition_variable idle_cv_;  // All work drained.
  std::deque<std::function<void()>> queue_;
  uint64_t in_flight_ = 0;  // Queued + currently running tasks.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace centsim

#endif  // SRC_SIM_THREAD_POOL_H_
