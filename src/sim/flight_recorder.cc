#include "src/sim/flight_recorder.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace centsim {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) {
  const size_t cap = RoundUpPow2(capacity < 2 ? 2 : capacity);
  mask_ = cap - 1;
  epoch_ns_ = 0;
  epoch_ns_ = NowNs();  // First call returns absolute ns; re-base to zero.
  cells_ = std::make_unique<Cell[]>(cap);
}

bool FlightRecorder::ReadCell(size_t index, Entry* out) const {
  const Cell& cell = cells_[index & mask_];
  const uint64_t stamp = cell.seq.load(std::memory_order_acquire);
  if (stamp == 0) {
    return false;  // Never written, or the writer is mid-rewrite.
  }
  Entry e;
  e.seq = stamp;
  e.category = reinterpret_cast<const char*>(cell.category.load(std::memory_order_relaxed));
  e.sim_at = SimTime::Micros(static_cast<int64_t>(cell.sim_us.load(std::memory_order_relaxed)));
  e.wall_ns = cell.wall_ns.load(std::memory_order_relaxed);
  e.arg = cell.arg.load(std::memory_order_relaxed);
  // Seqlock validation: if the stamp moved while we read, the fields may
  // mix two generations — reject and let the caller skip the cell.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (cell.seq.load(std::memory_order_relaxed) != stamp) {
    return false;
  }
  *out = e;
  return true;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const size_t cap = capacity();
  const uint64_t first = head > cap ? head - cap : 0;
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(head - first));
  for (uint64_t seq = first; seq < head; ++seq) {
    Entry e;
    if (ReadCell(static_cast<size_t>(seq & mask_), &e) && e.seq == seq + 1) {
      entries.push_back(e);
    }
  }
  return entries;
}

size_t FlightRecorder::DumpTo(int fd) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const size_t cap = capacity();
  const uint64_t first = head > cap ? head - cap : 0;
  size_t written = 0;
  for (uint64_t seq = first; seq < head; ++seq) {
    Entry e;
    if (!ReadCell(static_cast<size_t>(seq & mask_), &e) || e.seq != seq + 1) {
      continue;
    }
    // Categories are string literals from our own sources: no escaping
    // needed beyond trusting them to be plain ASCII identifiers.
    char line[256];
    const int n = std::snprintf(line, sizeof(line),
                                "{\"seq\":%llu,\"category\":\"%s\",\"sim_us\":%lld,"
                                "\"wall_ns\":%llu,\"arg\":%llu}\n",
                                static_cast<unsigned long long>(e.seq),
                                e.category != nullptr ? e.category : "?",
                                static_cast<long long>(e.sim_at.micros()),
                                static_cast<unsigned long long>(e.wall_ns),
                                static_cast<unsigned long long>(e.arg));
    if (n <= 0) {
      continue;
    }
    ssize_t unused = write(fd, line, static_cast<size_t>(n) < sizeof(line)
                                         ? static_cast<size_t>(n)
                                         : sizeof(line) - 1);
    (void)unused;
    ++written;
  }
  return written;
}

}  // namespace centsim
