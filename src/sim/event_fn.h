// EventFn: a move-only `void()` callable with small-buffer storage.
//
// The scheduler fires hundreds of millions of closures per century-scale
// ensemble; `std::function`'s 16-byte libstdc++ buffer forces a heap
// allocation for almost every capture that names more than two locals.
// EventFn widens the inline budget to 48 bytes — enough for every closure
// the simulator schedules today — and only falls back to the heap for
// oversized or potentially-throwing-move captures.
//
// Contract:
//   * Move-only (the scheduler is the single owner of a pending closure).
//   * Moving is always noexcept: inline targets must be nothrow-move-
//     constructible (enforced at compile time via the heap fallback), and
//     heap targets move by pointer swap. This lets std::vector relocate
//     pools of EventFn without the copy-fallback.
//   * Invoking an empty EventFn is undefined (the scheduler never does).

#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace centsim {

class EventFn {
 public:
  // Inline capture budget. 48 bytes holds six pointers/references — a
  // device pointer, a couple of ids, and a time comfortably fit. Alignment
  // is capped at pointer alignment so an EventFn is 56 bytes and a pool
  // slot (EventFn + category) packs into a single 64-byte cache line;
  // over-aligned captures take the heap path.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(runtime/explicit)
    Emplace(std::forward<F>(f));
  }

  // Constructs the target in place (precondition: *this is empty or about
  // to be overwritten — callers on the hot path pass a freshly-Reset
  // EventFn so no destroy dispatch is needed).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void Emplace(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      vtable_ = &InlineVTable<D>::table;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      vtable_ = &HeapVTable<D>::table;
    }
  }

  EventFn(EventFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      MoveFrom(other);
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        MoveFrom(other);
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  // True when the target lives in the inline buffer (no heap allocation).
  // Exposed so tests and the allocation harness can assert the budget.
  bool is_inline() const noexcept { return vtable_ != nullptr && vtable_->inline_storage; }

 private:
  union Storage {
    alignas(kInlineAlign) unsigned char buf[kInlineSize];
    void* heap;
  };

  struct VTable {
    void (*invoke)(Storage&);
    // Move-constructs `to` from `from` and destroys `from`'s target.
    void (*relocate)(Storage& from, Storage& to) noexcept;
    void (*destroy)(Storage&) noexcept;
    bool inline_storage;
    // Trivially copyable+destructible inline target: the hot path skips
    // both dispatches (memcpy to move, nothing to destroy).
    bool trivial;
  };

  template <typename D>
  struct InlineVTable {
    static D& Target(Storage& s) noexcept {
      return *std::launder(reinterpret_cast<D*>(s.buf));
    }
    static void Invoke(Storage& s) { Target(s)(); }
    static void Relocate(Storage& from, Storage& to) noexcept {
      ::new (static_cast<void*>(to.buf)) D(std::move(Target(from)));
      Target(from).~D();
    }
    static void Destroy(Storage& s) noexcept { Target(s).~D(); }
    static constexpr VTable table{Invoke, Relocate, Destroy, /*inline_storage=*/true,
                                  std::is_trivially_copyable_v<D> &&
                                      std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct HeapVTable {
    static D& Target(Storage& s) noexcept { return *static_cast<D*>(s.heap); }
    static void Invoke(Storage& s) { Target(s)(); }
    static void Relocate(Storage& from, Storage& to) noexcept { to.heap = from.heap; }
    static void Destroy(Storage& s) noexcept { delete static_cast<D*>(s.heap); }
    static constexpr VTable table{Invoke, Relocate, Destroy, /*inline_storage=*/false,
                                  /*trivial=*/false};
  };

  void MoveFrom(EventFn& other) noexcept {
    if (vtable_->trivial) {
      storage_ = other.storage_;  // memcpy of the inline buffer.
    } else {
      vtable_->relocate(other.storage_, storage_);
    }
    other.vtable_ = nullptr;
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) {
        vtable_->destroy(storage_);
      }
      vtable_ = nullptr;
    }
  }

  Storage storage_;
  const VTable* vtable_ = nullptr;
};

}  // namespace centsim

#endif  // SRC_SIM_EVENT_FN_H_
