#include "src/sim/shard_coordinator.h"

#include <algorithm>
#include <cassert>

#include "src/sim/scheduler.h"
#include "src/sim/thread_pool.h"

namespace centsim {

namespace {

int64_t MinLaneBound(const std::vector<ShardLane*>& lanes) {
  int64_t bound = INT64_MAX;
  for (ShardLane* lane : lanes) {
    bound = std::min(bound, lane->NextBound().micros());
  }
  return bound;
}

}  // namespace

uint64_t RunShardWindows(ThreadPool& pool, const std::vector<ShardLane*>& lanes,
                         const ShardWindowOptions& options) {
  assert(!lanes.empty());
  assert(options.window.micros() > 0);
  const int64_t horizon = options.horizon.micros();
  const int64_t window = options.window.micros();
  const int64_t every = options.checkpoint_every.micros();

  // Next barrier after `from`, honoring the skip rule and clamps. Always
  // strictly greater than `from` while from < horizon. The skip lands one
  // microsecond BEFORE the lane bound, never on it: a barrier exactly on an
  // un-emitted transition time would let the owning lane apply it one
  // window before the remote lanes see the broadcast, and a checkpoint cut
  // at that barrier would capture the two views inconsistently.
  auto next_barrier = [&](int64_t from) {
    int64_t target = std::max(MinLaneBound(lanes) - 1, from + window);
    // from + window cannot overflow in practice (horizon and W are both
    // bounded by century scale ~3e15 us), but keep the clamp order safe.
    if (target < from) { target = INT64_MAX; }
    int64_t barrier = std::min(target, horizon);
    if (every > 0) {
      const int64_t grid = (from / every + 1) * every;
      if (grid < horizon && barrier > grid) { barrier = grid; }
    }
    return barrier;
  };

  // Setup: no lookahead exists yet, so the first window has fixed width.
  int64_t b1 = std::min(window, horizon);
  if (every > 0 && every < b1) { b1 = every; }
  for (size_t i = 0; i < lanes.size(); ++i) {
    ShardLane* lane = lanes[i];
    pool.Submit([lane, b1] { lane->Setup(SimTime::Micros(b1)); });
  }
  pool.Wait();
  if (options.on_barrier) { options.on_barrier(); }

  int64_t barrier = b1;
  while (true) {
    // Cover: everything a lane publishes this window must fire strictly
    // after the *next* barrier; next_barrier() never exceeds
    // barrier + window, so covering through min(barrier + W, horizon) keeps
    // every cross-shard effect a full window ahead of its fire time.
    const int64_t cover = std::min(barrier + window, horizon);
    for (size_t i = 0; i < lanes.size(); ++i) {
      ShardLane* lane = lanes[i];
      ProgressCell* cell =
          i < options.progress.size() ? options.progress[i] : nullptr;
      pool.Submit([lane, cell, barrier, cover] {
        lane->RunWindow(SimTime::Micros(barrier), SimTime::Micros(cover));
        if (cell != nullptr) {
          Scheduler& s = lane->sched();
          cell->Publish(barrier, s.EarliestPending().micros(), s.executed_count(),
                        s.pending_count(), s.pending_count());
        }
      });
    }
    pool.Wait();
    if (options.on_barrier) { options.on_barrier(); }

    const bool at_grid = every > 0 && barrier % every == 0 && barrier < horizon;
    if (at_grid) {
      for (ShardLane* lane : lanes) { lane->AtCheckpointBarrier(SimTime::Micros(barrier)); }
      if (options.on_checkpoint) { options.on_checkpoint(SimTime::Micros(barrier)); }
    }

    if (options.replica_progress != nullptr) {
      uint64_t executed = 0;
      uint64_t pending = 0;
      for (ShardLane* lane : lanes) {
        executed += lane->sched().executed_count();
        pending += lane->sched().pending_count();
      }
      options.replica_progress->Publish(barrier, MinLaneBound(lanes), executed, pending,
                                        pending);
    }

    if (barrier >= horizon) { break; }
    barrier = next_barrier(barrier);
  }

  uint64_t executed = 0;
  for (size_t i = 0; i < lanes.size(); ++i) {
    const uint64_t lane_executed = lanes[i]->sched().executed_count();
    executed += lane_executed;
    if (i < options.progress.size() && options.progress[i] != nullptr) {
      options.progress[i]->MarkDone(horizon, lane_executed);
    }
  }
  if (options.replica_progress != nullptr) {
    options.replica_progress->MarkDone(horizon, executed);
  }
  return executed;
}

}  // namespace centsim
