#include "src/sim/ensemble.h"

#include <cstdio>
#include <cstdlib>

#include "src/sim/random.h"

namespace centsim {

uint64_t DeriveReplicaSeed(uint64_t base_seed, uint32_t replica_index) {
  // First step whitens the base seed so structured bases (0, 1, 2...) fan
  // out; the second folds in the index scaled by the golden-ratio
  // increment, giving each replica its own SplitMix64 stream.
  uint64_t state = base_seed;
  const uint64_t root = SplitMix64(state);
  state = root ^ ((static_cast<uint64_t>(replica_index) + 1) * 0x9e3779b97f4a7c15ULL);
  return SplitMix64(state);
}

void CheckConfigOrDie(std::string_view experiment, const std::vector<std::string>& diagnostics) {
  if (diagnostics.empty()) {
    return;
  }
  for (const std::string& diagnostic : diagnostics) {
    std::fprintf(stderr, "[%.*s] invalid config: %s\n", static_cast<int>(experiment.size()),
                 experiment.data(), diagnostic.c_str());
  }
  std::abort();
}

}  // namespace centsim
