#include "src/sim/time.h"

#include <cstdio>

namespace centsim {

std::string SimTime::ToString() const {
  char buf[64];
  const double s = ToSeconds();
  if (micros_ == INT64_MAX) {
    return "inf";
  }
  if (s >= 365.25 * 24 * 3600) {
    std::snprintf(buf, sizeof(buf), "%.2fy", ToYears());
  } else if (s >= 24 * 3600) {
    std::snprintf(buf, sizeof(buf), "%.2fd", ToDays());
  } else if (s >= 3600) {
    std::snprintf(buf, sizeof(buf), "%.2fh", ToHours());
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

}  // namespace centsim
