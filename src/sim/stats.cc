#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace centsim {

double NormalQuantile(double p) {
  if (std::isnan(p)) {
    return p;
  }
  if (p <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (p >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Acklam's rational approximation: central region plus two tail maps.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double StudentTQuantile(double p, double df) {
  if (std::isnan(p) || !(df > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (p >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  if (df < 1.5) {
    // df == 1 is Cauchy: exact inverse CDF.
    return std::tan(M_PI * (p - 0.5));
  }
  if (df < 2.5) {
    // df == 2 has a closed form: t = a * sqrt(2 / (1 - a^2)), a = 2p - 1.
    const double alpha = 2.0 * p - 1.0;
    return alpha * std::sqrt(2.0 / (1.0 - alpha * alpha));
  }
  // Cornish-Fisher expansion around the normal quantile (Abramowitz &
  // Stegun 26.7.5); plenty for the df >= min_windows-1 the sampler uses.
  const double z = NormalQuantile(p);
  const double z2 = z * z;
  const double g1 = (z2 + 1.0) * z / 4.0;
  const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
  const double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
  const double g4 =
      ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z / 92160.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df) +
         g4 / (df * df * df * df);
}

void SummaryStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SummaryStats SummaryStats::FromRaw(uint64_t count, double mean, double m2, double min,
                                   double max) {
  SummaryStats s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double SummaryStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.4g sd=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, uint32_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  if (std::isnan(x)) {
    return;  // NaN has no bin; casting it is UB.
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  int64_t bin;
  if (frac <= 0.0) {
    bin = 0;  // Clamp before the cast: huge/infinite frac overflows int64.
  } else if (frac >= 1.0) {
    bin = static_cast<int64_t>(counts_.size()) - 1;
  } else {
    bin = std::clamp<int64_t>(static_cast<int64_t>(frac * static_cast<double>(counts_.size())), 0,
                              static_cast<int64_t>(counts_.size()) - 1);
  }
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

bool Histogram::Merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return true;
}

bool Histogram::RestoreCounts(const std::vector<uint64_t>& counts) {
  if (counts.size() != counts_.size()) {
    return false;
  }
  counts_ = counts;
  total_ = 0;
  for (uint64_t c : counts_) {
    total_ += c;
  }
  return true;
}

double Histogram::BinLow(uint32_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (std::isnan(q)) {
    return q;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  // Only non-empty bins can contain a quantile: skipping empty ones makes
  // q=0 land on the first populated bin's low edge rather than lo_.
  for (uint32_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (counts_[i] > 0 && next >= target) {
      const double inside =
          std::max(0.0, target - cum) / static_cast<double>(counts_[i]);
      return BinLow(i) + inside * (BinHigh(i) - BinLow(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(uint32_t max_rows) const {
  std::string out;
  const uint32_t stride = std::max(1u, num_bins() / std::max(1u, max_rows));
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  for (uint32_t i = 0; i < num_bins(); i += stride) {
    uint64_t c = 0;
    for (uint32_t j = i; j < std::min(num_bins(), i + stride); ++j) {
      c += counts_[j];
    }
    char line[128];
    const int bar = static_cast<int>(40.0 * static_cast<double>(c) /
                                     static_cast<double>(peak * stride));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu |", BinLow(i),
                  BinLow(std::min(num_bins(), i + stride)), static_cast<unsigned long long>(c));
    out += line;
    out.append(static_cast<size_t>(std::max(0, bar)), '#');
    out += '\n';
  }
  return out;
}

void SampleSet::Add(double x) {
  if (std::isnan(x)) {
    return;
  }
  values_.push_back(x);
  sorted_ = false;
}

double SampleSet::Quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (std::isnan(q)) {
    return q;
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[i] * (1.0 - frac) + values_[i + 1] * frac;
}

void SampleSet::RestoreValues(std::vector<double> values) {
  values_ = std::move(values);
  sorted_ = false;
}

double SampleSet::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double SampleSet::Variance() const {
  const size_t n = values_.size();
  if (n < 2) {
    return 0.0;
  }
  // Two-pass: the retained vector makes the numerically stable form free.
  const double mean = Mean();
  double m2 = 0.0;
  for (double v : values_) {
    const double d = v - mean;
    m2 += d * d;
  }
  return m2 / static_cast<double>(n - 1);
}

double SampleSet::StdError() const {
  const size_t n = values_.size();
  if (n < 2) {
    return 0.0;
  }
  return std::sqrt(Variance() / static_cast<double>(n));
}

double SampleSet::CiHalfWidth(double confidence) const {
  const size_t n = values_.size();
  if (n < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double p = 0.5 + 0.5 * std::clamp(confidence, 0.0, 1.0);
  const double t = StudentTQuantile(p, static_cast<double>(n - 1));
  return t * StdError();
}

}  // namespace centsim
