#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace centsim {

void SummaryStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SummaryStats SummaryStats::FromRaw(uint64_t count, double mean, double m2, double min,
                                   double max) {
  SummaryStats s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double SummaryStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

std::string SummaryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.4g sd=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, uint32_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  if (std::isnan(x)) {
    return;  // NaN has no bin; casting it is UB.
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  int64_t bin;
  if (frac <= 0.0) {
    bin = 0;  // Clamp before the cast: huge/infinite frac overflows int64.
  } else if (frac >= 1.0) {
    bin = static_cast<int64_t>(counts_.size()) - 1;
  } else {
    bin = std::clamp<int64_t>(static_cast<int64_t>(frac * static_cast<double>(counts_.size())), 0,
                              static_cast<int64_t>(counts_.size()) - 1);
  }
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

bool Histogram::Merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    return false;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return true;
}

bool Histogram::RestoreCounts(const std::vector<uint64_t>& counts) {
  if (counts.size() != counts_.size()) {
    return false;
  }
  counts_ = counts;
  total_ = 0;
  for (uint64_t c : counts_) {
    total_ += c;
  }
  return true;
}

double Histogram::BinLow(uint32_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (std::isnan(q)) {
    return q;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  // Only non-empty bins can contain a quantile: skipping empty ones makes
  // q=0 land on the first populated bin's low edge rather than lo_.
  for (uint32_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (counts_[i] > 0 && next >= target) {
      const double inside =
          std::max(0.0, target - cum) / static_cast<double>(counts_[i]);
      return BinLow(i) + inside * (BinHigh(i) - BinLow(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(uint32_t max_rows) const {
  std::string out;
  const uint32_t stride = std::max(1u, num_bins() / std::max(1u, max_rows));
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  for (uint32_t i = 0; i < num_bins(); i += stride) {
    uint64_t c = 0;
    for (uint32_t j = i; j < std::min(num_bins(), i + stride); ++j) {
      c += counts_[j];
    }
    char line[128];
    const int bar = static_cast<int>(40.0 * static_cast<double>(c) /
                                     static_cast<double>(peak * stride));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu |", BinLow(i),
                  BinLow(std::min(num_bins(), i + stride)), static_cast<unsigned long long>(c));
    out += line;
    out.append(static_cast<size_t>(std::max(0, bar)), '#');
    out += '\n';
  }
  return out;
}

void SampleSet::Add(double x) {
  if (std::isnan(x)) {
    return;
  }
  values_.push_back(x);
  sorted_ = false;
}

double SampleSet::Quantile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (std::isnan(q)) {
    return q;
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[i] * (1.0 - frac) + values_[i + 1] * frac;
}

void SampleSet::RestoreValues(std::vector<double> values) {
  values_ = std::move(values);
  sorted_ = false;
}

double SampleSet::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

}  // namespace centsim
