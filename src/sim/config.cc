#include "src/sim/config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace centsim {
namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::optional<Config> Config::Parse(const std::string& text, std::string* error) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') {
      continue;
    }
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": malformed section header";
        }
        return std::nullopt;
      }
      section = Trim(trimmed.substr(1, trimmed.size() - 2));
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": expected key = value";
      }
      return std::nullopt;
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": empty key";
      }
      return std::nullopt;
    }
    cfg.values_[section.empty() ? key : section + "." + key] = value;
  }
  return cfg;
}

std::optional<Config> Config::Load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), error);
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && end != it->second.c_str()) ? v : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0' && end != it->second.c_str()) ? v : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string v = Lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") {
    return true;
  }
  if (v == "false" || v == "no" || v == "off" || v == "0") {
    return false;
  }
  return fallback;
}

}  // namespace centsim
