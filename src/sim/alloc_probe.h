// Process-wide heap-allocation probe for tests and benchmarks.
//
// When `alloc_probe.cc` is compiled into a binary, the global operator
// new/new[] overloads count every heap allocation; AllocProbeCount()
// exposes the running total so a test can assert that a region of code —
// e.g. the scheduler's steady-state event loop — performs zero
// allocations. The probe TU is linked only into centsim_tests and
// bench_p1_engine (see their CMake source lists); production binaries keep
// the default operators.
//
// Under ASan/TSan/MSan the replacement operators would shadow the
// sanitizer's instrumented ones, so the probe compiles itself out and
// AllocProbeEnabled() reports false — callers must skip their assertions.

#ifndef SRC_SIM_ALLOC_PROBE_H_
#define SRC_SIM_ALLOC_PROBE_H_

#include <cstdint>

namespace centsim {

// Total operator-new calls observed in this process (0 if disabled).
uint64_t AllocProbeCount();
// True when the counting operators are active in this binary.
bool AllocProbeEnabled();

// Snapshot-delta helper: `AllocScope scope; ...; scope.delta()`.
class AllocScope {
 public:
  AllocScope() : start_(AllocProbeCount()) {}
  uint64_t delta() const { return AllocProbeCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace centsim

#endif  // SRC_SIM_ALLOC_PROBE_H_
