// Discrete-event scheduler.
//
// Events are closures keyed by (time, sequence number); ties in time run in
// schedule order, which makes every run with the same seed bit-for-bit
// deterministic. Cancellation is lazy: a cancelled event stays in the heap
// but is skipped when popped, so cancel is O(1) and pop stays O(log n).

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/profiler.h"
#include "src/sim/time.h"

namespace centsim {

// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Default category for events scheduled without one.
inline constexpr const char* kDefaultEventCategory = "event";

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at`. `at` must be >= Now().
  // `category` labels the event for profiling; it must point at storage
  // that outlives the scheduler (use string literals).
  EventId ScheduleAt(SimTime at, std::function<void()> fn,
                     const char* category = kDefaultEventCategory);
  // Schedules `fn` to run `delay` after Now().
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn,
                        const char* category = kDefaultEventCategory);

  // Attaches (or detaches, with nullptr) an execution profiler. Profiling
  // only observes; it never changes event order or simulation results.
  void SetProfiler(SchedulerProfiler* profiler) { profiler_ = profiler; }
  SchedulerProfiler* profiler() const { return profiler_; }

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or the next event is after
  // `horizon`. The clock finishes at min(horizon, time of last event run)
  // ... precisely: if stopped by the horizon, Now() == horizon afterwards.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime horizon);

  // Runs a single event if one is pending. Returns false if queue is empty.
  bool Step();

  uint64_t pending_count() const { return heap_.size() - cancelled_.size(); }
  uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    EventId id;
    // Heap orders by earliest time, then lowest id (schedule order).
    bool operator>(const Entry& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return id > other.id;
    }
  };

  // Pops and runs the top non-cancelled entry. Precondition: one exists.
  void RunTop();
  // Drops cancelled entries from the top of the heap.
  void SkimCancelled();

  struct Action {
    std::function<void()> fn;
    const char* category;
  };

  SimTime now_;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  SchedulerProfiler* profiler_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<EventId> cancelled_;
  // Closures are stored out-of-heap so Entry stays trivially copyable.
  std::unordered_map<EventId, Action> actions_;
};

// Convenience: a repeating event. Reschedules itself every `period` until
// Stop() is called or the owning scheduler drains past the horizon.
class PeriodicEvent {
 public:
  PeriodicEvent(Scheduler& sched, SimTime period, std::function<void()> fn,
                const char* category = kDefaultEventCategory);
  ~PeriodicEvent();
  PeriodicEvent(const PeriodicEvent&) = delete;
  PeriodicEvent& operator=(const PeriodicEvent&) = delete;

  void Start(SimTime first_delay);
  void Stop();
  bool running() const { return running_; }

 private:
  void Fire();

  Scheduler& sched_;
  SimTime period_;
  std::function<void()> fn_;
  const char* category_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace centsim

#endif  // SRC_SIM_SCHEDULER_H_
