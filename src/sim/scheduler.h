// Discrete-event scheduler.
//
// Events are closures keyed by (time, sequence number); ties in time run in
// schedule order, which makes every run with the same seed bit-for-bit
// deterministic. The storage layer is allocation-free in steady state:
// closures live inline in a slot-indexed EventPool (EventFn small-buffer
// storage, src/sim/event_fn.h), handles are generation-tagged so Cancel is
// a single O(1) comparison, and pending entries sit in a cache-friendly
// 4-ary min-heap. Cancellation is lazy: a cancelled event's heap entry
// stays until popped, where a generation mismatch identifies it as stale.
//
// The heap only ever holds the *near* window of pending events. An
// implicit heap pops through a chain of dependent cache misses that grows
// with its size (~log4 N lines per pop, most of them cold once the heap
// outgrows L2), so events past the near window stage in unsorted,
// time-bucketed rungs (a ladder-queue-style front-end: append-only,
// sequential, O(1) per event) and enter the heap one bucket at a time as
// the clock reaches them. Ordering is untouched — every entry still pops
// in exact (time, seq) order, buckets only bound how many entries compete
// in the heap at once. Queues that never exceed kDirectLoadMax pending
// events skip the rungs entirely and run on the bare heap.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/event_pool.h"
#include "src/sim/profiler.h"
#include "src/sim/run_progress.h"
#include "src/sim/time.h"

namespace centsim {

class MetricsRegistry;
class Counter;
class FlightRecorder;

// Default category for events scheduled without one.
inline constexpr const char* kDefaultEventCategory = "event";

// Point-in-time introspection of a scheduler's queue structure: where the
// pending events sit (near heap, ladder rungs, far stage), how full each
// rung's window is, and the earliest entry still queued. Taken cold (it
// walks rung buckets), rendered to JSON by the run-status layer, and
// dumped by the ensemble watchdog when a replica stalls.
struct SchedulerSnapshot {
  int64_t now_us = 0;
  // Earliest queued entry (possibly a stale/cancelled one — a lower
  // bound); == now_us when the queue is empty.
  int64_t next_event_us = 0;
  bool queue_empty = true;
  uint64_t pending = 0;    // Live (non-cancelled) events.
  uint64_t executed = 0;
  uint64_t late_schedules = 0;
  size_t heap_size = 0;      // Near-window heap entries, stale included.
  size_t staged = 0;         // Entries across rungs and the far stage.
  size_t run_remaining = 0;  // Tail of an active single-timestamp run.
  size_t far_count = 0;

  struct RungInfo {
    int64_t start_us = 0;
    int64_t end_us = 0;    // Exclusive (INT64_MAX = open).
    int64_t width_us = 0;  // Bucket width.
    size_t bucket_count = 0;
    size_t next_bucket = 0;  // First undrained bucket.
    size_t entries = 0;      // Occupancy across all buckets.
  };
  std::vector<RungInfo> rungs;  // Stack order: back() is the earliest window.
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` (any void() callable; captures up to EventFn's inline
  // budget are stored without allocating) to run at absolute time `at`.
  // An `at` in the past is clamped to Now() (and counted — see
  // late_schedule_count()): silently running events before the clock
  // would corrupt causality. `category` labels the event for profiling;
  // it must point at storage that outlives the scheduler (use string
  // literals). The callable is constructed directly in its pool slot —
  // no intermediate EventFn move on the hot path.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAt(SimTime at, F&& fn, const char* category = kDefaultEventCategory) {
    if (at < now_) {
      at = ClampLateSchedule();
    }
    const EventId id = pool_.Acquire(std::forward<F>(fn), category);
    const HeapEntry entry{at, next_seq_++, EventPool::SlotOf(id), EventPool::GenerationOf(id)};
    if (at.micros() < near_limit_) {
      HeapPush(entry);
    } else {
      StagePush(entry);
    }
    ++live_;
    return id;
  }
  // Schedules `fn` to run `delay` after Now().
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAfter(SimTime delay, F&& fn, const char* category = kDefaultEventCategory) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn), category);
  }

  // Attaches (or detaches, with nullptr) an execution profiler. Profiling
  // only observes; it never changes event order or simulation results.
  void SetProfiler(SchedulerProfiler* profiler) { profiler_ = profiler; }
  SchedulerProfiler* profiler() const { return profiler_; }

  // Flight recorder: when attached (and a profiler is too), each profiler
  // timed sample — 1 in SchedulerProfiler::Options::time_sample_every
  // events — also appends (category, sim time, live count) to the ring.
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* flight_recorder() const { return recorder_; }

  // Progress mailbox: when attached (and a profiler is too), each profiler
  // depth sample — 1 in queue_depth_sample_every events — also publishes
  // (sim time, next event, executed, queue depth) for the monitor thread.
  void SetProgressCell(ProgressCell* cell) { progress_ = cell; }
  ProgressCell* progress_cell() const { return progress_; }

  // Wires every hook in one call (nullptr members are skipped, so an
  // already-attached profiler survives hooks carrying none). Detach clears
  // the scheduler slot FIRST — after it returns no watchdog/status thread
  // can reach this scheduler — then the direct pointers.
  void AttachRunControl(const RunControlHooks& hooks);
  void DetachRunControl(const RunControlHooks& hooks);

  // Cold, read-only introspection of queue structure; see SchedulerSnapshot.
  SchedulerSnapshot Snapshot() const;

  // Attaches a metrics registry (nullptr detaches): past-time ScheduleAt
  // clamps are published as the `scheduler.late_schedule` counter. The
  // counter is registered lazily on the first clamp so clean runs emit
  // byte-identical metrics.jsonl with or without this instrument.
  void SetMetrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    late_schedule_metric_ = nullptr;
  }

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed. O(1): a generation comparison.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or the next event is after
  // `horizon`. The clock finishes at min(horizon, time of last event run)
  // ... precisely: if stopped by the horizon, Now() == horizon afterwards.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime horizon);

  // Runs a single event if one is pending. Returns false if queue is empty.
  bool Step();

  // Checkpoint/shard barrier: runs every event at or before `barrier` and
  // leaves the clock exactly there — afterwards no callback is mid-flight
  // and every pending event is strictly later, the quiescent point that
  // snapshots are taken at and shard lanes synchronize on. Drain semantics
  // match RunUntil (which already guarantees Now() == horizon when stopped
  // by it), but this is a real barrier API: it asserts quiescence on exit
  // (EarliestPending() past the barrier), the invariant the conservative
  // shard coordinator's window protocol is built on.
  uint64_t DrainToBarrier(SimTime barrier);

  // Conservative lower bound on the earliest still-queued entry, wherever
  // it sits (active run tail, near heap, ladder rungs, far stage). Stale
  // (cancelled) entries are included — they pin the bound early, never
  // late, which is the safe direction for a lookahead probe. Returns
  // SimTime::Micros(INT64_MAX) when nothing is queued. Cold-ish (may scan
  // one rung's buckets and the far stage): meant for barrier points, not
  // the per-event hot path — that is NextEventLowerBound's job.
  SimTime EarliestPending() const;

  // Restore support: overwrites the clock and counters of an EMPTY
  // scheduler (asserted) so a resumed run continues the saved run's
  // accounting. Pending timers are re-armed afterwards by the snapshot
  // layer's typed timer table; they receive fresh (monotonic) sequence
  // numbers, which preserves their saved relative order.
  void RestoreClock(SimTime now, uint64_t executed, uint64_t late_schedules);

  // The sequence number the NEXT ScheduleAt call will stamp. The snapshot
  // timer table records it per pending timer to reconstruct tie order.
  uint64_t next_sequence() const { return next_seq_; }

  uint64_t pending_count() const { return live_; }
  uint64_t executed_count() const { return executed_; }
  // Number of ScheduleAt calls whose time was in the past and got clamped.
  uint64_t late_schedule_count() const { return late_schedules_; }

 private:
  // One pending (or stale) heap entry. Ordering is (at, seq): seq is the
  // global schedule sequence number, so ties in time run in schedule
  // order. `generation` detects staleness against the slot's current
  // generation when the entry is popped.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;

    bool operator<(const HeapEntry& other) const {
      if (at != other.at) {
        return at < other.at;
      }
      return seq < other.seq;
    }
  };

  // One rung of the staged front-end: a window of future time cut into
  // equal-width buckets. Entries are appended in schedule (seq) order and
  // only ordered — by the 4-ary heap — when their bucket becomes current.
  // rungs_ is a stack: back() covers the earliest remaining window (it was
  // split out of a bucket of the rung below it, and spans that bucket's
  // FULL window so schedules landing anywhere in it keep routing to the
  // child after the parent's cursor has passed); an exhausted rung retires
  // to rung_pool_ with bucket capacity intact, so a scheduler cycling
  // through rungs allocates nothing in steady state.
  struct Rung {
    int64_t start = 0;  // Inclusive, micros.
    int64_t end = 0;    // Exclusive (clamped to INT64_MAX), micros.
    int64_t width = 1;  // Bucket width in micros, >= 1.
    size_t next = 0;    // First undrained bucket.
    std::vector<std::vector<HeapEntry>> buckets;
  };

  // Queues that fit kDirectLoadMax pending entries run on the bare heap;
  // above that, drains go through rungs sized for ~kBucketTargetFill
  // entries per bucket (at most kMaxBuckets buckets), and a bucket holding
  // more than kBucketLoadMax entries is split into a finer rung (unless
  // its width is already one microsecond).
  static constexpr size_t kDirectLoadMax = 512;
  static constexpr size_t kBucketTargetFill = 64;
  static constexpr size_t kBucketLoadMax = 4096;
  static constexpr size_t kMaxBuckets = 1024;

  // 4-ary heap primitives over heap_. Children of i are 4i+1..4i+4: one
  // level of a 4-ary heap spans a single cache line of 24-byte entries,
  // halving the depth (and the dependent-load chain) of a binary heap.
  void HeapPush(const HeapEntry& entry);
  void HeapPopMin();
  void SiftDown(size_t hole, HeapEntry value);

  // Staged front-end. StagePush files an entry at or past near_limit_ into
  // the rung covering its time (or far_). EnsureNext readies the next live
  // entry — the head of the sequential run if one is active, else the heap
  // top — refilling from the stage as needed; false means the queue is
  // empty. A width-one bucket (one timestamp) bypasses the heap entirely:
  // its entries are already in (time, seq) order, so it drains as a
  // sequential run.
  void StagePush(const HeapEntry& entry);
  bool EnsureNext();
  void Advance();
  void LoadIntoNear(std::vector<HeapEntry>& entries);
  // Builds a rung over the inclusive window [win_lo, win_hi] micros; every
  // entry must lie inside it.
  void PushRung(std::vector<HeapEntry>& entries, int64_t win_lo, int64_t win_hi);
  void RetireRung();
  SimTime NextAt() const {
    return run_idx_ < run_.size() ? run_[run_idx_].at : heap_.front().at;
  }
  // Cheap lower bound on the next event's time, for progress publishing:
  // the run head or heap top when present, else Now() (the next event is
  // staged and locating it would mean walking buckets — too hot a path).
  int64_t NextEventLowerBound() const {
    if (run_idx_ < run_.size()) {
      return run_[run_idx_].at.micros();
    }
    if (!heap_.empty()) {
      return heap_.front().at.micros();
    }
    return now_.micros();
  }

  // Pops and runs the top live entry. Precondition: one exists.
  void RunTop();
  // Drops stale (cancelled/superseded) entries from the top of the heap.
  void SkimStale();
  // Cold path of a past-time ScheduleAt: counts and returns Now().
  SimTime ClampLateSchedule();

  SimTime now_;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  uint64_t live_ = 0;  // Pending, non-cancelled events.
  uint64_t late_schedules_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  Counter* late_schedule_metric_ = nullptr;
  SchedulerProfiler* profiler_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  ProgressCell* progress_ = nullptr;
  EventPool pool_;
  std::vector<HeapEntry> heap_;  // The near window, in 4-ary heap order.
  // Entries at micros >= near_limit_ stage in rungs_/far_; everything
  // below it lives in heap_. INT64_MIN stages everything (fresh or fully
  // drained queue); INT64_MAX is bare-heap mode for small queues.
  int64_t near_limit_ = INT64_MIN;
  size_t staged_ = 0;  // Entries (live or stale) across rungs_ and far_.
  std::vector<Rung> rungs_;
  std::vector<Rung> rung_pool_;
  std::vector<HeapEntry> far_;  // Beyond every rung; unsorted, seq order.
  // Active sequential run: a single-timestamp bucket draining in place.
  // Runs strictly before the heap — anything scheduled while it drains
  // shares its timestamp but carries a later seq.
  std::vector<HeapEntry> run_;
  size_t run_idx_ = 0;
};

// Convenience: a repeating event. Reschedules itself every `period` until
// Stop() is called or the owning scheduler drains past the horizon. Each
// firing reuses the stored callback and (via the pool's LIFO free list)
// the same event slot — a running PeriodicEvent allocates nothing.
class PeriodicEvent {
 public:
  PeriodicEvent(Scheduler& sched, SimTime period, EventFn fn,
                const char* category = kDefaultEventCategory);
  ~PeriodicEvent();
  PeriodicEvent(const PeriodicEvent&) = delete;
  PeriodicEvent& operator=(const PeriodicEvent&) = delete;

  void Start(SimTime first_delay);
  void Stop();
  bool running() const { return running_; }

 private:
  void Fire();

  Scheduler& sched_;
  SimTime period_;
  EventFn fn_;
  const char* category_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace centsim

#endif  // SRC_SIM_SCHEDULER_H_
