// Unified metrics registry.
//
// Named, label-tagged instruments — Counter, Gauge, HistogramMetric — owned
// by a MetricsRegistry and shared by every component of a run. Components
// hold raw instrument pointers obtained once at construction; when no
// registry is attached those pointers are null and the inline MetricInc /
// MetricSet / MetricObserve helpers compile down to a single branch, so an
// uninstrumented run pays near-zero overhead.
//
// Identity: (name, label set) names exactly one instrument; asking twice
// returns the same pointer, so a fleet of devices sharing labels shares one
// counter. Keep label cardinality low (tech, outcome, category — not
// device ids) or snapshots become unreadable.
//
// Registries merge (Monte-Carlo ensembles): counters sum, gauges take the
// incoming value, histograms pool their samples.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/stats.h"

namespace centsim {

// A sorted, deduplicated set of (key, value) tags on an instrument.
class MetricLabels {
 public:
  MetricLabels() = default;
  MetricLabels(std::initializer_list<std::pair<std::string, std::string>> kv);

  // Inserts or overwrites one label; keeps the set sorted by key.
  void Set(std::string key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& pairs() const { return kv_; }
  bool empty() const { return kv_.empty(); }

  // Canonical "k1=v1,k2=v2" form; doubles as the identity key.
  std::string ToString() const;

  bool operator==(const MetricLabels& other) const { return kv_ == other.kv_; }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

// Monotonically increasing total. Double-valued so it can carry person-hours
// and joules as naturally as packet counts.
class Counter {
 public:
  void Increment(double n = 1.0) { value_ += n; }
  double value() const { return value_; }
  uint64_t count() const { return static_cast<uint64_t>(value_); }

 private:
  double value_ = 0.0;
};

// Last-written point-in-time value (queue depth, state of charge).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Distribution of observed values: always a SummaryStats; optionally also a
// fixed-bin Histogram when bounds were supplied at creation (enables
// quantile queries in snapshots).
class HistogramMetric {
 public:
  HistogramMetric() = default;
  HistogramMetric(double lo, double hi, uint32_t bins) : bins_(Histogram(lo, hi, bins)) {}

  void Observe(double x) {
    stats_.Add(x);
    if (bins_) {
      bins_->Add(x);
    }
  }

  const SummaryStats& stats() const { return stats_; }
  // Null when the metric was created without bounds.
  const Histogram* bins() const { return bins_ ? &*bins_ : nullptr; }
  uint64_t count() const { return stats_.count(); }

  void Merge(const HistogramMetric& other);
  // Pools pre-aggregated summary stats (no per-sample bins to merge).
  void MergeStats(const SummaryStats& stats) { stats_.Merge(stats); }

  // Checkpoint-restore hooks (src/snapshot): overwrite accumulated state on
  // a freshly created instrument.
  void RestoreStats(const SummaryStats& stats) { stats_ = stats; }
  Histogram* mutable_bins() { return bins_ ? &*bins_ : nullptr; }

 private:
  SummaryStats stats_;
  std::optional<Histogram> bins_;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Returned pointers stay valid for the registry's life.
  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  // Unbounded histogram: summary stats only.
  HistogramMetric* GetHistogram(std::string_view name, MetricLabels labels = {});
  // Bounded histogram: also bins [lo, hi) for quantile queries. Bounds are
  // fixed by whoever creates the instrument first.
  HistogramMetric* GetHistogram(std::string_view name, MetricLabels labels, double lo, double hi,
                                uint32_t bins);

  // Lookup without creation; null if absent.
  const Counter* FindCounter(std::string_view name, const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(std::string_view name, const MetricLabels& labels = {}) const;
  const HistogramMetric* FindHistogram(std::string_view name,
                                       const MetricLabels& labels = {}) const;

  // Snapshot visitation, in creation order (exporters depend on a stable
  // order for reproducible artifacts).
  void VisitCounters(
      const std::function<void(const std::string&, const MetricLabels&, const Counter&)>& fn)
      const;
  void VisitGauges(
      const std::function<void(const std::string&, const MetricLabels&, const Gauge&)>& fn) const;
  void VisitHistograms(const std::function<void(const std::string&, const MetricLabels&,
                                                const HistogramMetric&)>& fn) const;

  // Folds `other` into this registry, creating instruments as needed:
  // counters sum, gauges take other's value, histograms pool.
  void Merge(const MetricsRegistry& other);

  size_t size() const {
    return counters_.entries.size() + gauges_.entries.size() + histograms_.entries.size();
  }

 private:
  template <typename T>
  struct Keyed {
    std::string name;
    MetricLabels labels;
    std::unique_ptr<T> instrument;
  };
  template <typename T>
  struct Family {
    std::vector<Keyed<T>> entries;          // Creation order.
    std::unordered_map<std::string, size_t> index;  // "name|labels" -> entry.

    T* FindOrCreate(std::string_view name, MetricLabels labels);
    T* Find(std::string_view name, const MetricLabels& labels) const;
  };

  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<HistogramMetric> histograms_;
};

// Null-safe instrument helpers: the idiom for hot paths that may run with
// no registry attached.
inline void MetricInc(Counter* c, double n = 1.0) {
  if (c != nullptr) {
    c->Increment(n);
  }
}
inline void MetricSet(Gauge* g, double v) {
  if (g != nullptr) {
    g->Set(v);
  }
}
inline void MetricObserve(HistogramMetric* h, double x) {
  if (h != nullptr) {
    h->Observe(x);
  }
}

}  // namespace centsim

#endif  // SRC_SIM_METRICS_H_
