#include "src/sim/thread_pool.h"

#include <algorithm>
#include <utility>

namespace centsim {

ThreadPool::ThreadPool(uint32_t threads) {
  const uint32_t count = std::max(1u, threads);
  workers_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

uint32_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace centsim
