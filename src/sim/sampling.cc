#include "src/sim/sampling.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace centsim {

const char* SimModeName(SimMode mode) {
  switch (mode) {
    case SimMode::kDetailed:
      return "detailed";
    case SimMode::kSampled:
      return "sampled";
  }
  return "unknown";
}

std::vector<std::string> SamplingPlan::Validate() const {
  std::vector<std::string> problems;
  if (!enabled()) {
    return problems;
  }
  if (detailed_window <= SimTime()) {
    problems.push_back("sampling.detailed_window must be positive");
  }
  if (sample_period <= SimTime()) {
    problems.push_back("sampling.sample_period must be positive");
  }
  if (!(ci_target > 0.0)) {
    problems.push_back("sampling.ci_target must be positive");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    problems.push_back("sampling.confidence must be inside (0, 1)");
  }
  if (min_windows < 2) {
    problems.push_back("sampling.min_windows must be >= 2 (a CI needs variance)");
  }
  if (max_windows != 0 && max_windows < min_windows) {
    problems.push_back("sampling.max_windows must be 0 or >= min_windows");
  }
  return problems;
}

double MetricCi::RelativeHalfWidth() const {
  if (mean == 0.0) {
    return ci_half_width == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return ci_half_width / std::fabs(mean);
}

SamplingController::SamplingController(Scheduler& scheduler, SamplingPlan plan)
    : scheduler_(scheduler), plan_(std::move(plan)) {}

void SamplingController::RegisterDomain(std::string name, FastForwardFn fn) {
  domains_.push_back({std::move(name), std::move(fn)});
}

void SamplingController::TrackMetric(std::string name, const SampleSet* samples) {
  tracked_.push_back({std::move(name), samples});
}

void SamplingController::SetWindowHooks(WindowFn begin, WindowFn end) {
  begin_window_ = std::move(begin);
  end_window_ = std::move(end);
}

bool SamplingController::Converged() const {
  if (tracked_.empty()) {
    return false;
  }
  for (const Tracked& t : tracked_) {
    if (t.samples->count() < plan_.min_windows) {
      return false;
    }
    const double mean = t.samples->Mean();
    const double half = t.samples->CiHalfWidth(plan_.confidence);
    // A zero-variance metric (every window identical) is converged by
    // definition, mean zero or not.
    if (half == 0.0) {
      continue;
    }
    if (mean == 0.0 || half > plan_.ci_target * std::fabs(mean)) {
      return false;
    }
  }
  return true;
}

std::vector<MetricCi> SamplingController::MetricSummaries() const {
  std::vector<MetricCi> out;
  out.reserve(tracked_.size());
  for (const Tracked& t : tracked_) {
    MetricCi ci;
    ci.name = t.name;
    ci.mean = t.samples->Mean();
    const double half = t.samples->CiHalfWidth(plan_.confidence);
    ci.ci_half_width = std::isfinite(half) ? half : 0.0;
    ci.windows = static_cast<uint32_t>(t.samples->count());
    out.push_back(std::move(ci));
  }
  return out;
}

void SamplingController::FastForward(SimTime from, SimTime to) {
  if (to <= from) {
    return;
  }
  for (Domain& d : domains_) {
    d.fn(from, to);
  }
  // The scheduler must be quiescent here: RestoreClock asserts the queue
  // is empty, which is exactly the contract (drivers arm events strictly
  // inside windows, so between windows nothing is pending).
  scheduler_.RestoreClock(to, scheduler_.executed_count(), scheduler_.late_schedule_count());
  outcome_.sim_skipped_us += (to - from).micros();
  PublishProgress(SimMode::kSampled);
}

void SamplingController::PublishProgress(SimMode level) {
  if (progress_ == nullptr) {
    return;
  }
  progress_->PublishSampling(level == SimMode::kSampled ? 1 : 0, outcome_.sim_skipped_us);
  progress_->Publish(scheduler_.Now().micros(), scheduler_.Now().micros(),
                     scheduler_.executed_count(), 0, 0);
}

SamplingOutcome SamplingController::Run(SimTime horizon) {
  outcome_ = SamplingOutcome{};
  SimTime t = scheduler_.Now();
  while (t < horizon) {
    SimTime w1 = t + plan_.detailed_window;
    if (w1 > horizon) {
      w1 = horizon;
    }
    if (begin_window_) {
      begin_window_(t, w1);
    }
    PublishProgress(SimMode::kDetailed);
    scheduler_.DrainToBarrier(w1);
    outcome_.sim_detailed_us += (w1 - t).micros();
    if (end_window_) {
      end_window_(t, w1);
    }
    ++outcome_.windows_measured;
    if (w1 >= horizon) {
      break;
    }
    const bool capped =
        plan_.max_windows != 0 && outcome_.windows_measured >= plan_.max_windows;
    const bool converged = Converged();
    SimTime next;
    if (converged || capped) {
      next = horizon;
    } else {
      next = t + plan_.sample_period;
      if (next < w1) {
        next = w1;  // Period shorter than the window: back-to-back detail.
      }
      if (next > horizon) {
        next = horizon;
      }
    }
    FastForward(w1, next);
    t = next;
  }
  outcome_.converged = Converged();
  PublishProgress(SimMode::kDetailed);
  return outcome_;
}

}  // namespace centsim
