// Lightweight structured trace log for simulation runs.
//
// Components emit (time, severity, component, message) records; sinks decide
// what to keep. The default sink retains records in memory for tests and the
// experiment diary; a stream sink mirrors records to stderr for debugging.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

enum class TraceLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kMaintenance = 2,  // Human action required/taken: feeds the living diary.
  kWarning = 3,
  kFailure = 4,
};

const char* TraceLevelName(TraceLevel level);

struct TraceRecord {
  SimTime at;
  TraceLevel level;
  std::string component;
  std::string message;

  std::string ToString() const;
};

class TraceLog {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  // Records below `min_level` are dropped at emit time.
  explicit TraceLog(TraceLevel min_level = TraceLevel::kInfo) : min_level_(min_level) {}

  // True when a record at `level` would be kept. Callers that build
  // messages (string concatenation, to_string) should check this first so
  // dropped records never pay for construction.
  bool ShouldEmit(TraceLevel level) const { return level >= min_level_; }

  void Emit(SimTime at, TraceLevel level, std::string component, std::string message);

  // Retains every accepted record in memory (for diary extraction / tests).
  void EnableRetention(bool on) { retain_ = on; }
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }
  void set_min_level(TraceLevel level) { min_level_ = level; }

  const std::vector<TraceRecord>& records() const { return records_; }
  uint64_t emitted_count() const { return emitted_; }
  // Records at or above `level`.
  std::vector<TraceRecord> FilterAtLeast(TraceLevel level) const;

 private:
  TraceLevel min_level_;
  bool retain_ = true;
  uint64_t emitted_ = 0;
  std::vector<TraceRecord> records_;
  std::vector<Sink> sinks_;
};

}  // namespace centsim

#endif  // SRC_SIM_TRACE_H_
