// Cross-shard message fabric for the sharded engine: an S×S matrix of
// bounded SPSC inboxes, double-buffered into two planes keyed by window
// parity. During window w every lane pushes into plane (w & 1) and drains
// plane ((w - 1) & 1); the coordinator's main thread flips the write plane
// at each barrier (between ThreadPool::Wait and the next Submit, so the
// flip is ordered by the pool's own synchronization). No plane is ever
// pushed and drained concurrently — the ring atomics are belt-and-braces
// for tooling, not the correctness argument.
//
// Delivery contract (the conservative-synchronization invariant): a message
// published during window w is visible to its destination at the start of
// window w+1, and the shard protocol only publishes effects timestamped
// beyond the *next* barrier (one full window of lookahead), so a drained
// message is always in the receiving lane's future.

#ifndef SRC_SIM_SHARD_BUS_H_
#define SRC_SIM_SHARD_BUS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace centsim {

// POD envelope. `kind`/`a`/`b` are engine-defined (e.g. gateway index and
// transition direction); `at_us` is the simulation time the effect fires.
struct ShardMessage {
  int64_t at_us = 0;
  uint32_t kind = 0;
  uint32_t a = 0;
  uint64_t b = 0;
};

// Bounded single-producer/single-consumer ring with an unbounded spill
// vector behind it. Under the phased plane protocol the consumer only
// drains a quiescent plane, so once the ring fills within a window the
// remainder of that window's messages land in the spill in push order and
// Drain replays ring-then-spill, preserving exact send order.
class SpscInbox {
 public:
  explicit SpscInbox(size_t capacity = kDefaultCapacity) {
    size_t cap = 1;
    while (cap < capacity) { cap <<= 1; }
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  void Push(const ShardMessage& m) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) < ring_.size()) {
      ring_[t & mask_] = m;
      tail_.store(t + 1, std::memory_order_release);
    } else {
      spill_.push_back(m);
      ++spilled_;
    }
    ++pushed_;
  }

  template <class Fn>
  void Drain(Fn&& fn) {
    uint64_t h = head_.load(std::memory_order_relaxed);
    const uint64_t t = tail_.load(std::memory_order_acquire);
    while (h != t) {
      fn(ring_[h & mask_]);
      ++h;
      head_.store(h, std::memory_order_release);
    }
    for (const ShardMessage& m : spill_) { fn(m); }
    spill_.clear();
  }

  uint64_t pushed() const { return pushed_; }
  uint64_t spilled() const { return spilled_; }

  static constexpr size_t kDefaultCapacity = 256;

 private:
  std::vector<ShardMessage> ring_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};  // consumer cursor
  std::atomic<uint64_t> tail_{0};  // producer cursor
  std::vector<ShardMessage> spill_;
  uint64_t pushed_ = 0;   // producer-side; read by the coordinator post-Wait
  uint64_t spilled_ = 0;
};

class ShardBus {
 public:
  explicit ShardBus(uint32_t shards, size_t inbox_capacity = SpscInbox::kDefaultCapacity)
      : shards_(shards) {
    const size_t n = size_t(shards) * shards;
    for (int p = 0; p < 2; ++p) {
      for (size_t i = 0; i < n; ++i) {
        planes_[p].emplace_back(inbox_capacity);
      }
    }
  }

  uint32_t shards() const { return shards_; }

  // Lane `src` (worker thread) publishes onto the current write plane.
  void Send(uint32_t src, uint32_t dst, const ShardMessage& m) {
    Channel(write_plane_, src, dst).Push(m);
  }

  void Broadcast(uint32_t src, const ShardMessage& m) {
    for (uint32_t dst = 0; dst < shards_; ++dst) {
      if (dst != src) { Send(src, dst, m); }
    }
  }

  // Lane `dst` (worker thread) drains the previous window's plane in
  // ascending source order — a fixed, shard-deterministic merge order.
  template <class Fn>
  void DrainInto(uint32_t dst, Fn&& fn) {
    const int read_plane = write_plane_ ^ 1;
    for (uint32_t src = 0; src < shards_; ++src) {
      Channel(read_plane, src, dst).Drain(fn);
    }
  }

  // Main thread only, at a barrier (all lanes quiescent).
  void FlipPlanes() { write_plane_ ^= 1; }

  struct Stats {
    uint64_t pushed = 0;
    uint64_t spilled = 0;
  };
  // Main thread only, post-Wait.
  Stats TotalStats() const {
    Stats s;
    for (int p = 0; p < 2; ++p) {
      for (size_t i = 0; i < size_t(shards_) * shards_; ++i) {
        s.pushed += planes_[p][i].pushed();
        s.spilled += planes_[p][i].spilled();
      }
    }
    return s;
  }

 private:
  SpscInbox& Channel(int plane, uint32_t src, uint32_t dst) {
    return planes_[plane][size_t(src) * shards_ + dst];
  }

  uint32_t shards_;
  int write_plane_ = 0;
  // deque: constructs channels in place, never relocates them (SpscInbox
  // holds atomics and is neither copyable nor movable).
  std::deque<SpscInbox> planes_[2];
};

}  // namespace centsim

#endif  // SRC_SIM_SHARD_BUS_H_
