#include "src/sim/profiler.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "src/sim/metrics.h"

namespace centsim {

namespace {
uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}
}  // namespace

SchedulerProfiler::SchedulerProfiler() : SchedulerProfiler(Options()) {}

SchedulerProfiler::SchedulerProfiler(Options options)
    : options_(options),
      time_countdown_(options.time_sample_every),
      depth_countdown_(options.queue_depth_sample_every),
      epoch_ns_(SteadyNowNs()) {}

uint64_t SchedulerProfiler::NowNs() const { return SteadyNowNs(); }

SchedulerProfiler::CategoryCell& SchedulerProfiler::CellFor(const char* category) {
  if (category == last_category_ && last_cell_ != nullptr) {
    return *last_cell_;
  }
  auto [it, inserted] = cells_.try_emplace(category);
  if (inserted) {
    it->second.category = category;
  }
  last_category_ = category;
  last_cell_ = &it->second;
  return it->second;
}

void SchedulerProfiler::EndEventSlow(const char* category, SimTime at, bool timed,
                                     uint64_t t0_ns, uint64_t t1_ns) {
  CategoryCell& cell = CellFor(category);
  ++cell.count;
  if (timed) {
    const uint64_t dur = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
    ++cell.timed_count;
    cell.timed_wall_ns += static_cast<double>(dur);
    cell.wall_ns.Add(static_cast<double>(dur));
    if (spans_.size() < options_.max_spans) {
      spans_.push_back(Span{category, at, t0_ns - epoch_ns_, dur});
    }
  }
}

void SchedulerProfiler::RecordDepth(SimTime at, uint64_t queue_depth, uint64_t heap_size) {
  depth_samples_.push_back(DepthSample{at, queue_depth, event_index_, heap_size});
}

std::vector<SchedulerProfiler::CategorySnapshot> SchedulerProfiler::Categories() const {
  // Merge cells whose literals have equal text but distinct addresses.
  std::map<std::string, CategorySnapshot> merged;
  for (const auto& [ptr, cell] : cells_) {
    CategorySnapshot& snap = merged[cell.category];
    snap.category = cell.category;
    snap.count += cell.count;
    snap.timed_count += cell.timed_count;
    snap.wall_ns_estimate += cell.timed_count > 0
                                 ? cell.timed_wall_ns * static_cast<double>(cell.count) /
                                       static_cast<double>(cell.timed_count)
                                 : 0.0;
    snap.wall_ns.Merge(cell.wall_ns);
  }
  std::vector<CategorySnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, snap] : merged) {
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const CategorySnapshot& a, const CategorySnapshot& b) { return a.count > b.count; });
  return out;
}

void SchedulerProfiler::ExportTo(MetricsRegistry& registry) const {
  for (const CategorySnapshot& snap : Categories()) {
    MetricLabels labels{{"category", snap.category}};
    registry.GetCounter("sched.events", labels)->Increment(static_cast<double>(snap.count));
    registry.GetHistogram("sched.event_wall_ns", labels)->MergeStats(snap.wall_ns);
    registry.GetCounter("sched.event_wall_ns_total", labels)->Increment(snap.wall_ns_estimate);
  }
  uint64_t peak = 0;
  uint64_t stale_peak = 0;
  for (const DepthSample& s : depth_samples_) {
    peak = std::max(peak, s.depth);
    stale_peak = std::max(stale_peak, s.heap_size > s.depth ? s.heap_size - s.depth : 0);
  }
  registry.GetGauge("sched.queue_depth_peak")->Set(static_cast<double>(peak));
  registry.GetGauge("sched.heap_stale_peak")->Set(static_cast<double>(stale_peak));
  registry.GetCounter("sched.events_total")
      ->Increment(static_cast<double>(events_recorded()));
}

}  // namespace centsim
