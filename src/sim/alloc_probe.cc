#include "src/sim/alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

// Sanitizer builds keep the instrumented default operators.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CENTSIM_ALLOC_PROBE_OFF 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CENTSIM_ALLOC_PROBE_OFF 1
#endif
#endif

namespace centsim {
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

uint64_t AllocProbeCount() { return g_alloc_count.load(std::memory_order_relaxed); }

#if defined(CENTSIM_ALLOC_PROBE_OFF)
bool AllocProbeEnabled() { return false; }
#else
bool AllocProbeEnabled() { return true; }

namespace {
void* CountedAlloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size != 0 ? size : 1) !=
      0) {
    return nullptr;
  }
  return p;
}
}  // namespace
#endif  // !CENTSIM_ALLOC_PROBE_OFF

}  // namespace centsim

#if !defined(CENTSIM_ALLOC_PROBE_OFF)

void* operator new(std::size_t size) {
  if (void* p = centsim::CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return centsim::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return centsim::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = centsim::CountedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return centsim::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return centsim::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // !CENTSIM_ALLOC_PROBE_OFF
