// Live run-control plumbing shared by the scheduler, the experiment
// drivers, and the ensemble engine.
//
// A ProgressCell is one replica's lock-free progress mailbox: the
// scheduler publishes (sim time, executed events, queue depth, next event
// time) into it from the profiler's sampled depth path — the per-event hot
// path is untouched — and the RunStatusMonitor thread reads it on a
// wall-clock cadence to write run_status.json, append heartbeats, and
// detect stalls. RunControlHooks bundles the per-replica observability
// attachments every experiment Config now carries, so EnsembleRunner can
// wire N replicas without per-experiment glue.

#ifndef SRC_SIM_RUN_PROGRESS_H_
#define SRC_SIM_RUN_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace centsim {

class Scheduler;
class SchedulerProfiler;
class FlightRecorder;

// Single-writer (the replica's simulation thread), multi-reader (the
// monitor). Fields are published individually with relaxed stores and
// sequenced by a release increment of `ticks`, so a reader that acquires
// `ticks` sees values at least as fresh as that tick.
struct ProgressCell {
  std::atomic<int64_t> sim_us{0};
  std::atomic<int64_t> next_event_us{0};
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> pending{0};       // Live (non-cancelled) events.
  std::atomic<uint64_t> queue_entries{0}; // Raw heap + staged + run tail.
  std::atomic<uint64_t> ticks{0};         // Publishes so far.
  std::atomic<uint8_t> done{0};
  std::atomic<uint8_t> stalled{0};        // Set by the watchdog, sticky.
  // Sampled-engine columns (src/sim/sampling.h): which time-advance level
  // the replica is currently on (0 = detailed, 1 = fast_forward) and how
  // much simulated time fast-forward has skipped so far. Both stay at
  // their zero defaults under the serial engine, so monitor-side
  // events-per-second math can subtract skipped spans unconditionally.
  std::atomic<uint8_t> mode{0};
  std::atomic<int64_t> sim_skipped_us{0};

  void PublishSampling(uint8_t level, int64_t skipped_us) {
    mode.store(level, std::memory_order_relaxed);
    sim_skipped_us.store(skipped_us, std::memory_order_relaxed);
    // No tick bump: the caller follows with Publish(), whose release
    // increment sequences these stores too.
  }

  void Publish(int64_t now_us, int64_t next_us, uint64_t executed_count, uint64_t live,
               uint64_t entries) {
    sim_us.store(now_us, std::memory_order_relaxed);
    next_event_us.store(next_us, std::memory_order_relaxed);
    executed.store(executed_count, std::memory_order_relaxed);
    pending.store(live, std::memory_order_relaxed);
    queue_entries.store(entries, std::memory_order_relaxed);
    ticks.fetch_add(1, std::memory_order_release);
  }

  // Final publish when the replica's Run() returns.
  void MarkDone(int64_t final_sim_us, uint64_t final_executed) {
    sim_us.store(final_sim_us, std::memory_order_relaxed);
    executed.store(final_executed, std::memory_order_relaxed);
    pending.store(0, std::memory_order_relaxed);
    queue_entries.store(0, std::memory_order_relaxed);
    done.store(1, std::memory_order_relaxed);
    ticks.fetch_add(1, std::memory_order_release);
  }

  // Consistent-enough read for status reporting (tick acquired first).
  struct View {
    uint64_t ticks = 0;
    int64_t sim_us = 0;
    int64_t next_event_us = 0;
    uint64_t executed = 0;
    uint64_t pending = 0;
    uint64_t queue_entries = 0;
    bool done = false;
    bool stalled = false;
    uint8_t mode = 0;  // 0 = detailed, 1 = fast_forward.
    int64_t sim_skipped_us = 0;
  };
  View Load() const {
    View v;
    v.ticks = ticks.load(std::memory_order_acquire);
    v.sim_us = sim_us.load(std::memory_order_relaxed);
    v.next_event_us = next_event_us.load(std::memory_order_relaxed);
    v.executed = executed.load(std::memory_order_relaxed);
    v.pending = pending.load(std::memory_order_relaxed);
    v.queue_entries = queue_entries.load(std::memory_order_relaxed);
    v.done = done.load(std::memory_order_relaxed) != 0;
    v.stalled = stalled.load(std::memory_order_relaxed) != 0;
    v.mode = mode.load(std::memory_order_relaxed);
    v.sim_skipped_us = sim_skipped_us.load(std::memory_order_relaxed);
    return v;
  }
};

// Mutex-guarded registration slot for a live Scheduler pointer. The driver
// sets it while its Simulation exists and clears it before teardown; the
// watchdog locks it to take a best-effort deep SchedulerSnapshot of a
// stalled replica. The lock protects the *lifetime* (no snapshot during
// destruction); reading a genuinely running scheduler is inherently racy
// and only attempted on a replica the watchdog already believes is stuck.
class SchedulerSlot {
 public:
  void Set(Scheduler* sched) {
    std::lock_guard<std::mutex> lock(mu_);
    sched_ = sched;
  }
  // Runs `fn(Scheduler&)` under the lock when a scheduler is registered.
  template <typename Fn>
  bool With(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    if (sched_ == nullptr) {
      return false;
    }
    fn(*sched_);
    return true;
  }

 private:
  std::mutex mu_;
  Scheduler* sched_ = nullptr;
};

// Per-replica observability attachments, all optional and all owned by the
// caller (EnsembleRunner, a bench, or a test). Drivers wire these via
// Scheduler::AttachRunControl; a default-constructed value is inert.
struct RunControlHooks {
  // Execution profiler; heartbeat publishing piggybacks on its sampled
  // depth path, so progress/recorder hooks are only serviced when a
  // profiler is attached.
  SchedulerProfiler* profiler = nullptr;
  FlightRecorder* recorder = nullptr;
  ProgressCell* progress = nullptr;
  SchedulerSlot* scheduler_slot = nullptr;

  bool any() const {
    return profiler != nullptr || recorder != nullptr || progress != nullptr ||
           scheduler_slot != nullptr;
  }
};

}  // namespace centsim

#endif  // SRC_SIM_RUN_PROGRESS_H_
