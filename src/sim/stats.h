// Online statistics helpers used across the simulator and the benches.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace centsim {

// Standard-normal quantile (inverse CDF) via Acklam's rational
// approximation (~1e-9 absolute). p outside (0, 1) returns +/-infinity.
double NormalQuantile(double p);

// Student-t quantile with `df` degrees of freedom: exact for df 1 and 2,
// Cornish-Fisher expansion from the normal quantile for df >= 3 (well
// under 1e-3 for the df >= 7 the sampling controller uses). df <= 0
// returns NaN.
double StudentTQuantile(double p, double df);

// Running mean/variance/min/max via Welford's algorithm. O(1) memory.
class SummaryStats {
 public:
  void Add(double x);
  void Merge(const SummaryStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  // Raw-accumulator access for checkpoint codecs (src/snapshot). These
  // round-trip the exact internal state — including the +/-inf min/max
  // sentinels of an empty accumulator — so a restored object continues the
  // saved one's Welford recurrence bit-identically.
  double m2() const { return m2_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }
  static SummaryStats FromRaw(uint64_t count, double mean, double m2, double min, double max);

  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
// the first/last bin. Supports quantile queries by linear interpolation
// within the containing bin.
class Histogram {
 public:
  Histogram(double lo, double hi, uint32_t bins);

  // NaN samples are ignored (not counted, not binned).
  void Add(double x);
  uint64_t count() const { return total_; }
  uint64_t BinCount(uint32_t bin) const { return counts_[bin]; }
  uint32_t num_bins() const { return static_cast<uint32_t>(counts_.size()); }
  double BinLow(uint32_t bin) const;
  double BinHigh(uint32_t bin) const { return BinLow(bin + 1); }

  // q is clamped into [0, 1]. Edge contract, asserted by sim_stats_test:
  //   empty histogram -> 0;  NaN q -> NaN;
  //   q == 0 -> low edge of the first non-empty bin;
  //   q == 1 -> high edge of the last non-empty bin;
  //   otherwise linear interpolation inside the containing non-empty bin.
  double Quantile(double q) const;

  // Pools `other` into this histogram. Requires identical bounds and bin
  // count; returns false (and leaves this unchanged) on a mismatch.
  bool Merge(const Histogram& other);

  // Overwrites the bin counts from a checkpoint. Returns false (and leaves
  // this unchanged) when the count vector's size does not match num_bins().
  bool RestoreCounts(const std::vector<uint64_t>& counts);

  std::string ToString(uint32_t max_rows = 16) const;

 private:
  double lo_;
  double hi_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

// Exact quantiles over a retained sample vector. Use when the population is
// small enough to keep (fleet-level metrics, per-device lifetimes).
class SampleSet {
 public:
  // NaN samples are ignored (they would poison the sort order).
  void Add(double x);
  uint64_t count() const { return values_.size(); }
  // q is clamped into [0, 1]. Edge contract, asserted by sim_stats_test:
  //   empty set -> 0;  NaN q -> NaN;  single sample -> that sample;
  //   q == 0 -> min;  q == 1 -> max;  otherwise linear interpolation
  //   between the two straddling order statistics. Sorts lazily.
  double Quantile(double q) const;
  double Mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double Variance() const;
  // Standard error of the mean: sqrt(Variance / n); 0 for n < 2.
  double StdError() const;
  // Two-sided confidence-interval half-width for the mean at `confidence`
  // (e.g. 0.95), using the Student-t critical value for the sample's
  // degrees of freedom. +infinity for fewer than 2 samples — an interval
  // nobody has measured yet is unbounded, which is what the sampling
  // controller's convergence test wants. The SMARTS-style sampler
  // (src/sim/sampling.h) feeds one observation per measured window and
  // stops measuring when half-width / |mean| reaches its target.
  double CiHalfWidth(double confidence = 0.95) const;
  const std::vector<double>& values() const { return values_; }

  // Overwrites the retained samples from a checkpoint, preserving the saved
  // insertion order (Quantile re-sorts lazily as usual).
  void RestoreValues(std::vector<double> values);

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace centsim

#endif  // SRC_SIM_STATS_H_
