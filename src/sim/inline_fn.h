// InlineFn<R(Args...)>: a move-only callable with small-buffer storage.
//
// The generalization of EventFn (src/sim/event_fn.h) to arbitrary
// signatures: std::function's 16-byte libstdc++ buffer forces a heap
// allocation for almost every capture that names more than two locals, and
// fleet-scale code paths (one failure hook per device, one per-site closure
// per deployment) cannot afford one allocation per entity. InlineFn widens
// the inline budget to 48 bytes and only falls back to the heap for
// oversized or potentially-throwing-move captures.
//
// EventFn predates this template and stays as the scheduler's dedicated
// `void()` type (its slot layout is load-bearing for the event pool);
// everything else that needs an allocation-free callback uses InlineFn.
//
// Contract (same as EventFn):
//   * Move-only: single ownership of the capture.
//   * Moving is always noexcept: inline targets must be nothrow-move-
//     constructible (enforced via the heap fallback), heap targets move by
//     pointer swap. std::vector<InlineFn> relocates without copy-fallback.
//   * Invoking an empty InlineFn is undefined; test with operator bool.

#ifndef SRC_SIM_INLINE_FN_H_
#define SRC_SIM_INLINE_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace centsim {

template <typename Signature>
class InlineFn;

template <typename R, typename... Args>
class InlineFn<R(Args...)> {
 public:
  // Inline capture budget: six pointers/references, matching EventFn.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(runtime/explicit)
    Emplace(std::forward<F>(f));
  }

  // Constructs the target in place (precondition: *this is empty or about
  // to be overwritten).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  void Emplace(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      vtable_ = &InlineVTable<D>::table;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      vtable_ = &HeapVTable<D>::table;
    }
  }

  InlineFn(InlineFn&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      MoveFrom(other);
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        MoveFrom(other);
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  // True when the target lives in the inline buffer (no heap allocation).
  // Exposed so tests and the allocation harness can assert the budget.
  bool is_inline() const noexcept { return vtable_ != nullptr && vtable_->inline_storage; }

 private:
  union Storage {
    alignas(kInlineAlign) unsigned char buf[kInlineSize];
    void* heap;
  };

  struct VTable {
    R (*invoke)(Storage&, Args&&...);
    // Move-constructs `to` from `from` and destroys `from`'s target.
    void (*relocate)(Storage& from, Storage& to) noexcept;
    void (*destroy)(Storage&) noexcept;
    bool inline_storage;
    // Trivially copyable+destructible inline target: the hot path skips
    // both dispatches (memcpy to move, nothing to destroy).
    bool trivial;
  };

  template <typename D>
  struct InlineVTable {
    static D& Target(Storage& s) noexcept {
      return *std::launder(reinterpret_cast<D*>(s.buf));
    }
    static R Invoke(Storage& s, Args&&... args) {
      return Target(s)(std::forward<Args>(args)...);
    }
    static void Relocate(Storage& from, Storage& to) noexcept {
      ::new (static_cast<void*>(to.buf)) D(std::move(Target(from)));
      Target(from).~D();
    }
    static void Destroy(Storage& s) noexcept { Target(s).~D(); }
    static constexpr VTable table{Invoke, Relocate, Destroy, /*inline_storage=*/true,
                                  std::is_trivially_copyable_v<D> &&
                                      std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct HeapVTable {
    static D& Target(Storage& s) noexcept { return *static_cast<D*>(s.heap); }
    static R Invoke(Storage& s, Args&&... args) {
      return Target(s)(std::forward<Args>(args)...);
    }
    static void Relocate(Storage& from, Storage& to) noexcept { to.heap = from.heap; }
    static void Destroy(Storage& s) noexcept { delete static_cast<D*>(s.heap); }
    static constexpr VTable table{Invoke, Relocate, Destroy, /*inline_storage=*/false,
                                  /*trivial=*/false};
  };

  void MoveFrom(InlineFn& other) noexcept {
    if (vtable_->trivial) {
      storage_ = other.storage_;  // memcpy of the inline buffer.
    } else {
      vtable_->relocate(other.storage_, storage_);
    }
    other.vtable_ = nullptr;
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) {
        vtable_->destroy(storage_);
      }
      vtable_ = nullptr;
    }
  }

  Storage storage_;
  const VTable* vtable_ = nullptr;
};

}  // namespace centsim

#endif  // SRC_SIM_INLINE_FN_H_
