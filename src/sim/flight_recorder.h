// Crash-dump flight recorder: a fixed-capacity ring buffer holding the
// last N scheduler and subsystem events of one replica.
//
// The writer is the replica's simulation thread; an append is a steady
// clock read plus a handful of relaxed atomic stores into a pre-allocated
// cell (O(tens of ns), zero allocation after construction). Readers — the
// ensemble watchdog, the SIGUSR1 status path, and the fatal-signal
// handler — may run on other threads while the writer is live: every cell
// field is an individual atomic and each cell carries a per-cell sequence
// stamp (a seqlock in miniature), so a concurrent dump never sees torn
// entries and never takes a lock the writer could be holding.
//
// Categories are identified by pointer: `category` must be a string
// literal (the same contract as Scheduler::ScheduleAt), so the recorder
// stores the pointer itself and resolves the text at dump time. Dumps to
// JSONL/Perfetto live in src/telemetry (run_status / chrome_trace); the
// raw fd dump below is for fatal-signal paths where malloc is off-limits.

#ifndef SRC_SIM_FLIGHT_RECORDER_H_
#define SRC_SIM_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

class FlightRecorder {
 public:
  // One decoded record, oldest-first in Snapshot() order.
  struct Entry {
    uint64_t seq = 0;        // Monotonic append index (1-based).
    const char* category = nullptr;
    SimTime sim_at;          // Simulated time of the event.
    uint64_t wall_ns = 0;    // Wall offset from recorder construction.
    uint64_t arg = 0;        // One caller-defined argument.
  };

  // `capacity` is rounded up to a power of two; the buffer (and every
  // allocation the recorder will ever make) is created here.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr size_t kDefaultCapacity = 4096;

  // Appends one record. Single writer: only the owning simulation thread
  // may call this. `category` must point at storage that outlives the
  // recorder (string literals).
  void Record(const char* category, SimTime at, uint64_t arg) {
    RecordAt(category, at, arg, NowNs());
  }

  // Append with a caller-supplied wall stamp (offset from this recorder's
  // construction, i.e. the NowNs() clock). Lets a caller that just read
  // the clock for its own purposes — the scheduler's profiler timing
  // branch — avoid a second steady_clock read per sampled event.
  void RecordAt(const char* category, SimTime at, uint64_t arg, uint64_t wall_ns) {
    const uint64_t seq = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[seq & mask_];
    // Invalidate first so a concurrent reader rejects the half-written
    // cell, then publish the new stamp last.
    cell.seq.store(0, std::memory_order_release);
    cell.category.store(reinterpret_cast<uintptr_t>(category), std::memory_order_relaxed);
    cell.sim_us.store(static_cast<uint64_t>(at.micros()), std::memory_order_relaxed);
    cell.wall_ns.store(wall_ns, std::memory_order_relaxed);
    cell.arg.store(arg, std::memory_order_relaxed);
    cell.seq.store(seq + 1, std::memory_order_release);
    head_.store(seq + 1, std::memory_order_release);
  }

  size_t capacity() const { return mask_ + 1; }
  // Records appended over the recorder's lifetime (not the retained count).
  uint64_t total_recorded() const { return head_.load(std::memory_order_acquire); }

  // Decodes the retained window, oldest first. Safe to call from any
  // thread while the writer is live; a cell being overwritten mid-read is
  // detected via its sequence stamp and skipped.
  std::vector<Entry> Snapshot() const;

  // Fatal-signal dump: writes one JSON line per retained entry straight to
  // `fd` with write(2) and stack buffers — no allocation, no locks, no
  // stdio streams. Returns the number of entries written.
  size_t DumpTo(int fd) const;

  // steady_clock reading (ns since its epoch) at construction; converts
  // another instrument's relative timestamps into this recorder's clock.
  uint64_t epoch_ns() const { return epoch_ns_; }

  // Wall nanoseconds since construction (the Entry::wall_ns clock).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count()) -
           epoch_ns_;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};  // 0 = never written / mid-write.
    std::atomic<uintptr_t> category{0};
    std::atomic<uint64_t> sim_us{0};
    std::atomic<uint64_t> wall_ns{0};
    std::atomic<uint64_t> arg{0};
  };

  // Reads one cell; false when the cell is empty or was concurrently
  // rewritten while being read.
  bool ReadCell(size_t index, Entry* out) const;

  size_t mask_ = 0;
  uint64_t epoch_ns_ = 0;
  std::atomic<uint64_t> head_{0};  // Next append index == total recorded.
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace centsim

#endif  // SRC_SIM_FLIGHT_RECORDER_H_
