// SMARTS-style sampled simulation: the multi-level time-advance machine
// (ROADMAP item 2).
//
// A century of µs-resolution events is mostly quiescent duty-cycle
// ticking, so the paper's statistical metrics (weekly uptime, replacement
// cadence, energy outages) do not need every tick simulated. The
// SamplingController alternates two levels of fidelity:
//
//   detailed window   the existing Scheduler runs normally over
//                     [w, w + detailed_window): the driver arms every
//                     domain event that falls inside the window and the
//                     controller drains to the window barrier
//                     (Scheduler::DrainToBarrier, the shard-work API);
//   fast-forward      each registered domain analytically advances its
//                     state over the skipped span (closed-form harvester
//                     integrals, hazard-rate survival walks), then the
//                     controller jumps the quiescent scheduler's clock to
//                     the next sample point (Scheduler::RestoreClock).
//
// Each measured window contributes one observation per tracked metric to
// a SampleSet; per-metric confidence intervals (Student-t, src/sim/stats)
// decide when enough windows have been measured. Once every tracked
// metric's relative CI half-width is inside `ci_target`, the controller
// stops sampling and fast-forwards the remainder of the horizon in one
// span.
//
// Contract with the driver: events armed for a window must fire strictly
// before the window barrier (DrainToBarrier asserts quiescence), and the
// scheduler must be EMPTY between windows — fast-forward moves the clock
// with RestoreClock, which refuses to jump over pending events. Domains
// that key their boundary RNG draws per entity (RandomStream::Derive)
// make the composite trajectory independent of window placement: a
// zero-length fast-forward is a bit-identical no-op and moving a window
// never perturbs another entity's draws.

#ifndef SRC_SIM_SAMPLING_H_
#define SRC_SIM_SAMPLING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/run_progress.h"
#include "src/sim/scheduler.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace centsim {

// Which time-advance machine a run uses. kDetailed is the serial engine
// unchanged; kSampled is the detailed-window / fast-forward alternation.
enum class SimMode : uint8_t {
  kDetailed = 0,
  kSampled = 1,
};

const char* SimModeName(SimMode mode);

// Sampling knobs carried by experiment configs (DistrictConfig,
// CenturyConfig, FiftyYearConfig), styled after SnapshotPlan/ShardPlan: a
// default-constructed plan means "serial engine, byte-for-byte" and every
// golden digest is unchanged.
struct SamplingPlan {
  SimMode mode = SimMode::kDetailed;
  // Length of each measured detailed window.
  SimTime detailed_window = SimTime::Days(7);
  // Distance between successive window *starts*; the gap
  // (sample_period - detailed_window) is fast-forwarded. A period no
  // longer than the window degenerates to back-to-back detailed windows.
  SimTime sample_period = SimTime::Days(70);
  // Relative confidence-interval half-width at which a tracked metric
  // counts as converged (0.01 = +/-1% of the running mean).
  double ci_target = 0.01;
  // Two-sided confidence level for the interval (Student-t).
  double confidence = 0.95;
  // Windows to measure before convergence may be declared; also the
  // minimum sample count for an honest t-interval.
  uint32_t min_windows = 8;
  // Hard cap on measured windows (0 = no cap): after this many windows
  // the controller fast-forwards to the horizon even if some metric's
  // interval is still wide (reported via SamplingOutcome::converged).
  uint32_t max_windows = 0;

  bool enabled() const { return mode == SimMode::kSampled; }

  // Actionable diagnostics (non-positive window, period, target, bad
  // confidence...). Empty means valid. Ignored when the plan is off.
  std::vector<std::string> Validate() const;
};

// What the controller did, for reports and run_status rows.
struct SamplingOutcome {
  uint32_t windows_measured = 0;
  int64_t sim_skipped_us = 0;   // Total span covered by fast-forward.
  int64_t sim_detailed_us = 0;  // Total span covered by the scheduler.
  // True when every tracked metric met ci_target (not when the run hit
  // max_windows or the horizon with intervals still wide).
  bool converged = false;
};

// One tracked metric's converged-interval summary for reports.
struct MetricCi {
  std::string name;
  double mean = 0.0;
  double ci_half_width = 0.0;  // At SamplingPlan::confidence.
  uint32_t windows = 0;        // Observations behind the interval.
  // Relative half-width (half_width / |mean|); +inf when mean == 0.
  double RelativeHalfWidth() const;
};

// The warming -> measurement -> fast-forward machine. Owns no simulation
// state: the driver registers domain fast-forward callbacks and window
// hooks, and keeps ownership of the per-metric SampleSets the controller
// watches for convergence.
class SamplingController {
 public:
  // `fast_forward(from, to)` analytically advances one domain's state
  // over [from, to). Called with from == to never (zero spans are
  // skipped); domains must still make a zero-length call a no-op for the
  // parity tests that invoke them directly.
  using FastForwardFn = std::function<void(SimTime from, SimTime to)>;
  // `begin(window_start, window_end)`: arm every event inside the window.
  // `end(window_start, window_end)`: harvest window metrics into the
  // tracked SampleSets.
  using WindowFn = std::function<void(SimTime window_start, SimTime window_end)>;

  SamplingController(Scheduler& scheduler, SamplingPlan plan);

  void RegisterDomain(std::string name, FastForwardFn fn);
  // `samples` must outlive the controller; one Add per measured window is
  // the expected usage (the controller only reads).
  void TrackMetric(std::string name, const SampleSet* samples);
  void SetWindowHooks(WindowFn begin, WindowFn end);
  // Optional: progress mailbox kept honest while the sampler skips
  // decades (mode + sim_skipped_us columns in run_status.json).
  void AttachProgress(ProgressCell* cell) { progress_ = cell; }

  // Runs the machine from Scheduler::Now() to `horizon`: alternate
  // measured detailed windows with domain fast-forward until every
  // tracked metric converges, then fast-forward the tail in one span.
  // Returns what happened. The scheduler ends at Now() == horizon.
  SamplingOutcome Run(SimTime horizon);

  // True when every tracked metric has >= min_windows observations and a
  // relative CI half-width <= ci_target. Vacuously false with no tracked
  // metrics (the controller then measures every window up to max_windows
  // or the horizon).
  bool Converged() const;

  // Converged-interval summaries for the tracked metrics, in
  // registration order.
  std::vector<MetricCi> MetricSummaries() const;

  const SamplingOutcome& outcome() const { return outcome_; }

 private:
  struct Domain {
    std::string name;
    FastForwardFn fn;
  };
  struct Tracked {
    std::string name;
    const SampleSet* samples = nullptr;
  };

  // Fast-forwards every domain over [from, to) and jumps the (empty)
  // scheduler clock to `to`.
  void FastForward(SimTime from, SimTime to);
  void PublishProgress(SimMode level);

  Scheduler& scheduler_;
  SamplingPlan plan_;
  std::vector<Domain> domains_;
  std::vector<Tracked> tracked_;
  WindowFn begin_window_;
  WindowFn end_window_;
  ProgressCell* progress_ = nullptr;
  SamplingOutcome outcome_;
};

}  // namespace centsim

#endif  // SRC_SIM_SAMPLING_H_
