// Minimal INI-style configuration reader for scenario files.
//
// Format: `[section]` headers, `key = value` pairs, `#` or `;` comments,
// blank lines ignored. Values are retrieved typed, with defaults. Keys are
// addressed as "section.key"; keys before any section live in "".
//
// Used by the examples so experiment definitions can live in versioned
// text files rather than recompiled constants.

#ifndef SRC_SIM_CONFIG_H_
#define SRC_SIM_CONFIG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace centsim {

class Config {
 public:
  // Parses `text`; returns nullopt and sets `error` (if given) on the
  // first malformed line.
  static std::optional<Config> Parse(const std::string& text, std::string* error = nullptr);
  static std::optional<Config> Load(const std::string& path, std::string* error = nullptr);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  void Set(const std::string& key, const std::string& value) { values_[key] = value; }
  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace centsim

#endif  // SRC_SIM_CONFIG_H_
