// Slot-indexed pool of pending events with generation-tagged handles.
//
// Every pending event lives in a fixed slot; the public EventId packs
// (slot | generation) into 64 bits:
//
//     bits 63..32  slot index
//     bits 31..0   generation (1-based; bumped every time the slot is
//                  released, skipping 0 on wrap so no id equals
//                  kInvalidEventId)
//
// Cancellation and cancel-after-fire both collapse to one comparison: an
// id is live iff its generation equals the slot's current generation.
// Stale heap entries (cancelled or superseded) are detected the same way
// when popped, so the scheduler needs no cancelled-id set and no
// id → closure map.
//
// Storage is chunked (512 slots per chunk) so growth never relocates a
// live slot. That stability is load-bearing: the scheduler invokes a
// callback *in place* in its slot, and the callback may itself schedule
// events and grow the pool mid-invocation. Generations live in a separate
// flat array so the scheduler's stale-entry checks touch 4 bytes, not the
// 64-byte closure slot. Slots recycle LIFO through a free list, which
// keeps a self-rescheduling event hot in the same cache lines period
// after period.

#ifndef SRC_SIM_EVENT_POOL_H_
#define SRC_SIM_EVENT_POOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"

namespace centsim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventPool {
 public:
  // Exactly one cache line per slot (EventFn is 56 bytes with its inline
  // buffer; category fills the line) so firing an event touches one line.
  struct alignas(64) Slot {
    EventFn fn;
    const char* category = nullptr;
  };

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  // Constructs `fn` directly in a free slot (no EventFn move) and returns
  // its generation-tagged id.
  template <typename F>
  EventId Acquire(F&& fn, const char* category) {
    if (free_.empty()) {
      Grow();
    }
    const uint32_t slot = free_.back();
    free_.pop_back();
    Slot& s = at(slot);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.Emplace(std::forward<F>(fn));  // Slot fn is empty: safe.
    }
    s.category = category;
    return Pack(slot, generations_[slot]);
  }

  // True iff `id` names a live (acquired, not yet released) event.
  bool IsLive(EventId id) const {
    const uint32_t slot = SlotOf(id);
    return slot < generations_.size() && generations_[slot] == GenerationOf(id);
  }

  // Current generation of a slot (heap staleness checks).
  uint32_t generation(uint32_t slot) const { return generations_[slot]; }

  // Hints that `slot` is about to fire: pulls its closure line and
  // generation line toward the cache. Firing writes both.
  void PrefetchSlot(uint32_t slot) const {
    __builtin_prefetch(&chunks_[slot >> kChunkShift][slot & kChunkMask], 1);
    __builtin_prefetch(&generations_[slot], 1);
  }

  // Releases a live slot: destroys the closure now (captures may pin
  // resources), bumps the generation so every outstanding id and heap
  // entry for it goes stale, and recycles the slot. Precondition: live.
  void Release(uint32_t slot) {
    Slot& s = at(slot);
    s.fn = EventFn();
    s.category = nullptr;
    BumpGeneration(slot);
    free_.push_back(slot);
  }

  // Two-phase release around an in-place invocation. BeginFire invalidates
  // the id (a Cancel from inside the running callback must report false)
  // but keeps the slot off the free list so the executing closure cannot
  // be overwritten by events the callback schedules; FinishFire destroys
  // the closure and recycles the slot afterwards.
  void BeginFire(uint32_t slot) { BumpGeneration(slot); }
  void FinishFire(uint32_t slot) {
    Slot& s = at(slot);
    s.fn = EventFn();
    s.category = nullptr;
    free_.push_back(slot);
  }

  Slot& at(uint32_t slot) { return chunks_[slot >> kChunkShift][slot & kChunkMask]; }
  const Slot& at(uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  size_t capacity() const { return generations_.size(); }
  size_t live_count() const { return generations_.size() - free_.size(); }

  void Reserve(size_t n);

  static constexpr uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static constexpr uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id); }
  static constexpr EventId Pack(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

 private:
  static constexpr uint32_t kChunkShift = 9;  // 512 slots per chunk.
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  void BumpGeneration(uint32_t slot) {
    if (++generations_[slot] == 0) {
      generations_[slot] = 1;  // Skip 0 on wrap: ids must never be kInvalid.
    }
  }

  void Grow();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> generations_;  // Parallel to slots; 1-based.
  std::vector<uint32_t> free_;         // LIFO: most recently released first.
};

}  // namespace centsim

#endif  // SRC_SIM_EVENT_POOL_H_
