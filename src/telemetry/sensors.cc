#include "src/telemetry/sensors.h"

#include <algorithm>
#include <cmath>

#include "src/sim/random.h"

namespace centsim {
namespace {

constexpr double kDaySeconds = 86400.0;
constexpr double kYearSeconds = 365.25 * kDaySeconds;

// Hash -> [0,1) for time-bucketed texture.
double HashUnit(uint64_t seed, int64_t bucket, uint64_t salt) {
  uint64_t s = seed ^ (static_cast<uint64_t>(bucket) * 0x9e3779b97f4a7c15ULL) ^ salt;
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

// Smooth hashed noise: linear interpolation between bucket draws.
double SmoothNoise(uint64_t seed, double t_seconds, double bucket_seconds, uint64_t salt) {
  const double pos = t_seconds / bucket_seconds;
  const int64_t b = static_cast<int64_t>(std::floor(pos));
  const double frac = pos - std::floor(pos);
  const double a = HashUnit(seed, b, salt);
  const double c = HashUnit(seed, b + 1, salt);
  return (a * (1.0 - frac) + c * frac) * 2.0 - 1.0;  // [-1, 1).
}

}  // namespace

const char* SensorKindName(SensorKind kind) {
  switch (kind) {
    case SensorKind::kTemperature:
      return "temperature";
    case SensorKind::kVibration:
      return "vibration";
    case SensorKind::kConcreteHealth:
      return "concrete-health";
    case SensorKind::kAirQuality:
      return "air-quality";
  }
  return "?";
}

SensorModel::SensorModel(SensorKind kind, uint64_t site_seed)
    : kind_(kind), site_seed_(site_seed) {}

double SensorModel::TruthAt(SimTime t) const {
  const double s = t.ToSeconds();
  const double day_frac = std::fmod(s, kDaySeconds) / kDaySeconds;
  const double year_frac = std::fmod(s, kYearSeconds) / kYearSeconds;
  switch (kind_) {
    case SensorKind::kTemperature: {
      // Seasonal 18+-10, diurnal +-6 peaking mid-afternoon, synoptic noise.
      const double season = 18.0 + 10.0 * std::sin(2.0 * M_PI * (year_frac - 0.25));
      const double diurnal = 6.0 * std::sin(2.0 * M_PI * (day_frac - 0.375));
      const double synoptic = 3.0 * SmoothNoise(site_seed_, s, 3.0 * kDaySeconds, 0xA);
      return season + diurnal + synoptic;
    }
    case SensorKind::kVibration: {
      // Rush-hour humps over a daytime plateau, in centi-g scale units.
      auto hump = [&](double center, double width) {
        const double d = (day_frac - center) / width;
        return std::exp(-d * d);
      };
      const double traffic = 0.1 + 0.9 * std::min(1.0, hump(8.0 / 24, 0.05) +
                                                           hump(17.5 / 24, 0.06) + 0.35);
      return 20.0 * traffic * (1.0 + 0.3 * SmoothNoise(site_seed_, s, 600.0, 0xB));
    }
    case SensorKind::kConcreteHealth: {
      // EMI index: drifts down over decades with seasonal moisture wiggle.
      const double years = s / kYearSeconds;
      const double aging = 100.0 * std::exp(-years / 80.0);
      const double moisture = 1.5 * std::sin(2.0 * M_PI * year_frac);
      return aging + moisture;
    }
    case SensorKind::kAirQuality: {
      // PM2.5: diurnal traffic signature + multi-hour pollution episodes.
      const double base = 12.0 + 8.0 * std::max(0.0, std::sin(2.0 * M_PI * (day_frac - 0.3)));
      const double episode = std::max(0.0, SmoothNoise(site_seed_, s, 8.0 * 3600.0, 0xC)) * 40.0;
      return base + episode;
    }
  }
  return 0.0;
}

double SensorModel::MeasureAt(SimTime t) const {
  // +-1% of value plus a small absolute noise floor, hashed per sample.
  const double truth = TruthAt(t);
  const double u = SmoothNoise(site_seed_ ^ 0xF00D, t.ToSeconds(), 1.0, 0xD);
  return truth * (1.0 + 0.01 * u) + 0.05 * u;
}

int16_t SensorModel::MeasureCentiAt(SimTime t) const {
  const double centi = MeasureAt(t) * 100.0;
  return static_cast<int16_t>(std::clamp(centi, -32768.0, 32767.0));
}

double ReconstructionError(const SensorModel& sensor, SimTime interval, SimTime horizon) {
  // Evaluate the zero-order-hold reconstruction on a fine grid.
  const SimTime grid = SimTime::Minutes(10);
  double err_sum = 0.0;
  uint64_t samples = 0;
  double held = sensor.MeasureAt(SimTime());
  SimTime next_sample = interval;
  for (SimTime t; t < horizon; t += grid) {
    while (t >= next_sample) {
      held = sensor.MeasureAt(next_sample);
      next_sample += interval;
    }
    err_sum += std::abs(sensor.TruthAt(t) - held);
    ++samples;
  }
  return samples ? err_sum / static_cast<double>(samples) : 0.0;
}

}  // namespace centsim
