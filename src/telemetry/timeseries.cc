#include "src/telemetry/timeseries.h"

#include <cassert>

namespace centsim {

SummaryStats TimeSeries::Summarize() const {
  SummaryStats s;
  for (const auto& p : points_) {
    s.Add(p.value);
  }
  return s;
}

double TimeSeries::MeanOver(SimTime from, SimTime to) const {
  SummaryStats s;
  for (const auto& p : points_) {
    if (p.at >= from && p.at < to) {
      s.Add(p.value);
    }
  }
  return s.mean();
}

std::vector<TimePoint> TimeSeries::Rebucket(SimTime bucket, SimTime through) const {
  assert(bucket.micros() > 0);
  const uint64_t n = static_cast<uint64_t>(through.micros() / bucket.micros()) + 1;
  std::vector<double> sums(n, 0.0);
  std::vector<uint64_t> counts(n, 0);
  for (const auto& p : points_) {
    if (p.at > through) {
      continue;
    }
    const uint64_t i = static_cast<uint64_t>(p.at.micros() / bucket.micros());
    sums[i] += p.value;
    ++counts[i];
  }
  std::vector<TimePoint> out;
  out.reserve(n);
  double last = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    if (counts[i] > 0) {
      last = sums[i] / static_cast<double>(counts[i]);
    }
    out.push_back({SimTime::Micros(static_cast<int64_t>(i) * bucket.micros()), last});
  }
  return out;
}

BucketedSeries::BucketedSeries(SimTime bucket_width) : width_(bucket_width) {
  assert(bucket_width.micros() > 0);
}

void BucketedSeries::Add(SimTime at, double value) {
  const uint64_t i = static_cast<uint64_t>(at.micros() / width_.micros());
  if (sums_.size() <= i) {
    sums_.resize(i + 1, 0.0);
    counts_.resize(i + 1, 0);
  }
  sums_[i] += value;
  ++counts_[i];
}

double BucketedSeries::BucketMean(uint64_t index, double fallback) const {
  if (index >= sums_.size() || counts_[index] == 0) {
    return fallback;
  }
  return sums_[index] / static_cast<double>(counts_[index]);
}

std::vector<TimePoint> BucketedSeries::AsSeries() const {
  std::vector<TimePoint> out;
  out.reserve(sums_.size());
  for (uint64_t i = 0; i < sums_.size(); ++i) {
    out.push_back({SimTime::Micros(static_cast<int64_t>(i) * width_.micros()),
                   BucketMean(i, 0.0)});
  }
  return out;
}

}  // namespace centsim
