#include "src/telemetry/chrome_trace.h"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/sim/flight_recorder.h"
#include "src/telemetry/json.h"

namespace centsim {

ChromeTraceWriter::ChromeTraceWriter(std::string process_name)
    : process_name_(std::move(process_name)) {}

void ChromeTraceWriter::AddSpan(const std::string& name, double ts_us, double dur_us,
                                uint32_t tid) {
  events_.push_back(Event{'X', name, ts_us, dur_us, 0.0, tid, ""});
}

void ChromeTraceWriter::AddInstant(const std::string& name, double ts_us, uint32_t tid) {
  events_.push_back(Event{'i', name, ts_us, 0.0, 0.0, tid, ""});
}

void ChromeTraceWriter::AddCounter(const std::string& name, double ts_us, double value) {
  events_.push_back(Event{'C', name, ts_us, 0.0, value, 0, ""});
}

void ChromeTraceWriter::SetThreadName(uint32_t tid, const std::string& name) {
  events_.push_back(Event{'M', "thread_name", 0.0, 0.0, 0.0, tid, name});
}

void ChromeTraceWriter::AddProfile(const SchedulerProfiler& profiler) {
  // One tid per category, stable by first appearance.
  std::map<std::string, uint32_t> tids;
  for (const SchedulerProfiler::Span& span : profiler.spans()) {
    auto [it, inserted] = tids.try_emplace(span.category, static_cast<uint32_t>(tids.size()) + 1);
    if (inserted) {
      SetThreadName(it->second, span.category);
    }
    AddSpan(span.category, static_cast<double>(span.wall_start_ns) / 1000.0,
            static_cast<double>(span.wall_ns) / 1000.0, it->second);
  }
  // Queue depth and sim progress vs wall time. Depth samples carry sim
  // time, not wall time; place them by interpolating over the span range
  // (executed-event index maps monotonically onto wall offsets).
  if (!profiler.depth_samples().empty()) {
    const auto& spans = profiler.spans();
    const double wall_end_us =
        spans.empty() ? static_cast<double>(profiler.depth_samples().size())
                      : static_cast<double>(spans.back().wall_start_ns) / 1000.0;
    const uint64_t total_events = profiler.events_recorded();
    for (const SchedulerProfiler::DepthSample& s : profiler.depth_samples()) {
      const double frac = total_events > 0
                              ? static_cast<double>(s.executed) / static_cast<double>(total_events)
                              : 0.0;
      const double ts = frac * wall_end_us;
      AddCounter("queue_depth", ts, static_cast<double>(s.depth));
      AddCounter("sim_years", ts, s.sim_at.ToYears());
    }
  }
}

void ChromeTraceWriter::AddFlightRecording(const FlightRecorder& recorder) {
  std::map<std::string, uint32_t> tids;
  for (const FlightRecorder::Entry& e : recorder.Snapshot()) {
    const std::string category = e.category != nullptr ? e.category : "?";
    auto [it, inserted] = tids.try_emplace(category, static_cast<uint32_t>(tids.size()) + 100);
    if (inserted) {
      SetThreadName(it->second, "recorder:" + category);
    }
    const double ts_us = static_cast<double>(e.wall_ns) / 1000.0;
    AddInstant(category, ts_us, it->second);
    AddCounter("recorder_pending", ts_us, static_cast<double>(e.arg));
  }
}

void ChromeTraceWriter::WriteTo(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  // Process metadata first so viewers name the track correctly.
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
      << JsonEscape(process_name_) << "\"}}";
  for (const Event& e : events_) {
    out << ",";
    switch (e.phase) {
      case 'X':
        out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\"" << JsonEscape(e.name)
            << "\",\"ts\":" << JsonNumber(e.ts_us) << ",\"dur\":" << JsonNumber(e.dur_us) << "}";
        break;
      case 'i':
        out << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\"" << JsonEscape(e.name)
            << "\",\"ts\":" << JsonNumber(e.ts_us) << ",\"s\":\"t\"}";
        break;
      case 'C':
        out << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"" << JsonEscape(e.name)
            << "\",\"ts\":" << JsonNumber(e.ts_us) << ",\"args\":{\"value\":"
            << JsonNumber(e.value) << "}}";
        break;
      case 'M':
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":\"" << JsonEscape(e.name)
            << "\",\"args\":{\"name\":\"" << JsonEscape(e.arg_name) << "\"}}";
        break;
      default:
        out << "null";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool ChromeTraceWriter::FlushFile(const std::string& path, std::string* error) const {
  std::ostringstream out;
  WriteTo(out);
  return AtomicWriteFile(out.str(), path, error);
}

bool ChromeTraceWriter::WriteFile(const std::string& path, std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  WriteTo(out);
  out.close();
  if (out.fail()) {
    if (error != nullptr) {
      *error = "write failed for " + path;
    }
    return false;
  }
  return true;
}

}  // namespace centsim
