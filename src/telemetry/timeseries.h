// Append-only time series with bucketed aggregation, for recording metrics
// (availability, state of charge, delivery rate) across century-scale runs
// without retaining every sample.

#ifndef SRC_TELEMETRY_TIMESERIES_H_
#define SRC_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace centsim {

struct TimePoint {
  SimTime at;
  double value;
};

class TimeSeries {
 public:
  void Add(SimTime at, double value) { points_.push_back({at, value}); }
  const std::vector<TimePoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  SummaryStats Summarize() const;
  // Mean value within [from, to).
  double MeanOver(SimTime from, SimTime to) const;
  // Buckets the series into fixed windows; each bucket is the mean of its
  // samples (empty buckets carry the previous bucket's value, 0 if first).
  std::vector<TimePoint> Rebucket(SimTime bucket, SimTime through) const;

 private:
  std::vector<TimePoint> points_;
};

// Memory-bounded aggregator: accumulates samples directly into fixed
// buckets. Use for fleet-scale runs where a raw TimeSeries would be huge.
class BucketedSeries {
 public:
  explicit BucketedSeries(SimTime bucket_width);

  void Add(SimTime at, double value);
  // Mean of bucket i, or `fallback` if the bucket is empty.
  double BucketMean(uint64_t index, double fallback = 0.0) const;
  uint64_t BucketCount() const { return sums_.size(); }
  SimTime bucket_width() const { return width_; }
  std::vector<TimePoint> AsSeries() const;

 private:
  SimTime width_;
  std::vector<double> sums_;
  std::vector<uint64_t> counts_;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_TIMESERIES_H_
