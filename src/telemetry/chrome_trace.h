// Chrome trace-event output (the JSON Array/Object Format understood by
// chrome://tracing and Perfetto's legacy importer).
//
// The trace's time axis is the simulator's *wall-clock* execution: each
// sampled scheduler event becomes a complete ("X") slice whose ts is the
// wall offset from profiling start and whose dur is the closure's wall
// time, grouped on one thread track per event category. Queue depth and
// simulated years are emitted as counter ("C") tracks so sim progress can
// be read against wall time. Load the file in Perfetto to see where a
// 50-year run actually spends its time.

#ifndef SRC_TELEMETRY_CHROME_TRACE_H_
#define SRC_TELEMETRY_CHROME_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/profiler.h"

namespace centsim {

class FlightRecorder;

class ChromeTraceWriter {
 public:
  // `process_name` labels the single emitted process.
  explicit ChromeTraceWriter(std::string process_name = "centsim");

  // Low-level event builders. Timestamps/durations are microseconds.
  void AddSpan(const std::string& name, double ts_us, double dur_us, uint32_t tid = 1);
  void AddInstant(const std::string& name, double ts_us, uint32_t tid = 1);
  void AddCounter(const std::string& name, double ts_us, double value);
  void SetThreadName(uint32_t tid, const std::string& name);

  // Converts a profiler snapshot: one thread per category carrying its
  // sampled spans, plus queue-depth and sim-years counter tracks.
  void AddProfile(const SchedulerProfiler& profiler);

  // Converts a flight-recorder window: one instant per retained entry on a
  // per-category thread track (ts = wall offset from recorder birth), plus
  // a pending-events counter track from the recorded args. This is the
  // dump-to-Perfetto path for stall/crash forensics.
  void AddFlightRecording(const FlightRecorder& recorder);

  size_t event_count() const { return events_.size(); }

  // Writes {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void WriteTo(std::ostream& out) const;
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;
  // Atomic variant (write-to-tmp + rename) for mid-run flushes: a reader
  // never observes a truncated trace.
  bool FlushFile(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Event {
    char phase;         // 'X', 'i', 'C', 'M'.
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;   // 'X' only.
    double value = 0.0;    // 'C' only.
    uint32_t tid = 1;
    std::string arg_name;  // 'M' only: the metadata payload.
  };

  std::string process_name_;
  std::vector<Event> events_;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_CHROME_TRACE_H_
