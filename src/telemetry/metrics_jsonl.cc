#include "src/telemetry/metrics_jsonl.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/telemetry/json.h"

namespace centsim {
namespace {

void WriteHeader(std::ostream& out, const std::string& name, const char* type,
                 const MetricLabels& labels) {
  out << "{\"name\":\"" << JsonEscape(name) << "\",\"type\":\"" << type << "\",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels.pairs()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << JsonEscape(k) << "\":\"" << JsonEscape(v) << "\"";
  }
  out << "}";
}

}  // namespace

void WriteMetricsJsonl(const MetricsRegistry& registry, std::ostream& out) {
  registry.VisitCounters(
      [&](const std::string& name, const MetricLabels& labels, const Counter& counter) {
        WriteHeader(out, name, "counter", labels);
        out << ",\"value\":" << JsonNumber(counter.value()) << "}\n";
      });
  registry.VisitGauges([&](const std::string& name, const MetricLabels& labels,
                           const Gauge& gauge) {
    WriteHeader(out, name, "gauge", labels);
    out << ",\"value\":" << JsonNumber(gauge.value()) << "}\n";
  });
  registry.VisitHistograms(
      [&](const std::string& name, const MetricLabels& labels, const HistogramMetric& hist) {
        WriteHeader(out, name, "histogram", labels);
        const SummaryStats& s = hist.stats();
        out << ",\"count\":" << s.count() << ",\"mean\":" << JsonNumber(s.mean())
            << ",\"stddev\":" << JsonNumber(s.stddev()) << ",\"min\":" << JsonNumber(s.min())
            << ",\"max\":" << JsonNumber(s.max());
        if (const Histogram* bins = hist.bins()) {
          out << ",\"p50\":" << JsonNumber(bins->Quantile(0.5))
              << ",\"p90\":" << JsonNumber(bins->Quantile(0.9))
              << ",\"p99\":" << JsonNumber(bins->Quantile(0.99));
        }
        out << "}\n";
      });
}

bool FlushMetricsJsonl(const MetricsRegistry& registry, const std::string& path,
                       std::string* error) {
  std::ostringstream out;
  WriteMetricsJsonl(registry, out);
  return AtomicWriteFile(out.str(), path, error);
}

bool WriteMetricsJsonlFile(const MetricsRegistry& registry, const std::string& path,
                           std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  WriteMetricsJsonl(registry, out);
  out.close();
  if (out.fail()) {
    if (error != nullptr) {
      *error = "write failed for " + path;
    }
    return false;
  }
  return true;
}

}  // namespace centsim
