// Minimal JSON utilities for the exporters: string escaping, number
// formatting (finite, round-trippable, no locale), and a strict syntax
// checker used by tests to assert emitted artifacts are well-formed.
//
// This is deliberately not a JSON library — artifacts are written by
// streaming, and the only read path we need is validation.

#ifndef SRC_TELEMETRY_JSON_H_
#define SRC_TELEMETRY_JSON_H_

#include <string>
#include <string_view>

namespace centsim {

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

// Renders a double as a JSON number: shortest round-trip form; non-finite
// values (which JSON cannot represent) render as null.
std::string JsonNumber(double v);

// Strict recursive-descent well-formedness check of one JSON value.
// Returns false and fills `error` (if given) with "offset N: reason".
bool JsonLint(std::string_view text, std::string* error = nullptr);

// Atomically replaces `path` with `content`: writes `path`.tmp, fsync-free
// close, then rename(2) over the target. A concurrent reader (the whole
// point of run_status.json is `watch cat`) sees either the old file or the
// complete new one, never a partial write. False (and `error`) on failure.
bool AtomicWriteFile(const std::string& content, const std::string& path,
                     std::string* error = nullptr);

}  // namespace centsim

#endif  // SRC_TELEMETRY_JSON_H_
