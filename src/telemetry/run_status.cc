#include "src/telemetry/run_status.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {

int64_t ReadRssBytes() {
#ifdef __linux__
  // statm field 2 is resident pages; no allocation-heavy parsing needed.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return -1;
  }
  long long total = 0;
  long long resident = 0;
  const int matched = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (matched != 2) {
    return -1;
  }
  return static_cast<int64_t>(resident) * static_cast<int64_t>(sysconf(_SC_PAGESIZE));
#else
  return -1;
#endif
}

namespace {

// Extracts the `"path"` value from a checkpoint dir's LATEST.json marker
// (written by the snapshot layer only after its snapshot is durable). A
// deliberate ten-line scan, not a snapshot-library dependency: telemetry
// stays below src/snapshot in the layering.
std::string ReadLatestCheckpointPath(const std::string& checkpoint_dir) {
  if (checkpoint_dir.empty()) {
    return "";
  }
  std::ifstream in(checkpoint_dir + "/LATEST.json");
  if (!in) {
    return "";
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const std::string key = "\"path\": \"";
  const size_t start = text.find(key);
  if (start == std::string::npos) {
    return "";
  }
  const size_t value = start + key.size();
  const size_t end = text.find('"', value);
  if (end == std::string::npos) {
    return "";
  }
  return text.substr(value, end - value);
}

std::string ReplicaRowJson(const ReplicaStatusRow& r) {
  std::string out = "{\"index\": " + std::to_string(r.index);
  out += ", \"seed\": " + std::to_string(r.seed);
  out += ", \"sim_us\": " + std::to_string(r.sim_us);
  out += ", \"pct_of_horizon\": " + JsonNumber(r.pct_of_horizon);
  out += ", \"next_event_us\": " + std::to_string(r.next_event_us);
  out += ", \"events_executed\": " + std::to_string(r.executed);
  out += ", \"events_per_sec\": " + JsonNumber(r.events_per_sec);
  out += ", \"pending\": " + std::to_string(r.pending);
  out += ", \"queue_entries\": " + std::to_string(r.queue_entries);
  out += std::string(", \"mode\": \"") +
         (r.mode != 0 ? "fast_forward" : "detailed") + "\"";
  out += ", \"sim_skipped_us\": " + std::to_string(r.sim_skipped_us);
  out += std::string(", \"done\": ") + (r.done ? "true" : "false");
  out += std::string(", \"stalled\": ") + (r.stalled ? "true" : "false");
  if (!r.stall_kind.empty()) {
    out += ", \"stall_kind\": \"" + JsonEscape(r.stall_kind) + "\"";
  }
  if (!r.latest_checkpoint.empty()) {
    out += ", \"latest_checkpoint\": \"" + JsonEscape(r.latest_checkpoint) + "\"";
  }
  if (!r.shards.empty()) {
    out += ", \"shards\": [";
    bool first = true;
    for (const ReplicaStatusRow::ShardRow& sh : r.shards) {
      out += first ? "" : ", ";
      first = false;
      out += "{\"index\": " + std::to_string(sh.index);
      out += ", \"sim_us\": " + std::to_string(sh.sim_us);
      out += ", \"events_executed\": " + std::to_string(sh.executed);
      out += ", \"events_per_sec\": " + JsonNumber(sh.events_per_sec);
      out += std::string(", \"done\": ") + (sh.done ? "true" : "false") + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace

std::string RunStatus::ToJson() const {
  std::string out = "{\n";
  out += "  \"run_name\": \"" + JsonEscape(run_name) + "\",\n";
  out += "  \"experiment\": \"" + JsonEscape(experiment) + "\",\n";
  out += "  \"build\": " + BuildInfoJson() + ",\n";
  out += "  \"wall_seconds\": " + JsonNumber(wall_seconds) + ",\n";
  out += "  \"horizon_us\": " + std::to_string(horizon_us) + ",\n";
  out += "  \"sim_us\": " + std::to_string(sim_us) + ",\n";
  out += "  \"pct_of_horizon\": " + JsonNumber(pct_of_horizon) + ",\n";
  out += "  \"events_executed\": " + std::to_string(events_executed) + ",\n";
  out += "  \"events_per_sec\": " + JsonNumber(events_per_sec) + ",\n";
  out += "  \"device_years_per_sec\": " + JsonNumber(device_years_per_sec) + ",\n";
  out += "  \"eta_seconds\": " + JsonNumber(eta_seconds) + ",\n";
  out += "  \"queue_entries\": " + std::to_string(queue_entries) + ",\n";
  out += "  \"rss_bytes\": " + std::to_string(rss_bytes) + ",\n";
  out += "  \"replicas_done\": " + std::to_string(replicas_done) + ",\n";
  out += "  \"replicas_stalled\": " + std::to_string(replicas_stalled) + ",\n";
  out += "  \"replicas\": [";
  bool first = true;
  for (const ReplicaStatusRow& r : replicas) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += ReplicaRowJson(r);
  }
  out += replicas.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RunStatus::ToJsonLine(const char* event) const {
  std::string out = "{\"event\":\"" + JsonEscape(event != nullptr ? event : "heartbeat") + "\"";
  out += ",\"wall_seconds\":" + JsonNumber(wall_seconds);
  out += ",\"sim_us\":" + std::to_string(sim_us);
  out += ",\"pct_of_horizon\":" + JsonNumber(pct_of_horizon);
  out += ",\"events_executed\":" + std::to_string(events_executed);
  out += ",\"events_per_sec\":" + JsonNumber(events_per_sec);
  out += ",\"device_years_per_sec\":" + JsonNumber(device_years_per_sec);
  out += ",\"eta_seconds\":" + JsonNumber(eta_seconds);
  out += ",\"queue_entries\":" + std::to_string(queue_entries);
  out += ",\"rss_bytes\":" + std::to_string(rss_bytes);
  out += ",\"replicas_done\":" + std::to_string(replicas_done);
  out += ",\"replicas_stalled\":" + std::to_string(replicas_stalled);
  out += "}\n";
  return out;
}

std::string SchedulerSnapshotToJson(const SchedulerSnapshot& snap) {
  std::string out = "{\n";
  out += "  \"now_us\": " + std::to_string(snap.now_us) + ",\n";
  out += "  \"next_event_us\": " + std::to_string(snap.next_event_us) + ",\n";
  out += std::string("  \"queue_empty\": ") + (snap.queue_empty ? "true" : "false") + ",\n";
  out += "  \"pending\": " + std::to_string(snap.pending) + ",\n";
  out += "  \"executed\": " + std::to_string(snap.executed) + ",\n";
  out += "  \"late_schedules\": " + std::to_string(snap.late_schedules) + ",\n";
  out += "  \"heap_size\": " + std::to_string(snap.heap_size) + ",\n";
  out += "  \"staged\": " + std::to_string(snap.staged) + ",\n";
  out += "  \"run_remaining\": " + std::to_string(snap.run_remaining) + ",\n";
  out += "  \"far_count\": " + std::to_string(snap.far_count) + ",\n";
  out += "  \"rungs\": [";
  bool first = true;
  for (const SchedulerSnapshot::RungInfo& r : snap.rungs) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"start_us\": " + std::to_string(r.start_us);
    out += ", \"end_us\": " + std::to_string(r.end_us);
    out += ", \"width_us\": " + std::to_string(r.width_us);
    out += ", \"bucket_count\": " + std::to_string(r.bucket_count);
    out += ", \"next_bucket\": " + std::to_string(r.next_bucket);
    out += ", \"entries\": " + std::to_string(r.entries) + "}";
  }
  out += snap.rungs.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool WriteFlightRecorderJsonl(const FlightRecorder& recorder, const std::string& path,
                              std::string* error) {
  std::ostringstream out;
  for (const FlightRecorder::Entry& e : recorder.Snapshot()) {
    out << "{\"seq\":" << e.seq << ",\"category\":\""
        << JsonEscape(e.category != nullptr ? e.category : "?") << "\",\"sim_us\":"
        << e.sim_at.micros() << ",\"wall_ns\":" << e.wall_ns << ",\"arg\":" << e.arg << "}\n";
  }
  return AtomicWriteFile(out.str(), path, error);
}

RunStatusMonitor::RunStatusMonitor(Options options, std::vector<ReplicaHooks> replicas)
    : options_(std::move(options)),
      replicas_(std::move(replicas)),
      tracks_(replicas_.size()),
      stalled_(replicas_.size(), 0) {}

RunStatusMonitor::~RunStatusMonitor() { Stop(); }

void RunStatusMonitor::Start() {
  if (running_.exchange(true)) {
    return;
  }
  start_ = Clock::now();
  prev_beat_ = start_;
  prev_total_executed_ = 0;
  prev_min_sim_us_ = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const ProgressCell::View v = replicas_[i].cell->Load();
    tracks_[i].last_executed = v.executed;
    tracks_[i].last_sim_us = v.sim_us;
    tracks_[i].last_advance = start_;
    tracks_[i].prev_executed = v.executed;
    tracks_[i].prev_sim_us = v.sim_us;
    const size_t n_shards = replicas_[i].shards.size();
    tracks_[i].shard_last_executed.assign(n_shards, 0);
    tracks_[i].shard_last_sim_us.assign(n_shards, 0);
    tracks_[i].shard_prev_executed.assign(n_shards, 0);
    for (size_t k = 0; k < n_shards; ++k) {
      if (replicas_[i].shards[k].cell == nullptr) {
        continue;
      }
      const ProgressCell::View sv = replicas_[i].shards[k].cell->Load();
      tracks_[i].shard_last_executed[k] = sv.executed;
      tracks_[i].shard_last_sim_us[k] = sv.sim_us;
      tracks_[i].shard_prev_executed[k] = sv.executed;
    }
  }
  thread_ = std::thread([this] { ThreadBody(); });
}

void RunStatusMonitor::Stop() {
  const bool was_running = running_.exchange(false);
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  if (was_running) {
    std::lock_guard<std::mutex> lock(mu_);
    CheckWatchdog();
    Beat("final");
  }
}

void RunStatusMonitor::RequestStatusNow() {
  status_requested_.store(true, std::memory_order_release);
  cv_.notify_all();
}

RunStatus RunStatusMonitor::BuildStatus() {
  std::lock_guard<std::mutex> lock(mu_);
  return BuildStatusLocked(Clock::now());
}

bool RunStatusMonitor::WasStalled(uint32_t index) const {
  return index < stalled_.size() && stalled_[index] != 0;
}

uint32_t RunStatusMonitor::stalled_count() const {
  return stalled_count_.load(std::memory_order_acquire);
}

void RunStatusMonitor::ThreadBody() {
  std::unique_lock<std::mutex> lock(mu_);
  // Wake at a finer granularity than the heartbeat so the watchdog and
  // SIGUSR1 responses stay snappy even with a slow cadence.
  const double tick = std::min(options_.heartbeat_seconds, 0.2);
  while (running_.load(std::memory_order_acquire)) {
    cv_.wait_for(lock, std::chrono::duration<double>(tick > 0.0 ? tick : 0.2));
    if (!running_.load(std::memory_order_acquire)) {
      break;
    }
    CheckWatchdog();
    const bool requested =
        status_requested_.exchange(false, std::memory_order_acq_rel) || ConsumeStatusRequest();
    const double since_beat =
        std::chrono::duration<double>(Clock::now() - prev_beat_).count();
    if (requested || since_beat >= options_.heartbeat_seconds) {
      Beat(requested ? "status_request" : "heartbeat");
    }
  }
}

RunStatus RunStatusMonitor::BuildStatusLocked(Clock::time_point now) {
  RunStatus s;
  s.run_name = options_.run_name;
  s.experiment = options_.experiment;
  s.horizon_us = options_.horizon_us;
  s.wall_seconds = std::chrono::duration<double>(now - start_).count();
  s.rss_bytes = ReadRssBytes();
  const double interval = std::chrono::duration<double>(now - prev_beat_).count();
  int64_t min_sim = INT64_MAX;
  double eta = -1.0;
  bool all_done = !replicas_.empty();
  double sim_us_advanced = 0.0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const ProgressCell::View v = replicas_[i].cell->Load();
    ReplicaStatusRow row;
    row.index = static_cast<uint32_t>(i);
    row.seed = replicas_[i].seed;
    row.sim_us = v.done && options_.horizon_us > 0 ? options_.horizon_us : v.sim_us;
    row.next_event_us = v.next_event_us;
    row.executed = v.executed;
    row.pending = v.pending;
    row.queue_entries = v.queue_entries;
    row.mode = v.mode;
    row.sim_skipped_us = v.sim_skipped_us;
    row.done = v.done;
    row.stalled = stalled_[i] != 0 || v.stalled;
    row.stall_kind = row.stalled ? tracks_[i].stall_kind : "";
    row.latest_checkpoint = ReadLatestCheckpointPath(replicas_[i].checkpoint_dir);
    for (size_t k = 0; k < replicas_[i].shards.size(); ++k) {
      if (replicas_[i].shards[k].cell == nullptr) {
        continue;
      }
      const ProgressCell::View sv = replicas_[i].shards[k].cell->Load();
      ReplicaStatusRow::ShardRow shard;
      shard.index = static_cast<uint32_t>(k);
      shard.sim_us = sv.sim_us;
      shard.executed = sv.executed;
      shard.done = sv.done;
      if (interval > 0.0 && k < tracks_[i].shard_prev_executed.size()) {
        shard.events_per_sec =
            static_cast<double>(sv.executed - tracks_[i].shard_prev_executed[k]) / interval;
      }
      row.shards.push_back(shard);
    }
    if (options_.horizon_us > 0) {
      row.pct_of_horizon =
          v.done ? 100.0
                 : 100.0 * static_cast<double>(row.sim_us) / static_cast<double>(options_.horizon_us);
    }
    if (interval > 0.0) {
      row.events_per_sec =
          static_cast<double>(v.executed - tracks_[i].prev_executed) / interval;
      sim_us_advanced += static_cast<double>(row.sim_us - tracks_[i].prev_sim_us);
      if (!v.done && row.sim_us > tracks_[i].prev_sim_us) {
        const double rate_us =
            static_cast<double>(row.sim_us - tracks_[i].prev_sim_us) / interval;
        const double remaining = static_cast<double>(options_.horizon_us - row.sim_us);
        if (rate_us > 0.0 && remaining > 0.0) {
          eta = std::max(eta, remaining / rate_us);
        }
      }
    }
    s.events_executed += v.executed;
    s.queue_entries += v.queue_entries;
    s.replicas_done += v.done ? 1 : 0;
    s.replicas_stalled += row.stalled ? 1 : 0;
    all_done = all_done && v.done;
    min_sim = std::min(min_sim, row.sim_us);
    s.replicas.push_back(row);
  }
  s.sim_us = min_sim == INT64_MAX ? 0 : min_sim;
  if (options_.horizon_us > 0) {
    s.pct_of_horizon =
        all_done ? 100.0
                 : 100.0 * static_cast<double>(s.sim_us) / static_cast<double>(options_.horizon_us);
  }
  if (interval > 0.0) {
    s.events_per_sec =
        static_cast<double>(s.events_executed - prev_total_executed_) / interval;
    if (options_.devices_per_replica > 0.0) {
      s.device_years_per_sec = SimTime::Micros(static_cast<int64_t>(sim_us_advanced)).ToYears() *
                               options_.devices_per_replica / interval;
    }
  }
  s.eta_seconds = all_done ? 0.0 : eta;
  return s;
}

void RunStatusMonitor::Beat(const char* event) {
  const Clock::time_point now = Clock::now();
  const RunStatus s = BuildStatusLocked(now);
  // Advance the rate window only on real beats.
  for (size_t i = 0; i < s.replicas.size(); ++i) {
    tracks_[i].prev_executed = s.replicas[i].executed;
    tracks_[i].prev_sim_us = s.replicas[i].sim_us;
    for (const ReplicaStatusRow::ShardRow& sh : s.replicas[i].shards) {
      if (sh.index < tracks_[i].shard_prev_executed.size()) {
        tracks_[i].shard_prev_executed[sh.index] = sh.executed;
      }
    }
  }
  prev_total_executed_ = s.events_executed;
  prev_min_sim_us_ = s.sim_us;
  prev_beat_ = now;
  if (options_.status_dir.empty()) {
    return;
  }
  AtomicWriteFile(s.ToJson(), options_.status_dir + "/run_status.json");
  std::ofstream heartbeat(options_.status_dir + "/status.jsonl", std::ios::app);
  if (heartbeat) {
    heartbeat << s.ToJsonLine(event) << std::flush;
  }
}

void RunStatusMonitor::CheckWatchdog() {
  if (options_.stall_deadline_seconds <= 0.0) {
    return;
  }
  const Clock::time_point now = Clock::now();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaTrack& t = tracks_[i];
    const ProgressCell::View v = replicas_[i].cell->Load();
    if (v.done) {
      continue;
    }
    // Progress = sim time OR executed count moved: a long same-timestamp
    // event run is progress, a wedged callback is not. For a sharded
    // replica, any lane moving counts — the replica cell only advances at
    // barriers, and one wedged lane freezes it for everyone.
    bool advanced = v.executed != t.last_executed || v.sim_us != t.last_sim_us;
    t.last_executed = v.executed;
    t.last_sim_us = v.sim_us;
    for (size_t k = 0; k < replicas_[i].shards.size(); ++k) {
      if (replicas_[i].shards[k].cell == nullptr) {
        continue;
      }
      const ProgressCell::View sv = replicas_[i].shards[k].cell->Load();
      if (sv.executed != t.shard_last_executed[k] || sv.sim_us != t.shard_last_sim_us[k]) {
        advanced = true;
      }
      t.shard_last_executed[k] = sv.executed;
      t.shard_last_sim_us[k] = sv.sim_us;
    }
    if (advanced) {
      t.last_advance = now;
      continue;
    }
    const double stuck_for = std::chrono::duration<double>(now - t.last_advance).count();
    if (stuck_for < options_.stall_deadline_seconds || t.dumped) {
      continue;
    }
    t.dumped = true;
    ClassifyStall(i);
    stalled_[i] = 1;
    replicas_[i].cell->stalled.store(1, std::memory_order_release);
    stalled_count_.fetch_add(1, std::memory_order_acq_rel);
    DumpStalledReplica(i);
    Beat("stall");
  }
}

void RunStatusMonitor::ClassifyStall(size_t i) {
  ReplicaTrack& t = tracks_[i];
  t.stall_kind = "replica_stalled";
  t.wedged_shards.clear();
  if (replicas_[i].shards.empty()) {
    return;
  }
  // The laggards are the active (not-done) lanes pinned at the minimum sim
  // time. A strict subset means the others reached the barrier and are
  // waiting on these — the wedge is inside the laggards, not the replica.
  int64_t min_sim = INT64_MAX;
  size_t active = 0;
  for (size_t k = 0; k < replicas_[i].shards.size(); ++k) {
    if (replicas_[i].shards[k].cell == nullptr) {
      continue;
    }
    const ProgressCell::View sv = replicas_[i].shards[k].cell->Load();
    if (sv.done) {
      continue;
    }
    ++active;
    min_sim = std::min(min_sim, sv.sim_us);
  }
  if (active == 0) {
    return;
  }
  for (size_t k = 0; k < replicas_[i].shards.size(); ++k) {
    if (replicas_[i].shards[k].cell == nullptr) {
      continue;
    }
    const ProgressCell::View sv = replicas_[i].shards[k].cell->Load();
    if (!sv.done && sv.sim_us == min_sim) {
      t.wedged_shards.push_back(k);
    }
  }
  if (t.wedged_shards.size() < active) {
    t.stall_kind = "shard_wedged";
  } else {
    t.wedged_shards.clear();
  }
}

void RunStatusMonitor::DumpStalledReplica(size_t i) {
  if (options_.status_dir.empty()) {
    return;
  }
  const std::string base = options_.status_dir + "/replica_" + std::to_string(i);
  for (const size_t k : tracks_[i].wedged_shards) {
    if (replicas_[i].shards[k].recorder != nullptr) {
      WriteFlightRecorderJsonl(*replicas_[i].shards[k].recorder,
                               base + "_shard_" + std::to_string(k) + "_flight.jsonl");
    }
  }
  if (replicas_[i].recorder != nullptr) {
    WriteFlightRecorderJsonl(*replicas_[i].recorder, base + "_flight.jsonl");
    ChromeTraceWriter trace("replica_" + std::to_string(i));
    trace.AddFlightRecording(*replicas_[i].recorder);
    trace.FlushFile(base + "_flight_trace.json");
  }
  if (options_.deep_stall_snapshot && replicas_[i].scheduler_slot != nullptr) {
    // Best-effort: the replica may genuinely still be running. The slot's
    // lock only guarantees the Scheduler object is alive, not quiescent —
    // fields may be mid-update, and the resulting snapshot approximate.
    // That is the right trade for a stall dump.
    std::string snapshot_json;
    replicas_[i].scheduler_slot->With(
        [&](Scheduler& sched) { snapshot_json = SchedulerSnapshotToJson(sched.Snapshot()); });
    if (!snapshot_json.empty()) {
      AtomicWriteFile(snapshot_json, base + "_sched.json");
    }
  }
  // Recovery note: name the newest durable checkpoint so whoever kills
  // this wedged run knows exactly what to resume from.
  if (!replicas_[i].checkpoint_dir.empty()) {
    const std::string latest = ReadLatestCheckpointPath(replicas_[i].checkpoint_dir);
    std::string note = "{\n";
    note += "  \"stalled_replica\": " + std::to_string(i) + ",\n";
    note += "  \"checkpoint_dir\": \"" + JsonEscape(replicas_[i].checkpoint_dir) + "\",\n";
    note += "  \"latest_checkpoint\": \"" + JsonEscape(latest) + "\",\n";
    note += std::string("  \"resume_hint\": \"re-run with snapshot.resume_latest (or ") +
            "EnsembleOptions.resume_from_checkpoint) to continue from the checkpoint above\"\n";
    note += "}\n";
    AtomicWriteFile(note, base + "_recovery.json");
  }
}

// ---------------------------------------------------------------------------
// Signal plumbing.

namespace {

std::atomic<bool> g_status_requested{false};
std::atomic<bool> g_status_handler_installed{false};

void StatusSignalHandler(int /*sig*/) {
  g_status_requested.store(true, std::memory_order_release);
}

constexpr int kMaxCrashSlots = 64;
struct CrashSlot {
  std::atomic<const FlightRecorder*> recorder{nullptr};
  char path[512] = {0};
};
CrashSlot g_crash_slots[kMaxCrashSlots];
std::mutex g_crash_mu;  // Serializes register/unregister, never the handler.
std::atomic<void (*)(void*)> g_flush_fn{nullptr};
std::atomic<void*> g_flush_ctx{nullptr};
std::atomic<bool> g_crash_handlers_installed{false};

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

// Async-signal-safe dump pass: atomics + open/write/close only.
size_t DumpAllCrashSlots() {
  size_t dumped = 0;
  for (CrashSlot& slot : g_crash_slots) {
    const FlightRecorder* recorder = slot.recorder.load(std::memory_order_acquire);
    if (recorder == nullptr) {
      continue;
    }
    const int fd = open(slot.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      continue;
    }
    recorder->DumpTo(fd);
    close(fd);
    ++dumped;
  }
  return dumped;
}

void CrashSignalHandler(int sig) {
  DumpAllCrashSlots();
  void (*fn)(void*) = g_flush_fn.load(std::memory_order_acquire);
  if (fn != nullptr) {
    fn(g_flush_ctx.load(std::memory_order_acquire));
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void InstallStatusSignalHandler() {
  if (g_status_handler_installed.exchange(true)) {
    return;
  }
  struct sigaction action = {};
  action.sa_handler = StatusSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
}

bool ConsumeStatusRequest() {
  return g_status_requested.exchange(false, std::memory_order_acq_rel);
}

void InstallCrashSignalHandlers() {
  if (g_crash_handlers_installed.exchange(true)) {
    return;
  }
  struct sigaction action = {};
  action.sa_handler = CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  for (const int sig : kFatalSignals) {
    sigaction(sig, &action, nullptr);
  }
}

int RegisterCrashDump(const FlightRecorder* recorder, const std::string& path) {
  if (recorder == nullptr || path.empty() || path.size() >= sizeof(CrashSlot{}.path)) {
    return -1;
  }
  std::lock_guard<std::mutex> lock(g_crash_mu);
  for (int i = 0; i < kMaxCrashSlots; ++i) {
    if (g_crash_slots[i].recorder.load(std::memory_order_relaxed) != nullptr) {
      continue;
    }
    // Path first, then publish the recorder: a handler firing mid-register
    // either skips the slot or sees a complete one.
    std::snprintf(g_crash_slots[i].path, sizeof(g_crash_slots[i].path), "%s", path.c_str());
    g_crash_slots[i].recorder.store(recorder, std::memory_order_release);
    InstallCrashSignalHandlers();
    return i;
  }
  return -1;  // Registry full; dump coverage degrades, the run continues.
}

void UnregisterCrashDump(int token) {
  if (token < 0 || token >= kMaxCrashSlots) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_crash_slots[token].recorder.store(nullptr, std::memory_order_release);
}

void SetCrashFlushHook(void (*fn)(void*), void* ctx) {
  g_flush_ctx.store(ctx, std::memory_order_release);
  g_flush_fn.store(fn, std::memory_order_release);
}

size_t DumpRegisteredCrashRecorders() {
  const size_t dumped = DumpAllCrashSlots();
  void (*fn)(void*) = g_flush_fn.load(std::memory_order_acquire);
  if (fn != nullptr) {
    fn(g_flush_ctx.load(std::memory_order_acquire));
  }
  return dumped;
}

}  // namespace centsim
