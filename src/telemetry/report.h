// Aligned-text table printer used by the bench harness to regenerate the
// paper's reported rows, and small formatting helpers.

#ifndef SRC_TELEMETRY_REPORT_H_
#define SRC_TELEMETRY_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace centsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cells beyond the header count are dropped; missing cells print empty.
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string FormatDouble(double v, int precision = 2);
std::string FormatCount(uint64_t v);     // Thousands separators.
std::string FormatUsd(double v);
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace centsim

#endif  // SRC_TELEMETRY_REPORT_H_
