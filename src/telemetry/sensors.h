// Physical sensor models: what the transmit-only devices actually measure.
// Each model is a deterministic function of simulated time plus hashed
// per-site texture, so fleets produce correlated-but-distinct readings and
// the endpoint's data is real enough to evaluate application-level
// fidelity (sampling-rate vs reconstruction error).

#ifndef SRC_TELEMETRY_SENSORS_H_
#define SRC_TELEMETRY_SENSORS_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace centsim {

enum class SensorKind : uint8_t {
  kTemperature,     // Street-level air temperature (centi-degC).
  kVibration,       // Traffic-induced RMS vibration (centi-g).
  kConcreteHealth,  // PZT electromechanical-impedance index (paper [34]).
  kAirQuality,      // PM2.5-like concentration (centi-ug/m^3).
};

const char* SensorKindName(SensorKind kind);

class SensorModel {
 public:
  SensorModel(SensorKind kind, uint64_t site_seed);

  // Ground-truth value at time t (units above, as a double).
  double TruthAt(SimTime t) const;

  // A measurement: truth plus hashed, zero-mean noise — still a pure
  // function of (site, t), so replays are reproducible.
  double MeasureAt(SimTime t) const;

  // Quantized for the 12-byte report's int16 field.
  int16_t MeasureCentiAt(SimTime t) const;

  SensorKind kind() const { return kind_; }

 private:
  SensorKind kind_;
  uint64_t site_seed_;
};

// Application fidelity: sample the truth every `interval`, reconstruct by
// zero-order hold, and report the mean absolute reconstruction error over
// `horizon`. This is what "is hourly reporting enough?" means for a given
// phenomenon, and why air quality (fast, local) demands density and rate
// that slow phenomena (concrete health) do not.
double ReconstructionError(const SensorModel& sensor, SimTime interval, SimTime horizon);

}  // namespace centsim

#endif  // SRC_TELEMETRY_SENSORS_H_
