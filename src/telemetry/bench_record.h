// BENCH_*.json perf records: the machine-readable counterpart of a bench
// binary's console tables, so perf PRs can diff runs instead of quoting
// anecdotes.
//
// Each bench writes one `BENCH_<name>.json` file:
//   {"bench":"e1_fifty_year","library_version":"...","records":[
//     {"name":"events_per_sec","value":1.2e6,"unit":"1/s"}, ...],
//    "manifest":{...}}   // optional RunManifest of the measured run.

#ifndef SRC_TELEMETRY_BENCH_RECORD_H_
#define SRC_TELEMETRY_BENCH_RECORD_H_

#include <optional>
#include <string>
#include <vector>

#include "src/telemetry/run_manifest.h"

namespace centsim {

struct BenchRecord {
  std::string name;
  double value = 0.0;
  std::string unit;  // "1/s", "s", "%", "count", ...
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void Add(std::string name, double value, std::string unit) {
    records_.push_back({std::move(name), value, std::move(unit)});
  }
  void SetManifest(RunManifest manifest) { manifest_ = std::move(manifest); }

  const std::string& bench_name() const { return bench_name_; }
  const std::vector<BenchRecord>& records() const { return records_; }

  std::string ToJson() const;
  // Writes BENCH_<bench_name>.json under `dir` (default: cwd). Returns the
  // path written, or empty on failure.
  std::string WriteFile(const std::string& dir = ".", std::string* error = nullptr) const;

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
  std::optional<RunManifest> manifest_;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_BENCH_RECORD_H_
