#include "src/telemetry/bench_record.h"

#include <fstream>

#include "src/telemetry/json.h"

namespace centsim {

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"bench\": \"" + JsonEscape(bench_name_) + "\",\n";
  out += "  \"library_version\": \"" + JsonEscape(std::string(kCentsimVersion)) + "\",\n";
  out += "  \"records\": [";
  bool first = true;
  for (const BenchRecord& r : records_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n    {\"name\": \"" + JsonEscape(r.name) + "\", \"value\": " + JsonNumber(r.value) +
           ", \"unit\": \"" + JsonEscape(r.unit) + "\"}";
  }
  out += "\n  ]";
  if (manifest_.has_value()) {
    // Indent the manifest's own JSON under a "manifest" key.
    std::string manifest_json = manifest_->ToJson();
    if (!manifest_json.empty() && manifest_json.back() == '\n') {
      manifest_json.pop_back();
    }
    out += ",\n  \"manifest\": " + manifest_json;
  }
  out += "\n}\n";
  return out;
}

std::string BenchReport::WriteFile(const std::string& dir, std::string* error) const {
  const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return "";
  }
  out << ToJson();
  out.close();
  if (out.fail()) {
    if (error != nullptr) {
      *error = "write failed for " + path;
    }
    return "";
  }
  return path;
}

}  // namespace centsim
