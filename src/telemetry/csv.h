// Minimal RFC-4180-style CSV writer for exporting bench series.

#ifndef SRC_TELEMETRY_CSV_H_
#define SRC_TELEMETRY_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace centsim {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void WriteRow(const std::vector<std::string>& cells);

  // Quotes a cell if it contains a comma, quote, or newline.
  static std::string Escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_CSV_H_
