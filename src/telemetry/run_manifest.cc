#include "src/telemetry/run_manifest.h"

#include <cstdio>
#include <fstream>

#include "src/telemetry/json.h"

namespace centsim {

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string ConfigDigest(std::string_view config_text) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(config_text)));
  return buf;
}

#ifndef CENTSIM_GIT_SHA
#define CENTSIM_GIT_SHA "unknown"
#endif
#ifndef CENTSIM_BUILD_TYPE
#define CENTSIM_BUILD_TYPE ""
#endif
#ifndef CENTSIM_SANITIZERS
#define CENTSIM_SANITIZERS "none"
#endif

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{CENTSIM_GIT_SHA, CENTSIM_BUILD_TYPE, CENTSIM_SANITIZERS};
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  std::string out = "{\"git_sha\": \"" + JsonEscape(info.git_sha) + "\"";
  out += ", \"build_type\": \"" + JsonEscape(info.build_type) + "\"";
  out += ", \"sanitizers\": \"" + JsonEscape(info.sanitizers) + "\"}";
  return out;
}

std::string RunManifest::ToJson() const {
  std::string out = "{\n";
  out += "  \"run_name\": \"" + JsonEscape(run_name) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"config_digest\": \"" + JsonEscape(config_digest) + "\",\n";
  out += "  \"horizon_us\": " + std::to_string(horizon.micros()) + ",\n";
  out += "  \"horizon\": \"" + JsonEscape(horizon.ToString()) + "\",\n";
  out += "  \"library_version\": \"" + JsonEscape(library_version) + "\",\n";
  out += "  \"build\": " + BuildInfoJson() + ",\n";
  out += "  \"wall_seconds\": " + JsonNumber(wall_seconds) + ",\n";
  out += "  \"events_executed\": " + std::to_string(events_executed);
  if (!extra.empty()) {
    out += ",\n  \"extra\": {";
    bool first = true;
    for (const auto& [k, v] : extra) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n    \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

namespace {

bool WriteJsonFile(const std::string& json, const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  out << json;
  out.close();
  if (out.fail()) {
    if (error != nullptr) {
      *error = "write failed for " + path;
    }
    return false;
  }
  return true;
}

}  // namespace

bool RunManifest::WriteFile(const std::string& path, std::string* error) const {
  return WriteJsonFile(ToJson(), path, error);
}

uint64_t EnsembleManifest::TotalEventsExecuted() const {
  uint64_t total = 0;
  for (const ReplicaRun& run : replica_runs) {
    total += run.events_executed;
  }
  return total;
}

uint32_t EnsembleManifest::StalledReplicaCount() const {
  uint32_t count = 0;
  for (const ReplicaRun& run : replica_runs) {
    count += run.stalled ? 1 : 0;
  }
  return count;
}

std::string EnsembleManifest::ToJson() const {
  std::string out = "{\n";
  out += "  \"run_name\": \"" + JsonEscape(run_name) + "\",\n";
  out += "  \"experiment\": \"" + JsonEscape(experiment) + "\",\n";
  out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
  out += "  \"seed_derivation\": \"" + JsonEscape(seed_derivation) + "\",\n";
  out += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"horizon_us\": " + std::to_string(horizon.micros()) + ",\n";
  out += "  \"horizon\": \"" + JsonEscape(horizon.ToString()) + "\",\n";
  out += "  \"library_version\": \"" + JsonEscape(library_version) + "\",\n";
  out += "  \"build\": " + BuildInfoJson() + ",\n";
  out += "  \"wall_seconds\": " + JsonNumber(wall_seconds) + ",\n";
  out += "  \"events_executed\": " + std::to_string(TotalEventsExecuted()) + ",\n";
  out += "  \"stalled_replicas\": " + std::to_string(StalledReplicaCount()) + ",\n";
  out += "  \"replica_runs\": [";
  bool first = true;
  for (const ReplicaRun& run : replica_runs) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n    {\"index\": " + std::to_string(run.index) +
           ", \"seed\": " + std::to_string(run.seed) +
           ", \"wall_seconds\": " + JsonNumber(run.wall_seconds) +
           ", \"events_executed\": " + std::to_string(run.events_executed) +
           ", \"stalled\": " + (run.stalled ? "true" : "false") +
           ", \"restore_seconds\": " + JsonNumber(run.restore_seconds) + "}";
  }
  out += replica_runs.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool EnsembleManifest::WriteFile(const std::string& path, std::string* error) const {
  return WriteJsonFile(ToJson(), path, error);
}

}  // namespace centsim
