#include "src/telemetry/csv.h"

namespace centsim {

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os_ << ',';
    }
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

}  // namespace centsim
