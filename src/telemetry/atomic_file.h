// Atomic file replacement, extracted from the JSON exporters so binary
// artifacts (checkpoints) can share the tmp+rename discipline.
//
// Two durability grades:
//   - durable=false: write `path`.tmp, close, rename(2). A concurrent
//     reader sees either the old file or the complete new one. The file
//     may still be lost in a power cut (no fsync) — the right trade for
//     status files rewritten every heartbeat.
//   - durable=true: additionally fsync(2) the tmp file BEFORE the rename
//     and fsync the containing directory after it, so once the call
//     returns the new content survives a crash or power loss. Checkpoints
//     use this: a snapshot that an operator will resume from must never be
//     a zero-length or half-written file after the machine comes back.

#ifndef SRC_TELEMETRY_ATOMIC_FILE_H_
#define SRC_TELEMETRY_ATOMIC_FILE_H_

#include <cstddef>
#include <string>

namespace centsim {

// Atomically replaces `path` with the `size` bytes at `data`. False (and
// `error`, when given) on any failure; the tmp file is cleaned up and an
// existing `path` is left untouched.
bool AtomicWriteFileBytes(const void* data, size_t size, const std::string& path,
                          bool durable, std::string* error = nullptr);

}  // namespace centsim

#endif  // SRC_TELEMETRY_ATOMIC_FILE_H_
