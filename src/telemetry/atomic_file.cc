#include "src/telemetry/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace centsim {
namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

// fsync the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems refuse O_RDONLY directory fsync; that is
// not worth failing the write over.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

bool AtomicWriteFileBytes(const void* data, size_t size, const std::string& path,
                          bool durable, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "cannot open " + tmp);
    return false;
  }
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "write failed for " + tmp);
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  // Durable grade: the data must be on stable storage BEFORE the rename
  // publishes it, otherwise a crash can leave `path` pointing at a correct
  // directory entry whose blocks were never written.
  if (durable && ::fsync(fd) != 0) {
    SetError(error, "fsync failed for " + tmp);
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, "close failed for " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename failed for " + path);
    std::remove(tmp.c_str());
    return false;
  }
  if (durable) {
    SyncParentDir(path);
  }
  return true;
}

}  // namespace centsim
