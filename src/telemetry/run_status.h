// Live run control: heartbeat status files, stall watchdog, and crash-dump
// plumbing for long runs (ROADMAP: the operational story long ensemble
// runs need before intra-run parallel DES and checkpoint/restore).
//
// Data flow: each replica's Scheduler publishes progress into a
// ProgressCell (src/sim/run_progress.h) from the profiler's sampled depth
// path; a RunStatusMonitor thread reads every cell on a wall-clock cadence
// and (a) atomically rewrites `run_status.json` — always a complete,
// parseable snapshot, safe to `watch cat` — (b) appends one compact record
// per beat to `status.jsonl`, and (c) runs the watchdog: a replica whose
// progress has not advanced within the stall deadline gets its flight
// recorder and a best-effort scheduler snapshot dumped, and is flagged
// stalled (sticky) for the ensemble manifest.
//
// On-demand and on-death paths: SIGUSR1 requests an immediate status write
// from a running monitor; fatal signals (SIGSEGV/SIGBUS/SIGFPE/SIGILL/
// SIGABRT) dump every registered flight recorder straight to files with
// write(2) before the default action re-raises.

#ifndef SRC_TELEMETRY_RUN_STATUS_H_
#define SRC_TELEMETRY_RUN_STATUS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/flight_recorder.h"
#include "src/sim/run_progress.h"
#include "src/sim/scheduler.h"

namespace centsim {

// Resident set size of this process in bytes; -1 where /proc is absent.
int64_t ReadRssBytes();

// One replica's row in run_status.json.
struct ReplicaStatusRow {
  // One shard lane's sub-row (sharded engines only): the lane's barrier
  // frontier and event throughput. A healthy sharded run shows every lane
  // at the same sim_us (they meet at each barrier); a lane whose row goes
  // stale while siblings advance is wedged inside a window.
  struct ShardRow {
    uint32_t index = 0;
    int64_t sim_us = 0;
    uint64_t executed = 0;
    double events_per_sec = 0.0;  // Over the last heartbeat interval.
    bool done = false;
  };

  uint32_t index = 0;
  uint64_t seed = 0;
  int64_t sim_us = 0;
  int64_t next_event_us = 0;
  uint64_t executed = 0;
  uint64_t pending = 0;
  uint64_t queue_entries = 0;
  double events_per_sec = 0.0;  // Over the last heartbeat interval.
  double pct_of_horizon = 0.0;
  // Sampled-engine telemetry (src/sim/sampling.h): which level the replica
  // is in right now (0 = detailed, 1 = fast_forward) and how much simulated
  // time its fast-forward has skipped so far. Zero under serial engines.
  uint8_t mode = 0;
  int64_t sim_skipped_us = 0;
  bool done = false;
  bool stalled = false;
  // Stall diagnosis (set when `stalled`): "shard_wedged" when a strict
  // subset of this replica's shard lanes stopped at a barrier while
  // siblings kept moving (dump the laggards, the barrier protocol is stuck
  // inside them); "replica_stalled" when the whole replica stopped.
  std::string stall_kind;
  std::vector<ShardRow> shards;
  // Newest durable checkpoint (from the replica checkpoint dir's
  // LATEST.json marker); empty when the replica is not checkpointing or
  // none has landed yet. What a custodian resumes from after a crash.
  std::string latest_checkpoint;
};

// A full status snapshot: the aggregate header plus per-replica rows.
struct RunStatus {
  std::string run_name;
  std::string experiment;
  double wall_seconds = 0.0;
  int64_t horizon_us = 0;
  int64_t sim_us = 0;  // Slowest live replica (min), the honest frontier.
  double pct_of_horizon = 0.0;
  uint64_t events_executed = 0;
  double events_per_sec = 0.0;        // Aggregate, last-interval.
  double device_years_per_sec = 0.0;  // 0 when the device count is unknown.
  double eta_seconds = -1.0;          // < 0: unknown (no rate yet).
  uint64_t queue_entries = 0;
  int64_t rss_bytes = -1;
  uint32_t replicas_done = 0;
  uint32_t replicas_stalled = 0;
  std::vector<ReplicaStatusRow> replicas;

  // Pretty multi-line document for run_status.json (includes build info).
  std::string ToJson() const;
  // One compact line for status.jsonl; `event` is "heartbeat", "stall",
  // "status_request", or "final".
  std::string ToJsonLine(const char* event) const;
};

// JSON rendering of a SchedulerSnapshot (the stall-dump artifact).
std::string SchedulerSnapshotToJson(const SchedulerSnapshot& snap);

// Dumps a flight recorder's retained window as JSONL (one entry object per
// line, oldest first). The cooperative-path sibling of DumpTo(fd).
bool WriteFlightRecorderJsonl(const FlightRecorder& recorder, const std::string& path,
                              std::string* error = nullptr);

// The background status/watchdog thread for one run (single replica or
// ensemble). Owns no simulation state: it reads the ProgressCells and
// FlightRecorders the caller wires in, all of which must outlive it.
class RunStatusMonitor {
 public:
  struct Options {
    std::string status_dir;  // Required; files land here.
    double heartbeat_seconds = 1.0;
    // 0 disables the watchdog. A replica counts as advancing when its sim
    // time or executed-event count moves (a long same-timestamp drain is
    // progress; a wedged callback is not).
    double stall_deadline_seconds = 0.0;
    // On stall, also lock the replica's SchedulerSlot and take a deep
    // Scheduler::Snapshot(). Best-effort and inherently racy against a
    // replica that is in fact still running — keep it on for production
    // forensics, off under TSan.
    bool deep_stall_snapshot = true;
    std::string run_name;
    std::string experiment;
    int64_t horizon_us = 0;
    // Devices simulated per replica; enables the device-years/sec gauge.
    double devices_per_replica = 0.0;
  };

  struct ShardHooks {
    ProgressCell* cell = nullptr;        // Required (per shard lane).
    FlightRecorder* recorder = nullptr;  // Optional (wedge dumps).
  };

  struct ReplicaHooks {
    ProgressCell* cell = nullptr;            // Required.
    FlightRecorder* recorder = nullptr;      // Optional (stall dumps).
    SchedulerSlot* scheduler_slot = nullptr; // Optional (deep snapshots).
    // Sharded engines: one hook per shard lane (ShardPlan.shard_progress /
    // shard_recorders). Enables per-shard status sub-rows and lets the
    // watchdog tell "one lane wedged at a barrier" from "replica stalled".
    std::vector<ShardHooks> shards;
    uint64_t seed = 0;
    // Optional: where this replica writes checkpoints. Status rows and
    // stall dumps then name the latest durable snapshot, so recovery after
    // a wedge/crash starts from a known-good file instead of an archaeology
    // dig.
    std::string checkpoint_dir;
  };

  RunStatusMonitor(Options options, std::vector<ReplicaHooks> replicas);
  ~RunStatusMonitor();
  RunStatusMonitor(const RunStatusMonitor&) = delete;
  RunStatusMonitor& operator=(const RunStatusMonitor&) = delete;

  void Start();
  // Final status write ("final" heartbeat), then joins the thread.
  // Idempotent; the destructor calls it.
  void Stop();

  // Asks the monitor thread for an immediate status write (the SIGUSR1
  // poll path and tests use this; safe from any thread).
  void RequestStatusNow();

  // Builds a status snapshot from the current cell contents. Thread-safe;
  // also usable without Start() for one-shot status rendering.
  RunStatus BuildStatus();

  // Sticky per-replica stall verdicts for the ensemble manifest.
  bool WasStalled(uint32_t index) const;
  uint32_t stalled_count() const;

  const Options& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  void ThreadBody();
  RunStatus BuildStatusLocked(Clock::time_point now);
  void Beat(const char* event);  // Build + write + append, under mu_.
  void CheckWatchdog();
  // Sets tracks_[i].stall_kind / wedged_shards from the shard frontiers:
  // "shard_wedged" when a strict subset of active lanes sits at the minimum
  // sim time (the barrier stragglers), else "replica_stalled".
  void ClassifyStall(size_t i);
  void DumpStalledReplica(size_t i);

  Options options_;
  std::vector<ReplicaHooks> replicas_;

  // Per-replica bookkeeping, monitor-thread-only after Start().
  struct ReplicaTrack {
    uint64_t last_executed = 0;
    int64_t last_sim_us = 0;
    Clock::time_point last_advance;
    uint64_t prev_executed = 0;  // At the previous heartbeat.
    int64_t prev_sim_us = 0;
    bool dumped = false;
    // Per-shard mirrors of the above (sharded replicas only).
    std::vector<uint64_t> shard_last_executed;
    std::vector<int64_t> shard_last_sim_us;
    std::vector<uint64_t> shard_prev_executed;
    // Stall verdict, set with `dumped`: which lanes to dump and what kind
    // of stall the status row reports.
    std::string stall_kind;
    std::vector<size_t> wedged_shards;
  };
  std::vector<ReplicaTrack> tracks_;
  std::vector<uint8_t> stalled_;  // Sticky flags; written by monitor only.
  std::atomic<uint32_t> stalled_count_{0};

  Clock::time_point start_;
  Clock::time_point prev_beat_;
  uint64_t prev_total_executed_ = 0;
  int64_t prev_min_sim_us_ = 0;

  std::mutex mu_;  // Guards cv_ wakeups and BuildStatus's track reads.
  std::condition_variable cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> status_requested_{false};
  std::thread thread_;
};

// SIGUSR1 on-demand status: installs a handler that records the request
// in an async-signal-safe flag. A running RunStatusMonitor polls it (via
// ConsumeStatusRequest) and answers with an immediate "status_request"
// beat. Idempotent.
void InstallStatusSignalHandler();
// True once per delivered SIGUSR1 (consumes the flag).
bool ConsumeStatusRequest();

// Fatal-signal flight-recorder dumps. Registration is mutex-guarded (call
// from normal code only); the signal handler itself reads the registry
// with atomics and writes dumps with open/write/close(2) — no locks, no
// allocation — then restores the default action and re-raises.
//
// RegisterCrashDump returns a slot token for Unregister; both are cheap.
// InstallCrashSignalHandlers is idempotent and installed automatically by
// the first registration.
int RegisterCrashDump(const FlightRecorder* recorder, const std::string& path);
void UnregisterCrashDump(int token);
void InstallCrashSignalHandlers();
// Optional extra flush invoked from the crash handler AFTER the recorder
// dumps (e.g. a metrics flush). Best-effort: it may allocate, which is
// formally unsafe in a signal handler — acceptable for a process that is
// already dying. nullptr clears.
void SetCrashFlushHook(void (*fn)(void*), void* ctx);
// Runs the handler's dump pass directly (no signal involved): dumps every
// registered recorder and invokes the flush hook. Returns dumps written.
// Exposed so tests can exercise the crash path in-process.
size_t DumpRegisteredCrashRecorders();

// RAII: registers the recorder/path pairs on construction, unregisters on
// destruction. The natural way for a driver or EnsembleRunner to scope
// crash dumps to a run.
class CrashDumpScope {
 public:
  CrashDumpScope() = default;
  ~CrashDumpScope() { Clear(); }
  CrashDumpScope(const CrashDumpScope&) = delete;
  CrashDumpScope& operator=(const CrashDumpScope&) = delete;

  void Add(const FlightRecorder* recorder, const std::string& path) {
    tokens_.push_back(RegisterCrashDump(recorder, path));
  }
  void Clear() {
    for (const int token : tokens_) {
      UnregisterCrashDump(token);
    }
    tokens_.clear();
  }

 private:
  std::vector<int> tokens_;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_RUN_STATUS_H_
