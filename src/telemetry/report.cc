#include "src/telemetry/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace centsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
      os << " | ";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Table::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos > 0 && pos % 3 == 0) {
      out += ',';
    }
    out += *it;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatUsd(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "$%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "$%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.2f", v);
  }
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace centsim
