// JSONL snapshot of a MetricsRegistry: one self-describing JSON object per
// line, so decade-spanning archives stay greppable and stream-parseable
// (no document-level structure to keep in memory or to corrupt).
//
// Line shapes:
//   {"name":N,"type":"counter","labels":{...},"value":V}
//   {"name":N,"type":"gauge","labels":{...},"value":V}
//   {"name":N,"type":"histogram","labels":{...},"count":C,"mean":M,
//    "stddev":S,"min":m,"max":M2[,"p50":...,"p90":...,"p99":...]}
// Quantiles appear only for bounded histograms (bins configured).

#ifndef SRC_TELEMETRY_METRICS_JSONL_H_
#define SRC_TELEMETRY_METRICS_JSONL_H_

#include <iosfwd>
#include <string>

#include "src/sim/metrics.h"

namespace centsim {

// Writes every instrument in creation order (counters, gauges, histograms).
void WriteMetricsJsonl(const MetricsRegistry& registry, std::ostream& out);

// File variant; false (and `error`) on I/O failure.
bool WriteMetricsJsonlFile(const MetricsRegistry& registry, const std::string& path,
                           std::string* error = nullptr);

// Mid-run flush: atomically replaces `path` (write-to-tmp + rename) with a
// fresh snapshot, so the heartbeat cadence and fatal-signal paths can
// persist partial telemetry without a reader ever seeing a torn file.
// Safe to call repeatedly; each call rewrites the whole snapshot.
bool FlushMetricsJsonl(const MetricsRegistry& registry, const std::string& path,
                       std::string* error = nullptr);

}  // namespace centsim

#endif  // SRC_TELEMETRY_METRICS_JSONL_H_
