#include "src/telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/telemetry/atomic_file.h"

namespace centsim {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return "null";
  }
  return std::string(buf, end);
}

namespace {

// Strict single-pass validator. Tracks position for error messages.
class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      Fill(error);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after value";
      Fill(error);
      return false;
    }
    return true;
  }

 private:
  void Fill(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " + reason_;
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' || Peek() == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      reason_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (Eof() || Peek() != '"') {
      reason_ = "expected string";
      return false;
    }
    ++pos_;
    while (!Eof() && Peek() != '"') {
      if (static_cast<unsigned char>(Peek()) < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (Peek() == '\\') {
        ++pos_;
        if (Eof()) {
          break;
        }
        const char esc = Peek();
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (Eof() || std::isxdigit(static_cast<unsigned char>(Peek())) == 0) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          reason_ = "bad escape character";
          return false;
        }
      }
      ++pos_;
    }
    if (Eof()) {
      reason_ = "unterminated string";
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (!Eof() && Peek() == '-') {
      ++pos_;
    }
    if (Eof() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      reason_ = "malformed number";
      return false;
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      if (Eof() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        reason_ = "malformed fraction";
        return false;
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      if (Eof() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        reason_ = "malformed exponent";
        return false;
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Value() {
    if (++depth_ > 256) {
      reason_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    SkipWs();
    if (Eof()) {
      reason_ = "unexpected end of input";
    } else if (Peek() == '{') {
      ok = Object();
    } else if (Peek() == '[') {
      ok = Array();
    } else if (Peek() == '"') {
      ok = String();
    } else if (Peek() == 't') {
      ok = Literal("true");
    } else if (Peek() == 'f') {
      ok = Literal("false");
    } else if (Peek() == 'n') {
      ok = Literal("null");
    } else {
      ok = Number();
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Eof() || Peek() != ':') {
        reason_ = "expected ':' in object";
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!Eof() && Peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (!Eof() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!Eof() && Peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_ = "invalid JSON";
};

}  // namespace

bool JsonLint(std::string_view text, std::string* error) { return Linter(text).Run(error); }

bool AtomicWriteFile(const std::string& content, const std::string& path, std::string* error) {
  // Status artifacts are rewritten every heartbeat: atomic visibility, no
  // fsync. Checkpoints use the durable grade directly (atomic_file.h).
  return AtomicWriteFileBytes(content.data(), content.size(), path, /*durable=*/false, error);
}

}  // namespace centsim
