// Machine-readable run manifest (paper §4.4: the living diary needs every
// run to be reconstructible decades later).
//
// One JSON file written alongside each experiment's outputs recording what
// was run: seed, a digest of the full configuration, horizon, library
// version, and how long the run took on the wall clock. A future custodian
// (or a perf PR's before/after comparison) reads this instead of trusting
// a log line.

#ifndef SRC_TELEMETRY_RUN_MANIFEST_H_
#define SRC_TELEMETRY_RUN_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

// Library version stamped into every manifest and bench record.
inline constexpr const char* kCentsimVersion = "0.2.0";

// FNV-1a 64-bit; stable across platforms, good enough to detect config
// drift (this is a fingerprint, not a security hash).
uint64_t Fnv1a64(std::string_view text);

// Hex rendering of Fnv1a64, the canonical config-digest form.
std::string ConfigDigest(std::string_view config_text);

// Build provenance: which binary produced an artifact. Captured at
// configure time (compile definitions on run_manifest.cc) so crash dumps
// and stalled-run manifests are attributable to an exact commit + build
// flavor without trusting the environment at run time.
struct BuildInfo {
  const char* git_sha;     // Short SHA, or "unknown" outside a checkout.
  const char* build_type;  // CMAKE_BUILD_TYPE ("" when unset).
  const char* sanitizers;  // "none", "address,undefined", or "thread".
};
const BuildInfo& GetBuildInfo();

// The `"build": {...}` JSON object (no trailing newline), shared by run
// manifests, ensemble manifests, and run_status.json.
std::string BuildInfoJson();

struct RunManifest {
  std::string run_name;
  uint64_t seed = 0;
  std::string config_digest;  // ConfigDigest() of the flattened config.
  SimTime horizon;
  std::string library_version = kCentsimVersion;
  double wall_seconds = 0.0;
  uint64_t events_executed = 0;
  // Free-form extras (device counts, artifact names, git describe...).
  std::vector<std::pair<std::string, std::string>> extra;

  void AddExtra(std::string key, std::string value) {
    extra.emplace_back(std::move(key), std::move(value));
  }

  std::string ToJson() const;
  // Writes ToJson() to `path`; false (and `error`) on I/O failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;
};

// Aggregated manifest for an N-replica ensemble: one artifact folding the
// per-replica run manifests (seed, wall time, event count) together with
// the ensemble-level facts a future custodian needs to re-run it — the
// base seed, the seed-derivation scheme, and the worker-pool width.
struct EnsembleManifest {
  std::string run_name;
  std::string experiment;  // Experiment::Name() of the replicated run.
  uint64_t base_seed = 0;
  // Replica seeds come from DeriveReplicaSeed(base_seed, index); recorded
  // so manifests stay self-describing if the scheme ever changes again.
  std::string seed_derivation = "splitmix64-stream";
  uint32_t replicas = 0;
  uint32_t threads = 0;
  SimTime horizon;
  std::string library_version = kCentsimVersion;
  double wall_seconds = 0.0;  // Whole-ensemble wall clock.

  struct ReplicaRun {
    uint32_t index = 0;
    uint64_t seed = 0;
    double wall_seconds = 0.0;
    uint64_t events_executed = 0;
    // Flagged by the run-status watchdog: sim time failed to advance
    // within the stall deadline at least once (sticky even if the replica
    // later recovered and finished).
    bool stalled = false;
    // Wall seconds spent restoring a checkpoint before simulating; 0 for a
    // fresh replica (see src/snapshot).
    double restore_seconds = 0.0;
  };
  std::vector<ReplicaRun> replica_runs;  // Replica-index order.

  uint64_t TotalEventsExecuted() const;
  uint32_t StalledReplicaCount() const;

  std::string ToJson() const;
  // Writes ToJson() to `path`; false (and `error`) on I/O failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;
};

}  // namespace centsim

#endif  // SRC_TELEMETRY_RUN_MANIFEST_H_
