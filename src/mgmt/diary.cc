#include "src/mgmt/diary.h"

#include <algorithm>

namespace centsim {

ExperimentDiary ExperimentDiary::FromTrace(const TraceLog& trace) {
  ExperimentDiary diary;
  for (const auto& rec : trace.records()) {
    if (rec.level >= TraceLevel::kMaintenance) {
      diary.Append({rec.at, rec.level, rec.component, rec.message});
    }
  }
  return diary;
}

std::vector<DecadeSummary> ExperimentDiary::ByDecade() const {
  std::vector<DecadeSummary> out;
  for (const auto& e : entries_) {
    const uint32_t decade = static_cast<uint32_t>(e.at.ToYears() / 10.0);
    if (out.size() <= decade) {
      DecadeSummary blank;
      while (out.size() <= decade) {
        blank.decade = static_cast<uint32_t>(out.size());
        out.push_back(blank);
      }
    }
    switch (e.level) {
      case TraceLevel::kFailure:
        ++out[decade].failures;
        break;
      case TraceLevel::kMaintenance:
        ++out[decade].maintenance_actions;
        break;
      case TraceLevel::kWarning:
        ++out[decade].warnings;
        break;
      default:
        break;
    }
  }
  return out;
}

std::string ExperimentDiary::Render(size_t max_entries) const {
  std::string out;
  const size_t stride = entries_.size() > max_entries
                            ? (entries_.size() + max_entries - 1) / max_entries
                            : 1;
  for (size_t i = 0; i < entries_.size(); i += stride) {
    const auto& e = entries_[i];
    out += "[" + e.at.ToString() + "] " + TraceLevelName(e.level) + " " + e.component + ": " +
           e.text + "\n";
  }
  if (stride > 1) {
    out += "(" + std::to_string(entries_.size()) + " entries total, 1-in-" +
           std::to_string(stride) + " shown)\n";
  }
  return out;
}

}  // namespace centsim
