#include "src/mgmt/domain_lease.h"

#include <algorithm>

namespace centsim {

DomainLease::DomainLease(Simulation& sim, CloudEndpoint& endpoint, DomainLeaseParams params)
    : sim_(sim), endpoint_(endpoint), params_(params), rng_(sim.StreamFor(0x646f6d61696eULL)) {}

void DomainLease::Start() {
  sim_.scheduler().ScheduleAfter(params_.lease_period, [this] { OnRenewalDue(); },
                                 "domain.renewal");
}

double DomainLease::EffectiveLapseProbability() const {
  double p = params_.renewal_lapse_probability;
  if (knowledge_) {
    const double knowledge = std::clamp(knowledge_(sim_.Now()), 0.0, 1.0);
    p += params_.knowledge_lapse_weight * (1.0 - knowledge);
  }
  return std::min(p, 1.0);
}

void DomainLease::OnRenewalDue() {
  if (rng_.NextBool(EffectiveLapseProbability())) {
    ++lapses_;
    endpoint_.SetOperational(false);
    if (sim_.TraceEnabled(TraceLevel::kFailure)) {
      sim_.Fail("domain", "lease expired unrenewed; endpoint dark");
    }
    sim_.scheduler().ScheduleAfter(
        params_.lapse_recovery,
        [this] {
          endpoint_.SetOperational(true);
          fees_usd_ += params_.renewal_fee_usd;
          ++renewals_;
          if (sim_.TraceEnabled(TraceLevel::kMaintenance)) {
            sim_.Maint("domain", "domain recovered and re-registered");
          }
          sim_.scheduler().ScheduleAfter(params_.lease_period, [this] { OnRenewalDue(); },
                                         "domain.renewal");
        },
        "domain.recovery");
    return;
  }
  ++renewals_;
  fees_usd_ += params_.renewal_fee_usd;
  if (sim_.TraceEnabled(TraceLevel::kMaintenance)) {
    sim_.Maint("domain", "lease renewed for another period");
  }
  sim_.scheduler().ScheduleAfter(params_.lease_period, [this] { OnRenewalDue(); },
                                 "domain.renewal");
}

}  // namespace centsim
