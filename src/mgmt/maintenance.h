// Maintenance-crew model (paper §3.1, §4.4).
//
// Devices get no human attention; gateways and backhaul do, within a
// person-hours budget. The crew converts gateway failures into repair
// completion times — or refuses them once the year's budget is exhausted,
// which is how "available hours per device falls" manifests at scale.

#ifndef SRC_MGMT_MAINTENANCE_H_
#define SRC_MGMT_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "src/net/gateway.h"
#include "src/sim/simulation.h"

namespace centsim {

struct MaintenancePolicy {
  bool enabled = true;
  SimTime mean_response = SimTime::Days(3);     // Dispatch + travel.
  SimTime mean_repair = SimTime::Hours(3);      // On-site time.
  double annual_budget_hours = 200.0;           // Person-hours per year.
  double hourly_rate_usd = 95.0;
};

class MaintenanceCrew {
 public:
  MaintenanceCrew(Simulation& sim, MaintenancePolicy policy);

  // Handles one repair request at `fail_time`. Returns the repair
  // completion time. When the year's budget is exhausted the repair is
  // deferred into the next budget year (deferred maintenance, not
  // abandonment); SimTime::Max() is returned only when the crew is
  // disabled or a single job exceeds an entire annual budget.
  SimTime RequestRepair(SimTime fail_time);

  // Adapter for Gateway::SetRepairPolicy.
  Gateway::RepairPolicy AsRepairPolicy();

  uint64_t repairs_completed() const { return repairs_; }
  uint64_t repairs_refused() const { return refused_; }
  uint64_t repairs_deferred() const { return deferred_; }
  double total_hours() const { return total_hours_; }
  double TotalCostUsd() const { return total_hours_ * policy_.hourly_rate_usd; }
  double HoursInYear(uint32_t year) const;

  const MaintenancePolicy& policy() const { return policy_; }

 private:
  Simulation& sim_;
  MaintenancePolicy policy_;
  RandomStream rng_;
  Counter* repairs_metric_ = nullptr;
  Counter* refused_metric_ = nullptr;
  Counter* deferred_metric_ = nullptr;
  Counter* labor_hours_metric_ = nullptr;
  HistogramMetric* repair_hours_metric_ = nullptr;
  uint64_t repairs_ = 0;
  uint64_t refused_ = 0;
  uint64_t deferred_ = 0;
  double total_hours_ = 0.0;
  std::vector<double> hours_by_year_;
};

}  // namespace centsim

#endif  // SRC_MGMT_MAINTENANCE_H_
