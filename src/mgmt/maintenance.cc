#include "src/mgmt/maintenance.h"

#include <cmath>

namespace centsim {

MaintenanceCrew::MaintenanceCrew(Simulation& sim, MaintenancePolicy policy)
    : sim_(sim), policy_(policy), rng_(sim.StreamFor(0x6d61696e74ULL)) {
  repairs_metric_ = sim_.MetricCounter("maintenance.repairs");
  refused_metric_ = sim_.MetricCounter("maintenance.refused");
  deferred_metric_ = sim_.MetricCounter("maintenance.deferred");
  labor_hours_metric_ = sim_.MetricCounter("maintenance.labor_hours");
  repair_hours_metric_ = sim_.MetricHistogram("maintenance.repair_hours");
}

SimTime MaintenanceCrew::RequestRepair(SimTime fail_time) {
  if (!policy_.enabled) {
    ++refused_;
    MetricInc(refused_metric_);
    return SimTime::Max();
  }
  const double repair_hours = rng_.Exponential(policy_.mean_repair.ToHours());
  if (repair_hours > policy_.annual_budget_hours) {
    ++refused_;
    MetricInc(refused_metric_);
    if (sim_.TraceEnabled(TraceLevel::kWarning)) {
      sim_.Warn("maintenance", "repair refused: exceeds a full annual budget");
    }
    return SimTime::Max();
  }
  // Deferred maintenance: walk forward to the first year with headroom.
  uint32_t year = static_cast<uint32_t>(fail_time.ToYears());
  SimTime start = fail_time;
  while (true) {
    if (hours_by_year_.size() <= year) {
      hours_by_year_.resize(year + 1, 0.0);
    }
    if (hours_by_year_[year] + repair_hours <= policy_.annual_budget_hours) {
      break;
    }
    ++deferred_;
    MetricInc(deferred_metric_);
    ++year;
    start = SimTime::Years(year);
    if (sim_.TraceEnabled(TraceLevel::kWarning)) {
      sim_.Warn("maintenance", "annual budget exhausted; repair deferred to next year");
    }
  }
  hours_by_year_[year] += repair_hours;
  total_hours_ += repair_hours;
  ++repairs_;
  MetricInc(repairs_metric_);
  MetricInc(labor_hours_metric_, repair_hours);
  MetricObserve(repair_hours_metric_, repair_hours);
  const SimTime response = SimTime::Hours(rng_.Exponential(policy_.mean_response.ToHours()));
  return start + response + SimTime::Hours(repair_hours);
}

Gateway::RepairPolicy MaintenanceCrew::AsRepairPolicy() {
  return [this](SimTime fail_time) { return RequestRepair(fail_time); };
}

double MaintenanceCrew::HoursInYear(uint32_t year) const {
  return year < hours_by_year_.size() ? hours_by_year_[year] : 0.0;
}

}  // namespace centsim
