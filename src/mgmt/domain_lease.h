// Domain-lease renewal (paper §4.5): "one certain event: the maximum domain
// lease is 10 years". The endpoint's public URL must be re-registered on a
// fixed cadence for fifty years; each renewal is a chance for institutional
// memory to fail (the original experimenters retire), taking the endpoint
// dark until someone notices and re-registers.

#ifndef SRC_MGMT_DOMAIN_LEASE_H_
#define SRC_MGMT_DOMAIN_LEASE_H_

#include <cstdint>
#include <functional>

#include "src/net/cloud_endpoint.h"
#include "src/sim/simulation.h"

namespace centsim {

struct DomainLeaseParams {
  SimTime lease_period = SimTime::Years(10);  // ICANN maximum.
  double renewal_lapse_probability = 0.05;    // Chance a renewal is missed.
  SimTime lapse_recovery = SimTime::Days(45); // Notice + re-register + DNS.
  double renewal_fee_usd = 180.0;             // 10-year registration.
  // How strongly lost institutional knowledge raises the lapse risk:
  // effective = base + weight * (1 - knowledge(t)). See mgmt/succession.h.
  double knowledge_lapse_weight = 0.25;
};

class DomainLease {
 public:
  // Returns operational-knowledge level in [0, 1] at a simulated time.
  using KnowledgeProvider = std::function<double(SimTime)>;

  DomainLease(Simulation& sim, CloudEndpoint& endpoint, DomainLeaseParams params);

  // Couples renewal reliability to the succession model's knowledge curve
  // (a custodian who never heard of the experiment misses renewals more).
  void SetKnowledgeProvider(KnowledgeProvider provider) { knowledge_ = std::move(provider); }

  // Schedules the renewal cadence starting one lease period from now.
  void Start();

  uint32_t renewals() const { return renewals_; }
  uint32_t lapses() const { return lapses_; }
  double fees_paid_usd() const { return fees_usd_; }

 private:
  void OnRenewalDue();

  double EffectiveLapseProbability() const;

  Simulation& sim_;
  CloudEndpoint& endpoint_;
  DomainLeaseParams params_;
  RandomStream rng_;
  KnowledgeProvider knowledge_;
  uint32_t renewals_ = 0;
  uint32_t lapses_ = 0;
  double fees_usd_ = 0.0;
};

}  // namespace centsim

#endif  // SRC_MGMT_DOMAIN_LEASE_H_
