// Geographic batch projects (paper §1): "infrastructure projects operate in
// geographical batches to keep costs down — one project repaves a block,
// installs its traffic sensors, and replaces its streetlights."
//
// The scheduler walks the city's zones on a staggered cadence; each visit
// fires a callback in which the fleet layer replaces failed devices (and,
// optionally, refreshes working-but-old ones). Between visits, failed
// devices in a zone simply stay dark — en-masse replacement is intractable.

#ifndef SRC_MGMT_BATCH_PROJECT_H_
#define SRC_MGMT_BATCH_PROJECT_H_

#include <cstdint>
#include <functional>

#include "src/sim/simulation.h"

namespace centsim {

struct BatchProjectParams {
  uint32_t zone_count = 16;
  // Every zone is visited once per cycle; cycles repeat for the run.
  SimTime cycle_period = SimTime::Years(8);  // Repave cadence.
  // Jitter on each zone's visit within its slot (construction schedules).
  SimTime visit_jitter = SimTime::Days(60);
};

class BatchProjectScheduler {
 public:
  using ZoneVisit = std::function<void(uint32_t zone, uint32_t cycle)>;

  BatchProjectScheduler(Simulation& sim, BatchProjectParams params, ZoneVisit on_visit);

  // Schedules visits from now through `horizon`. Zones are staggered
  // uniformly across the cycle period, so at any moment some zone is
  // freshly refreshed and another is due (the paper's pipelining).
  void ScheduleThrough(SimTime horizon);

  // Routes visit scheduling through a caller-owned path instead of a direct
  // ScheduleAt (checkpointing drivers route visits through their timer
  // table so pending visits can be saved and re-armed). ScheduleThrough
  // draws its jitter identically either way; the override only changes who
  // places the event. The callee must eventually call FireVisit(zone,
  // cycle) at the given time.
  using VisitScheduler = std::function<void(SimTime at, uint32_t zone, uint32_t cycle)>;
  void SetVisitScheduler(VisitScheduler scheduler) { schedule_visit_ = std::move(scheduler); }

  // Delivers one visit callback; the re-arm path for routed visits.
  void FireVisit(uint32_t zone, uint32_t cycle) { on_visit_(zone, cycle); }

  uint64_t visits_scheduled() const { return visits_; }

 private:
  Simulation& sim_;
  BatchProjectParams params_;
  ZoneVisit on_visit_;
  VisitScheduler schedule_visit_;
  RandomStream rng_;
  uint64_t visits_ = 0;
};

}  // namespace centsim

#endif  // SRC_MGMT_BATCH_PROJECT_H_
