// Experimenter succession (paper §4.5): "It will also include a log of the
// experimenters, as the nature of a 50-year experiment is such that those
// who start it will most likely be retired by the time it is complete!"
//
// Custodianship of a long-lived system passes between people; every
// handover risks losing operational knowledge (where the wallet keys are,
// why the firewall rule exists, when the domain renews). The model tracks
// custodian tenures, handovers, and a knowledge-retention factor that the
// management layer can fold into its lapse probabilities.

#ifndef SRC_MGMT_SUCCESSION_H_
#define SRC_MGMT_SUCCESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

struct SuccessionParams {
  // Custodian tenure before retirement/move (lognormal, median years).
  double median_tenure_years = 9.0;
  double tenure_sigma = 0.5;
  // Fraction of operational knowledge transferred per handover when a
  // proper overlap happens, and the probability it does.
  double handover_retention = 0.9;
  double orderly_handover_probability = 0.75;
  // Disorderly handovers retain only this much.
  double disorderly_retention = 0.5;
  // A written, living diary (the paper's mechanism!) restores knowledge
  // toward 1.0 at each handover by this recovery factor.
  double diary_recovery = 0.5;
  bool diary_maintained = true;
};

struct CustodianEra {
  uint32_t custodian_index = 0;
  SimTime start;
  SimTime end;
  bool orderly_handover = true;   // How this era *ended*.
  double knowledge_after = 1.0;   // Knowledge level after the handover.
};

struct SuccessionReport {
  std::vector<CustodianEra> eras;
  uint32_t handovers = 0;
  uint32_t disorderly_handovers = 0;
  double final_knowledge = 1.0;
  double min_knowledge = 1.0;

  // Knowledge level in effect at `t` (1.0 before the first handover).
  double KnowledgeAt(SimTime t) const;
};

// Simulates custodianship over `horizon`. Deterministic in `rng`.
SuccessionReport SimulateSuccession(const SuccessionParams& params, SimTime horizon,
                                    RandomStream rng);

// Expected number of handovers in a horizon (mean of the lognormal renewal
// process, first-order): horizon / mean_tenure.
double ExpectedHandovers(const SuccessionParams& params, SimTime horizon);

}  // namespace centsim

#endif  // SRC_MGMT_SUCCESSION_H_
