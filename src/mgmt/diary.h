// The living experiment diary (paper §4.5): "we will document any
// maintenance or changes we have to make to devices, gateways, or backhaul
// infrastructure to sustain operation ... recurring costs and periodic,
// predictable efforts".
//
// Built from the simulation trace: every kMaintenance/kFailure/kWarning
// record becomes a diary entry, summarized per decade with cost roll-ups.

#ifndef SRC_MGMT_DIARY_H_
#define SRC_MGMT_DIARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/trace.h"

namespace centsim {

struct DiaryEntry {
  SimTime at;
  TraceLevel level;
  std::string component;
  std::string text;
};

struct DecadeSummary {
  uint32_t decade = 0;  // 0 => years [0,10).
  uint32_t failures = 0;
  uint32_t maintenance_actions = 0;
  uint32_t warnings = 0;
};

class ExperimentDiary {
 public:
  // Harvests maintenance-relevant records from the trace log.
  static ExperimentDiary FromTrace(const TraceLog& trace);

  void Append(DiaryEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<DiaryEntry>& entries() const { return entries_; }

  std::vector<DecadeSummary> ByDecade() const;
  // Human-readable chronology (up to `max_entries`, evenly subsampled).
  std::string Render(size_t max_entries = 40) const;

 private:
  std::vector<DiaryEntry> entries_;
};

}  // namespace centsim

#endif  // SRC_MGMT_DIARY_H_
