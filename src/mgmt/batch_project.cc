#include "src/mgmt/batch_project.h"

namespace centsim {

BatchProjectScheduler::BatchProjectScheduler(Simulation& sim, BatchProjectParams params,
                                             ZoneVisit on_visit)
    : sim_(sim),
      params_(params),
      on_visit_(std::move(on_visit)),
      rng_(sim.StreamFor(0x6261746368ULL)) {}

void BatchProjectScheduler::ScheduleThrough(SimTime horizon) {
  const SimTime slot = params_.cycle_period * (1.0 / params_.zone_count);
  for (uint32_t cycle = 0;; ++cycle) {
    const SimTime cycle_start = params_.cycle_period * static_cast<double>(cycle);
    if (cycle_start > horizon) {
      break;
    }
    for (uint32_t zone = 0; zone < params_.zone_count; ++zone) {
      SimTime at = cycle_start + slot * static_cast<double>(zone) +
                   SimTime::Seconds(rng_.Uniform(0.0, params_.visit_jitter.ToSeconds()));
      if (at > horizon || at < sim_.Now()) {
        continue;
      }
      ++visits_;
      const uint32_t z = zone;
      const uint32_t c = cycle;
      if (schedule_visit_) {
        schedule_visit_(at, z, c);
      } else {
        sim_.scheduler().ScheduleAt(at, [this, z, c] { on_visit_(z, c); });
      }
    }
  }
}

}  // namespace centsim
