#include "src/mgmt/succession.h"

#include <algorithm>
#include <cmath>

namespace centsim {

double SuccessionReport::KnowledgeAt(SimTime t) const {
  double knowledge = 1.0;
  for (const auto& era : eras) {
    if (era.end <= t) {
      knowledge = era.knowledge_after;
    } else {
      break;
    }
  }
  return knowledge;
}

SuccessionReport SimulateSuccession(const SuccessionParams& params, SimTime horizon,
                                    RandomStream rng) {
  SuccessionReport report;
  const double mu = std::log(params.median_tenure_years);
  double knowledge = 1.0;
  SimTime t;
  uint32_t custodian = 0;
  while (true) {
    const double tenure_years = rng.LogNormal(mu, params.tenure_sigma);
    const SimTime era_end = t + SimTime::Years(tenure_years);
    CustodianEra era;
    era.custodian_index = custodian;
    era.start = t;
    if (era_end >= horizon) {
      era.end = horizon;
      era.knowledge_after = knowledge;
      report.eras.push_back(era);
      break;
    }
    // Handover at era_end.
    ++report.handovers;
    era.end = era_end;
    era.orderly_handover = rng.NextBool(params.orderly_handover_probability);
    if (!era.orderly_handover) {
      ++report.disorderly_handovers;
    }
    const double retention =
        era.orderly_handover ? params.handover_retention : params.disorderly_retention;
    knowledge *= retention;
    if (params.diary_maintained) {
      // The written diary lets the successor recover part of the gap.
      knowledge += (1.0 - knowledge) * params.diary_recovery;
    }
    knowledge = std::clamp(knowledge, 0.0, 1.0);
    era.knowledge_after = knowledge;
    report.min_knowledge = std::min(report.min_knowledge, knowledge);
    report.eras.push_back(era);
    t = era_end;
    ++custodian;
  }
  report.final_knowledge = knowledge;
  return report;
}

double ExpectedHandovers(const SuccessionParams& params, SimTime horizon) {
  const double mean_tenure =
      params.median_tenure_years * std::exp(params.tenure_sigma * params.tenure_sigma / 2.0);
  return horizon.ToYears() / mean_tenure;
}

}  // namespace centsim
