// Burn-in screening: operate units for a screening period before
// deployment so infant-mortality failures happen on the bench, not in the
// concrete. For devices that are physically unreachable after installation
// (paper §3.1/§4.1), trading a few weeks of bench time against decades of
// field exposure is one of the few reliability levers available.

#ifndef SRC_RELIABILITY_BURN_IN_H_
#define SRC_RELIABILITY_BURN_IN_H_

#include "src/reliability/hazard.h"
#include "src/sim/time.h"

namespace centsim {

struct BurnInPolicy {
  SimTime duration = SimTime::Days(30);
  double cost_per_unit_usd = 4.0;  // Rack space + power + handling.
};

struct BurnInAssessment {
  double bench_failure_fraction = 0.0;   // Screened out during burn-in.
  double field_failure_without = 0.0;    // P(fail in window), no burn-in.
  double field_failure_with = 0.0;       // P(fail in window | survived).
  double relative_reduction = 0.0;       // 1 - with/without.
  double cost_per_prevented_failure_usd = 0.0;
};

// Analytic assessment against the hazard model: survivors of the burn-in
// carry the conditional survival S(d + w)/S(d) into a field window w.
BurnInAssessment AssessBurnIn(const HazardModel& hazard, const BurnInPolicy& policy,
                              SimTime field_window);

}  // namespace centsim

#endif  // SRC_RELIABILITY_BURN_IN_H_
