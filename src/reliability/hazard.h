// Failure-time (hazard) models.
//
// The simulator samples failures lazily: instead of evaluating a per-tick
// failure probability across a century of ticks, each component draws its
// next time-to-failure once (conditioned on its current age) and schedules
// a single event. This keeps a 100-year run O(number of failures).

#ifndef SRC_RELIABILITY_HAZARD_H_
#define SRC_RELIABILITY_HAZARD_H_

#include <memory>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

// Interface for lifetime distributions.
class HazardModel {
 public:
  virtual ~HazardModel() = default;

  // Samples a remaining time-to-failure for an item that has already
  // survived to `age` (i.e. draws from the conditional distribution
  // T - age | T > age).
  virtual SimTime SampleRemainingLife(RandomStream& rng, SimTime age) const = 0;

  // Survival function S(t) = P(T > t).
  virtual double Survival(SimTime t) const = 0;

  // Mean time to failure.
  virtual SimTime Mttf() const = 0;

  SimTime SampleLife(RandomStream& rng) const { return SampleRemainingLife(rng, SimTime()); }

  // Probability that an item which has reached `age` survives a further
  // `span`: S(age + span) / S(age). This is the expectation-level primitive
  // the sampled engine's reliability fast-forward uses to advance a
  // population's failure state over a skipped span without drawing
  // per-event times. Returns 0 once S(age) underflows to 0.
  double ConditionalSurvival(SimTime age, SimTime span) const;
};

// Constant hazard; memoryless. `mttf` is the mean life.
class ExponentialHazard : public HazardModel {
 public:
  explicit ExponentialHazard(SimTime mttf);

  SimTime SampleRemainingLife(RandomStream& rng, SimTime age) const override;
  double Survival(SimTime t) const override;
  SimTime Mttf() const override { return mttf_; }

 private:
  SimTime mttf_;
};

// Weibull with shape k and characteristic life (scale) eta.
// k < 1: infant mortality; k == 1: exponential; k > 1: wear-out.
class WeibullHazard : public HazardModel {
 public:
  WeibullHazard(double shape, SimTime scale);

  SimTime SampleRemainingLife(RandomStream& rng, SimTime age) const override;
  double Survival(SimTime t) const override;
  SimTime Mttf() const override;

  double shape() const { return shape_; }
  SimTime scale() const { return scale_; }

 private:
  double shape_;
  SimTime scale_;
};

// Classic bathtub curve as three competing risks: an infant-mortality
// Weibull (k < 1), a constant random-failure hazard, and a wear-out Weibull
// (k > 1). The realized life is the minimum of the three draws.
class BathtubHazard : public HazardModel {
 public:
  struct Params {
    // Infant mortality: fraction-like scale; small eta, k ~ 0.5.
    double infant_shape = 0.5;
    SimTime infant_scale = SimTime::Years(200.0);  // Weak by default.
    // Useful life: constant hazard MTTF.
    SimTime random_mttf = SimTime::Years(100.0);
    // Wear-out: k ~ 3-5, eta = design life.
    double wearout_shape = 4.0;
    SimTime wearout_scale = SimTime::Years(15.0);
  };

  explicit BathtubHazard(const Params& params);

  SimTime SampleRemainingLife(RandomStream& rng, SimTime age) const override;
  double Survival(SimTime t) const override;
  SimTime Mttf() const override;  // Numerical integral of S(t).

  const Params& params() const { return params_; }

 private:
  Params params_;
  WeibullHazard infant_;
  ExponentialHazard random_;
  WeibullHazard wearout_;
};

// An item that never fails by itself (e.g. a fiber strand in a conduit,
// barring backhoes, which are modeled as an external hazard).
class NeverFails : public HazardModel {
 public:
  SimTime SampleRemainingLife(RandomStream&, SimTime) const override { return SimTime::Max(); }
  double Survival(SimTime) const override { return 1.0; }
  SimTime Mttf() const override { return SimTime::Max(); }
};

}  // namespace centsim

#endif  // SRC_RELIABILITY_HAZARD_H_
