// Obsolescence modeling (paper §1 footnote 3 and §3.4).
//
// A device can leave service for reasons other than breaking:
//  - technical obsolescence: a supporting technology is withdrawn (the
//    canonical example, §3.4: 2G spectrum sunset strands devices);
//  - style obsolescence: replaced for taste (consumer electronics);
//  - planned obsolescence: manufacturer-imposed lockout;
//  - functional obsolescence: the device no longer does a useful job —
//    the *desired* end state for infrastructure devices.
//
// TechnologyTimeline holds the schedule of externally imposed sunsets,
// which the network module consults when a backhaul generation is retired.

#ifndef SRC_RELIABILITY_OBSOLESCENCE_H_
#define SRC_RELIABILITY_OBSOLESCENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

enum class ObsolescenceKind : uint8_t {
  kTechnical,
  kStyle,
  kPlanned,
  kFunctional,
};

const char* ObsolescenceKindName(ObsolescenceKind kind);

// One externally imposed technology retirement, e.g. "2G sunset at t=12y".
struct SunsetEvent {
  std::string technology;  // e.g. "cellular-2g", "802.11b", "vendor-cloud".
  SimTime at;
  ObsolescenceKind kind = ObsolescenceKind::kTechnical;
};

// An ordered schedule of sunsets. Cellular generations historically live
// ~20 years from launch to sunset; the default schedule mirrors the US
// history the paper alludes to (2G sunset ~2022, 3G ~2022-25) projected
// forward one generation per decade.
class TechnologyTimeline {
 public:
  TechnologyTimeline() = default;

  void Add(SunsetEvent event);

  // All sunsets at or before `t`, in time order.
  std::vector<SunsetEvent> SunsetsBy(SimTime t) const;
  // The sunset for `technology`, if scheduled.
  std::optional<SunsetEvent> SunsetOf(const std::string& technology) const;
  bool IsSunset(const std::string& technology, SimTime now) const;
  const std::vector<SunsetEvent>& events() const { return events_; }

  // US-style cellular timeline, with t=0 meaning "deployment day":
  //   2G already near end-of-life (sunset at +2y), 3G at +4y, 4G at +14y,
  //   5G at +26y, 6G at +38y. Devices bound to generation G go dark at its
  //   sunset unless re-homed.
  static TechnologyTimeline UsCellularDefault();

  // Random timeline: each generation lives Uniform(love, high) years after
  // the previous sunset. Useful for Monte-Carlo sweeps over provider risk.
  static TechnologyTimeline RandomCellular(RandomStream& rng, int generations,
                                           double min_gap_years, double max_gap_years);

 private:
  std::vector<SunsetEvent> events_;  // Kept sorted by time.
};

}  // namespace centsim

#endif  // SRC_RELIABILITY_OBSOLESCENCE_H_
