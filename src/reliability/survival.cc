#include "src/reliability/survival.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace centsim {

size_t KaplanMeier::failure_count() const {
  size_t n = 0;
  for (const auto& o : obs_) {
    n += o.failed ? 1 : 0;
  }
  return n;
}

std::vector<KaplanMeier::CurvePoint> KaplanMeier::Curve() const {
  std::vector<SurvivalObservation> sorted = obs_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              // Failures before censorings at equal times (convention).
              return a.failed && !b.failed;
            });

  std::vector<CurvePoint> curve;
  double s = 1.0;
  uint64_t at_risk = sorted.size();
  size_t i = 0;
  while (i < sorted.size()) {
    const SimTime t = sorted[i].time;
    uint64_t events = 0;
    uint64_t leaving = 0;
    while (i < sorted.size() && sorted[i].time == t) {
      events += sorted[i].failed ? 1 : 0;
      ++leaving;
      ++i;
    }
    if (events > 0 && at_risk > 0) {
      s *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      curve.push_back({t, s, at_risk, events});
    }
    at_risk -= leaving;
  }
  return curve;
}

double KaplanMeier::SurvivalAt(SimTime t) const {
  double s = 1.0;
  for (const auto& pt : Curve()) {
    if (pt.time <= t) {
      s = pt.survival;
    } else {
      break;
    }
  }
  return s;
}

std::optional<SimTime> KaplanMeier::MedianSurvival() const {
  for (const auto& pt : Curve()) {
    if (pt.survival <= 0.5) {
      return pt.time;
    }
  }
  return std::nullopt;
}

SimTime KaplanMeier::RestrictedMean(SimTime horizon) const {
  const auto curve = Curve();
  double area = 0.0;
  double s = 1.0;
  SimTime prev;
  for (const auto& pt : curve) {
    const SimTime upto = std::min(pt.time, horizon);
    if (upto > prev) {
      area += s * (upto - prev).ToSeconds();
      prev = upto;
    }
    if (pt.time >= horizon) {
      return SimTime::Seconds(area);
    }
    s = pt.survival;
  }
  if (horizon > prev) {
    area += s * (horizon - prev).ToSeconds();
  }
  return SimTime::Seconds(area);
}

// --- SurvivalTable -------------------------------------------------------

SurvivalTable SurvivalTable::Build(const std::function<double(SimTime)>& survival,
                                   uint32_t points) {
  assert(points >= 2);
  constexpr double kTail = 1e-9;
  // Find a time horizon where essentially everything has failed.
  SimTime t_hi = SimTime::Years(1);
  while (survival(t_hi) > kTail && t_hi.micros() < (INT64_MAX >> 2)) {
    t_hi = t_hi * 2.0;
  }
  // Pre-sample S once on a geometric time grid, then invert each knot by
  // interpolating between grid neighbours. This costs O(grid + points)
  // survival() evaluations instead of a per-knot microsecond bisection
  // (~54 evaluations each); the grid spacing (<0.05% in t) keeps the
  // interpolation error far below the table's own 1/points quantisation.
  constexpr uint32_t kGrid = 32768;
  const double grid_lo = 3.6e9;  // 1 hour in us: S ~ 1 below this.
  const double grid_hi = static_cast<double>(t_hi.micros());
  const double log_step = std::log(std::max(grid_hi / grid_lo, 1.0 + 1e-12)) /
                          static_cast<double>(kGrid - 1);
  std::vector<double> grid_t(kGrid);
  std::vector<double> grid_s(kGrid);
  for (uint32_t k = 0; k < kGrid; ++k) {
    grid_t[k] = grid_lo * std::exp(log_step * static_cast<double>(k));
    grid_s[k] = survival(SimTime::Micros(static_cast<int64_t>(grid_t[k])));
  }
  // Enforce monotone non-increasing samples against numeric jitter.
  for (uint32_t k = 1; k < kGrid; ++k) {
    grid_s[k] = std::min(grid_s[k], grid_s[k - 1]);
  }

  SurvivalTable table;
  table.times_us_.resize(points);
  const uint32_t last = points - 1;
  for (uint32_t i = 0; i < points; ++i) {
    // u = 0 would be the (possibly unbounded) far tail; clamp the first
    // knot to the kTail quantile — lives beyond S < 1e-9 are truncated.
    const double u = std::max(static_cast<double>(i) / static_cast<double>(last), kTail);
    double t;
    if (u >= grid_s.front()) {
      // Between t = 0 (S = 1) and the first grid point.
      const double den = 1.0 - grid_s.front();
      t = den > 0.0 ? grid_t.front() * (1.0 - u) / den : 0.0;
    } else if (u <= grid_s.back()) {
      t = grid_t.back();  // Tail clamp, as before: lives truncated at S ~ kTail.
    } else {
      // First grid index with S <= u (grid_s is non-increasing).
      const auto it = std::lower_bound(grid_s.begin(), grid_s.end(), u,
                                       [](double s, double value) { return s > value; });
      const size_t k = static_cast<size_t>(it - grid_s.begin());
      const double den = grid_s[k - 1] - grid_s[k];
      const double frac = den > 0.0 ? (grid_s[k - 1] - u) / den : 1.0;
      t = grid_t[k - 1] + frac * (grid_t[k] - grid_t[k - 1]);
    }
    table.times_us_[i] = static_cast<int64_t>(t);
  }
  // Monotonicity guard against plateaus in S: make times non-increasing.
  for (uint32_t i = 1; i < points; ++i) {
    table.times_us_[i] = std::min(table.times_us_[i], table.times_us_[i - 1]);
  }
  return table;
}

SimTime SurvivalTable::max_time() const {
  return times_us_.empty() ? SimTime() : SimTime::Micros(times_us_.front());
}

SimTime SurvivalTable::Sample(RandomStream& rng) const {
  const double u = rng.NextDouble();  // [0, 1): S-quantile of the draw.
  const size_t last = times_us_.size() - 1;
  const double pos = u * static_cast<double>(last);
  const size_t i = static_cast<size_t>(pos);
  if (i >= last) {
    return SimTime::Micros(times_us_[last]);
  }
  const double frac = pos - static_cast<double>(i);
  const double t = static_cast<double>(times_us_[i]) * (1.0 - frac) +
                   static_cast<double>(times_us_[i + 1]) * frac;
  return SimTime::Micros(static_cast<int64_t>(t));
}

SimTime SurvivalTable::SampleConditional(RandomStream& rng, SimTime age) const {
  if (age <= SimTime()) {
    return Sample(rng);
  }
  // T | T > age has quantile function S^{-1}(u * S(age)); reuse the table
  // in both directions.
  const double s_age = SurvivalAt(age);
  if (s_age <= 0.0) {
    return SimTime();  // Past the table's tail: fails immediately.
  }
  const double u = rng.NextDouble() * s_age;
  const size_t last = times_us_.size() - 1;
  const double pos = u * static_cast<double>(last);
  const size_t i = static_cast<size_t>(pos);
  SimTime t;
  if (i >= last) {
    t = SimTime::Micros(times_us_[last]);
  } else {
    const double frac = pos - static_cast<double>(i);
    t = SimTime::Micros(static_cast<int64_t>(static_cast<double>(times_us_[i]) * (1.0 - frac) +
                                             static_cast<double>(times_us_[i + 1]) * frac));
  }
  return t > age ? t - age : SimTime();
}

double SurvivalTable::SurvivalAt(SimTime t) const {
  if (times_us_.empty()) {
    return 0.0;
  }
  const int64_t t_us = t.micros();
  if (t_us >= times_us_.front()) {
    return 0.0;
  }
  const size_t last = times_us_.size() - 1;
  if (t_us <= times_us_[last]) {
    return 1.0;
  }
  // times_us_ is non-increasing: binary search for the straddling knots.
  const auto it = std::lower_bound(times_us_.begin(), times_us_.end(), t_us,
                                   [](int64_t knot, int64_t value) { return knot > value; });
  // it points at the first knot <= t_us; it != begin since t < front.
  const size_t hi = static_cast<size_t>(it - times_us_.begin());  // knot <= t.
  const size_t lo = hi - 1;                                       // knot > t.
  const double t_lo = static_cast<double>(times_us_[lo]);
  const double t_hi2 = static_cast<double>(times_us_[hi]);
  const double u_lo = static_cast<double>(lo) / static_cast<double>(last);
  const double u_hi = static_cast<double>(hi) / static_cast<double>(last);
  if (t_lo == t_hi2) {
    return u_hi;
  }
  const double frac = (t_lo - static_cast<double>(t_us)) / (t_lo - t_hi2);
  return u_lo + frac * (u_hi - u_lo);
}

}  // namespace centsim
