#include "src/reliability/survival.h"

#include <algorithm>

namespace centsim {

size_t KaplanMeier::failure_count() const {
  size_t n = 0;
  for (const auto& o : obs_) {
    n += o.failed ? 1 : 0;
  }
  return n;
}

std::vector<KaplanMeier::CurvePoint> KaplanMeier::Curve() const {
  std::vector<SurvivalObservation> sorted = obs_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              // Failures before censorings at equal times (convention).
              return a.failed && !b.failed;
            });

  std::vector<CurvePoint> curve;
  double s = 1.0;
  uint64_t at_risk = sorted.size();
  size_t i = 0;
  while (i < sorted.size()) {
    const SimTime t = sorted[i].time;
    uint64_t events = 0;
    uint64_t leaving = 0;
    while (i < sorted.size() && sorted[i].time == t) {
      events += sorted[i].failed ? 1 : 0;
      ++leaving;
      ++i;
    }
    if (events > 0 && at_risk > 0) {
      s *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      curve.push_back({t, s, at_risk, events});
    }
    at_risk -= leaving;
  }
  return curve;
}

double KaplanMeier::SurvivalAt(SimTime t) const {
  double s = 1.0;
  for (const auto& pt : Curve()) {
    if (pt.time <= t) {
      s = pt.survival;
    } else {
      break;
    }
  }
  return s;
}

std::optional<SimTime> KaplanMeier::MedianSurvival() const {
  for (const auto& pt : Curve()) {
    if (pt.survival <= 0.5) {
      return pt.time;
    }
  }
  return std::nullopt;
}

SimTime KaplanMeier::RestrictedMean(SimTime horizon) const {
  const auto curve = Curve();
  double area = 0.0;
  double s = 1.0;
  SimTime prev;
  for (const auto& pt : curve) {
    const SimTime upto = std::min(pt.time, horizon);
    if (upto > prev) {
      area += s * (upto - prev).ToSeconds();
      prev = upto;
    }
    if (pt.time >= horizon) {
      return SimTime::Seconds(area);
    }
    s = pt.survival;
  }
  if (horizon > prev) {
    area += s * (horizon - prev).ToSeconds();
  }
  return SimTime::Seconds(area);
}

}  // namespace centsim
