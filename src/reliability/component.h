// Component-level reliability catalog.
//
// An edge device, gateway, or backhaul element is modeled as a series system
// of components: it works only while every component works. The catalog
// encodes the paper's §1 claim that batteries, electrolytic capacitors, and
// PCB substrates cap conventional device lifetime around 10-15 years, while
// the design choices of energy-harvesting hardware (no battery, ceramic
// instead of electrolytic capacitors, derated low-power parts) remove the
// dominant wear-out terms.

#ifndef SRC_RELIABILITY_COMPONENT_H_
#define SRC_RELIABILITY_COMPONENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/reliability/hazard.h"

namespace centsim {

enum class ComponentClass : uint8_t {
  kBattery,           // Primary/secondary chemistry; calendar-life bound.
  kElectrolyticCap,   // Electrolyte dry-out wear-out.
  kCeramicCap,        // Effectively indefinite in derated use.
  kPcbSubstrate,      // Laminate degradation, via fatigue (IPC-6012 class).
  kFlashMemory,       // Retention/endurance limited.
  kMicrocontroller,   // Silicon wear-out far out; random failures dominate.
  kRadioIc,
  kSolarCell,         // Output degrades; catastrophic failure rare.
  kSupercap,          // Mild wear-out, far beyond battery calendar life.
  kConnectorSolder,   // Thermal-cycling fatigue.
  kEmbeddedComputer,  // Raspberry-Pi-class gateway computer.
  kPowerSupply,       // AC adapter: electrolytics dominate.
  kSdCard,            // Gateway storage; notorious early failure.
};

const char* ComponentClassName(ComponentClass c);

struct ComponentSpec {
  ComponentClass cls;
  std::string name;
  std::shared_ptr<const HazardModel> hazard;
};

// Factory functions for the catalog entries. Lifetime parameters follow the
// sources cited in the paper (IPC-6012E for PCBs, Jang et al. for
// post-collapse hardware longevity) plus standard reliability handbooks.
ComponentSpec MakeBattery(SimTime calendar_life_mean = SimTime::Years(15));
ComponentSpec MakeElectrolyticCap(SimTime rated_life = SimTime::Years(20));
ComponentSpec MakeCeramicCap();
ComponentSpec MakePcbSubstrate(SimTime service_life = SimTime::Years(40));
ComponentSpec MakeFlashMemory(SimTime retention = SimTime::Years(20));
ComponentSpec MakeMicrocontroller();
ComponentSpec MakeRadioIc();
ComponentSpec MakeSolarCell();
ComponentSpec MakeSupercap(SimTime rated_life = SimTime::Years(30));
ComponentSpec MakeConnectorSolder(SimTime fatigue_life = SimTime::Years(25));
ComponentSpec MakeEmbeddedComputer(SimTime mttf = SimTime::Years(8));
ComponentSpec MakePowerSupply(SimTime mttf = SimTime::Years(7));
ComponentSpec MakeSdCard(SimTime mttf = SimTime::Years(4));

// A series system of components. The realized device life is the minimum of
// the component lives; the survival function is the product.
class SeriesSystem {
 public:
  SeriesSystem() = default;

  void Add(ComponentSpec spec) { components_.push_back(std::move(spec)); }
  size_t size() const { return components_.size(); }
  const std::vector<ComponentSpec>& components() const { return components_; }

  // Samples the system life and reports which component failed first.
  struct LifeDraw {
    SimTime life;
    size_t failing_component;  // Index into components(); SIZE_MAX if none.
  };
  LifeDraw SampleLife(RandomStream& rng) const;

  double Survival(SimTime t) const;
  // System MTTF by numerical integration of the product survival.
  SimTime Mttf(SimTime horizon = SimTime::Years(200)) const;

  // Bills of materials for the device classes the paper contrasts.
  // Battery-powered conventional sensor node (10-15 y mean life, per §1).
  static SeriesSystem BatteryPoweredNode();
  // Energy-harvesting node: no battery, ceramic caps, supercap storage.
  static SeriesSystem EnergyHarvestingNode();
  // Raspberry-Pi-class 802.15.4 gateway with PSU and SD card.
  static SeriesSystem RaspberryPiGateway();
  // Hardened Helium hotspot (consumer hardware, wall powered).
  static SeriesSystem HeliumHotspot();

 private:
  std::vector<ComponentSpec> components_;
};

}  // namespace centsim

#endif  // SRC_RELIABILITY_COMPONENT_H_
