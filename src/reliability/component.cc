#include "src/reliability/component.h"

#include <cassert>
#include <cmath>

namespace centsim {
namespace {

std::shared_ptr<const HazardModel> Weib(double shape, SimTime scale) {
  return std::make_shared<WeibullHazard>(shape, scale);
}

std::shared_ptr<const HazardModel> Expo(SimTime mttf) {
  return std::make_shared<ExponentialHazard>(mttf);
}

}  // namespace

const char* ComponentClassName(ComponentClass c) {
  switch (c) {
    case ComponentClass::kBattery:
      return "battery";
    case ComponentClass::kElectrolyticCap:
      return "electrolytic-cap";
    case ComponentClass::kCeramicCap:
      return "ceramic-cap";
    case ComponentClass::kPcbSubstrate:
      return "pcb-substrate";
    case ComponentClass::kFlashMemory:
      return "flash";
    case ComponentClass::kMicrocontroller:
      return "mcu";
    case ComponentClass::kRadioIc:
      return "radio-ic";
    case ComponentClass::kSolarCell:
      return "solar-cell";
    case ComponentClass::kSupercap:
      return "supercap";
    case ComponentClass::kConnectorSolder:
      return "connector/solder";
    case ComponentClass::kEmbeddedComputer:
      return "embedded-computer";
    case ComponentClass::kPowerSupply:
      return "power-supply";
    case ComponentClass::kSdCard:
      return "sd-card";
  }
  return "?";
}

ComponentSpec MakeBattery(SimTime calendar_life_mean) {
  // Calendar aging dominates at low duty cycle; tight wear-out (k=3).
  // Mean of Weibull(k, eta) = eta * Gamma(1 + 1/k); invert for eta.
  const double eta = calendar_life_mean.ToSeconds() / std::tgamma(1.0 + 1.0 / 3.0);
  return {ComponentClass::kBattery, "li-primary-battery", Weib(3.0, SimTime::Seconds(eta))};
}

ComponentSpec MakeElectrolyticCap(SimTime rated_life) {
  // Electrolyte dry-out: steep wear-out around the rated life.
  return {ComponentClass::kElectrolyticCap, "aluminum-electrolytic", Weib(5.0, rated_life)};
}

ComponentSpec MakeCeramicCap() {
  // Derated C0G/X7R: random failures only, very long MTTF.
  return {ComponentClass::kCeramicCap, "mlcc", Expo(SimTime::Years(400))};
}

ComponentSpec MakePcbSubstrate(SimTime service_life) {
  // IPC-6012E class 3 laminates: slow wear-out (CAF growth, via fatigue).
  return {ComponentClass::kPcbSubstrate, "fr4-substrate", Weib(2.5, service_life)};
}

ComponentSpec MakeFlashMemory(SimTime retention) {
  return {ComponentClass::kFlashMemory, "nor-flash", Weib(3.0, retention)};
}

ComponentSpec MakeMicrocontroller() {
  return {ComponentClass::kMicrocontroller, "cortex-m-mcu", Expo(SimTime::Years(150))};
}

ComponentSpec MakeRadioIc() {
  return {ComponentClass::kRadioIc, "radio-ic", Expo(SimTime::Years(120))};
}

ComponentSpec MakeSolarCell() {
  // Output degradation is modeled in the energy module; catastrophic
  // failure (cracking, delamination) is a mild wear-out here.
  return {ComponentClass::kSolarCell, "solar-cell", Weib(2.0, SimTime::Years(60))};
}

ComponentSpec MakeSupercap(SimTime rated_life) {
  return {ComponentClass::kSupercap, "supercap", Weib(3.0, rated_life)};
}

ComponentSpec MakeConnectorSolder(SimTime fatigue_life) {
  return {ComponentClass::kConnectorSolder, "solder-joints", Weib(2.0, fatigue_life)};
}

ComponentSpec MakeEmbeddedComputer(SimTime mttf) {
  // RPi-class board: mix of early failures and random faults.
  BathtubHazard::Params p;
  p.infant_shape = 0.6;
  p.infant_scale = SimTime::Years(80);
  p.random_mttf = mttf * 2.0;
  p.wearout_shape = 3.0;
  p.wearout_scale = mttf * 1.5;
  return {ComponentClass::kEmbeddedComputer, "rpi-board", std::make_shared<BathtubHazard>(p)};
}

ComponentSpec MakePowerSupply(SimTime mttf) {
  // Wall-wart PSU: electrolytics dominate -> steepish wear-out.
  return {ComponentClass::kPowerSupply, "ac-psu", Weib(3.0, mttf * 1.12)};
}

ComponentSpec MakeSdCard(SimTime mttf) {
  // Infant mortality plus steady wear: shallow Weibull.
  return {ComponentClass::kSdCard, "sd-card", Weib(1.2, mttf)};
}

SeriesSystem::LifeDraw SeriesSystem::SampleLife(RandomStream& rng) const {
  LifeDraw draw{SimTime::Max(), SIZE_MAX};
  for (size_t i = 0; i < components_.size(); ++i) {
    const SimTime t = components_[i].hazard->SampleLife(rng);
    if (t < draw.life) {
      draw.life = t;
      draw.failing_component = i;
    }
  }
  return draw;
}

double SeriesSystem::Survival(SimTime t) const {
  double s = 1.0;
  for (const auto& c : components_) {
    s *= c.hazard->Survival(t);
  }
  return s;
}

SimTime SeriesSystem::Mttf(SimTime horizon) const {
  const int steps = 4096;
  const double h = horizon.ToSeconds();
  const double dt = h / steps;
  double acc = 0.0;
  double prev = 1.0;
  for (int i = 1; i <= steps; ++i) {
    const double s = Survival(SimTime::Seconds(dt * i));
    acc += 0.5 * (prev + s) * dt;
    prev = s;
  }
  return SimTime::Seconds(acc);
}

SeriesSystem SeriesSystem::BatteryPoweredNode() {
  SeriesSystem sys;
  sys.Add(MakeBattery());
  sys.Add(MakeElectrolyticCap());
  sys.Add(MakePcbSubstrate());
  sys.Add(MakeFlashMemory());
  sys.Add(MakeMicrocontroller());
  sys.Add(MakeRadioIc());
  sys.Add(MakeConnectorSolder());
  return sys;
}

SeriesSystem SeriesSystem::EnergyHarvestingNode() {
  SeriesSystem sys;
  // No battery; ceramic caps; supercap storage; same digital parts. The
  // PCB is conformally coated and the node runs cold, so substrate and
  // solder fatigue lives stretch.
  sys.Add(MakeCeramicCap());
  sys.Add(MakeSupercap(SimTime::Years(40)));
  sys.Add(MakePcbSubstrate(SimTime::Years(60)));
  sys.Add(MakeFlashMemory(SimTime::Years(30)));
  sys.Add(MakeMicrocontroller());
  sys.Add(MakeRadioIc());
  sys.Add(MakeConnectorSolder(SimTime::Years(40)));
  sys.Add(MakeSolarCell());
  return sys;
}

SeriesSystem SeriesSystem::RaspberryPiGateway() {
  SeriesSystem sys;
  sys.Add(MakeEmbeddedComputer());
  sys.Add(MakePowerSupply());
  sys.Add(MakeSdCard());
  sys.Add(MakeRadioIc());
  return sys;
}

SeriesSystem SeriesSystem::HeliumHotspot() {
  SeriesSystem sys;
  sys.Add(MakeEmbeddedComputer(SimTime::Years(6)));
  sys.Add(MakePowerSupply(SimTime::Years(6)));
  sys.Add(MakeRadioIc());
  return sys;
}

}  // namespace centsim
