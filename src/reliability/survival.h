// Survival analysis over observed lifetimes (possibly right-censored).
//
// The experiment harness records, for every device/gateway instance, either
// a failure time or a censoring time (still alive when the run ended). The
// Kaplan-Meier estimator turns those observations into a nonparametric
// survival curve — the canonical way to report "how long do these things
// actually last" from a living study like the paper's §4.5 diary.

#ifndef SRC_RELIABILITY_SURVIVAL_H_
#define SRC_RELIABILITY_SURVIVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

struct SurvivalObservation {
  SimTime time;  // Failure time, or last-seen-alive time if censored.
  bool failed;   // false => right-censored.
};

class KaplanMeier {
 public:
  void Observe(SimTime time, bool failed) { obs_.push_back({time, failed}); }
  void Observe(const SurvivalObservation& o) { obs_.push_back(o); }

  size_t count() const { return obs_.size(); }
  size_t failure_count() const;
  const std::vector<SurvivalObservation>& observations() const { return obs_; }

  // Product-limit survival estimate S(t). 1.0 before the first event.
  double SurvivalAt(SimTime t) const;

  // Smallest t with S(t) <= 0.5, if the curve gets there (it may not if
  // heavy censoring leaves S above 0.5 at the last observation).
  std::optional<SimTime> MedianSurvival() const;

  // Restricted mean survival time: area under S(t) up to `horizon`.
  SimTime RestrictedMean(SimTime horizon) const;

  // The step curve as (time, survival-after) pairs, for table output.
  struct CurvePoint {
    SimTime time;
    double survival;
    uint64_t at_risk;
    uint64_t events;
  };
  std::vector<CurvePoint> Curve() const;

 private:
  std::vector<SurvivalObservation> obs_;
};

// Tabulated inverse-survival sampler: the sampled engine's lifetime draw.
//
// The serial engine samples a device life as the minimum of per-component
// inverse-CDF draws (SeriesSystem::SampleLife) — around eight pow/log calls
// per deployment. The sampled engine replays millions of deployments
// inside its fast-forward walk, so it precomputes the *system* survival
// curve's inverse once (bisection on a uniform u-grid) and then samples
// with one uniform draw plus a linear interpolation. The sampled
// distribution equals min-of-components (a series system's survival is the
// product) up to the table's interpolation error; the tail beyond
// S(t) < 1e-9 is truncated to the table's last knot.
//
// Determinism contract: Sample consumes exactly one NextDouble from the
// caller's stream, so per-entity keyed streams (RandomStream::Derive) give
// every entity a reproducible life regardless of draw order or detailed-
// window placement.
class SurvivalTable {
 public:
  // Builds the inverse of `survival` (monotone non-increasing, S(0) = 1)
  // on a `points`-knot uniform u-grid. The time axis upper bound is found
  // by doubling until S drops below 1e-9.
  static SurvivalTable Build(const std::function<double(SimTime)>& survival,
                             uint32_t points = 4096);

  // Draws a life: one NextDouble, one table interpolation.
  SimTime Sample(RandomStream& rng) const;

  // Draws a remaining life for an item that already survived to `age`, by
  // inverse-sampling the conditional distribution through the same table.
  SimTime SampleConditional(RandomStream& rng, SimTime age) const;

  // S(t) recovered from the table (binary search + interpolation).
  double SurvivalAt(SimTime t) const;

  uint32_t points() const { return static_cast<uint32_t>(times_us_.size()); }
  SimTime max_time() const;

 private:
  // times_us_[i] = S^{-1}(u_i) in microseconds, u_i = i / (points - 1)
  // clamped away from 0 at the tail knot; decreasing in i.
  std::vector<int64_t> times_us_;
};

}  // namespace centsim

#endif  // SRC_RELIABILITY_SURVIVAL_H_
