// Survival analysis over observed lifetimes (possibly right-censored).
//
// The experiment harness records, for every device/gateway instance, either
// a failure time or a censoring time (still alive when the run ended). The
// Kaplan-Meier estimator turns those observations into a nonparametric
// survival curve — the canonical way to report "how long do these things
// actually last" from a living study like the paper's §4.5 diary.

#ifndef SRC_RELIABILITY_SURVIVAL_H_
#define SRC_RELIABILITY_SURVIVAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

struct SurvivalObservation {
  SimTime time;  // Failure time, or last-seen-alive time if censored.
  bool failed;   // false => right-censored.
};

class KaplanMeier {
 public:
  void Observe(SimTime time, bool failed) { obs_.push_back({time, failed}); }
  void Observe(const SurvivalObservation& o) { obs_.push_back(o); }

  size_t count() const { return obs_.size(); }
  size_t failure_count() const;
  const std::vector<SurvivalObservation>& observations() const { return obs_; }

  // Product-limit survival estimate S(t). 1.0 before the first event.
  double SurvivalAt(SimTime t) const;

  // Smallest t with S(t) <= 0.5, if the curve gets there (it may not if
  // heavy censoring leaves S above 0.5 at the last observation).
  std::optional<SimTime> MedianSurvival() const;

  // Restricted mean survival time: area under S(t) up to `horizon`.
  SimTime RestrictedMean(SimTime horizon) const;

  // The step curve as (time, survival-after) pairs, for table output.
  struct CurvePoint {
    SimTime time;
    double survival;
    uint64_t at_risk;
    uint64_t events;
  };
  std::vector<CurvePoint> Curve() const;

 private:
  std::vector<SurvivalObservation> obs_;
};

}  // namespace centsim

#endif  // SRC_RELIABILITY_SURVIVAL_H_
