// Parametric lifetime fitting for the living study (paper §4.5): the
// diary's observed unit lifetimes (possibly right-censored) are distilled
// into Weibull (shape, scale) estimates by maximum likelihood, so the
// field data can forecast the rest of the fleet ("a guide for real-world
// maintenance challenges of long-lived systems").

#ifndef SRC_RELIABILITY_FITTING_H_
#define SRC_RELIABILITY_FITTING_H_

#include <optional>
#include <vector>

#include "src/reliability/survival.h"
#include "src/sim/time.h"

namespace centsim {

struct WeibullFit {
  double shape = 0.0;
  double scale_years = 0.0;
  uint32_t iterations = 0;
  bool converged = false;

  SimTime Mttf() const;
  double SurvivalAt(SimTime t) const;
};

// MLE for right-censored Weibull data via Newton iteration on the profile
// likelihood in the shape parameter. Requires at least 3 failures; returns
// nullopt otherwise or on non-convergence.
std::optional<WeibullFit> FitWeibull(const std::vector<SurvivalObservation>& observations,
                                     uint32_t max_iterations = 200);

// Convenience: fit straight from a KaplanMeier's raw observations.
std::optional<WeibullFit> FitWeibull(const KaplanMeier& km);

}  // namespace centsim

#endif  // SRC_RELIABILITY_FITTING_H_
