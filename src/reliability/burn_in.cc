#include "src/reliability/burn_in.h"

namespace centsim {

BurnInAssessment AssessBurnIn(const HazardModel& hazard, const BurnInPolicy& policy,
                              SimTime field_window) {
  BurnInAssessment out;
  const double s_burn = hazard.Survival(policy.duration);
  const double s_window = hazard.Survival(field_window);
  const double s_both = hazard.Survival(policy.duration + field_window);

  out.bench_failure_fraction = 1.0 - s_burn;
  out.field_failure_without = 1.0 - s_window;
  out.field_failure_with = s_burn > 0 ? 1.0 - s_both / s_burn : 1.0;
  if (out.field_failure_without > 0) {
    out.relative_reduction = 1.0 - out.field_failure_with / out.field_failure_without;
  }
  const double prevented = out.field_failure_without - out.field_failure_with;
  if (prevented > 1e-12) {
    // Screening cost per deployed unit, divided by prevented field
    // failures per deployed unit (bench failures also consume a unit).
    const double cost_per_deployed =
        policy.cost_per_unit_usd / (s_burn > 0 ? s_burn : 1.0);
    out.cost_per_prevented_failure_usd = cost_per_deployed / prevented;
  }
  return out;
}

}  // namespace centsim
