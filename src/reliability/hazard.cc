#include "src/reliability/hazard.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace centsim {

double HazardModel::ConditionalSurvival(SimTime age, SimTime span) const {
  if (span <= SimTime()) {
    return 1.0;
  }
  const double s_age = Survival(age);
  if (s_age <= 0.0) {
    return 0.0;
  }
  return Survival(age + span) / s_age;
}

ExponentialHazard::ExponentialHazard(SimTime mttf) : mttf_(mttf) {
  assert(mttf.micros() > 0);
}

SimTime ExponentialHazard::SampleRemainingLife(RandomStream& rng, SimTime /*age*/) const {
  // Memoryless: conditioning on age changes nothing.
  return SimTime::Seconds(rng.Exponential(mttf_.ToSeconds()));
}

double ExponentialHazard::Survival(SimTime t) const {
  return std::exp(-t.ToSeconds() / mttf_.ToSeconds());
}

WeibullHazard::WeibullHazard(double shape, SimTime scale) : shape_(shape), scale_(scale) {
  assert(shape > 0 && scale.micros() > 0);
}

SimTime WeibullHazard::SampleRemainingLife(RandomStream& rng, SimTime age) const {
  // Inverse-CDF of the conditional distribution:
  //   T | T > a  has  S(t|a) = exp(((a/eta)^k - (t/eta)^k)).
  // Solve S = u: t = eta * ((a/eta)^k - ln u)^(1/k); remaining = t - a.
  const double eta = scale_.ToSeconds();
  const double a = age.ToSeconds();
  const double u = 1.0 - rng.NextDouble();  // u in (0, 1].
  const double base = std::pow(a / eta, shape_) - std::log(u);
  const double t = eta * std::pow(base, 1.0 / shape_);
  const double remaining = t - a;
  return SimTime::Seconds(remaining > 0 ? remaining : 0);
}

double WeibullHazard::Survival(SimTime t) const {
  return std::exp(-std::pow(t.ToSeconds() / scale_.ToSeconds(), shape_));
}

SimTime WeibullHazard::Mttf() const {
  return SimTime::Seconds(scale_.ToSeconds() * std::tgamma(1.0 + 1.0 / shape_));
}

BathtubHazard::BathtubHazard(const Params& params)
    : params_(params),
      infant_(params.infant_shape, params.infant_scale),
      random_(params.random_mttf),
      wearout_(params.wearout_shape, params.wearout_scale) {}

SimTime BathtubHazard::SampleRemainingLife(RandomStream& rng, SimTime age) const {
  // Competing risks: realized remaining life is the minimum draw.
  SimTime t = infant_.SampleRemainingLife(rng, age);
  t = std::min(t, random_.SampleRemainingLife(rng, age));
  t = std::min(t, wearout_.SampleRemainingLife(rng, age));
  return t;
}

double BathtubHazard::Survival(SimTime t) const {
  return infant_.Survival(t) * random_.Survival(t) * wearout_.Survival(t);
}

SimTime BathtubHazard::Mttf() const {
  // MTTF = integral of S(t) dt; trapezoid over an adaptive horizon.
  const double horizon = 5.0 * params_.wearout_scale.ToSeconds();
  const int steps = 4096;
  const double dt = horizon / steps;
  double acc = 0.0;
  double prev = 1.0;
  for (int i = 1; i <= steps; ++i) {
    const double s = Survival(SimTime::Seconds(dt * i));
    acc += 0.5 * (prev + s) * dt;
    prev = s;
  }
  return SimTime::Seconds(acc);
}

}  // namespace centsim
