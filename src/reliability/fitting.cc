#include "src/reliability/fitting.h"

#include <cmath>

namespace centsim {
namespace {

// Profile-likelihood shape equation for right-censored Weibull MLE:
//   g(k) = (1/r) sum_{failures} ln t_i + 1/k
//          - (sum_all t_i^k ln t_i) / (sum_all t_i^k)
// g is strictly decreasing in k, so bisection is safe.
double ShapeEquation(const std::vector<SurvivalObservation>& obs, double k) {
  double fail_log_sum = 0.0;
  double r = 0.0;
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& o : obs) {
    const double t = o.time.ToYears();
    if (t <= 0) {
      continue;
    }
    const double tk = std::pow(t, k);
    const double lt = std::log(t);
    weighted += tk * lt;
    total += tk;
    if (o.failed) {
      fail_log_sum += lt;
      r += 1.0;
    }
  }
  if (r == 0 || total == 0) {
    return 0.0;
  }
  return fail_log_sum / r + 1.0 / k - weighted / total;
}

}  // namespace

SimTime WeibullFit::Mttf() const {
  return SimTime::Years(scale_years * std::tgamma(1.0 + 1.0 / shape));
}

double WeibullFit::SurvivalAt(SimTime t) const {
  return std::exp(-std::pow(t.ToYears() / scale_years, shape));
}

std::optional<WeibullFit> FitWeibull(const std::vector<SurvivalObservation>& observations,
                                     uint32_t max_iterations) {
  uint32_t failures = 0;
  for (const auto& o : observations) {
    if (o.failed && o.time.ToYears() > 0) {
      ++failures;
    }
  }
  if (failures < 3) {
    return std::nullopt;
  }

  // Bracket the root of the decreasing function g(k).
  double lo = 0.05;
  double hi = 50.0;
  if (ShapeEquation(observations, lo) < 0 || ShapeEquation(observations, hi) > 0) {
    return std::nullopt;
  }
  WeibullFit fit;
  for (fit.iterations = 0; fit.iterations < max_iterations; ++fit.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double g = ShapeEquation(observations, mid);
    if (std::abs(g) < 1e-10 || (hi - lo) < 1e-9) {
      lo = hi = mid;
      break;
    }
    if (g > 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  fit.shape = 0.5 * (lo + hi);
  fit.converged = true;

  // Scale from the profile: eta^k = sum t_i^k / r.
  double total = 0.0;
  double r = 0.0;
  for (const auto& o : observations) {
    const double t = o.time.ToYears();
    if (t <= 0) {
      continue;
    }
    total += std::pow(t, fit.shape);
    if (o.failed) {
      r += 1.0;
    }
  }
  fit.scale_years = std::pow(total / r, 1.0 / fit.shape);
  return fit;
}

std::optional<WeibullFit> FitWeibull(const KaplanMeier& km) {
  return FitWeibull(km.observations());
}

}  // namespace centsim
