#include "src/reliability/obsolescence.h"

#include <algorithm>

namespace centsim {

const char* ObsolescenceKindName(ObsolescenceKind kind) {
  switch (kind) {
    case ObsolescenceKind::kTechnical:
      return "technical";
    case ObsolescenceKind::kStyle:
      return "style";
    case ObsolescenceKind::kPlanned:
      return "planned";
    case ObsolescenceKind::kFunctional:
      return "functional";
  }
  return "?";
}

void TechnologyTimeline::Add(SunsetEvent event) {
  auto it = std::lower_bound(events_.begin(), events_.end(), event.at,
                             [](const SunsetEvent& e, SimTime t) { return e.at < t; });
  events_.insert(it, std::move(event));
}

std::vector<SunsetEvent> TechnologyTimeline::SunsetsBy(SimTime t) const {
  std::vector<SunsetEvent> out;
  for (const auto& e : events_) {
    if (e.at <= t) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<SunsetEvent> TechnologyTimeline::SunsetOf(const std::string& technology) const {
  for (const auto& e : events_) {
    if (e.technology == technology) {
      return e;
    }
  }
  return std::nullopt;
}

bool TechnologyTimeline::IsSunset(const std::string& technology, SimTime now) const {
  const auto e = SunsetOf(technology);
  return e.has_value() && e->at <= now;
}

TechnologyTimeline TechnologyTimeline::UsCellularDefault() {
  TechnologyTimeline tl;
  tl.Add({"cellular-2g", SimTime::Years(2), ObsolescenceKind::kTechnical});
  tl.Add({"cellular-3g", SimTime::Years(4), ObsolescenceKind::kTechnical});
  tl.Add({"cellular-4g", SimTime::Years(14), ObsolescenceKind::kTechnical});
  tl.Add({"cellular-5g", SimTime::Years(26), ObsolescenceKind::kTechnical});
  tl.Add({"cellular-6g", SimTime::Years(38), ObsolescenceKind::kTechnical});
  return tl;
}

TechnologyTimeline TechnologyTimeline::RandomCellular(RandomStream& rng, int generations,
                                                      double min_gap_years,
                                                      double max_gap_years) {
  TechnologyTimeline tl;
  SimTime t;
  for (int g = 0; g < generations; ++g) {
    t += SimTime::Years(rng.Uniform(min_gap_years, max_gap_years));
    tl.Add({"cellular-g" + std::to_string(g + 2), t, ObsolescenceKind::kTechnical});
  }
  return tl;
}

}  // namespace centsim
