// Replacement-demand forecasting: closing the paper's §4.5 loop. The
// living study's observed lifetimes (fit in reliability/fitting.h) feed a
// renewal-theory forecast of how many units each future batch project will
// replace and what the labor bill is — "a guide for real-world maintenance
// challenges of long-lived systems", as a number the budget office can use.

#ifndef SRC_ECON_REPLACEMENT_PLANNING_H_
#define SRC_ECON_REPLACEMENT_PLANNING_H_

#include <cstdint>

#include "src/econ/labor.h"
#include "src/reliability/fitting.h"
#include "src/sim/time.h"

namespace centsim {

struct ReplacementForecast {
  double steady_failures_per_year = 0.0;   // Fleet renewal rate: N / MTTF.
  double replacements_per_zone_visit = 0.0;
  double mean_downtime_fraction = 0.0;     // Time a site waits dark for its batch.
  double person_hours_per_year = 0.0;
  double annual_labor_cost_usd = 0.0;
  double annual_hardware_cost_usd = 0.0;
};

// Renewal-theory forecast for a fleet maintained by geographic batch
// projects: every zone is revisited once per `batch_cycle`; failures wait
// (on average half a cycle, by symmetry of the failure instant within the
// cycle) for their zone's next visit.
ReplacementForecast ForecastReplacements(const WeibullFit& fit, uint64_t fleet_size,
                                         uint32_t zone_count, SimTime batch_cycle,
                                         const TruckRollParams& labor = {},
                                         double device_unit_usd = 60.0);

// The availability such a regime sustains: MTTF / (MTTF + mean wait).
double SteadyStateAvailability(const WeibullFit& fit, SimTime batch_cycle);

}  // namespace centsim

#endif  // SRC_ECON_REPLACEMENT_PLANNING_H_
