#include "src/econ/tariff.h"

#include <cmath>

namespace centsim {

double CellularTariff::CumulativeCostUsd(uint32_t sites, double t_years,
                                         uint32_t sunsets_by_t) const {
  if (t_years <= 0) {
    return modem_capex_usd * sites;
  }
  // Escalating annuity, integrated continuously: monthly*12 * sum of
  // (1+e)^y over elapsed years.
  double opex = 0.0;
  const double annual = monthly_fee_usd * 12.0;
  const double whole_years = std::floor(t_years);
  for (double y = 0; y < whole_years; y += 1.0) {
    opex += annual * std::pow(1.0 + annual_escalation, y);
  }
  opex += annual * std::pow(1.0 + annual_escalation, whole_years) * (t_years - whole_years);
  const double swaps = static_cast<double>(sunsets_by_t) * sunset_swap_cost_usd * sites;
  return modem_capex_usd * sites + opex * sites + swaps;
}

double FiberBuild::CapexUsd(double route_m, uint32_t sites) const {
  const double dig = coordinate_with_roadworks ? trench_usd_per_m * shared_dig_fraction
                                               : trench_usd_per_m;
  return route_m * (dig + fiber_usd_per_m) + transceiver_usd_per_site * sites;
}

double FiberBuild::CumulativeCostUsd(double route_m, uint32_t sites, double t_years) const {
  if (t_years < 0) {
    t_years = 0;
  }
  const double refreshes = transceiver_refresh_years > 0
                               ? std::floor(t_years / transceiver_refresh_years)
                               : 0.0;
  const double refresh_cost = refreshes * transceiver_usd_per_site * sites;
  const double opex = annual_opex_per_site_usd * sites * t_years;
  const double revenue = lease_revenue_per_site_monthly_usd * 12.0 * sites * t_years;
  return CapexUsd(route_m, sites) + refresh_cost + opex - revenue;
}

double FiberCellularCrossoverYears(const FiberBuild& fiber, double route_m,
                                   const CellularTariff& cellular, uint32_t sites,
                                   double horizon_years, double sunset_period_years) {
  for (double t = 0.0; t <= horizon_years; t += 0.25) {
    const uint32_t sunsets =
        sunset_period_years > 0 ? static_cast<uint32_t>(t / sunset_period_years) : 0;
    if (fiber.CumulativeCostUsd(route_m, sites, t) <=
        cellular.CumulativeCostUsd(sites, t, sunsets)) {
      return t;
    }
  }
  return -1.0;
}

}  // namespace centsim
