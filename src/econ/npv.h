// Discounted-cash-flow helpers for infrastructure planning horizons.

#ifndef SRC_ECON_NPV_H_
#define SRC_ECON_NPV_H_

#include <vector>

namespace centsim {

// Present value of a single cash flow `amount` at year `t` under annual
// discount rate `r`.
double PresentValue(double amount, double t_years, double r);

// Present value of a constant annual flow over [0, years].
double AnnuityPresentValue(double annual_amount, double years, double r);

// NPV of a (year, amount) schedule. Amounts may be negative (costs).
struct CashFlow {
  double year;
  double amount;
};
double NetPresentValue(const std::vector<CashFlow>& flows, double r);

// Equivalent annual cost of an asset: capex amortized over its life at
// rate r (the standard way to compare a 50-year fiber dig to a monthly
// cellular bill).
double EquivalentAnnualCost(double capex, double life_years, double r);

}  // namespace centsim

#endif  // SRC_ECON_NPV_H_
