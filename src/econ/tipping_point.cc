#include "src/econ/tipping_point.h"

#include <cmath>

#include "src/econ/npv.h"

namespace centsim {

TippingPointAnalysis AnalyzeTippingPoint(uint64_t device_count, const ReplacementCostParams& repl,
                                         const OwnedInfraParams& infra) {
  TippingPointAnalysis out;

  TruckRollModel labor(repl.truck_roll);
  out.replace_all_cost_usd = static_cast<double>(device_count) * repl.device_unit_usd +
                             labor.LaborCostUsd(device_count);

  const uint32_t gateways = static_cast<uint32_t>(
      std::ceil(static_cast<double>(device_count) /
                static_cast<double>(infra.devices_per_gateway)));
  const double capex =
      gateways * (infra.gateway_unit_usd + infra.gateway_install_usd +
                  infra.backhaul_capex_per_gateway_usd);
  const double opex_pv = AnnuityPresentValue(infra.annual_opex_per_gateway_usd * gateways,
                                             infra.planning_horizon_years, infra.discount_rate);
  out.owned_infra_cost_usd = capex + opex_pv;

  out.vertical_integration_wins = out.owned_infra_cost_usd < out.replace_all_cost_usd;
  return out;
}

uint64_t TippingPointFleetSize(const ReplacementCostParams& repl, const OwnedInfraParams& infra) {
  uint64_t lo = 1;
  uint64_t hi = 1000000000ULL;
  if (!AnalyzeTippingPoint(hi, repl, infra).vertical_integration_wins) {
    return 0;
  }
  if (AnalyzeTippingPoint(lo, repl, infra).vertical_integration_wins) {
    return lo;
  }
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (AnalyzeTippingPoint(mid, repl, infra).vertical_integration_wins) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace centsim
