// Field-labor model (paper §1).
//
// "Consider the scale of Los Angeles ... 320,000 utility poles, 61,315
// intersections, and 210,000 streetlights ... at a very generous 20 minute
// total replacement (including travel) time per device, recovering the
// deployment would require nearly 200,000 person-hours of labor alone."

#ifndef SRC_ECON_LABOR_H_
#define SRC_ECON_LABOR_H_

#include <cstdint>

#include "src/sim/time.h"

namespace centsim {

struct TruckRollParams {
  double minutes_per_device = 20.0;  // Replacement incl. travel (§1).
  double crew_size = 2.0;            // Bucket-truck crew.
  double hourly_rate_usd = 95.0;     // Loaded municipal labor rate.
  double hours_per_workyear = 1800.0;
};

class TruckRollModel {
 public:
  explicit TruckRollModel(const TruckRollParams& params = {}) : params_(params) {}

  // Person-hours to visit every one of `device_count` devices once.
  double PersonHours(uint64_t device_count) const;
  // Elapsed calendar time with `crews` working in parallel.
  SimTime CalendarTime(uint64_t device_count, uint32_t crews) const;
  double LaborCostUsd(uint64_t device_count) const;
  // Full-time-equivalent staff-years for the visit campaign.
  double StaffYears(uint64_t device_count) const;

  const TruckRollParams& params() const { return params_; }

 private:
  TruckRollParams params_;
};

// Maintenance-attention budget: with `staff` maintainers at
// `hours_per_workyear`, the person-hours available per device per year for
// a fleet of `device_count` — the quantity §3.1 argues goes to zero.
double AttentionHoursPerDeviceYear(double staff, uint64_t device_count,
                                   double hours_per_workyear = 1800.0);

}  // namespace centsim

#endif  // SRC_ECON_LABOR_H_
