// Helium data-credit economics (paper §4.4).
//
// "For one device to send one (up to 24-byte) packet every one hour for 50
// years will cost 438,000 data credits. We can provision a dedicated wallet
// today with a conservative 500,000 data credits for just $5 USD."
//
// Data credits are fixed-price ($0.00001 each) and non-transferable once
// minted, which is exactly what makes 50-year prepayment possible: the
// price of data, once purchased, cannot change.

#ifndef SRC_ECON_DATA_CREDITS_H_
#define SRC_ECON_DATA_CREDITS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace centsim {

inline constexpr double kUsdPerDataCredit = 0.00001;
inline constexpr uint32_t kBytesPerDataCredit = 24;

// Credits charged for one uplink of `payload_bytes` (1 DC per started
// 24-byte unit; minimum 1).
uint64_t CreditsForPacket(uint32_t payload_bytes);

// Credits needed to run one device at `packets_per_hour` for `years`
// (8760-hour accounting years, matching the paper's arithmetic), with all
// packets at or under 24 bytes.
uint64_t CreditsForSchedule(double packets_per_hour, double years,
                            uint32_t payload_bytes = kBytesPerDataCredit);

double CreditsToUsd(uint64_t credits);
uint64_t UsdToCredits(double usd);

// A prepaid wallet: provisioned once, drained per packet, never topped up
// (the unattended-operation model). Thread-compatible value semantics.
class DataCreditWallet {
 public:
  explicit DataCreditWallet(uint64_t initial_credits) : balance_(initial_credits) {}

  static DataCreditWallet FromUsd(double usd) { return DataCreditWallet(UsdToCredits(usd)); }

  // Charges for one packet. Returns false (wallet untouched) on
  // insufficient balance: the packet is refused by the network.
  bool ChargePacket(uint32_t payload_bytes);

  uint64_t balance() const { return balance_; }
  uint64_t spent() const { return spent_; }
  uint64_t refused() const { return refused_; }

  // With the given constant schedule, when does this wallet run dry?
  SimTime ProjectedExhaustion(double packets_per_hour,
                              uint32_t payload_bytes = kBytesPerDataCredit) const;

 private:
  uint64_t balance_;
  uint64_t spent_ = 0;
  uint64_t refused_ = 0;
};

}  // namespace centsim

#endif  // SRC_ECON_DATA_CREDITS_H_
