// Whole-deployment cost model (paper §2): "the cost for deployment for
// even a few thousand sensors can range into millions of dollars. Right
// now ... the numbers of nodes usually range from 500-5000. For these
// modest numbers of devices, operators predict lifetimes of 2-7 years
// until the system is upgraded."
//
// Capex (hardware + install) plus opex (connectivity, cloud, maintenance
// staff) over the deployment's predicted life, with the per-node-per-year
// figure that determines whether the economics ever scale to millions of
// nodes.

#ifndef SRC_ECON_DEPLOYMENT_COST_H_
#define SRC_ECON_DEPLOYMENT_COST_H_

#include <cstdint>
#include <string>

namespace centsim {

struct DeploymentCostParams {
  uint32_t node_count = 3300;           // San Diego's sensor count.
  double node_hardware_usd = 450.0;     // Multi-sensor city node.
  double node_install_usd = 300.0;      // Bucket truck + electrician.
  uint32_t gateway_count = 200;
  double gateway_total_usd = 3500.0;    // Hardware + install + lateral.
  double backhaul_monthly_per_gateway_usd = 25.0;
  double cloud_monthly_per_node_usd = 1.5;
  double staff_count = 3.0;
  double staff_annual_usd = 150000.0;
  double system_life_years = 5.0;       // The 2-7 year upgrade horizon.
  std::string name = "deployment";
};

struct DeploymentCostBreakdown {
  double capex_usd = 0.0;
  double opex_usd = 0.0;       // Over the system life.
  double total_usd = 0.0;
  double per_node_usd = 0.0;
  double per_node_per_year_usd = 0.0;
};

DeploymentCostBreakdown ComputeDeploymentCost(const DeploymentCostParams& params);

// Presets.
DeploymentCostParams SanDiegoStreetlights();   // §2: 3,300 sensor nodes.
DeploymentCostParams ModestPilot();            // 500-node low end.
// A future century-scale node: energy harvesting (no battery service),
// prepaid LPWAN connectivity, near-zero marginal staff.
DeploymentCostParams CenturyScaleNode(uint32_t node_count);

}  // namespace centsim

#endif  // SRC_ECON_DEPLOYMENT_COST_H_
