#include "src/econ/labor.h"

namespace centsim {

double TruckRollModel::PersonHours(uint64_t device_count) const {
  // "Total replacement time per device" is wall-clock per visit; each visit
  // consumes crew_size person-minutes per wall-clock minute... The paper's
  // 200k figure is wall-clock minutes * devices / 60 (one-person
  // accounting), so person-hours here uses one person per visit-minute and
  // the crew multiplier is applied only to cost.
  return static_cast<double>(device_count) * params_.minutes_per_device / 60.0;
}

SimTime TruckRollModel::CalendarTime(uint64_t device_count, uint32_t crews) const {
  if (crews == 0) {
    return SimTime::Max();
  }
  const double crew_hours = PersonHours(device_count) / crews;
  // A crew works hours_per_workyear per year.
  const double years = crew_hours / params_.hours_per_workyear;
  return SimTime::Years(years);
}

double TruckRollModel::LaborCostUsd(uint64_t device_count) const {
  return PersonHours(device_count) * params_.crew_size * params_.hourly_rate_usd;
}

double TruckRollModel::StaffYears(uint64_t device_count) const {
  return PersonHours(device_count) / params_.hours_per_workyear;
}

double AttentionHoursPerDeviceYear(double staff, uint64_t device_count,
                                   double hours_per_workyear) {
  if (device_count == 0) {
    return 0.0;
  }
  return staff * hours_per_workyear / static_cast<double>(device_count);
}

}  // namespace centsim
