// Backhaul cost structures (paper §3.3): recurring cellular subscriptions
// vs front-loaded fiber construction whose capacity "only goes on
// increasing" with transceiver upgrades, plus revenue offsets from leasing
// spare fiber capacity (San Leandro / Barcelona model).

#ifndef SRC_ECON_TARIFF_H_
#define SRC_ECON_TARIFF_H_

#include <cstdint>

namespace centsim {

// Recurring per-gateway cellular service.
struct CellularTariff {
  double monthly_fee_usd = 25.0;     // IoT data plan per gateway site.
  double modem_capex_usd = 150.0;    // Modem hardware per site.
  double annual_escalation = 0.02;   // Contract price escalation.
  // Forced re-subscription/hardware swap at each generation sunset.
  double sunset_swap_cost_usd = 400.0;

  // Cumulative cost of `sites` gateway sites through year `t` (continuous
  // years), with `sunsets_by_t` generation transitions already past.
  double CumulativeCostUsd(uint32_t sites, double t_years, uint32_t sunsets_by_t) const;
};

// Owned fiber build: trenching dominates; sharing a trench with scheduled
// roadworks (the paper's amortization argument) discounts it.
struct FiberBuild {
  double trench_usd_per_m = 120.0;       // Dedicated dig, urban.
  double shared_dig_fraction = 0.30;     // Cost share when trench is shared.
  bool coordinate_with_roadworks = true;
  double fiber_usd_per_m = 6.0;
  double transceiver_usd_per_site = 800.0;
  double transceiver_refresh_years = 12.0;  // End equipment, not the glass.
  double annual_opex_per_site_usd = 60.0;   // Locates, splicing reserve.
  double lease_revenue_per_site_monthly_usd = 0.0;  // Community ISP offset.

  double CapexUsd(double route_m, uint32_t sites) const;
  // Cumulative cost (capex + opex + refreshes - revenue) through year t.
  double CumulativeCostUsd(double route_m, uint32_t sites, double t_years) const;
};

// Crossover: first year (within `horizon_years`, searched at 0.25-year
// granularity) where cumulative fiber cost drops below cumulative cellular
// cost. Returns a negative value if fiber never wins inside the horizon.
double FiberCellularCrossoverYears(const FiberBuild& fiber, double route_m,
                                   const CellularTariff& cellular, uint32_t sites,
                                   double horizon_years,
                                   double sunset_period_years = 12.0);

}  // namespace centsim

#endif  // SRC_ECON_TARIFF_H_
