#include "src/econ/deployment_cost.h"

namespace centsim {

DeploymentCostBreakdown ComputeDeploymentCost(const DeploymentCostParams& params) {
  DeploymentCostBreakdown out;
  out.capex_usd = params.node_count * (params.node_hardware_usd + params.node_install_usd) +
                  params.gateway_count * params.gateway_total_usd;
  const double monthly = params.gateway_count * params.backhaul_monthly_per_gateway_usd +
                         params.node_count * params.cloud_monthly_per_node_usd;
  out.opex_usd = (monthly * 12.0 + params.staff_count * params.staff_annual_usd) *
                 params.system_life_years;
  out.total_usd = out.capex_usd + out.opex_usd;
  if (params.node_count > 0) {
    out.per_node_usd = out.total_usd / params.node_count;
    if (params.system_life_years > 0) {
      out.per_node_per_year_usd = out.per_node_usd / params.system_life_years;
    }
  }
  return out;
}

DeploymentCostParams SanDiegoStreetlights() {
  DeploymentCostParams p;
  p.name = "San Diego smart streetlights";
  p.node_count = 3300;
  p.node_hardware_usd = 450.0;
  p.node_install_usd = 300.0;
  p.gateway_count = 200;
  p.backhaul_monthly_per_gateway_usd = 25.0;  // The 3G/4G plans of §3.3.2.
  p.staff_count = 3.0;
  p.system_life_years = 5.0;
  return p;
}

DeploymentCostParams ModestPilot() {
  DeploymentCostParams p;
  p.name = "500-node pilot";
  p.node_count = 500;
  p.node_hardware_usd = 350.0;
  p.node_install_usd = 250.0;
  p.gateway_count = 30;
  p.staff_count = 1.0;
  p.system_life_years = 3.0;
  return p;
}

DeploymentCostParams CenturyScaleNode(uint32_t node_count) {
  DeploymentCostParams p;
  p.name = "century-scale harvesting fleet";
  p.node_count = node_count;
  p.node_hardware_usd = 60.0;   // Transmit-only harvesting node.
  p.node_install_usd = 35.0;    // Installed during scheduled roadworks.
  p.gateway_count = node_count / 1000 + 1;
  p.gateway_total_usd = 3500.0;
  p.backhaul_monthly_per_gateway_usd = 0.0;  // Owned fiber (amortized in gw).
  p.cloud_monthly_per_node_usd = 0.02;       // 24-byte weekly aggregates.
  p.staff_count = 2.0;                       // Chanute's staffing (§3.3.3).
  p.system_life_years = 30.0;
  return p;
}

}  // namespace centsim
