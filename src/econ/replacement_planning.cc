#include "src/econ/replacement_planning.h"

namespace centsim {

ReplacementForecast ForecastReplacements(const WeibullFit& fit, uint64_t fleet_size,
                                         uint32_t zone_count, SimTime batch_cycle,
                                         const TruckRollParams& labor,
                                         double device_unit_usd) {
  ReplacementForecast out;
  const double mttf_years = fit.Mttf().ToYears();
  if (mttf_years <= 0 || fleet_size == 0 || zone_count == 0) {
    return out;
  }
  const double cycle_years = batch_cycle.ToYears();
  // A failed site waits, on average, half a cycle for its zone's visit, so
  // the full renewal period is MTTF + cycle/2.
  const double renewal_years = mttf_years + cycle_years / 2.0;
  out.steady_failures_per_year = static_cast<double>(fleet_size) / renewal_years;
  // Each zone is visited zone_count times per cycle in aggregate; per-visit
  // demand is the yearly flow spread over the visits in a year.
  const double visits_per_year = static_cast<double>(zone_count) / cycle_years;
  out.replacements_per_zone_visit = out.steady_failures_per_year / visits_per_year;
  out.mean_downtime_fraction = (cycle_years / 2.0) / renewal_years;

  TruckRollModel model(labor);
  out.person_hours_per_year =
      model.PersonHours(static_cast<uint64_t>(out.steady_failures_per_year + 0.5));
  out.annual_labor_cost_usd =
      model.LaborCostUsd(static_cast<uint64_t>(out.steady_failures_per_year + 0.5));
  out.annual_hardware_cost_usd = out.steady_failures_per_year * device_unit_usd;
  return out;
}

double SteadyStateAvailability(const WeibullFit& fit, SimTime batch_cycle) {
  const double mttf_years = fit.Mttf().ToYears();
  if (mttf_years <= 0) {
    return 0.0;
  }
  const double wait = batch_cycle.ToYears() / 2.0;
  return mttf_years / (mttf_years + wait);
}

}  // namespace centsim
