// Vertical-integration tipping point (paper §3.4).
//
// "As the number of deployed devices grows, so does the cost of replacing
// them ... there will always be a tipping point where the cost of deploying
// vertically owned and managed infrastructure is lower than the cost of
// replacing devices."
//
// The model compares, at a provider-exit event:
//   option A — replace every deployed device with units speaking whatever
//              the surviving commercial infrastructure offers;
//   option B — build and operate owned gateways + backhaul so the extant
//              devices keep working untouched.

#ifndef SRC_ECON_TIPPING_POINT_H_
#define SRC_ECON_TIPPING_POINT_H_

#include <cstdint>

#include "src/econ/labor.h"

namespace centsim {

struct ReplacementCostParams {
  double device_unit_usd = 40.0;   // New device hardware.
  TruckRollParams truck_roll;      // Field labor per §1.
};

struct OwnedInfraParams {
  double gateway_unit_usd = 600.0;        // Hardened gateway hardware.
  double gateway_install_usd = 350.0;     // Mount + power + commissioning.
  uint32_t devices_per_gateway = 1000;    // Coverage fan-out (Figure 1).
  double backhaul_capex_per_gateway_usd = 2500.0;  // Fiber lateral share.
  double annual_opex_per_gateway_usd = 300.0;      // Power, locates, repair.
  double planning_horizon_years = 15.0;   // Opex horizon to count.
  double discount_rate = 0.03;
};

struct TippingPointAnalysis {
  double replace_all_cost_usd = 0.0;
  double owned_infra_cost_usd = 0.0;
  bool vertical_integration_wins = false;
};

// Costs both options for a fleet of `device_count`.
TippingPointAnalysis AnalyzeTippingPoint(uint64_t device_count, const ReplacementCostParams& repl,
                                         const OwnedInfraParams& infra);

// Smallest fleet size at which vertical integration wins, found by
// bisection over [1, 10^9]. Returns 0 if it never wins in that range.
uint64_t TippingPointFleetSize(const ReplacementCostParams& repl, const OwnedInfraParams& infra);

}  // namespace centsim

#endif  // SRC_ECON_TIPPING_POINT_H_
