#include "src/econ/data_credits.h"

#include <cmath>

namespace centsim {

uint64_t CreditsForPacket(uint32_t payload_bytes) {
  if (payload_bytes == 0) {
    return 1;
  }
  return (payload_bytes + kBytesPerDataCredit - 1) / kBytesPerDataCredit;
}

uint64_t CreditsForSchedule(double packets_per_hour, double years, uint32_t payload_bytes) {
  const double hours = years * 8760.0;  // The paper's 365-day accounting year.
  const double packets = packets_per_hour * hours;
  return static_cast<uint64_t>(std::ceil(packets)) * CreditsForPacket(payload_bytes);
}

double CreditsToUsd(uint64_t credits) {
  return static_cast<double>(credits) * kUsdPerDataCredit;
}

uint64_t UsdToCredits(double usd) {
  // Round to the nearest credit: the quotient is computed in floating
  // point and 1e-5 is not exactly representable, so flooring would drop a
  // credit on exact-dollar amounts.
  return static_cast<uint64_t>(std::llround(usd / kUsdPerDataCredit));
}

bool DataCreditWallet::ChargePacket(uint32_t payload_bytes) {
  const uint64_t cost = CreditsForPacket(payload_bytes);
  if (balance_ < cost) {
    ++refused_;
    return false;
  }
  balance_ -= cost;
  spent_ += cost;
  return true;
}

SimTime DataCreditWallet::ProjectedExhaustion(double packets_per_hour,
                                              uint32_t payload_bytes) const {
  if (packets_per_hour <= 0) {
    return SimTime::Max();
  }
  const double credits_per_hour =
      packets_per_hour * static_cast<double>(CreditsForPacket(payload_bytes));
  return SimTime::Hours(static_cast<double>(balance_) / credits_per_hour);
}

}  // namespace centsim
