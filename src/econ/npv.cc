#include "src/econ/npv.h"

#include <cmath>

namespace centsim {

double PresentValue(double amount, double t_years, double r) {
  return amount / std::pow(1.0 + r, t_years);
}

double AnnuityPresentValue(double annual_amount, double years, double r) {
  if (r == 0.0) {
    return annual_amount * years;
  }
  return annual_amount * (1.0 - std::pow(1.0 + r, -years)) / r;
}

double NetPresentValue(const std::vector<CashFlow>& flows, double r) {
  double npv = 0.0;
  for (const auto& f : flows) {
    npv += PresentValue(f.amount, f.year, r);
  }
  return npv;
}

double EquivalentAnnualCost(double capex, double life_years, double r) {
  if (life_years <= 0) {
    return capex;
  }
  if (r == 0.0) {
    return capex / life_years;
  }
  const double annuity_factor = (1.0 - std::pow(1.0 + r, -life_years)) / r;
  return capex / annuity_factor;
}

}  // namespace centsim
