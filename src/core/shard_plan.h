// Intra-run sharding plan (ROADMAP item 1): how one city is partitioned
// across cores. A default-constructed plan (shards == 0) selects the serial
// engine — the path every golden digest is pinned against. Any shards > 0
// selects the sharded engine, whose results are bit-identical across ANY
// shard count and worker count (including shards == 1), but intentionally
// distinct from the serial engine's: the sharded engine derives per-entity
// RNG streams and integrates availability in integers so its merge is
// order-free, where the serial engine threads one RNG through a global
// event order. See DESIGN.md "Sharded engine".

#ifndef SRC_CORE_SHARD_PLAN_H_
#define SRC_CORE_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace centsim {

struct ProgressCell;
class FlightRecorder;

struct ShardPlan {
  // Number of shard lanes. 0 = serial engine (default; goldens preserved
  // byte-for-byte). 1..N = sharded engine; digests are invariant in N.
  uint32_t shards = 0;
  // Worker threads driving the lanes. 0 = one per shard. Results never
  // depend on this — only wall clock does.
  uint32_t workers = 0;
  // Conservative synchronization window width W. Lanes pre-publish every
  // cross-shard effect a full window ahead, so any W is safe; 0 picks the
  // engine default. Results are invariant to W (same events, commuting
  // tie orders) — W only trades barrier frequency against status
  // granularity.
  SimTime window;

  // Optional per-shard observability: lane i publishes its window progress
  // into shard_progress[i] and rare lifecycle transitions into
  // shard_recorders[i]. Sized >= shards or left empty.
  std::vector<ProgressCell*> shard_progress;
  std::vector<FlightRecorder*> shard_recorders;

  bool enabled() const { return shards > 0; }

  std::vector<std::string> Validate() const {
    std::vector<std::string> diagnostics;
    if (window.micros() < 0) {
      diagnostics.push_back("negative shard.window: the conservative window width must be "
                            "positive (0 = engine default)");
    }
    if (!shard_progress.empty() && shard_progress.size() < shards) {
      diagnostics.push_back("shard.shard_progress is shorter than shard.shards: size it to "
                            "one cell per shard or leave it empty");
    }
    if (!shard_recorders.empty() && shard_recorders.size() < shards) {
      diagnostics.push_back("shard.shard_recorders is shorter than shard.shards: size it to "
                            "one recorder per shard or leave it empty");
    }
    return diagnostics;
  }
};

}  // namespace centsim

#endif  // SRC_CORE_SHARD_PLAN_H_
