// DeviceFleet: struct-of-arrays storage for per-device hot state, addressed
// by generation-tagged handles.
//
// The entity tier used to be one heap object graph per device (EdgeDevice →
// EnergyManager → unique_ptr<Harvester>, std::function callbacks, a name
// string per unit) — exactly the object-graph-per-node shape that caps
// simulators like iFogSim around 10^4 nodes. The fleet flips that: all hot
// per-device state (position, alive flag, generations, hardware-life
// deadline, energy storage level, last-advance time, tx grant/deny counts)
// lives in flat parallel columns, and everything immutable that devices of
// the same make share (radio parameters, load profile, storage chemistry,
// hardware BOM, vendor string) is interned once as a `DeviceClassSpec`.
//
// Handles use the same (slot << 32 | generation) pattern the event core's
// EventPool proved out: generation is 1-based and bumped on every slot
// release (skipping 0 on wrap), so a stale handle is detected with one
// comparison and kInvalidDeviceHandle == 0 never aliases a live device.
// Slots recycle LIFO; columns grow by vector doubling — handles are
// indices, not pointers, so growth never invalidates them.
//
// Energy transitions delegate to the same EnergyOps statics the one-device
// EnergyManager wraps, so fleet-resident devices and facade devices compute
// bit-identical doubles.

#ifndef SRC_CORE_FLEET_H_
#define SRC_CORE_FLEET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/city/deployment.h"
#include "src/energy/energy_manager.h"
#include "src/net/commissioning.h"
#include "src/net/packet.h"
#include "src/radio/lora.h"
#include "src/reliability/component.h"
#include "src/sim/inline_fn.h"
#include "src/sim/simulation.h"
#include "src/telemetry/sensors.h"

namespace centsim {

// Generation-tagged device reference: bits 63..32 slot, bits 31..0
// generation (1-based). 0 is never a valid handle.
using DeviceHandle = uint64_t;
inline constexpr DeviceHandle kInvalidDeviceHandle = 0;

// Immutable per-class record: everything devices of one make share. The
// fleet deduplicates these by content, so a million identical units cost
// one spec, not a million config copies.
struct DeviceClassSpec {
  std::string name = "device";     // Class (not per-unit) name; metric label.
  RadioTech tech = RadioTech::k802154;
  LoraConfig lora;
  // LoRaWAN receive class (class A: uplink-only windows; class B: beacon
  // tracking, charged per beacon by the fabric; class C: continuous
  // listen, priced into the load profile's sleep power).
  LoraDeviceClass rx_class = LoraDeviceClass::kClassA;
  double tx_power_dbm = 0.0;
  SimTime report_interval = SimTime::Hours(1);
  uint32_t payload_bytes = 12;
  std::string vendor;              // Empty => standards-compliant.
  DeviceCoupling coupling = DeviceCoupling::kStandardsCompliant;
  SensorKind sensor_kind = SensorKind::kTemperature;
  LoadProfile load;
  EnergyStorage::Params storage;
  SeriesSystem hardware;           // Reliability BOM (sampled via caller RNG).
};

class DeviceFleet {
 public:
  // Fleet-level failure hook (optional); fires after MarkFailedAt updates
  // the columns. InlineFn: no allocation for captures up to 48 bytes.
  using FailureHook = InlineFn<void(DeviceHandle, SimTime)>;

  explicit DeviceFleet(Simulation& sim) : sim_(sim) {}
  DeviceFleet(const DeviceFleet&) = delete;
  DeviceFleet& operator=(const DeviceFleet&) = delete;

  // --- Handle packing (mirrors EventPool) ---------------------------------
  static constexpr uint32_t SlotOf(DeviceHandle h) { return static_cast<uint32_t>(h >> 32); }
  static constexpr uint32_t GenerationOf(DeviceHandle h) { return static_cast<uint32_t>(h); }
  static constexpr DeviceHandle Pack(uint32_t slot, uint32_t generation) {
    return (static_cast<DeviceHandle>(slot) << 32) | generation;
  }

  // --- Classes ------------------------------------------------------------

  // Returns the id of an existing identical class or interns a new one.
  // First intern of a class binds its shared per-tech instruments
  // (device.failures, device.replacements, energy.tx_granted/denied,
  // energy.harvest_j) in that order.
  uint32_t InternClass(const DeviceClassSpec& spec);
  const DeviceClassSpec& class_spec(uint32_t cls) const { return classes_[cls].spec; }
  size_t class_count() const { return classes_.size(); }
  uint64_t class_replacements(uint32_t cls) const { return classes_[cls].replacement_count; }

  // --- Slots --------------------------------------------------------------

  void Reserve(size_t devices);

  // Adds a device of class `cls`. Fresh fleets assign slots sequentially
  // (slot == add order), which fleet drivers rely on for stable per-site
  // RNG stream derivation.
  DeviceHandle Add(uint32_t cls, double x_m, double y_m, uint32_t zone,
                   const HarvesterModel& harvester);

  // Adds one device per planned site (position + zone from the plan).
  // Returns the handle of the first added device.
  DeviceHandle AddSites(const DeploymentPlan& plan, uint32_t cls,
                        const HarvesterModel& harvester);

  // Adds one device per planned site in [begin, end) — a shard lane's
  // column range. Local slot = global site index - begin on a fresh fleet.
  DeviceHandle AddSitesRange(const DeploymentPlan& plan, uint32_t cls,
                             const HarvesterModel& harvester, uint32_t begin, uint32_t end);

  // Releases a slot: bumps the handle generation (all outstanding handles
  // for it go stale) and recycles it LIFO.
  void Remove(DeviceHandle h);

  // True iff `h` names a live (added, not yet removed) device.
  bool IsLive(DeviceHandle h) const {
    const uint32_t slot = SlotOf(h);
    return slot < handle_gen_.size() && handle_gen_[slot] == GenerationOf(h) &&
           GenerationOf(h) != 0;
  }

  size_t size() const { return handle_gen_.size() - free_.size(); }
  size_t capacity() const { return handle_gen_.size(); }
  uint64_t alive_count() const { return alive_count_; }
  uint64_t covered_count() const { return covered_count_; }

  // --- Column accessors (by slot) -----------------------------------------
  double x(uint32_t slot) const { return x_[slot]; }
  double y(uint32_t slot) const { return y_[slot]; }
  // Raw position columns for batch kernels (ContentionResolver::TxColumns
  // points straight at these; valid until the next Add/Reserve growth).
  const double* x_data() const { return x_.data(); }
  const double* y_data() const { return y_.data(); }
  uint32_t zone(uint32_t slot) const { return zone_[slot]; }
  uint32_t device_class(uint32_t slot) const { return class_[slot]; }
  bool alive(uint32_t slot) const { return alive_[slot] != 0; }
  uint32_t unit_generation(uint32_t slot) const { return unit_gen_[slot]; }
  SimTime deployed_at(uint32_t slot) const { return deployed_at_[slot]; }
  SimTime failed_at(uint32_t slot) const { return failed_at_[slot]; }
  SimTime deadline(uint32_t slot) const { return deadline_[slot]; }
  void set_deadline(uint32_t slot, SimTime t) { deadline_[slot] = t; }
  EventId failure_event(uint32_t slot) const { return failure_event_[slot]; }
  void set_failure_event(uint32_t slot, EventId id) { failure_event_[slot] = id; }
  uint32_t covering(uint32_t slot) const { return covering_[slot]; }
  uint64_t tx_granted(uint32_t slot) const { return tx_[slot].tx_granted; }
  uint64_t tx_denied(uint32_t slot) const { return tx_[slot].tx_denied; }
  const HarvesterModel& harvester(uint32_t slot) const { return harvester_[slot]; }

  // --- Lifecycle transitions ----------------------------------------------

  // Powers a unit up at the slot's site: alive, deployment timestamp, and a
  // new unit generation. Idempotent on `alive` (a redeploy over a live unit
  // still bumps the generation, matching EdgeDevice::ReplaceUnit).
  void DeployAt(uint32_t slot);

  // Hardware death: clears alive, stamps failed_at, counts the class
  // failure, then fires the fleet failure hook (if set).
  void MarkFailedAt(uint32_t slot);

  // Retires a working unit (proactive refresh): clears alive without
  // counting a failure or firing the hook.
  void RetireAt(uint32_t slot);

  // Counts a unit replacement against the slot's class.
  void CountReplacementAt(uint32_t slot);

  // Explicit-timestamp variants for the sampled engine, whose fast-forward
  // walk replays deployments and failures at times the scheduler clock
  // never visits. Column effects are identical to DeployAt/MarkFailedAt at
  // a scheduler whose Now() == `at`.
  void DeployAtTime(uint32_t slot, SimTime at);
  void MarkFailedAtTime(uint32_t slot, SimTime at);

  void SetFailureHook(FailureHook hook) { failure_hook_ = std::move(hook); }

  // --- Coverage -----------------------------------------------------------

  // Adjusts the count of operational gateways covering this site.
  void AddCoveringAt(uint32_t slot, int delta);

  // --- Energy (delegates to EnergyOps over the columns) -------------------

  void SetEnergyStateAt(uint32_t slot, const EnergyStorage::State& state, SimTime last_advance) {
    energy_[slot].storage = state;
    energy_[slot].last_advance = last_advance;
  }
  const EnergyStorage::State& energy_state(uint32_t slot) const {
    return energy_[slot].storage;
  }
  SimTime energy_last_advance(uint32_t slot) const { return energy_[slot].last_advance; }
  double StorageSocAt(uint32_t slot) const { return EnergyStorage::Soc(energy_[slot].storage); }

  void EnergyAdvanceTo(uint32_t slot, SimTime now);
  bool EnergyTryTransmit(uint32_t slot, SimTime now);
  // Unconditional energy adjustment at `now` (advance first): positive
  // `joules` drains (floored at empty), negative credits (capped at the
  // current capacity). Used for receive costs outside the TX accounting —
  // class B beacon listens, CAD scans, and CAD refunds of pre-charged TX
  // energy.
  void EnergyConsumeAt(uint32_t slot, SimTime now, double joules);
  SimTime EstimateNextAffordableAt(uint32_t slot, SimTime now, double joules) const;

  // Sampled-engine bulk advance: analytically fast-forwards one slot's
  // energy column to `to` (EnergyOps::FastForwardTo), carrying the
  // expected outcome of the transmission attempts the slot's class
  // report_interval implies over the skipped span. A call with
  // to <= last_advance is a bit-identical no-op.
  FastForwardResult FastForwardEnergyAt(uint32_t slot, SimTime to);
  // Same over every alive slot; returns the summed result.
  FastForwardResult FastForwardEnergy(SimTime to);

  // --- Checkpoint (src/snapshot drivers) ----------------------------------

  // The mutable portion of one slot's columns: everything a checkpoint must
  // carry. Geometry (position, zone, class, harvester) is rebuilt from the
  // config by the restoring driver, and failure_event ids are rebuilt by
  // timer re-arm, so neither appears here. Doubles round-trip as raw bit
  // patterns so restored energy arithmetic continues bit-identically.
  struct SlotState {
    uint8_t alive = 0;
    uint32_t handle_generation = 1;
    uint32_t unit_generation = 0;
    int64_t deployed_at_us = 0;
    int64_t failed_at_us = 0;
    int64_t deadline_us = 0;
    uint32_t covering = 0;
    double charge_j = 0.0;
    double capacity_now_j = 0.0;
    int64_t energy_last_update_us = 0;
    int64_t energy_last_advance_us = 0;
    uint64_t tx_granted = 0;
    uint64_t tx_denied = 0;
  };

  SlotState SaveSlotState(uint32_t slot) const;
  // Raw column overwrite; does not touch aggregates or gauges — call
  // RecountAggregates() once after restoring every slot.
  void RestoreSlotState(uint32_t slot, const SlotState& state);

  // Recomputes alive_count_/covered_count_ from the columns and republishes
  // the fleet gauges (when enabled).
  void RecountAggregates();

  // Restores a class's internal replacement tally. The associated metric
  // counters are restored separately by the metrics overlay — this touches
  // only the tally behind class_replacements().
  void RestoreClassReplacements(uint32_t cls, uint64_t count) {
    classes_[cls].replacement_count = count;
  }

  // --- Observability ------------------------------------------------------

  // Binds fleet-level gauges (fleet.alive_devices, fleet.covered_sites) and
  // per-class replacement counters (fleet.replacements{class=...}) in the
  // attached MetricsRegistry. Opt-in so runs pinned to golden metric sets
  // are unaffected unless they ask.
  void EnableFleetMetrics();

  // Bytes of fleet column storage currently allocated, and per allocated
  // slot. Class records and specs are excluded (amortized across the fleet).
  size_t MemoryBytes() const;
  double BytesPerDevice() const {
    return capacity() > 0 ? static_cast<double>(MemoryBytes()) / capacity() : 0.0;
  }

  Simulation& sim() { return sim_; }

 private:
  struct ClassRecord {
    DeviceClassSpec spec;
    // Shared per-tech instruments, bound at intern time in the same order
    // the per-device constructors used to bind them.
    Counter* failures = nullptr;
    Counter* replacements = nullptr;
    EnergyMetricHooks energy;
    // Fleet-level per-class replacement counter (EnableFleetMetrics).
    Counter* fleet_replacements = nullptr;
    uint64_t replacement_count = 0;
  };

  struct EnergyColumn {
    EnergyStorage::State storage;
    SimTime last_advance;
  };

  void BumpGeneration(uint32_t slot) {
    if (++handle_gen_[slot] == 0) {
      handle_gen_[slot] = 1;  // Skip 0 on wrap: handles must never be invalid.
    }
  }
  void BindFleetMetricsFor(ClassRecord& record);

  Simulation& sim_;

  std::vector<ClassRecord> classes_;
  std::unordered_map<std::string, uint32_t> class_index_;  // InternKey -> id.

  // Parallel per-slot columns.
  std::vector<uint32_t> handle_gen_;  // 1-based handle generations.
  std::vector<uint32_t> class_;
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<uint32_t> zone_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> unit_gen_;
  std::vector<SimTime> deployed_at_;
  std::vector<SimTime> failed_at_;
  std::vector<SimTime> deadline_;
  std::vector<EventId> failure_event_;
  std::vector<uint32_t> covering_;
  std::vector<EnergyColumn> energy_;
  std::vector<EnergyCounters> tx_;
  std::vector<HarvesterModel> harvester_;

  std::vector<uint32_t> free_;  // LIFO: most recently released first.

  uint64_t alive_count_ = 0;
  uint64_t covered_count_ = 0;
  FailureHook failure_hook_;

  bool fleet_metrics_enabled_ = false;
  Gauge* alive_gauge_ = nullptr;
  Gauge* covered_gauge_ = nullptr;
};

// Read-only energy view over one fleet slot, shaped like the old
// EdgeDevice::energy() surface (storage().soc(), load(), counters) so
// facade callers keep compiling.
class FleetEnergyView {
 public:
  FleetEnergyView(const DeviceFleet& fleet, uint32_t slot) : fleet_(fleet), slot_(slot) {}

  class StorageView {
   public:
    StorageView(const EnergyStorage::State& state, const EnergyStorage::Params& params)
        : state_(state), params_(params) {}
    double charge_j() const { return state_.charge_j; }
    double capacity_now_j() const { return state_.capacity_now_j; }
    double soc() const { return EnergyStorage::Soc(state_); }
    SimTime last_update() const { return state_.last_update; }
    const EnergyStorage::Params& params() const { return params_; }

   private:
    const EnergyStorage::State& state_;
    const EnergyStorage::Params& params_;
  };

  StorageView storage() const {
    return StorageView(fleet_.energy_state(slot_),
                       fleet_.class_spec(fleet_.device_class(slot_)).storage);
  }
  const LoadProfile& load() const {
    return fleet_.class_spec(fleet_.device_class(slot_)).load;
  }
  const HarvesterModel& harvester() const { return fleet_.harvester(slot_); }
  uint64_t tx_granted() const { return fleet_.tx_granted(slot_); }
  uint64_t tx_denied() const { return fleet_.tx_denied(slot_); }

 private:
  const DeviceFleet& fleet_;
  uint32_t slot_;
};

}  // namespace centsim

#endif  // SRC_CORE_FLEET_H_
