#include "src/core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/core/device.h"
#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/econ/data_credits.h"
#include "src/energy/harvester.h"
#include "src/energy/storage.h"
#include "src/mgmt/domain_lease.h"
#include "src/mgmt/succession.h"
#include "src/net/backhaul.h"
#include "src/net/cloud_endpoint.h"
#include "src/net/gateway.h"
#include "src/net/network_server.h"
#include "src/security/siphash.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"
#include "src/snapshot/timer_table.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/metrics_jsonl.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

std::unique_ptr<EdgeDevice> MakeExperimentDevice(Simulation& sim, NetworkFabric& fabric,
                                                 DeviceFleet& fleet, uint32_t id, RadioTech tech,
                                                 double x_m, double y_m,
                                                 LoraDeviceClass lora_class) {
  EdgeDeviceConfig cfg;
  cfg.id = id;
  cfg.x_m = x_m;
  cfg.y_m = y_m;
  cfg.tech = tech;
  cfg.name = std::string(RadioTechName(tech)) + "-dev-" + std::to_string(id);
  if (tech == RadioTech::k802154) {
    cfg.tx_power_dbm = 4.0;
  } else {
    cfg.tx_power_dbm = 14.0;
    cfg.lora.sf = LoraSf::kSf9;
    cfg.lora_class = lora_class;
  }

  SolarHarvester::Params sp;
  sp.peak_power_w = 0.010;
  sp.weather_seed = sim.seed() ^ id;
  EnergyManager energy(HarvesterModel::Solar(sp), EnergyStorage::Supercap(),
                       LoadProfileFor(cfg));

  return std::make_unique<EdgeDevice>(sim, std::move(cfg), fabric, fleet, std::move(energy),
                                      SeriesSystem::EnergyHarvestingNode());
}

// Flattened configuration text for the manifest's config digest: every
// field that changes simulation behaviour, in a fixed order.
std::string FlattenConfig(const FiftyYearConfig& config) {
  std::string text;
  auto add = [&text](const char* key, const std::string& value) {
    text += key;
    text += '=';
    text += value;
    text += '\n';
  };
  add("seed", std::to_string(config.seed));
  add("devices_802154", std::to_string(config.devices_802154));
  add("devices_lora", std::to_string(config.devices_lora));
  add("owned_gateways", std::to_string(config.owned_gateways));
  add("helium_hotspots", std::to_string(config.helium_hotspots));
  add("report_interval_us", std::to_string(config.report_interval.micros()));
  add("horizon_us", std::to_string(config.horizon.micros()));
  add("wallet_usd_per_device", std::to_string(config.wallet_usd_per_device));
  add("maintenance_enabled", std::to_string(config.maintenance.enabled));
  add("maintenance_mean_response_us", std::to_string(config.maintenance.mean_response.micros()));
  add("maintenance_mean_repair_us", std::to_string(config.maintenance.mean_repair.micros()));
  add("maintenance_annual_budget_hours", std::to_string(config.maintenance.annual_budget_hours));
  add("maintenance_hourly_rate_usd", std::to_string(config.maintenance.hourly_rate_usd));
  add("replace_failed_devices", std::to_string(config.replace_failed_devices));
  add("device_replacement_delay_us", std::to_string(config.device_replacement_delay.micros()));
  add("area_side_m", std::to_string(config.area_side_m));
  add("hotspot_replacement_prob", std::to_string(config.hotspot_replacement_prob));
  add("hotspot_replacement_mean_us", std::to_string(config.hotspot_replacement_mean.micros()));
  add("medium_grid_buckets", std::to_string(config.medium.grid_buckets));
  add("medium_grid_cell_m", std::to_string(config.medium.grid_cell_m));
  add("medium_sir_capture", std::to_string(config.medium.sir_capture));
  add("medium_capture_margin_db", std::to_string(config.medium.capture_margin_db));
  add("medium_cad", std::to_string(config.medium.cad));
  add("lora_device_class", LoraDeviceClassName(config.lora_device_class));
  return text;
}

}  // namespace

std::vector<std::string> FiftyYearConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (devices_802154 + devices_lora == 0) {
    diagnostics.push_back(
        "no devices: set devices_802154 and/or devices_lora to at least 1");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (report_interval.micros() <= 0) {
    diagnostics.push_back("non-positive report_interval (" + report_interval.ToString() +
                          "): devices need a positive reporting cadence");
  }
  if (report_interval.micros() > 0 && horizon.micros() > 0 && report_interval > horizon) {
    diagnostics.push_back("report_interval (" + report_interval.ToString() +
                          ") exceeds horizon (" + horizon.ToString() +
                          "): no device would ever report");
  }
  if (wallet_usd_per_device < 0.0) {
    diagnostics.push_back("negative wallet_usd_per_device: wallets cannot be provisioned "
                          "with negative funds");
  }
  if (hotspot_replacement_prob < 0.0 || hotspot_replacement_prob > 1.0) {
    diagnostics.push_back("hotspot_replacement_prob must be a probability in [0, 1]");
  }
  if (area_side_m <= 0.0) {
    diagnostics.push_back("non-positive area_side_m: the deployment square needs area");
  }
  if (replace_failed_devices && device_replacement_delay.micros() < 0) {
    diagnostics.push_back("negative device_replacement_delay: replacements cannot be "
                          "scheduled in the past");
  }
  if (sampling.enabled()) {
    diagnostics.push_back(
        "sampled time advance is not supported for fifty_year: the "
        "packet-level radio medium has no analytic fast-forward (use the "
        "district or century experiments)");
  }
  return diagnostics;
}

FiftyYearReport RunFiftyYearExperiment(const FiftyYearConfig& config) {
  CheckConfigOrDie("fifty_year", config.Validate());
  Simulation sim(config.seed);
  sim.trace().set_min_level(TraceLevel::kMaintenance);

  // Observability: attach the caller's registry/profiler, or create local
  // ones when artifacts were requested so the files are still complete.
  // This must happen before components are constructed — they grab their
  // instruments from the registry in their constructors.
  const bool want_artifacts = !config.artifacts_dir.empty();
  std::unique_ptr<MetricsRegistry> local_metrics;
  std::unique_ptr<SchedulerProfiler> local_profiler;
  MetricsRegistry* metrics = config.metrics;
  // Profiler precedence: explicit config.profiler, then the run-control
  // hooks' (EnsembleRunner wires per-replica profilers there), then a
  // local one if artifacts need it.
  SchedulerProfiler* profiler =
      config.profiler != nullptr ? config.profiler : config.control.profiler;
  if (metrics == nullptr && want_artifacts) {
    local_metrics = std::make_unique<MetricsRegistry>();
    metrics = local_metrics.get();
  }
  if (profiler == nullptr && want_artifacts) {
    local_profiler = std::make_unique<SchedulerProfiler>();
    profiler = local_profiler.get();
  }
  sim.SetMetrics(metrics);
  // Attach the recorder/progress/slot hooks first, then the resolved
  // profiler (so the precedence above wins over control.profiler).
  sim.scheduler().AttachRunControl(config.control);
  sim.scheduler().SetProfiler(profiler);

  RandomStream layout_rng = sim.StreamFor(0x6c61796f7574ULL);

  CloudEndpoint endpoint;
  NetworkFabric fabric(sim);
  fabric.SetEndpoint(&endpoint);
  fabric.ConfigureMedium(config.medium);

  // LoRaWAN network server: hotspots forward copies, the server dedups;
  // with multi-buy = 1 (below) only the first copy is purchased.
  NetworkServer network_server(&endpoint);
  network_server.BindMetrics(metrics);
  fabric.SetNetworkServer(&network_server);

  // Batch provisioning secret: every device signs, the endpoint verifies.
  SipHashKey batch_secret{};
  for (int i = 0; i < 16; ++i) {
    batch_secret[i] = static_cast<uint8_t>(config.seed >> ((i % 8) * 8)) ^ static_cast<uint8_t>(i);
  }
  endpoint.RequireAuthentication(batch_secret);

  // --- Backhauls ---
  auto campus = MakeCampusBackhaul(sim.StreamFor(0x63616d707573ULL));
  auto helium_backhaul = MakeHeliumOpaqueBackhaul(sim.StreamFor(0x68656c69756dULL));

  // --- Owned 802.15.4 gateways, maintained within a budget ---
  MaintenanceCrew crew(sim, config.maintenance);
  std::vector<std::unique_ptr<Gateway>> owned_gateways;
  for (uint32_t i = 0; i < config.owned_gateways; ++i) {
    GatewayConfig gc;
    gc.id = 1000 + i;
    gc.tech = RadioTech::k802154;
    // Spread across the square so every device has a usable link.
    gc.x_m = config.area_side_m * (0.25 + 0.5 * (i % 2));
    gc.y_m = config.area_side_m * (0.25 + 0.5 * ((i / 2) % 2));
    gc.name = "owned-gw-" + std::to_string(i);
    auto gw = std::make_unique<Gateway>(sim, gc, SeriesSystem::RaspberryPiGateway());
    gw->AttachBackhaul(campus.get());
    gw->SetRepairPolicy(crew.AsRepairPolicy());
    gw->Deploy();
    fabric.AddGateway(gw.get());
    owned_gateways.push_back(std::move(gw));
  }

  // --- Helium hotspots: third-party, prepaid wallet, owner-churn ---
  const uint64_t provisioned =
      static_cast<uint64_t>(config.devices_lora) * UsdToCredits(config.wallet_usd_per_device);
  DataCreditWallet wallet(provisioned);
  // Helium multi-buy = 1 (the paper's §4.4 costing): only the first copy
  // of each frame is purchased; other witnesses' copies are not bought and
  // are dropped at the router. Sequences are strictly increasing, so one
  // remembered counter per device implements the purchase dedup.
  auto purchased = std::make_shared<std::unordered_map<uint32_t, uint32_t>>();
  auto payment_hook = [&wallet, purchased](const UplinkPacket& pkt) {
    auto it = purchased->find(pkt.device_id);
    if (it != purchased->end() && it->second == pkt.sequence) {
      return false;  // Copy not purchased (multi-buy exhausted).
    }
    if (!wallet.ChargePacket(pkt.payload_bytes)) {
      return false;
    }
    (*purchased)[pkt.device_id] = pkt.sequence;
    return true;
  };
  RandomStream hotspot_rng = sim.StreamFor(0x686f7473706f74ULL);
  std::vector<std::unique_ptr<Gateway>> hotspots;
  for (uint32_t i = 0; i < config.helium_hotspots; ++i) {
    GatewayConfig gc;
    gc.id = 2000 + i;
    gc.tech = RadioTech::kLoRa;
    gc.x_m = layout_rng.Uniform(0.0, config.area_side_m);
    gc.y_m = layout_rng.Uniform(0.0, config.area_side_m);
    gc.rx_antenna_gain_db = 5.0;
    gc.name = "helium-hotspot-" + std::to_string(i);
    auto gw = std::make_unique<Gateway>(sim, gc, SeriesSystem::HeliumHotspot());
    gw->AttachBackhaul(helium_backhaul.get());
    gw->SetPaymentHook(payment_hook);
    // Hotspot owners replace dead units... sometimes.
    gw->SetRepairPolicy([&sim, &hotspot_rng, &config](SimTime fail_time) {
      if (!hotspot_rng.NextBool(config.hotspot_replacement_prob)) {
        return SimTime::Max();
      }
      return fail_time + SimTime::Seconds(hotspot_rng.Exponential(
                             config.hotspot_replacement_mean.ToSeconds()));
    });
    gw->Deploy();
    fabric.AddGateway(gw.get());
    hotspots.push_back(std::move(gw));
  }

  // --- Experimenter succession + domain lease on the public endpoint ---
  // Custodians turn over across 50 years (§4.5); their knowledge level —
  // sustained by the living diary — modulates the renewal lapse risk.
  const SuccessionReport succession =
      SimulateSuccession(SuccessionParams{}, config.horizon, sim.StreamFor(0x73756363ULL));
  DomainLease lease(sim, endpoint, DomainLeaseParams{});
  lease.SetKnowledgeProvider(
      [&succession](SimTime t) { return succession.KnowledgeAt(t); });
  lease.Start();

  // --- Devices ---
  // 802.15.4 has ~100-200 m of street-level range at 4 dBm, so those
  // devices are sited where the owned gateways provide coverage (§3.1:
  // rely on properties of infrastructure — here, that an owned gateway is
  // nearby). LoRa devices scatter anywhere in the square; the hotspots'
  // link budget spans it.
  FiftyYearReport report;
  // Fleet columns hold the hot per-device state; devices (facades) are
  // declared after the fleet so their destructors release handles first.
  DeviceFleet fleet(sim);
  std::vector<std::unique_ptr<EdgeDevice>> devices;
  std::vector<uint32_t> ids_154;
  std::vector<uint32_t> ids_lora;
  const uint32_t total_devices = config.devices_802154 + config.devices_lora;
  for (uint32_t i = 0; i < total_devices; ++i) {
    const RadioTech tech = i < config.devices_802154 ? RadioTech::k802154 : RadioTech::kLoRa;
    double x = layout_rng.Uniform(0.0, config.area_side_m);
    double y = layout_rng.Uniform(0.0, config.area_side_m);
    if (tech == RadioTech::k802154 && !owned_gateways.empty()) {
      const auto& anchor =
          owned_gateways[layout_rng.NextBelow(owned_gateways.size())]->config();
      const double radius = layout_rng.Uniform(10.0, 110.0);
      const double angle = layout_rng.Uniform(0.0, 2.0 * 3.14159265358979);
      x = anchor.x_m + radius * std::cos(angle);
      y = anchor.y_m + radius * std::sin(angle);
    }
    auto dev = MakeExperimentDevice(sim, fabric, fleet, i + 1, tech, x, y,
                                    config.lora_device_class);
    dev->EnableSigning(batch_secret);
    (tech == RadioTech::k802154 ? ids_154 : ids_lora).push_back(dev->config().id);
    // Subsystem flight-recorder records: device lifecycle transitions are
    // exactly what a stall/crash dump needs alongside the sampled
    // scheduler events. One relaxed-store append each — negligible, and
    // these are rare events.
    FlightRecorder* recorder = config.control.recorder;
    dev->SetFailureCallback([&report, &sim, &config, recorder](EdgeDevice& failed, SimTime at) {
      ++report.device_failures;
      report.device_survival.Observe(at - failed.deployed_at(), /*failed=*/true);
      if (recorder != nullptr) {
        recorder->Record("device.failure", at, failed.config().id);
      }
      if (config.replace_failed_devices) {
        sim.scheduler().ScheduleAfter(
            config.device_replacement_delay,
            [&report, &failed, &sim, recorder] {
              ++report.device_replacements;
              if (recorder != nullptr) {
                recorder->Record("device.replacement", sim.scheduler().Now(), failed.config().id);
              }
              failed.ReplaceUnit();
            },
            "device.replacement");
      }
    });
    dev->Deploy();
    devices.push_back(std::move(dev));
  }

  // Class B downlink beacons: the medium broadcasts on the LoRaWAN beacon
  // cadence and every live class-B listener pays the receive-window
  // energy. Routed through a TimerTable so drivers that checkpoint can
  // round-trip the pending beacon. Class A/C cohorts never arm it.
  TimerTable medium_timers(sim.scheduler());
  if (config.lora_device_class == LoraDeviceClass::kClassB && config.devices_lora > 0) {
    fabric.RegisterMediumTimers(medium_timers, &fleet);
    fabric.StartClassBBeacons();
  }

  // Mid-run telemetry flush (opt-in): atomically rewrite metrics.jsonl on
  // a simulated-time cadence so a killed run keeps its latest snapshot.
  std::unique_ptr<PeriodicEvent> telemetry_flusher;
  if (want_artifacts && metrics != nullptr && config.telemetry_flush_period.micros() > 0) {
    const std::string metrics_path = config.artifacts_dir + "/metrics.jsonl";
    std::error_code flush_ec;
    std::filesystem::create_directories(config.artifacts_dir, flush_ec);
    telemetry_flusher = std::make_unique<PeriodicEvent>(
        sim.scheduler(), config.telemetry_flush_period,
        EventFn([metrics, metrics_path] { FlushMetricsJsonl(*metrics, metrics_path); }),
        "telemetry.flush");
    telemetry_flusher->Start(config.telemetry_flush_period);
  }

  // --- Run ---
  const auto wall_start = std::chrono::steady_clock::now();
  sim.RunUntil(config.horizon);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // --- Harvest results ---
  report.weekly_uptime = endpoint.WeeklyUptime(config.horizon);
  report.longest_gap_weeks = endpoint.LongestGapWeeks(config.horizon);
  report.total_packets = endpoint.total_packets();
  report.tier_attribution = fabric.TierAttribution();
  report.events_executed = sim.scheduler().executed_count();

  auto fill_path = [&](PathStats& path, const std::vector<uint32_t>& ids) {
    path.device_count = static_cast<uint32_t>(ids.size());
    path.group_weekly_uptime = endpoint.GroupWeeklyUptime(ids, config.horizon);
    double uptime_sum = 0.0;
    for (const auto& dev : devices) {
      if (std::find(ids.begin(), ids.end(), dev->config().id) == ids.end()) {
        continue;
      }
      path.attempts += dev->attempts();
      path.delivered += dev->delivered();
      for (int o = 0; o < kDeliveryOutcomeCount; ++o) {
        path.outcomes[o] += dev->OutcomeCount(static_cast<DeliveryOutcome>(o));
      }
      uptime_sum += endpoint.DeviceWeeklyUptime(dev->config().id, config.horizon);
    }
    path.mean_device_weekly_uptime = ids.empty() ? 0.0 : uptime_sum / ids.size();
  };
  fill_path(report.owned_path, ids_154);
  fill_path(report.helium_path, ids_lora);

  for (const auto& dev : devices) {
    if (dev->alive()) {
      report.device_survival.Observe(config.horizon - dev->deployed_at(), /*failed=*/false);
    }
  }
  for (const auto& gw : owned_gateways) {
    report.owned_gateway_failures += gw->failure_count();
  }
  for (const auto& gw : hotspots) {
    report.hotspot_failures += gw->failure_count();
  }

  report.maintenance_repairs = crew.repairs_completed();
  report.maintenance_refused = crew.repairs_refused();
  report.maintenance_hours = crew.total_hours();
  report.maintenance_cost_usd = crew.TotalCostUsd();

  report.credits_provisioned = provisioned;
  report.credits_spent = wallet.spent();
  report.credits_refused = wallet.refused();

  report.domain_renewals = lease.renewals();
  report.domain_lapses = lease.lapses();

  report.auth_rejected = endpoint.auth_rejected();
  report.replay_rejected = endpoint.replay_rejected();

  report.custodian_handovers = succession.handovers;
  report.final_knowledge = succession.final_knowledge;

  report.frames_deduplicated = network_server.duplicates_suppressed();
  report.mean_witnesses = network_server.MeanWitnesses();

  const ExperimentDiary diary = ExperimentDiary::FromTrace(sim.trace());
  report.diary_decades = diary.ByDecade();
  report.diary_entries = diary.entries();

  // --- Run artifacts ---
  if (profiler != nullptr && metrics != nullptr) {
    profiler->ExportTo(*metrics);
  }
  if (want_artifacts) {
    std::error_code ec;
    std::filesystem::create_directories(config.artifacts_dir, ec);
    const std::string dir = config.artifacts_dir + "/";

    RunManifest manifest;
    manifest.run_name = config.run_name;
    manifest.seed = config.seed;
    manifest.config_digest = ConfigDigest(FlattenConfig(config));
    manifest.horizon = config.horizon;
    manifest.wall_seconds = report.wall_seconds;
    manifest.events_executed = report.events_executed;
    manifest.AddExtra("devices", std::to_string(total_devices));
    manifest.AddExtra("weekly_uptime", std::to_string(report.weekly_uptime));
    if (manifest.WriteFile(dir + "manifest.json")) {
      report.manifest_path = dir + "manifest.json";
    }
    if (metrics != nullptr &&
        WriteMetricsJsonlFile(*metrics, dir + "metrics.jsonl")) {
      report.metrics_path = dir + "metrics.jsonl";
    }
    if (profiler != nullptr) {
      ChromeTraceWriter trace_writer("centsim:" + config.run_name);
      trace_writer.AddProfile(*profiler);
      if (trace_writer.WriteFile(dir + "trace.json")) {
        report.trace_path = dir + "trace.json";
      }
    }
  }

  // Detach before the local registry/profiler (and sim) go out of scope.
  // DetachRunControl clears the SchedulerSlot first, so no watchdog or
  // status thread can reach this scheduler once we start tearing down.
  sim.scheduler().DetachRunControl(config.control);
  sim.scheduler().SetProfiler(nullptr);
  sim.SetMetrics(nullptr);

  return report;
}

}  // namespace centsim
