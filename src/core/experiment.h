// The paper's §4 experiment, in simulated time: energy-harvesting
// transmit-only devices on two paths —
//   (a) "owned infrastructure": 802.15.4 devices -> our gateways -> campus
//       backhaul, maintained by a budgeted crew;
//   (b) "third-party infrastructure": LoRa devices -> Helium hotspots we do
//       not control -> opaque backhaul, prepaid with a $5 data-credit
//       wallet per device;
// both terminating at one public endpoint whose domain must be re-leased
// every <=10 years. Devices are never touched while alive; failed units are
// documented, diagnosed, and replaced (the living-study rule of §4.4).

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/hierarchy.h"
#include "src/core/network_fabric.h"
#include "src/mgmt/diary.h"
#include "src/mgmt/maintenance.h"
#include "src/net/packet.h"
#include "src/reliability/survival.h"
#include "src/sim/metrics.h"
#include "src/sim/profiler.h"
#include "src/sim/run_progress.h"
#include "src/sim/sampling.h"
#include "src/sim/time.h"

namespace centsim {

struct FiftyYearConfig {
  uint64_t seed = 42;
  uint32_t devices_802154 = 8;
  uint32_t devices_lora = 8;
  uint32_t owned_gateways = 2;
  uint32_t helium_hotspots = 5;
  SimTime report_interval = SimTime::Hours(1);
  SimTime horizon = SimTime::Years(50);
  double wallet_usd_per_device = 5.0;  // §4.4: $5 buys 500k credits.
  MaintenancePolicy maintenance;       // Owned-gateway upkeep.
  bool replace_failed_devices = true;  // §4.4 living-study rule.
  SimTime device_replacement_delay = SimTime::Days(30);
  double area_side_m = 2500.0;         // Campus-scale deployment square.
  // Third-party hotspot churn: chance a dead hotspot's owner replaces it,
  // and how long that takes. This is the "risk" half of §4.2's hedge.
  double hotspot_replacement_prob = 0.7;
  SimTime hotspot_replacement_mean = SimTime::Days(60);

  // Radio-medium fidelity knobs (grid-bucketed neighbor lookups, SIR
  // capture, LoRa CAD) and the receive class for the LoRa cohort. The
  // defaults reproduce the legacy medium bit-for-bit; class B arms the
  // fabric's beacon timer, class C raises the sleep floor.
  MediumConfig medium;
  LoraDeviceClass lora_device_class = LoraDeviceClass::kClassA;

  // --- Observability (all optional) ---
  // External registry/profiler to attach; when null but `artifacts_dir` is
  // set, the run creates its own so the artifacts are still complete.
  MetricsRegistry* metrics = nullptr;
  SchedulerProfiler* profiler = nullptr;
  // When non-empty, the run writes manifest.json, metrics.jsonl, and
  // trace.json (Chrome trace-event / Perfetto) into this directory.
  std::string artifacts_dir;
  std::string run_name = "fifty_year";
  // Live run-control attachments (progress cell, flight recorder,
  // scheduler slot, profiler) — normally wired per replica by
  // EnsembleRunner; inert by default. An explicit `profiler` above takes
  // precedence over `control.profiler`.
  RunControlHooks control;
  // When positive (and artifacts_dir is set), metrics.jsonl is atomically
  // re-flushed every this much simulated time, so a killed run leaves
  // recent telemetry behind instead of nothing. Off by default: the flush
  // events consume scheduler sequence numbers, which can perturb
  // same-timestamp tie order relative to an unflushed run.
  SimTime telemetry_flush_period;

  // Sampled time advance (src/sim/sampling.h). The fifty-year experiment's
  // packet-level radio medium has no analytic fast-forward yet, so only
  // the default (kDetailed) is accepted; the field exists so ensemble
  // tooling can carry one plan type across all three experiments.
  SamplingPlan sampling;

  // Actionable diagnostics for configs that cannot produce a meaningful
  // run (no devices, non-positive horizon, report interval beyond the
  // horizon...). Empty means valid; RunFiftyYearExperiment fails fast on
  // any diagnostic instead of running silently to a garbage report.
  std::vector<std::string> Validate() const;
};

// Per-path (per-radio-technology) results.
struct PathStats {
  uint32_t device_count = 0;
  double group_weekly_uptime = 0.0;       // Any device heard this week.
  double mean_device_weekly_uptime = 0.0;
  uint64_t attempts = 0;
  uint64_t delivered = 0;
  std::array<uint64_t, kDeliveryOutcomeCount> outcomes{};

  double DeliveryRate() const {
    return attempts > 0 ? static_cast<double>(delivered) / attempts : 0.0;
  }
};

struct FiftyYearReport {
  // Headline metric (§4): weekly end-to-end uptime at the endpoint.
  double weekly_uptime = 0.0;
  uint64_t longest_gap_weeks = 0;
  uint64_t total_packets = 0;

  PathStats owned_path;   // 802.15.4 through owned gateways.
  PathStats helium_path;  // LoRa through Helium hotspots.

  std::array<uint64_t, kTierCount> tier_attribution{};

  uint64_t device_failures = 0;
  uint64_t device_replacements = 0;
  uint32_t owned_gateway_failures = 0;
  uint32_t hotspot_failures = 0;

  uint64_t maintenance_repairs = 0;
  uint64_t maintenance_refused = 0;
  double maintenance_hours = 0.0;
  double maintenance_cost_usd = 0.0;

  uint64_t credits_provisioned = 0;
  uint64_t credits_spent = 0;
  uint64_t credits_refused = 0;

  uint32_t domain_renewals = 0;
  uint32_t domain_lapses = 0;

  // Frame-authentication outcomes at the endpoint (every device signs).
  uint64_t auth_rejected = 0;
  uint64_t replay_rejected = 0;

  // Experimenter succession over the horizon (§4.5).
  uint32_t custodian_handovers = 0;
  double final_knowledge = 1.0;

  // LoRaWAN network-server statistics (Helium path).
  uint64_t frames_deduplicated = 0;
  double mean_witnesses = 0.0;

  KaplanMeier device_survival;
  std::vector<DecadeSummary> diary_decades;
  std::vector<DiaryEntry> diary_entries;

  uint64_t events_executed = 0;
  double wall_seconds = 0.0;

  // Paths written when FiftyYearConfig::artifacts_dir was set (else empty).
  std::string manifest_path;
  std::string metrics_path;
  std::string trace_path;
};

FiftyYearReport RunFiftyYearExperiment(const FiftyYearConfig& config);

}  // namespace centsim

#endif  // SRC_CORE_EXPERIMENT_H_
