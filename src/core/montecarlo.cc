#include "src/core/montecarlo.h"

namespace centsim {

FiftyYearEnsemble SweepFiftyYear(FiftyYearConfig base, uint32_t runs, double weekly_goal) {
  FiftyYearEnsemble ensemble;
  ensemble.runs = runs;
  for (uint32_t i = 0; i < runs; ++i) {
    FiftyYearConfig cfg = base;
    cfg.seed = base.seed + i;
    const FiftyYearReport report = RunFiftyYearExperiment(cfg);
    ensemble.weekly_uptime.Add(report.weekly_uptime);
    ensemble.owned_path_uptime.Add(report.owned_path.group_weekly_uptime);
    ensemble.helium_path_uptime.Add(report.helium_path.group_weekly_uptime);
    ensemble.longest_gap_weeks.Add(static_cast<double>(report.longest_gap_weeks));
    ensemble.device_failures.Add(static_cast<double>(report.device_failures));
    ensemble.gateway_failures.Add(static_cast<double>(report.owned_gateway_failures));
    ensemble.maintenance_hours.Add(report.maintenance_hours);
    ensemble.credits_spent.Add(static_cast<double>(report.credits_spent));
    if (report.weekly_uptime >= weekly_goal) {
      ++ensemble.runs_meeting_weekly_goal;
    }
    if (report.helium_path.group_weekly_uptime < 0.5) {
      ++ensemble.runs_helium_path_died;
    }
  }
  return ensemble;
}

}  // namespace centsim
