#include "src/core/montecarlo.h"

namespace centsim {

FiftyYearEnsemble AggregateFiftyYear(
    const std::vector<EnsembleRunner<FiftyYearExperiment>::Replica>& replicas,
    double weekly_goal) {
  FiftyYearEnsemble ensemble;
  ensemble.runs = static_cast<uint32_t>(replicas.size());
  for (const auto& replica : replicas) {
    const FiftyYearReport& report = replica.report;
    ensemble.weekly_uptime.Add(report.weekly_uptime);
    ensemble.owned_path_uptime.Add(report.owned_path.group_weekly_uptime);
    ensemble.helium_path_uptime.Add(report.helium_path.group_weekly_uptime);
    ensemble.longest_gap_weeks.Add(static_cast<double>(report.longest_gap_weeks));
    ensemble.device_failures.Add(static_cast<double>(report.device_failures));
    ensemble.gateway_failures.Add(static_cast<double>(report.owned_gateway_failures));
    ensemble.maintenance_hours.Add(report.maintenance_hours);
    ensemble.credits_spent.Add(static_cast<double>(report.credits_spent));
    if (report.weekly_uptime >= weekly_goal) {
      ++ensemble.runs_meeting_weekly_goal;
    }
    if (report.helium_path.group_weekly_uptime < 0.5) {
      ++ensemble.runs_helium_path_died;
    }
  }
  return ensemble;
}

FiftyYearEnsemble SweepFiftyYear(FiftyYearConfig base, uint32_t runs, double weekly_goal,
                                 uint32_t threads) {
  EnsembleOptions options;
  options.replicas = runs;
  options.threads = threads;
  options.run_name = "sweep_fifty_year";
  const auto result = EnsembleRunner<FiftyYearExperiment>::Run(std::move(base), options);
  return AggregateFiftyYear(result.replicas, weekly_goal);
}

}  // namespace centsim
