// Unified Experiment API.
//
// Every top-level experiment in centsim — the paper's 50-year two-path
// experiment, the district rollout, and the Ship-of-Theseus century
// scenario — exposes the same static shape so that generic machinery
// (EnsembleRunner, sweep harnesses, scenario loaders) can drive any of
// them without per-experiment glue:
//
//   struct SomeExperiment {
//     using Config = ...;   // has uint64_t seed, SimTime horizon, and
//                           // std::vector<std::string> Validate() const
//     using Report = ...;   // default-constructible result bundle
//     static const char* Name();
//     static Report Run(const Config&);
//   };
//
// `Validate()` returns actionable diagnostics (empty = valid); the Run*
// entrypoints route it through CheckConfigOrDie so an impossible config
// fails fast instead of producing a silent garbage run. The ExperimentType
// concept below is the authoritative statement of the API; all three
// shipped experiments are static_asserted against it, so a drift in any
// Config/Report breaks the build here, not in a user's template stack.

#ifndef SRC_CORE_EXPERIMENT_API_H_
#define SRC_CORE_EXPERIMENT_API_H_

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/district.h"
#include "src/core/experiment.h"
#include "src/core/theseus.h"
#include "src/sim/ensemble.h"
#include "src/sim/time.h"

namespace centsim {

template <typename E>
concept ExperimentType = requires(const typename E::Config& config) {
  typename E::Config;
  typename E::Report;
  requires std::default_initializable<typename E::Report>;
  { E::Name() } -> std::convertible_to<std::string_view>;
  { E::Run(config) } -> std::same_as<typename E::Report>;
  { config.seed } -> std::convertible_to<uint64_t>;
  { config.horizon } -> std::convertible_to<SimTime>;
  { config.Validate() } -> std::same_as<std::vector<std::string>>;
};

// The paper's §4 two-path 50-year experiment (src/core/experiment.h).
struct FiftyYearExperiment {
  using Config = FiftyYearConfig;
  using Report = FiftyYearReport;
  static const char* Name() { return "fifty_year"; }
  static Report Run(const Config& config) { return RunFiftyYearExperiment(config); }
};

// District-scale rollout with planned gateway grid (src/core/district.h).
struct DistrictExperiment {
  using Config = DistrictConfig;
  using Report = DistrictReport;
  static const char* Name() { return "district"; }
  static Report Run(const Config& config) { return RunDistrictScenario(config); }
};

// Ship-of-Theseus century fleet scenario (src/core/theseus.h).
struct CenturyExperiment {
  using Config = CenturyConfig;
  using Report = CenturyReport;
  static const char* Name() { return "century"; }
  static Report Run(const Config& config) { return RunCenturyScenario(config); }
};

static_assert(ExperimentType<FiftyYearExperiment>);
static_assert(ExperimentType<DistrictExperiment>);
static_assert(ExperimentType<CenturyExperiment>);

}  // namespace centsim

#endif  // SRC_CORE_EXPERIMENT_API_H_
