#include "src/core/theseus.h"

#include <algorithm>
#include <cmath>

#include "src/core/fleet.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"

namespace centsim {
namespace {

// Century-run driver over DeviceFleet columns. Sites are fleet slots
// (slot == site index on the fresh fleet); per-site hot state — alive flag,
// deployment time, unit generation, pending failure event — lives in the
// fleet columns instead of a local object vector, and the deploy/failure
// routines are member functions scheduled through InlineFn-sized captures
// ([this, idx, life]) instead of per-site std::function closures.
class CenturyRun {
 public:
  CenturyRun(Simulation& sim, const CenturyConfig& config, CenturyReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        rng_(sim.StreamFor(0x7468657365757300ULL)),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_alive_seconds_(years_, 0.0) {
    DeviceClassSpec spec;
    spec.name = "century-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.Reserve(config.fleet_size);
    for (uint32_t idx = 0; idx < config.fleet_size; ++idx) {
      fleet_.Add(cls_, 0.0, 0.0, idx % ZoneCount(), HarvesterModel());
    }
  }

  void Run() {
    // Zone partition: site index modulo zone count (uniform spread).
    BatchProjectScheduler batches(sim_, config_.batch,
                                  [this](uint32_t zone, uint32_t cycle) {
                                    (void)cycle;
                                    OnZoneVisit(zone);
                                  });
    batches.ScheduleThrough(config_.horizon);

    // Initial roll-out: all sites deployed in year 0.
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      DeploySite(idx);
    }

    sim_.RunUntil(config_.horizon);
    AccumulateTo(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();

    // Censor survivors.
    double max_gen = 0.0;
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      if (fleet_.alive(idx)) {
        report_.unit_survival.Observe(config_.horizon - fleet_.deployed_at(idx),
                                      /*failed=*/false);
      }
      max_gen = std::max(max_gen, static_cast<double>(fleet_.unit_generation(idx)));
    }
    report_.max_unit_generations = max_gen;

    const double total_site_seconds = config_.horizon.ToSeconds() * config_.fleet_size;
    report_.mean_availability =
        total_site_seconds > 0 ? alive_site_seconds_ / total_site_seconds : 0;
    report_.yearly_availability.resize(years_);
    const double year_site_seconds = SimTime::Years(1).ToSeconds() * config_.fleet_size;
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_availability[y] = yearly_alive_seconds_[y] / year_site_seconds;
      report_.min_yearly_availability =
          std::min(report_.min_yearly_availability, report_.yearly_availability[y]);
    }
  }

 private:
  uint32_t ZoneCount() const { return std::max(1u, config_.batch.zone_count); }

  // Exact availability integration: accumulate alive-site-time, spread
  // across year buckets, before every alive-count transition.
  void AccumulateTo(SimTime now) {
    if (now <= last_change_) {
      return;
    }
    const double span = (now - last_change_).ToSeconds();
    const double alive_count = static_cast<double>(fleet_.alive_count());
    alive_site_seconds_ += span * alive_count;
    double t0 = last_change_.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
      const double year_end = (y + 1) * year_s;
      const double seg = std::min(t1, year_end) - t0;
      yearly_alive_seconds_[y] += seg * alive_count;
      t0 += seg;
    }
    last_change_ = now;
  }

  void DeploySite(uint32_t idx) {
    AccumulateTo(sim_.Now());
    fleet_.DeployAt(idx);
    ++report_.units_deployed;

    // Later generations may last longer (technology improvement).
    const double decade = sim_.Now().ToYears() / 10.0;
    const double life_scale = std::pow(config_.life_improvement_per_decade, decade);
    RandomStream site_rng =
        rng_.Derive((static_cast<uint64_t>(idx) << 20) + fleet_.unit_generation(idx));
    const SimTime life =
        fleet_.class_spec(cls_).hardware.SampleLife(site_rng).life * life_scale;

    fleet_.set_failure_event(
        idx, sim_.scheduler().ScheduleAfter(life,
                                            [this, idx, life] { OnSiteFailure(idx, life); }));
  }

  void OnSiteFailure(uint32_t idx, SimTime life) {
    fleet_.set_failure_event(idx, kInvalidEventId);
    AccumulateTo(sim_.Now());
    fleet_.MarkFailedAt(idx);
    ++report_.total_failures;
    report_.unit_survival.Observe(life, /*failed=*/true);
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.site_failure", sim_.Now(), idx);
    }
  }

  void OnZoneVisit(uint32_t zone) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.zone_visit", sim_.Now(), zone);
    }
    const uint32_t zone_count = ZoneCount();
    for (uint32_t idx = zone; idx < config_.fleet_size; idx += zone_count) {
      if (!fleet_.alive(idx)) {
        ++report_.total_replacements;
        DeploySite(idx);
        continue;
      }
      if (config_.proactive_refresh_age.micros() > 0 &&
          sim_.Now() - fleet_.deployed_at(idx) >= config_.proactive_refresh_age) {
        // Retire a working-but-old unit during the project visit.
        const EventId failure = fleet_.failure_event(idx);
        if (failure != kInvalidEventId) {
          sim_.scheduler().Cancel(failure);
          fleet_.set_failure_event(idx, kInvalidEventId);
        }
        report_.unit_survival.Observe(sim_.Now() - fleet_.deployed_at(idx), /*failed=*/false);
        AccumulateTo(sim_.Now());
        fleet_.RetireAt(idx);
        ++report_.proactive_replacements;
        DeploySite(idx);
      }
    }
  }

  Simulation& sim_;
  const CenturyConfig& config_;
  CenturyReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  RandomStream rng_;
  const uint32_t years_;

  SimTime last_change_;
  double alive_site_seconds_ = 0.0;
  std::vector<double> yearly_alive_seconds_;
};

}  // namespace

std::vector<std::string> CenturyConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (fleet_size == 0) {
    diagnostics.push_back("fleet_size is zero: the century fleet needs at least one site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (batch.zone_count == 0) {
    diagnostics.push_back("batch.zone_count is zero: batch projects need at least one zone");
  }
  if (batch.cycle_period.micros() <= 0) {
    diagnostics.push_back("non-positive batch.cycle_period: zones must be revisited on a "
                          "positive cadence");
  }
  if (proactive_refresh_age.micros() < 0) {
    diagnostics.push_back("negative proactive_refresh_age: use 0 to disable proactive refresh");
  }
  if (life_improvement_per_decade <= 0.0) {
    diagnostics.push_back("life_improvement_per_decade must be positive (1.0 = no improvement)");
  }
  return diagnostics;
}

CenturyReport RunCenturyScenario(const CenturyConfig& config) {
  CheckConfigOrDie("century", config.Validate());
  Simulation sim(config.seed);
  sim.trace().set_min_level(TraceLevel::kFailure);
  sim.trace().EnableRetention(false);  // Fleet-scale: counts, not records.

  sim.scheduler().AttachRunControl(config.control);
  CenturyReport report;
  CenturyRun run(sim, config, report);
  run.Run();
  // Slot cleared first: no status/watchdog thread can reach the scheduler
  // past this line.
  sim.scheduler().DetachRunControl(config.control);
  return report;
}

}  // namespace centsim
