#include "src/core/theseus.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "src/core/fleet.h"
#include "src/core/fleet_codec.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/timer_table.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

// Domain timer tags (TimerRecord.tag). Operand meanings: visit a=zone
// b=cycle; site failure a=site index, b=sampled unit life in micros (the
// failure handler feeds it to the survival estimator).
constexpr uint64_t kTimerVisit = 1;
constexpr uint64_t kTimerSiteFail = 2;

// Snapshot chunk tags.
constexpr uint32_t kFleetChunk = SnapshotTag('f', 'l', 'e', 't');
constexpr uint32_t kAccumChunk = SnapshotTag('a', 'c', 'c', 'u');
constexpr uint32_t kSurvivalChunk = SnapshotTag('s', 'u', 'r', 'v');
constexpr uint32_t kTimerChunk = SnapshotTag('t', 'i', 'm', 'r');
constexpr uint32_t kSchedChunk = SnapshotTag('s', 'c', 'h', 'd');

// Century-run driver over DeviceFleet columns. Sites are fleet slots
// (slot == site index on the fresh fleet); per-site hot state — alive flag,
// deployment time, unit generation, pending failure event — lives in the
// fleet columns instead of a local object vector, and the deploy/failure
// routines are member functions scheduled through InlineFn-sized captures
// ([this, idx, life]) instead of per-site std::function closures.
//
// Domain timers route through a TimerTable (see src/snapshot/timer_table.h)
// so checkpoints can save pending visits and failures as plain records and
// restored runs re-arm them bit-identically.
class CenturyRun {
 public:
  CenturyRun(Simulation& sim, const CenturyConfig& config, CenturyReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        // Timer records exist only to be Save()d; a run that will never
        // write a checkpoint routes timers through untracked (free).
        timers_(sim.scheduler(), config.snapshot.checkpoint_every.micros() > 0),
        rng_(sim.StreamFor(0x7468657365757300ULL)),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_alive_seconds_(years_, 0.0) {
    DeviceClassSpec spec;
    spec.name = "century-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.Reserve(config.fleet_size);
    for (uint32_t idx = 0; idx < config.fleet_size; ++idx) {
      fleet_.Add(cls_, 0.0, 0.0, idx % ZoneCount(), HarvesterModel());
    }
  }

  void Run() {
    // Zone partition: site index modulo zone count (uniform spread).
    BatchProjectScheduler batches(sim_, config_.batch,
                                  [this](uint32_t zone, uint32_t cycle) {
                                    (void)cycle;
                                    OnZoneVisit(zone);
                                  });
    batches.SetVisitScheduler(
        [this](SimTime at, uint32_t zone, uint32_t cycle) { ArmVisit(at, zone, cycle); });
    RegisterTimerRearms();

    std::string resume_path = config_.snapshot.resume_from;
    if (resume_path.empty() && config_.snapshot.resume_latest) {
      resume_path = FindLatestValidSnapshot(config_.snapshot.checkpoint_dir);
    }
    if (!resume_path.empty()) {
      const auto restore_start = std::chrono::steady_clock::now();
      std::string error;
      if (!RestoreFrom(resume_path, &error)) {
        CheckConfigOrDie("century", {"cannot resume from " + resume_path + ": " + error});
      }
      report_.restore_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - restore_start)
                                    .count();
    } else {
      batches.ScheduleThrough(config_.horizon);
      // Initial roll-out: all sites deployed in year 0.
      for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
        DeploySite(idx);
      }
    }

    if (config_.snapshot.checkpoint_every.micros() > 0) {
      // Fixed barrier grid regardless of where the run (re)started.
      const int64_t every = config_.snapshot.checkpoint_every.micros();
      std::error_code ec;
      std::filesystem::create_directories(config_.snapshot.checkpoint_dir, ec);
      for (int64_t next = (sim_.Now().micros() / every + 1) * every;
           next < config_.horizon.micros(); next += every) {
        sim_.scheduler().DrainToBarrier(SimTime::Micros(next));
        SaveCheckpoint(SimTime::Micros(next));
      }
    }
    sim_.RunUntil(config_.horizon);
    AccumulateTo(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();

    // Censor survivors.
    double max_gen = 0.0;
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      if (fleet_.alive(idx)) {
        report_.unit_survival.Observe(config_.horizon - fleet_.deployed_at(idx),
                                      /*failed=*/false);
      }
      max_gen = std::max(max_gen, static_cast<double>(fleet_.unit_generation(idx)));
    }
    report_.max_unit_generations = max_gen;

    const double total_site_seconds = config_.horizon.ToSeconds() * config_.fleet_size;
    report_.mean_availability =
        total_site_seconds > 0 ? alive_site_seconds_ / total_site_seconds : 0;
    report_.yearly_availability.resize(years_);
    const double year_site_seconds = SimTime::Years(1).ToSeconds() * config_.fleet_size;
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_availability[y] = yearly_alive_seconds_[y] / year_site_seconds;
      report_.min_yearly_availability =
          std::min(report_.min_yearly_availability, report_.yearly_availability[y]);
    }
  }

 private:
  uint32_t ZoneCount() const { return std::max(1u, config_.batch.zone_count); }

  // Exact availability integration: accumulate alive-site-time, spread
  // across year buckets, before every alive-count transition.
  void AccumulateTo(SimTime now) {
    if (now <= last_change_) {
      return;
    }
    const double span = (now - last_change_).ToSeconds();
    const double alive_count = static_cast<double>(fleet_.alive_count());
    alive_site_seconds_ += span * alive_count;
    double t0 = last_change_.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
      const double year_end = (y + 1) * year_s;
      const double seg = std::min(t1, year_end) - t0;
      yearly_alive_seconds_[y] += seg * alive_count;
      t0 += seg;
    }
    last_change_ = now;
  }

  // --- Domain timers (all routed through the TimerTable) ------------------

  void ArmVisit(SimTime at, uint32_t zone, uint32_t cycle) {
    timers_.Schedule(at, kTimerVisit, zone, cycle, 0.0,
                     [this, zone] { OnZoneVisit(zone); });
  }

  void ArmSiteFailure(SimTime at, uint32_t idx, SimTime life) {
    fleet_.set_failure_event(
        idx, timers_.Schedule(at, kTimerSiteFail, idx,
                              static_cast<uint64_t>(life.micros()), 0.0,
                              [this, idx, life] { OnSiteFailure(idx, life); }));
  }

  void RegisterTimerRearms() {
    timers_.Register(kTimerVisit, [this](const TimerRecord& r) {
      ArmVisit(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a),
               static_cast<uint32_t>(r.b));
    });
    timers_.Register(kTimerSiteFail, [this](const TimerRecord& r) {
      ArmSiteFailure(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a),
                     SimTime::Micros(static_cast<int64_t>(r.b)));
    });
  }

  void DeploySite(uint32_t idx) {
    AccumulateTo(sim_.Now());
    fleet_.DeployAt(idx);
    ++report_.units_deployed;

    // Later generations may last longer (technology improvement).
    const double decade = sim_.Now().ToYears() / 10.0;
    const double life_scale = std::pow(config_.life_improvement_per_decade, decade);
    RandomStream site_rng =
        rng_.Derive((static_cast<uint64_t>(idx) << 20) + fleet_.unit_generation(idx));
    const SimTime life =
        fleet_.class_spec(cls_).hardware.SampleLife(site_rng).life * life_scale;

    ArmSiteFailure(sim_.Now() + life, idx, life);
  }

  void OnSiteFailure(uint32_t idx, SimTime life) {
    fleet_.set_failure_event(idx, kInvalidEventId);
    AccumulateTo(sim_.Now());
    fleet_.MarkFailedAt(idx);
    ++report_.total_failures;
    report_.unit_survival.Observe(life, /*failed=*/true);
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.site_failure", sim_.Now(), idx);
    }
  }

  void OnZoneVisit(uint32_t zone) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.zone_visit", sim_.Now(), zone);
    }
    const uint32_t zone_count = ZoneCount();
    for (uint32_t idx = zone; idx < config_.fleet_size; idx += zone_count) {
      if (!fleet_.alive(idx)) {
        ++report_.total_replacements;
        DeploySite(idx);
        continue;
      }
      if (config_.proactive_refresh_age.micros() > 0 &&
          sim_.Now() - fleet_.deployed_at(idx) >= config_.proactive_refresh_age) {
        // Retire a working-but-old unit during the project visit. The
        // cancel goes through the timer table so the pending record is
        // released with the event.
        const EventId failure = fleet_.failure_event(idx);
        if (failure != kInvalidEventId) {
          timers_.Cancel(failure);
          fleet_.set_failure_event(idx, kInvalidEventId);
        }
        report_.unit_survival.Observe(sim_.Now() - fleet_.deployed_at(idx), /*failed=*/false);
        AccumulateTo(sim_.Now());
        fleet_.RetireAt(idx);
        ++report_.proactive_replacements;
        DeploySite(idx);
      }
    }
  }

  // --- Checkpoint/restore -------------------------------------------------

  // Structural fields the constructor + visit pre-scheduling bake into the
  // run. Policy fields read at event time (proactive_refresh_age,
  // life_improvement_per_decade) are absent — branches vary those.
  std::string StructuralDigest() const {
    ByteWriter w;
    w.U64(config_.seed);
    w.U32(config_.fleet_size);
    w.I64(config_.horizon.micros());
    w.U8(static_cast<uint8_t>(config_.device_class));
    w.U32(config_.batch.zone_count);
    w.I64(config_.batch.cycle_period.micros());
    w.I64(config_.batch.visit_jitter.micros());
    return StructuralDigestHex(w);
  }

  void SaveCheckpoint(SimTime barrier) {
    const auto save_start = std::chrono::steady_clock::now();
    SnapshotMeta meta;
    meta.experiment = "century";
    meta.library_version = kCentsimVersion;
    meta.structural_digest = StructuralDigest();
    meta.barrier_us = barrier.micros();
    meta.seed = config_.seed;
    SnapshotWriter writer(std::move(meta));

    ByteWriter fleet;
    fleet.U64(config_.fleet_size);
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      EncodeFleetSlot(fleet_.SaveSlotState(idx), fleet);
    }
    fleet.U64(fleet_.class_count());
    for (uint32_t c = 0; c < fleet_.class_count(); ++c) {
      fleet.U64(fleet_.class_replacements(c));
    }
    writer.Add(kFleetChunk, fleet);

    ByteWriter acc;
    acc.I64(last_change_.micros());
    acc.F64(alive_site_seconds_);
    acc.F64Vec(yearly_alive_seconds_);
    acc.U64(report_.total_failures);
    acc.U64(report_.total_replacements);
    acc.U64(report_.proactive_replacements);
    acc.U64(report_.units_deployed);
    writer.Add(kAccumChunk, acc);

    ByteWriter surv;
    const auto& observations = report_.unit_survival.observations();
    surv.U64(observations.size());
    for (const SurvivalObservation& o : observations) {
      surv.I64(o.time.micros());
      surv.U8(o.failed ? 1 : 0);
    }
    writer.Add(kSurvivalChunk, surv);

    ByteWriter timers;
    TimerTable::Encode(timers_.Save(), timers);
    writer.Add(kTimerChunk, timers);

    ByteWriter sched;
    sched.I64(sim_.Now().micros());
    sched.U64(sim_.scheduler().executed_count());
    sched.U64(sim_.scheduler().late_schedule_count());
    writer.Add(kSchedChunk, sched);

    const std::string path =
        config_.snapshot.checkpoint_dir + "/" + CheckpointFileName(barrier.micros());
    std::string error;
    const uint64_t bytes = writer.Write(path, &error);
    if (bytes == 0) {
      std::fprintf(stderr, "[century] checkpoint write failed: %s\n", error.c_str());
      return;
    }
    WriteLatestMarker(config_.snapshot.checkpoint_dir, path, barrier.micros());
    ++report_.checkpoints_written;
    report_.last_checkpoint_bytes = bytes;
    report_.last_checkpoint_path = path;
    report_.save_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count();
  }

  bool RestoreFrom(const std::string& path, std::string* error) {
    SnapshotReader reader;
    if (!reader.Open(path, error)) {
      return false;
    }
    if (reader.meta().experiment != "century") {
      *error = "snapshot is for experiment '" + reader.meta().experiment + "', not century";
      return false;
    }
    if (reader.meta().structural_digest != StructuralDigest()) {
      *error =
          "structural config mismatch (snapshot " + reader.meta().structural_digest +
          ", this run " + StructuralDigest() +
          "): seed/fleet/horizon must match the saving run; only policy fields may differ";
      return false;
    }

    ByteReader fleet = reader.Chunk(kFleetChunk);
    if (fleet.U64() != config_.fleet_size) {
      *error = "snapshot fleet size does not match config";
      return false;
    }
    for (uint32_t idx = 0; idx < config_.fleet_size && fleet.ok(); ++idx) {
      fleet_.RestoreSlotState(idx, DecodeFleetSlot(fleet));
    }
    if (fleet.U64() != fleet_.class_count()) {
      *error = "snapshot class count does not match config";
      return false;
    }
    for (uint32_t c = 0; c < fleet_.class_count() && fleet.ok(); ++c) {
      fleet_.RestoreClassReplacements(c, fleet.U64());
    }
    if (!fleet.ok()) {
      *error = "fleet chunk truncated";
      return false;
    }
    fleet_.RecountAggregates();

    ByteReader acc = reader.Chunk(kAccumChunk);
    last_change_ = SimTime::Micros(acc.I64());
    alive_site_seconds_ = acc.F64();
    const std::vector<double> yearly = acc.F64Vec();
    report_.total_failures = acc.U64();
    report_.total_replacements = acc.U64();
    report_.proactive_replacements = acc.U64();
    report_.units_deployed = acc.U64();
    if (!acc.ok() || yearly.size() != yearly_alive_seconds_.size()) {
      *error = "accumulator chunk truncated or mis-shaped";
      return false;
    }
    yearly_alive_seconds_ = yearly;

    ByteReader surv = reader.Chunk(kSurvivalChunk);
    const uint64_t observation_count = surv.U64();
    // 9 bytes per observation; clamp before trusting the count.
    if (!surv.ok() || observation_count > surv.remaining() / 9) {
      *error = "survival chunk truncated";
      return false;
    }
    for (uint64_t i = 0; i < observation_count && surv.ok(); ++i) {
      const SimTime time = SimTime::Micros(surv.I64());
      const bool failed = surv.U8() != 0;
      report_.unit_survival.Observe(time, failed);
    }
    if (!surv.ok()) {
      *error = "survival chunk truncated";
      return false;
    }

    ByteReader sched = reader.Chunk(kSchedChunk);
    const SimTime now = SimTime::Micros(sched.I64());
    const uint64_t executed = sched.U64();
    const uint64_t late = sched.U64();
    if (!sched.ok()) {
      *error = "scheduler chunk truncated";
      return false;
    }
    // Clock before timers: re-armed ScheduleAt calls must see the barrier
    // as "now".
    sim_.scheduler().RestoreClock(now, executed, late);

    ByteReader tr = reader.Chunk(kTimerChunk);
    const std::vector<TimerRecord> records = TimerTable::Decode(tr);
    if (!tr.ok()) {
      *error = "timer chunk truncated";
      return false;
    }
    if (timers_.Restore(records) != 0) {
      *error = "snapshot carries timer tags this driver does not register";
      return false;
    }

    if (config_.snapshot.branch_salt != 0) {
      rng_ = rng_.Derive(config_.snapshot.branch_salt);
    }
    return true;
  }

  Simulation& sim_;
  const CenturyConfig& config_;
  CenturyReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  TimerTable timers_;
  RandomStream rng_;
  const uint32_t years_;

  SimTime last_change_;
  double alive_site_seconds_ = 0.0;
  std::vector<double> yearly_alive_seconds_;
};

}  // namespace

std::vector<std::string> CenturyConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (fleet_size == 0) {
    diagnostics.push_back("fleet_size is zero: the century fleet needs at least one site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (batch.zone_count == 0) {
    diagnostics.push_back("batch.zone_count is zero: batch projects need at least one zone");
  }
  if (batch.cycle_period.micros() <= 0) {
    diagnostics.push_back("non-positive batch.cycle_period: zones must be revisited on a "
                          "positive cadence");
  }
  if (proactive_refresh_age.micros() < 0) {
    diagnostics.push_back("negative proactive_refresh_age: use 0 to disable proactive refresh");
  }
  if (life_improvement_per_decade <= 0.0) {
    diagnostics.push_back("life_improvement_per_decade must be positive (1.0 = no improvement)");
  }
  for (std::string& diagnostic : snapshot.Validate()) {
    diagnostics.push_back(std::move(diagnostic));
  }
  for (std::string& diagnostic : shard.Validate()) {
    diagnostics.push_back(std::move(diagnostic));
  }
  if (sampling.enabled()) {
    for (std::string& diagnostic : sampling.Validate()) {
      diagnostics.push_back(std::move(diagnostic));
    }
    if (shard.enabled()) {
      diagnostics.push_back(
          "sampling and sharding are mutually exclusive: the sampled engine "
          "advances the whole fleet analytically between windows");
    }
  }
  return diagnostics;
}

CenturyReport RunCenturyScenario(const CenturyConfig& config) {
  if (config.sampling.enabled()) {
    return RunSampledCenturyScenario(config);
  }
  if (config.shard.enabled()) {
    return RunShardedCenturyScenario(config);
  }
  CheckConfigOrDie("century", config.Validate());
  Simulation sim(config.seed);
  sim.trace().set_min_level(TraceLevel::kFailure);
  sim.trace().EnableRetention(false);  // Fleet-scale: counts, not records.

  sim.scheduler().AttachRunControl(config.control);
  CenturyReport report;
  CenturyRun run(sim, config, report);
  run.Run();
  // Slot cleared first: no status/watchdog thread can reach the scheduler
  // past this line.
  sim.scheduler().DetachRunControl(config.control);
  return report;
}

}  // namespace centsim
