#include "src/core/theseus.h"

#include <algorithm>
#include <cmath>

#include "src/sim/ensemble.h"
#include "src/sim/simulation.h"

namespace centsim {
namespace {

struct SiteState {
  bool alive = false;
  SimTime deployed_at;
  uint32_t generation = 0;
  EventId failure_event = kInvalidEventId;
};

}  // namespace

std::vector<std::string> CenturyConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (fleet_size == 0) {
    diagnostics.push_back("fleet_size is zero: the century fleet needs at least one site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (batch.zone_count == 0) {
    diagnostics.push_back("batch.zone_count is zero: batch projects need at least one zone");
  }
  if (batch.cycle_period.micros() <= 0) {
    diagnostics.push_back("non-positive batch.cycle_period: zones must be revisited on a "
                          "positive cadence");
  }
  if (proactive_refresh_age.micros() < 0) {
    diagnostics.push_back("negative proactive_refresh_age: use 0 to disable proactive refresh");
  }
  if (life_improvement_per_decade <= 0.0) {
    diagnostics.push_back("life_improvement_per_decade must be positive (1.0 = no improvement)");
  }
  return diagnostics;
}

CenturyReport RunCenturyScenario(const CenturyConfig& config) {
  CheckConfigOrDie("century", config.Validate());
  Simulation sim(config.seed);
  sim.trace().set_min_level(TraceLevel::kFailure);
  sim.trace().EnableRetention(false);  // Fleet-scale: counts, not records.

  const SeriesSystem bom = config.device_class == DeviceClassKind::kBatteryPowered
                               ? SeriesSystem::BatteryPoweredNode()
                               : SeriesSystem::EnergyHarvestingNode();

  CenturyReport report;
  std::vector<SiteState> sites(config.fleet_size);
  RandomStream rng = sim.StreamFor(0x7468657365757300ULL);

  // Exact availability integration: accumulate alive-site-time.
  uint64_t alive_count = 0;
  SimTime last_change;
  double alive_site_seconds = 0.0;
  // Yearly buckets via piecewise accumulation.
  const uint32_t years = static_cast<uint32_t>(std::ceil(config.horizon.ToYears()));
  std::vector<double> yearly_alive_seconds(years, 0.0);
  auto accumulate_to = [&](SimTime now) {
    if (now <= last_change) {
      return;
    }
    const double span = (now - last_change).ToSeconds();
    alive_site_seconds += span * static_cast<double>(alive_count);
    // Spread across year buckets.
    double t0 = last_change.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years - 1, static_cast<uint32_t>(t0 / year_s));
      const double year_end = (y + 1) * year_s;
      const double seg = std::min(t1, year_end) - t0;
      yearly_alive_seconds[y] += seg * static_cast<double>(alive_count);
      t0 += seg;
    }
    last_change = now;
  };

  // Forward declaration of the deploy routine so failures can be wired.
  std::function<void(uint32_t)> deploy_site = [&](uint32_t idx) {
    SiteState& site = sites[idx];
    accumulate_to(sim.Now());
    if (!site.alive) {
      ++alive_count;
    }
    site.alive = true;
    site.deployed_at = sim.Now();
    ++site.generation;
    ++report.units_deployed;

    // Later generations may last longer (technology improvement).
    const double decade = sim.Now().ToYears() / 10.0;
    const double life_scale = std::pow(config.life_improvement_per_decade, decade);
    RandomStream site_rng = rng.Derive((static_cast<uint64_t>(idx) << 20) + site.generation);
    const SimTime life = bom.SampleLife(site_rng).life * life_scale;

    site.failure_event = sim.scheduler().ScheduleAfter(life, [&, idx, life] {
      SiteState& s = sites[idx];
      s.failure_event = kInvalidEventId;
      accumulate_to(sim.Now());
      s.alive = false;
      --alive_count;
      ++report.total_failures;
      report.unit_survival.Observe(life, /*failed=*/true);
    });
  };

  // Zone partition: site index modulo zone count (uniform spread).
  const uint32_t zone_count = std::max(1u, config.batch.zone_count);
  BatchProjectScheduler batches(sim, config.batch, [&](uint32_t zone, uint32_t cycle) {
    (void)cycle;
    for (uint32_t idx = zone; idx < sites.size(); idx += zone_count) {
      SiteState& site = sites[idx];
      if (!site.alive) {
        ++report.total_replacements;
        deploy_site(idx);
        continue;
      }
      if (config.proactive_refresh_age.micros() > 0 &&
          sim.Now() - site.deployed_at >= config.proactive_refresh_age) {
        // Retire a working-but-old unit during the project visit.
        if (site.failure_event != kInvalidEventId) {
          sim.scheduler().Cancel(site.failure_event);
          site.failure_event = kInvalidEventId;
        }
        report.unit_survival.Observe(sim.Now() - site.deployed_at, /*failed=*/false);
        accumulate_to(sim.Now());
        site.alive = false;
        --alive_count;
        ++report.proactive_replacements;
        deploy_site(idx);
      }
    }
  });
  batches.ScheduleThrough(config.horizon);

  // Initial roll-out: all sites deployed in year 0.
  for (uint32_t idx = 0; idx < sites.size(); ++idx) {
    deploy_site(idx);
  }

  sim.RunUntil(config.horizon);
  accumulate_to(config.horizon);

  // Censor survivors.
  double max_gen = 0.0;
  for (const SiteState& site : sites) {
    if (site.alive) {
      report.unit_survival.Observe(config.horizon - site.deployed_at, /*failed=*/false);
    }
    max_gen = std::max(max_gen, static_cast<double>(site.generation));
  }
  report.max_unit_generations = max_gen;

  const double total_site_seconds = config.horizon.ToSeconds() * config.fleet_size;
  report.mean_availability = total_site_seconds > 0 ? alive_site_seconds / total_site_seconds : 0;
  report.yearly_availability.resize(years);
  const double year_site_seconds = SimTime::Years(1).ToSeconds() * config.fleet_size;
  for (uint32_t y = 0; y < years; ++y) {
    report.yearly_availability[y] = yearly_alive_seconds[y] / year_site_seconds;
    report.min_yearly_availability =
        std::min(report.min_yearly_availability, report.yearly_availability[y]);
  }
  return report;
}

}  // namespace centsim
