// Sampled time advance for the district scenario (ROADMAP item 2).
//
// Same two-level machine as the sampled century engine
// (theseus_sampled.cc): a SamplingController alternates measured detailed
// windows — device failures, gateway fail/repair cycles, and batch visits
// armed on the real scheduler — with fast-forward spans where the same
// transitions are advanced by a heap-merged walk in global time order.
// Because the walk preserves global event order, the serial engine's
// transition accumulator (span x service_count at every change) is reused
// verbatim, so availability integration is exact in both levels.
//
// RNG keying: the serial district derives lifetime streams from global
// counters (gateway_failures, device_replacements), which makes draws
// depend on event order across the whole city. The sampled engine instead
// keys every draw per entity — device streams by (slot, unit_generation),
// gateway streams by (gateway, per-gateway cycle ordinal) — so a
// trajectory is reproducible regardless of where detailed windows fall
// (zero-length fast-forward is a no-op). Like the sharded engine, sampled
// results therefore agree with the serial engine in distribution, not
// bit-for-bit.
//
// Snapshots: a sampled run restores from a serial "district" checkpoint
// (fleet/gateway/accumulator chunks map directly; pending timer records
// become walk columns) but does not write checkpoints — DistrictConfig
// validation rejects the combination.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <queue>
#include <tuple>
#include <vector>

#include "src/city/deployment.h"
#include "src/core/district.h"
#include "src/core/fleet.h"
#include "src/core/fleet_codec.h"
#include "src/reliability/component.h"
#include "src/reliability/survival.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/timer_table.h"

namespace centsim {
namespace {

// Serial engine's timer tags (district.cc) — read when restoring from a
// serial checkpoint.
constexpr uint64_t kTimerVisit = 1;
constexpr uint64_t kTimerGatewayFail = 2;
constexpr uint64_t kTimerGatewayRepair = 3;
constexpr uint64_t kTimerDeviceFail = 4;

// Serial chunk tags.
constexpr uint32_t kFleetChunk = SnapshotTag('f', 'l', 'e', 't');
constexpr uint32_t kGatewayChunk = SnapshotTag('g', 'w', 's', 't');
constexpr uint32_t kAccumChunk = SnapshotTag('a', 'c', 'c', 'u');
constexpr uint32_t kTimerChunk = SnapshotTag('t', 'i', 'm', 'r');
constexpr uint32_t kSchedChunk = SnapshotTag('s', 'c', 'h', 'd');
constexpr uint32_t kMetricsChunk = SnapshotTag('m', 'e', 't', 'r');

class DistrictSampledRun {
 public:
  DistrictSampledRun(Simulation& sim, const DistrictConfig& config,
                     DistrictReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        rng_(sim.StreamFor(0x646973740002ULL)),  // Serial engine's root key.
        dev_root_(rng_.Derive(1)),
        gw_root_(rng_.Derive(2)),
        gateway_bom_(SeriesSystem::RaspberryPiGateway()),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_service_seconds_(years_, 0.0) {
    // Geometry, classes, coverage: identical to the serial constructor, so
    // serial snapshots' structural digests match.
    DeploymentPlan::Params dp;
    dp.site_count = config.device_count;
    dp.area_km2 = config.area_km2;
    dp.zone_grid = config.zone_grid;
    DeploymentPlan plan(dp, sim.StreamFor(0x646973740001ULL));
    gateway_sites_ = plan.PlanGatewayGrid(config.gateway_range_m);
    report_.gateway_count = static_cast<uint32_t>(gateway_sites_.size());

    DeviceClassSpec spec;
    spec.name = "district-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.AddSites(plan, cls_, HarvesterModel());
    if (config.metrics != nullptr) {
      fleet_.EnableFleetMetrics();
    }

    zone_sites_.resize(plan.zone_count());
    for (uint32_t d = 0; d < config.device_count; ++d) {
      zone_sites_[fleet_.zone(d)].push_back(d);
    }

    coverage_ = BuildCoverageCsr(plan.sites(), gateway_sites_, config.gateway_range_m);
    gateway_up_.assign(gateway_sites_.size(), 0);

    std::vector<uint8_t> planned_cover(config.device_count, 0);
    for (uint32_t d : coverage_.site_ids) {
      planned_cover[d] = 1;
    }
    uint32_t covered_at_all = 0;
    for (uint8_t c : planned_cover) {
      covered_at_all += c;
    }
    report_.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;

    const SeriesSystem& device_bom = fleet_.class_spec(cls_).hardware;
    dev_table_ = SurvivalTable::Build(
        [&device_bom](SimTime t) { return device_bom.Survival(t); });
    gw_table_ = SurvivalTable::Build(
        [this](SimTime t) { return gateway_bom_.Survival(t); });

    dev_fail_at_.assign(config.device_count, SimTime::Max());
    gw_next_at_.assign(gateway_sites_.size(), SimTime::Max());
    gw_ordinal_.assign(gateway_sites_.size(), 0);
  }

  void Run() {
    RecordVisitSchedule();

    std::string resume_path = config_.snapshot.resume_from;
    if (resume_path.empty() && config_.snapshot.resume_latest) {
      resume_path = FindLatestValidSnapshot(config_.snapshot.checkpoint_dir);
    }
    if (!resume_path.empty()) {
      const auto restore_start = std::chrono::steady_clock::now();
      std::string error;
      if (!RestoreFrom(resume_path, &error)) {
        CheckConfigOrDie("district-sampled",
                         {"cannot resume from " + resume_path + ": " + error});
      }
      report_.restore_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - restore_start)
                                    .count();
    } else {
      for (uint32_t g = 0; g < gateway_sites_.size(); ++g) {
        SetGatewayAt(g, true, sim_.Now());
        gw_next_at_[g] = sim_.Now() + SampleGatewayLife(g);
      }
      for (uint32_t d = 0; d < config_.device_count; ++d) {
        DeployDeviceAt(d, sim_.Now());
      }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    SamplingController controller(sim_.scheduler(), config_.sampling);
    controller.RegisterDomain(
        "district", [this](SimTime from, SimTime to) { Walk(from, to); });
    controller.SetWindowHooks(
        [this](SimTime w0, SimTime w1) { BeginWindow(w0, w1); },
        [this](SimTime w0, SimTime w1) { EndWindow(w0, w1); });
    controller.TrackMetric("service_availability", &service_samples_);
    controller.TrackMetric("device_availability", &device_samples_);
    controller.TrackMetric("device_failures_per_device_year", &fail_samples_);
    controller.AttachProgress(config_.control.progress);
    const SamplingOutcome outcome = controller.Run(config_.horizon);
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    AccumulateTo(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();
    report_.fleet_bytes_per_device = fleet_.BytesPerDevice();

    const double total = config_.horizon.ToSeconds() * config_.device_count;
    report_.mean_device_availability = alive_site_seconds_ / total;
    report_.mean_service_availability = service_site_seconds_ / total;
    report_.yearly_service.resize(years_);
    const double year_total = SimTime::Years(1).ToSeconds() * config_.device_count;
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_service[y] = yearly_service_seconds_[y] / year_total;
      report_.min_yearly_service =
          std::min(report_.min_yearly_service, report_.yearly_service[y]);
    }

    report_.sampled = true;
    report_.windows_measured = outcome.windows_measured;
    report_.sim_skipped_us = outcome.sim_skipped_us;
    report_.ci_converged = outcome.converged;
    report_.metric_cis = controller.MetricSummaries();
  }

 private:
  struct Visit {
    SimTime at;
    uint32_t zone = 0;
  };
  // Event kinds, also the equal-time tie-break order (windows arm in this
  // order; the walk heap sorts by it). Sub-microsecond-jittered continuous
  // event times make exact ties vanishingly rare either way.
  enum Kind : uint8_t { kVisit = 0, kGwFail = 1, kGwRepair = 2, kDevFail = 3 };
  enum class Phase : uint8_t { kIdle, kWindow, kWalk };
  using WalkEvent = std::tuple<int64_t, uint8_t, uint32_t>;  // (at_us, kind, entity).

  bool InService(uint32_t d) const { return fleet_.alive(d) && fleet_.covering(d) > 0; }

  uint32_t ZoneCount() const { return config_.zone_grid * config_.zone_grid; }

  void RecordVisitSchedule() {
    BatchProjectParams batch;
    batch.zone_count = ZoneCount();
    batch.cycle_period = config_.batch_cycle;
    BatchProjectScheduler batches(sim_, batch, [](uint32_t, uint32_t) {});
    batches.SetVisitScheduler([this](SimTime at, uint32_t zone, uint32_t /*cycle*/) {
      visits_.push_back({at, zone});
    });
    batches.ScheduleThrough(config_.horizon);
    std::stable_sort(visits_.begin(), visits_.end(),
                     [](const Visit& a, const Visit& b) { return a.at < b.at; });
  }

  // The serial engine's transition accumulator, verbatim: called before
  // every alive/covered change with the change's time — sim_.Now() inside
  // a window, the popped event time during the walk.
  void AccumulateTo(SimTime now) {
    if (now <= last_change_) {
      return;
    }
    const double span = (now - last_change_).ToSeconds();
    alive_site_seconds_ += span * static_cast<double>(fleet_.alive_count());
    service_site_seconds_ += span * static_cast<double>(service_count_);
    double t0 = last_change_.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
      const double seg = std::min(t1, (y + 1) * year_s) - t0;
      yearly_service_seconds_[y] += seg * static_cast<double>(service_count_);
      t0 += seg;
    }
    last_change_ = now;
  }

  void SetGatewayAt(uint32_t g, bool up, SimTime at) {
    if ((gateway_up_[g] != 0) == up) {
      return;
    }
    AccumulateTo(at);
    gateway_up_[g] = up ? 1 : 0;
    const int delta = up ? 1 : -1;
    for (uint32_t k = coverage_.begin(g); k < coverage_.end(g); ++k) {
      const uint32_t d = coverage_.site_ids[k];
      const bool was = InService(d);
      fleet_.AddCoveringAt(d, delta);
      const bool is = InService(d);
      if (was && !is) {
        --service_count_;
      } else if (!was && is) {
        ++service_count_;
      }
    }
  }

  // Per-entity keyed draws (see file comment): one NextDouble per life.
  SimTime SampleDeviceLife(uint32_t d) {
    RandomStream stream = dev_root_.Derive((static_cast<uint64_t>(d) << 24) |
                                           fleet_.unit_generation(d));
    return dev_table_.Sample(stream);
  }

  SimTime SampleGatewayLife(uint32_t g) {
    RandomStream stream =
        gw_root_.Derive((static_cast<uint64_t>(g) << 24) | gw_ordinal_[g]);
    ++gw_ordinal_[g];
    return gw_table_.Sample(stream);
  }

  // Arms a successor transition in whichever machine is running: the real
  // scheduler inside a window (clipped to the barrier — the controller
  // needs a quiescent, empty queue to jump the clock), the walk heap
  // during fast-forward (clipped to the walk span). Outside both, columns
  // alone carry the state and the next window/walk picks it up.
  void ArmNext(Kind kind, uint32_t entity, SimTime at) {
    if (phase_ == Phase::kWindow) {
      if (at < win_w1_) {
        switch (kind) {
          case kGwFail:
            sim_.scheduler().ScheduleAt(
                at, [this, entity] { GatewayFailAt(entity, sim_.Now()); });
            break;
          case kGwRepair:
            sim_.scheduler().ScheduleAt(
                at, [this, entity] { GatewayRepairAt(entity, sim_.Now()); });
            break;
          case kDevFail:
            sim_.scheduler().ScheduleAt(
                at, [this, entity] { DeviceFailAt(entity, sim_.Now()); });
            break;
          case kVisit:
            sim_.scheduler().ScheduleAt(
                at, [this, entity] { ZoneVisitAt(entity, sim_.Now()); });
            break;
        }
      }
    } else if (phase_ == Phase::kWalk) {
      if (at < walk_to_) {
        heap_.push({at.micros(), static_cast<uint8_t>(kind), entity});
      }
    }
  }

  // --- Shared transitions (window handlers and walk) ----------------------

  void DeployDeviceAt(uint32_t d, SimTime at) {
    AccumulateTo(at);
    if (!fleet_.alive(d)) {
      fleet_.DeployAtTime(d, at);
      if (InService(d)) {
        ++service_count_;
      }
    }
    dev_fail_at_[d] = at + SampleDeviceLife(d);
    ArmNext(kDevFail, d, dev_fail_at_[d]);
  }

  void DeviceFailAt(uint32_t d, SimTime at) {
    AccumulateTo(at);
    if (InService(d)) {
      --service_count_;
    }
    fleet_.MarkFailedAtTime(d, at);
    ++report_.device_failures;
  }

  void GatewayFailAt(uint32_t g, SimTime at) {
    ++report_.gateway_failures;
    RecordControl("district.gateway_fail", g, at);
    SetGatewayAt(g, false, at);
    gw_next_at_[g] = at + config_.gateway_repair_delay;
    ArmNext(kGwRepair, g, gw_next_at_[g]);
  }

  void GatewayRepairAt(uint32_t g, SimTime at) {
    ++report_.gateway_repairs;
    RecordControl("district.gateway_repair", g, at);
    SetGatewayAt(g, true, at);
    gw_next_at_[g] = at + SampleGatewayLife(g);
    ArmNext(kGwFail, g, gw_next_at_[g]);
  }

  void ZoneVisitAt(uint32_t zone, SimTime at) {
    RecordControl("district.zone_visit", zone, at);
    for (uint32_t d : zone_sites_[zone]) {
      if (!fleet_.alive(d)) {
        ++report_.device_replacements;
        DeployDeviceAt(d, at);
      }
    }
  }

  // --- Detailed windows ---------------------------------------------------

  void BeginWindow(SimTime w0, SimTime w1) {
    phase_ = Phase::kWindow;
    win_w1_ = w1;
    AccumulateTo(w0);
    win_service_base_ = service_site_seconds_;
    win_alive_base_ = alive_site_seconds_;
    win_fail_base_ = report_.device_failures;

    // Arm in kind order — the walk heap's equal-time tie-break.
    const auto first = std::lower_bound(
        visits_.begin(), visits_.end(), w0,
        [](const Visit& v, SimTime t) { return v.at < t; });
    for (auto it = first; it != visits_.end() && it->at < w1; ++it) {
      ArmNext(kVisit, it->zone, it->at);
    }
    for (uint32_t g = 0; g < gw_next_at_.size(); ++g) {
      if (gw_next_at_[g] < w1) {
        ArmNext(gateway_up_[g] != 0 ? kGwFail : kGwRepair, g, gw_next_at_[g]);
      }
    }
    for (uint32_t d = 0; d < config_.device_count; ++d) {
      if (fleet_.alive(d) && dev_fail_at_[d] < w1) {
        ArmNext(kDevFail, d, dev_fail_at_[d]);
      }
    }
  }

  void EndWindow(SimTime w0, SimTime w1) {
    AccumulateTo(w1);
    const double device_seconds = (w1 - w0).ToSeconds() * config_.device_count;
    const double device_years = (w1 - w0).ToYears() * config_.device_count;
    service_samples_.Add((service_site_seconds_ - win_service_base_) / device_seconds);
    device_samples_.Add((alive_site_seconds_ - win_alive_base_) / device_seconds);
    fail_samples_.Add(
        static_cast<double>(report_.device_failures - win_fail_base_) / device_years);
    phase_ = Phase::kIdle;
  }

  // --- Fast-forward walk --------------------------------------------------

  void Walk(SimTime from, SimTime to) {
    phase_ = Phase::kWalk;
    walk_to_ = to;
    // Seed the heap from the columns, plus the visit cursor.
    size_t vi = static_cast<size_t>(
        std::lower_bound(visits_.begin(), visits_.end(), from,
                         [](const Visit& v, SimTime t) { return v.at < t; }) -
        visits_.begin());
    if (vi < visits_.size() && visits_[vi].at < to) {
      heap_.push({visits_[vi].at.micros(), kVisit, static_cast<uint32_t>(vi)});
    }
    for (uint32_t g = 0; g < gw_next_at_.size(); ++g) {
      if (gw_next_at_[g] >= from && gw_next_at_[g] < to) {
        heap_.push({gw_next_at_[g].micros(),
                    static_cast<uint8_t>(gateway_up_[g] != 0 ? kGwFail : kGwRepair), g});
      }
    }
    for (uint32_t d = 0; d < config_.device_count; ++d) {
      if (fleet_.alive(d) && dev_fail_at_[d] >= from && dev_fail_at_[d] < to) {
        heap_.push({dev_fail_at_[d].micros(), kDevFail, d});
      }
    }
    while (!heap_.empty()) {
      const auto [at_us, kind, entity] = heap_.top();
      heap_.pop();
      const SimTime at = SimTime::Micros(at_us);
      switch (static_cast<Kind>(kind)) {
        case kVisit: {
          ZoneVisitAt(visits_[entity].zone, at);
          const size_t next = entity + 1;
          if (next < visits_.size() && visits_[next].at < to) {
            heap_.push({visits_[next].at.micros(), kVisit, static_cast<uint32_t>(next)});
          }
          break;
        }
        case kGwFail:
          GatewayFailAt(entity, at);
          break;
        case kGwRepair:
          GatewayRepairAt(entity, at);
          break;
        case kDevFail:
          DeviceFailAt(entity, at);
          break;
      }
    }
    phase_ = Phase::kIdle;
  }

  // --- Restore (from a serial "district" checkpoint) ----------------------

  // Byte-identical to the serial engine's structural digest.
  std::string StructuralDigest() const {
    ByteWriter w;
    w.U64(config_.seed);
    w.U32(config_.device_count);
    w.F64(config_.area_km2);
    w.U32(config_.zone_grid);
    w.I64(config_.horizon.micros());
    w.F64(config_.gateway_range_m);
    w.I64(config_.batch_cycle.micros());
    w.U8(static_cast<uint8_t>(config_.device_class));
    return StructuralDigestHex(w);
  }

  bool RestoreFrom(const std::string& path, std::string* error) {
    SnapshotReader reader;
    if (!reader.Open(path, error)) {
      return false;
    }
    if (reader.meta().experiment != "district") {
      *error = "snapshot is for experiment '" + reader.meta().experiment + "', not district";
      return false;
    }
    if (reader.meta().structural_digest != StructuralDigest()) {
      *error =
          "structural config mismatch (snapshot " + reader.meta().structural_digest +
          ", this run " + StructuralDigest() +
          "): seed/geometry/horizon must match the saving run; only policy fields may differ";
      return false;
    }

    ByteReader fleet = reader.Chunk(kFleetChunk);
    if (fleet.U64() != config_.device_count) {
      *error = "snapshot fleet size does not match config";
      return false;
    }
    for (uint32_t d = 0; d < config_.device_count && fleet.ok(); ++d) {
      fleet_.RestoreSlotState(d, DecodeFleetSlot(fleet));
    }
    if (fleet.U64() != fleet_.class_count()) {
      *error = "snapshot class count does not match config";
      return false;
    }
    for (uint32_t c = 0; c < fleet_.class_count() && fleet.ok(); ++c) {
      fleet_.RestoreClassReplacements(c, fleet.U64());
    }
    if (!fleet.ok()) {
      *error = "fleet chunk truncated";
      return false;
    }

    ByteReader gw = reader.Chunk(kGatewayChunk);
    if (gw.U64() != gateway_up_.size()) {
      *error = "snapshot gateway count does not match config";
      return false;
    }
    for (size_t g = 0; g < gateway_up_.size() && gw.ok(); ++g) {
      gateway_up_[g] = gw.U8();
    }
    if (!gw.ok()) {
      *error = "gateway chunk truncated";
      return false;
    }

    ByteReader acc = reader.Chunk(kAccumChunk);
    service_count_ = acc.U64();
    last_change_ = SimTime::Micros(acc.I64());
    alive_site_seconds_ = acc.F64();
    service_site_seconds_ = acc.F64();
    const std::vector<double> yearly = acc.F64Vec();
    report_.device_failures = acc.U64();
    report_.device_replacements = acc.U64();
    report_.gateway_failures = acc.U64();
    report_.gateway_repairs = acc.U64();
    if (!acc.ok() || yearly.size() != yearly_service_seconds_.size()) {
      *error = "accumulator chunk truncated or mis-shaped";
      return false;
    }
    yearly_service_seconds_ = yearly;

    if (config_.metrics != nullptr && reader.HasChunk(kMetricsChunk)) {
      ByteReader m = reader.Chunk(kMetricsChunk);
      if (DecodeMetricsOverlay(m, *config_.metrics) == SIZE_MAX) {
        *error = "metrics chunk undecodable";
        return false;
      }
    }
    fleet_.RecountAggregates();

    ByteReader sched = reader.Chunk(kSchedChunk);
    const SimTime now = SimTime::Micros(sched.I64());
    const uint64_t executed = sched.U64();
    const uint64_t late = sched.U64();
    if (!sched.ok()) {
      *error = "scheduler chunk truncated";
      return false;
    }
    sim_.scheduler().RestoreClock(now, executed, late);

    // Pending timer records become walk columns: visit records are
    // redundant with the re-recorded schedule (keyed jitter draws), the
    // rest carry each entity's next transition time.
    ByteReader tr = reader.Chunk(kTimerChunk);
    const std::vector<TimerRecord> records = TimerTable::Decode(tr);
    if (!tr.ok()) {
      *error = "timer chunk truncated";
      return false;
    }
    for (const TimerRecord& r : records) {
      const uint32_t entity = static_cast<uint32_t>(r.a);
      switch (r.tag) {
        case kTimerVisit:
          break;
        case kTimerGatewayFail:
        case kTimerGatewayRepair:
          if (entity >= gw_next_at_.size()) {
            *error = "gateway timer record out of range";
            return false;
          }
          gw_next_at_[entity] = SimTime::Micros(r.at_us);
          break;
        case kTimerDeviceFail:
          if (entity >= config_.device_count) {
            *error = "device timer record out of range";
            return false;
          }
          dev_fail_at_[entity] = SimTime::Micros(r.at_us);
          break;
        default:
          *error = "snapshot carries timer tags this driver does not register";
          return false;
      }
    }

    if (config_.snapshot.branch_salt != 0) {
      rng_ = rng_.Derive(config_.snapshot.branch_salt);
      dev_root_ = rng_.Derive(1);
      gw_root_ = rng_.Derive(2);
    }
    return true;
  }

  void RecordControl(const char* category, uint64_t arg, SimTime at) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record(category, at, arg);
    }
  }

  Simulation& sim_;
  const DistrictConfig& config_;
  DistrictReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  RandomStream rng_;
  RandomStream dev_root_;
  RandomStream gw_root_;
  const SeriesSystem gateway_bom_;
  const uint32_t years_;

  std::vector<Site> gateway_sites_;
  CoverageCsr coverage_;
  std::vector<uint8_t> gateway_up_;
  std::vector<std::vector<uint32_t>> zone_sites_;

  SurvivalTable dev_table_;
  SurvivalTable gw_table_;

  // Walk columns: each entity's next pending transition.
  std::vector<Visit> visits_;            // Full schedule, time-sorted.
  std::vector<SimTime> dev_fail_at_;     // Valid while the device is alive.
  std::vector<SimTime> gw_next_at_;      // Fail when up, repair when down.
  std::vector<uint32_t> gw_ordinal_;     // Life draws consumed per gateway.

  uint64_t service_count_ = 0;
  SimTime last_change_;
  double alive_site_seconds_ = 0.0;
  double service_site_seconds_ = 0.0;
  std::vector<double> yearly_service_seconds_;

  Phase phase_ = Phase::kIdle;
  SimTime win_w1_;
  SimTime walk_to_;
  double win_service_base_ = 0.0;
  double win_alive_base_ = 0.0;
  uint64_t win_fail_base_ = 0;
  std::priority_queue<WalkEvent, std::vector<WalkEvent>, std::greater<WalkEvent>> heap_;

  SampleSet service_samples_;
  SampleSet device_samples_;
  SampleSet fail_samples_;
};

}  // namespace

DistrictReport RunSampledDistrictScenario(const DistrictConfig& config) {
  CheckConfigOrDie("district-sampled", config.Validate());
  if (!config.sampling.enabled()) {
    CheckConfigOrDie("district-sampled",
                     {"RunSampledDistrictScenario requires sampling.mode == kSampled"});
  }
  Simulation sim(config.seed);
  sim.trace().EnableRetention(false);
  sim.SetMetrics(config.metrics);
  sim.scheduler().AttachRunControl(config.control);

  DistrictReport report;
  const auto build_start = std::chrono::steady_clock::now();
  DistrictSampledRun run(sim, config, report);
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  run.Run();

  sim.scheduler().DetachRunControl(config.control);
  sim.SetMetrics(nullptr);
  return report;
}

}  // namespace centsim
