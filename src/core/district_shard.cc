// Sharded district engine (ROADMAP item 1): one city advanced by S lanes
// with conservative windowed synchronization. See DESIGN.md "Sharded
// engine" for the full protocol; the short version:
//
//  - Devices partition into contiguous fleet column ranges, one per lane.
//    Each lane owns a full Simulation/DeviceFleet/Scheduler over its range;
//    geometry (deployment plan, gateway grid, coverage CSR) is built once
//    on the main thread and shared read-only.
//  - The only cross-shard coupling is gateway up/down state: a transition
//    of gateway g must adjust covered-service accounting in every lane with
//    sites inside g's cell. Gateway fail/repair is an autonomous process
//    (device state never feeds back into it), so the owner lane (g mod S)
//    PRE-SAMPLES the transition timeline: during the window that ends at
//    barrier B it extends every owned gateway's timeline through B + W,
//    scheduling its own local copy immediately and broadcasting the rest
//    via the ShardBus. Messages published in window w are drained at the
//    start of window w+1 — one full window before the earliest time they
//    can fire — so no lane ever receives an event in its past.
//  - Determinism: per-entity RNG streams are keyed by (entity, ordinal)
//    derivations of lane-independent roots, availability integrates in
//    unsigned 128-bit microsecond-counts (order-free integer sums), and
//    same-timestamp event orders that differ between shard layouts are
//    tie-commutative (measure-only coupling: coverage affects accounting,
//    never dynamics or RNG). Reports are therefore bit-identical across
//    any shards/workers/window choice.
//
// The sharded engine's numbers intentionally differ from the serial
// engine's (which threads one RNG through the global event order and sums
// doubles in that order); shards == 0 keeps the serial path and its golden
// digests byte-for-byte.

#include "src/core/district.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/city/deployment.h"
#include "src/core/fleet.h"
#include "src/core/fleet_codec.h"
#include "src/mgmt/batch_project.h"
#include "src/reliability/component.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/shard_bus.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/simulation.h"
#include "src/sim/thread_pool.h"
#include "src/snapshot/bytes.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/snapshot.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

using U128 = unsigned __int128;

constexpr uint32_t kMsgGatewayDown = 1;
constexpr uint32_t kMsgGatewayUp = 2;

// Lane-independent RNG roots: every lane derives them from a Simulation
// seeded with config.seed, and every draw is keyed by (entity, ordinal),
// so a sample's value never depends on which lane takes it or in what
// order. 24 ordinal bits leave 40 bits of entity index.
constexpr uint64_t kShardDeviceRoot = 0x7368646400000001ULL;   // "shdd"
constexpr uint64_t kShardGatewayRoot = 0x7368646400000002ULL;

inline uint64_t EntityKey(uint64_t index, uint32_t ordinal) {
  return (index << 24) | ordinal;
}

// Snapshot chunk tags ("district-shard" experiment).
constexpr uint32_t kShardFleetChunk = SnapshotTag('f', 'l', 'e', 't');
constexpr uint32_t kShardGatewayChunk = SnapshotTag('g', 'w', 'r', 'c');
constexpr uint32_t kShardAccumChunk = SnapshotTag('a', 'c', 'c', 'u');

void WriteU128(ByteWriter& w, U128 v) {
  w.U64(static_cast<uint64_t>(v));
  w.U64(static_cast<uint64_t>(v >> 64));
}

U128 ReadU128(ByteReader& r) {
  const uint64_t lo = r.U64();
  const uint64_t hi = r.U64();
  return (U128(hi) << 64) | lo;
}

double U128Seconds(U128 us) { return static_cast<double>(us) / 1e6; }

// Same structural fields as the serial district digest (the geometry and
// pre-scheduled visit grid both engines rebuild from config). The shard
// layout (shards/workers/window) is deliberately absent: a snapshot taken
// under K shards restores under any K'.
std::string ShardStructuralDigest(const DistrictConfig& config) {
  ByteWriter w;
  w.U64(config.seed);
  w.U32(config.device_count);
  w.F64(config.area_km2);
  w.U32(config.zone_grid);
  w.I64(config.horizon.micros());
  w.F64(config.gateway_range_m);
  w.I64(config.batch_cycle.micros());
  w.U8(static_cast<uint8_t>(config.device_class));
  return StructuralDigestHex(w);
}

BatchProjectParams BatchParams(const DistrictConfig& config) {
  BatchProjectParams batch;
  batch.zone_count = config.zone_grid * config.zone_grid;
  batch.cycle_period = config.batch_cycle;
  return batch;
}

// Gateway fail/repair recurrence, advanced identically by the emission
// cursor (through barrier + W), the committed cursor (through the barrier,
// for checkpoints), and a restoring run (resuming from the saved tuple).
// Each life draw derives a fresh stream keyed by (gateway, ordinal), so
// replaying the advance sequence consumes no shared RNG state.
struct GatewayCursor {
  int64_t next_at_us = 0;
  uint8_t next_is_down = 1;
  uint32_t ordinal = 0;
};

GatewayCursor InitialCursor(const RandomStream& gw_root, const SeriesSystem& bom, uint32_t g) {
  GatewayCursor c;
  RandomStream r = gw_root.Derive(EntityKey(g, 0));
  c.next_at_us = bom.SampleLife(r).life.micros();
  c.next_is_down = 1;
  c.ordinal = 1;
  return c;
}

void AdvanceCursor(GatewayCursor& c, const RandomStream& gw_root, const SeriesSystem& bom,
                   uint32_t g, int64_t repair_delay_us) {
  if (c.next_is_down != 0) {
    c.next_at_us += repair_delay_us;
    c.next_is_down = 0;
  } else {
    RandomStream r = gw_root.Derive(EntityKey(g, c.ordinal));
    ++c.ordinal;
    c.next_at_us += bom.SampleLife(r).life.micros();
    c.next_is_down = 1;
  }
}

// Geometry built once on the main thread and shared read-only by lanes.
struct SharedGeometry {
  SharedGeometry(const DistrictConfig& config, const RandomStream& geometry_stream)
      : plan(PlanParams(config), geometry_stream),
        gateway_sites(plan.PlanGatewayGrid(config.gateway_range_m)),
        coverage(BuildCoverageCsr(plan.sites(), gateway_sites, config.gateway_range_m)) {}

  static DeploymentPlan::Params PlanParams(const DistrictConfig& config) {
    DeploymentPlan::Params dp;
    dp.site_count = config.device_count;
    dp.area_km2 = config.area_km2;
    dp.zone_grid = config.zone_grid;
    return dp;
  }

  DeploymentPlan plan;
  std::vector<Site> gateway_sites;
  CoverageCsr coverage;
};

// Order-free merged totals (integer microsecond-counts + counters).
struct LaneTotals {
  U128 alive_us = 0;
  U128 service_us = 0;
  std::vector<U128> yearly_service_us;
  uint64_t device_failures = 0;
  uint64_t device_replacements = 0;
  uint64_t gateway_failures = 0;
  uint64_t gateway_repairs = 0;
};

// Everything a "district-shard" snapshot carries, in global index order —
// shard-count-free, so K lanes can save it and K' lanes restore it.
struct RestoreState {
  int64_t barrier_us = 0;
  std::vector<DeviceFleet::SlotState> slots;  // Global device order.
  std::vector<uint8_t> gw_up;
  std::vector<uint8_t> gw_next_down;
  std::vector<uint32_t> gw_ordinal;
  std::vector<int64_t> gw_next_at;
  LaneTotals base;       // Accumulators as of the barrier (global sums).
  uint64_t executed = 0; // Total events executed across lanes at the barrier.
};

class DistrictShardLane final : public ShardLane {
 public:
  DistrictShardLane(const DistrictConfig& config, const SharedGeometry& geo, ShardBus& bus,
                    uint32_t lane, uint32_t shards, uint32_t begin, uint32_t end,
                    const RestoreState* restore, FlightRecorder* recorder)
      : config_(config),
        geo_(geo),
        bus_(bus),
        lane_(lane),
        shards_(shards),
        begin_(begin),
        end_(end),
        restore_(restore),
        recorder_(recorder),
        sim_(config.seed),
        fleet_(sim_),
        dev_root_(sim_.StreamFor(kShardDeviceRoot)),
        gw_root_(sim_.StreamFor(kShardGatewayRoot)),
        gateway_bom_(SeriesSystem::RaspberryPiGateway()),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_service_us_(years_, 0),
        batches_(sim_, BatchParams(config),
                 [this](uint32_t zone, uint32_t) { OnZoneVisit(zone); }) {
    sim_.trace().EnableRetention(false);
    // All lanes arm every zone's visits (identical jitter draws from the
    // shared seed) but only walk their own slice of the zone. The filter
    // also implements restore: a resumed run re-draws the full visit grid
    // and keeps only visits strictly after the barrier — barrier-coincident
    // visits already ran in the saving run's DrainToBarrier.
    batches_.SetVisitScheduler([this](SimTime at, uint32_t zone, uint32_t) {
      if (at.micros() > restore_barrier_us_) {
        sim_.scheduler().ScheduleAt(at, [this, zone] { OnZoneVisit(zone); }, "shard.visit");
      }
    });
    if (restore_ != nullptr && config_.snapshot.branch_salt != 0) {
      dev_root_ = dev_root_.Derive(config_.snapshot.branch_salt);
      gw_root_ = gw_root_.Derive(config_.snapshot.branch_salt);
    }
  }

  // --- ShardLane ----------------------------------------------------------

  void Setup(SimTime cover) override {
    DeviceClassSpec spec;
    spec.name = "district-site";
    spec.hardware = config_.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.AddSitesRange(geo_.plan, cls_, HarvesterModel(), begin_, end_);

    const uint32_t count = end_ - begin_;
    zone_local_.resize(geo_.plan.zone_count());
    for (uint32_t ld = 0; ld < count; ++ld) {
      zone_local_[fleet_.zone(ld)].push_back(ld);
    }
    BuildLocalCoverage();
    const uint32_t n_gw = static_cast<uint32_t>(geo_.gateway_sites.size());
    gateway_up_.assign(n_gw, 1);
    cursors_.resize(n_gw);
    committed_.resize(n_gw);

    if (restore_ != nullptr) {
      SetupFromRestore(cover);
      return;
    }

    batches_.ScheduleThrough(config_.horizon);
    // t = 0: every gateway up, so each site's covering count starts at its
    // static coverage degree.
    for (uint32_t g = 0; g < n_gw; ++g) {
      for (uint32_t k = local_cov_.begin(g); k < local_cov_.end(g); ++k) {
        fleet_.AddCoveringAt(local_cov_.site_ids[k], +1);
      }
    }
    for (uint32_t ld = 0; ld < count; ++ld) {
      DeployDevice(ld);
    }
    for (uint32_t g = lane_; g < n_gw; g += shards_) {
      cursors_[g] = InitialCursor(gw_root_, gateway_bom_, g);
      committed_[g] = cursors_[g];
    }
    ExtendOwned(cover.micros());
  }

  SimTime NextBound() override {
    int64_t bound = sim_.scheduler().EarliestPending().micros();
    for (uint32_t g = lane_; g < cursors_.size(); g += shards_) {
      bound = std::min(bound, cursors_[g].next_at_us);
    }
    return SimTime::Micros(bound);
  }

  void RunWindow(SimTime barrier, SimTime cover) override {
    bus_.DrainInto(lane_, [this](const ShardMessage& m) {
      const uint32_t g = m.a;
      const bool up = m.kind == kMsgGatewayUp;
      sim_.scheduler().ScheduleAt(SimTime::Micros(m.at_us),
                                  [this, g, up] { ApplyGateway(g, up, /*owned=*/false); },
                                  "shard.gw");
    });
    ExtendOwned(cover.micros());
    sim_.scheduler().DrainToBarrier(barrier);
    if (recorder_ != nullptr) {
      recorder_->Record("shard.window", barrier, lane_);
    }
  }

  void AtCheckpointBarrier(SimTime barrier) override {
    AccumulateTo(barrier.micros());
    // Advance the committed cursors through the barrier — the identical
    // draw sequence the emission cursors already consumed, so a restoring
    // run (even a branch-salted one) resumes exactly where emissions up to
    // the barrier left off and re-emits the in-flight (barrier, cover]
    // transitions itself.
    for (uint32_t g = lane_; g < committed_.size(); g += shards_) {
      while (committed_[g].next_at_us <= barrier.micros()) {
        AdvanceCursor(committed_[g], gw_root_, gateway_bom_, g,
                      config_.gateway_repair_delay.micros());
      }
    }
  }

  Scheduler& sched() override { return sim_.scheduler(); }

  // --- Main-thread accessors (lanes quiescent) ----------------------------

  void FinishAt(SimTime horizon) { AccumulateTo(horizon.micros()); }

  void MergeInto(LaneTotals& t) const {
    t.alive_us += alive_us_;
    t.service_us += service_us_;
    for (uint32_t y = 0; y < years_; ++y) {
      t.yearly_service_us[y] += yearly_service_us_[y];
    }
    t.device_failures += device_failures_;
    t.device_replacements += device_replacements_;
    t.gateway_failures += gateway_failures_;
    t.gateway_repairs += gateway_repairs_;
  }

  uint32_t device_count() const { return end_ - begin_; }
  DeviceFleet::SlotState SaveSlot(uint32_t ld) const { return fleet_.SaveSlotState(ld); }
  uint8_t gateway_up(uint32_t g) const { return gateway_up_[g]; }
  const GatewayCursor& committed_cursor(uint32_t g) const { return committed_[g]; }
  size_t fleet_bytes() const { return fleet_.MemoryBytes(); }

 private:
  bool InService(uint32_t ld) const { return fleet_.alive(ld) && fleet_.covering(ld) > 0; }

  void BuildLocalCoverage() {
    const uint32_t n_gw = static_cast<uint32_t>(geo_.gateway_sites.size());
    local_cov_.offsets.assign(n_gw + 1, 0);
    for (uint32_t g = 0; g < n_gw; ++g) {
      local_cov_.offsets[g] = static_cast<uint32_t>(local_cov_.site_ids.size());
      for (uint32_t k = geo_.coverage.begin(g); k < geo_.coverage.end(g); ++k) {
        const uint32_t d = geo_.coverage.site_ids[k];
        if (d >= begin_ && d < end_) {
          local_cov_.site_ids.push_back(d - begin_);
        }
      }
    }
    local_cov_.offsets[n_gw] = static_cast<uint32_t>(local_cov_.site_ids.size());
  }

  void SetupFromRestore(SimTime cover) {
    const RestoreState& rs = *restore_;
    restore_barrier_us_ = rs.barrier_us;
    const uint32_t count = end_ - begin_;
    for (uint32_t ld = 0; ld < count; ++ld) {
      fleet_.RestoreSlotState(ld, rs.slots[begin_ + ld]);
    }
    fleet_.RecountAggregates();
    for (uint32_t g = 0; g < gateway_up_.size(); ++g) {
      gateway_up_[g] = rs.gw_up[g];
    }
    service_count_ = 0;
    for (uint32_t ld = 0; ld < count; ++ld) {
      if (InService(ld)) {
        ++service_count_;
      }
    }
    last_us_ = rs.barrier_us;
    // Accumulators restart at zero; the merge adds the snapshot's global
    // base back — exact, because the integer integration splits additively
    // at the barrier. Lane 0 carries the saved executed count so the
    // merged total matches a straight run's.
    sim_.scheduler().RestoreClock(SimTime::Micros(rs.barrier_us),
                                  lane_ == 0 ? rs.executed : 0, 0);
    // Visits before failures: straight runs arm every visit at setup, so
    // visits always carry lower sequence numbers than run-time-armed
    // failure events and win same-timestamp ties. Re-arming in this order
    // (then failures in ascending slot order) preserves that.
    batches_.ScheduleThrough(config_.horizon);
    for (uint32_t ld = 0; ld < count; ++ld) {
      if (fleet_.alive(ld) && fleet_.deadline(ld).micros() > rs.barrier_us) {
        ArmDeviceFailure(ld, fleet_.deadline(ld));
      }
    }
    for (uint32_t g = lane_; g < cursors_.size(); g += shards_) {
      cursors_[g].next_at_us = rs.gw_next_at[g];
      cursors_[g].next_is_down = rs.gw_next_down[g];
      cursors_[g].ordinal = rs.gw_ordinal[g];
      committed_[g] = cursors_[g];
    }
    ExtendOwned(cover.micros());
  }

  // Exact integer availability integration (microseconds × device-count
  // fits only in 128 bits at the 1M-device × 50-year scale).
  void AccumulateTo(int64_t now_us) {
    if (now_us <= last_us_) {
      return;
    }
    const U128 span = static_cast<uint64_t>(now_us - last_us_);
    alive_us_ += span * fleet_.alive_count();
    service_us_ += span * service_count_;
    const int64_t year_us = SimTime::Years(1).micros();
    int64_t t0 = last_us_;
    while (t0 < now_us) {
      const uint32_t y =
          std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_us));
      const int64_t year_end = (static_cast<int64_t>(y) + 1) * year_us;
      const int64_t seg_end = std::min(now_us, year_end);
      yearly_service_us_[y] += U128(static_cast<uint64_t>(seg_end - t0)) * service_count_;
      t0 = seg_end;
    }
    last_us_ = now_us;
  }

  // Pre-sample owned gateways' transition timelines through `cover_us`,
  // scheduling local copies eagerly (they keep NextBound honest and make
  // in-flight broadcasts always covered by the sender's bound) and
  // broadcasting to every other lane.
  void ExtendOwned(int64_t cover_us) {
    for (uint32_t g = lane_; g < cursors_.size(); g += shards_) {
      GatewayCursor& c = cursors_[g];
      while (c.next_at_us <= cover_us) {
        const int64_t at = c.next_at_us;
        const bool down = c.next_is_down != 0;
        sim_.scheduler().ScheduleAt(SimTime::Micros(at),
                                    [this, g, down] { ApplyGateway(g, !down, /*owned=*/true); },
                                    "shard.gw");
        ShardMessage m;
        m.at_us = at;
        m.kind = down ? kMsgGatewayDown : kMsgGatewayUp;
        m.a = g;
        bus_.Broadcast(lane_, m);
        AdvanceCursor(c, gw_root_, gateway_bom_, g, config_.gateway_repair_delay.micros());
      }
    }
  }

  // One gateway transition, applied to this lane's slice of the cell. The
  // owner's copy also counts it (exactly once fleet-wide).
  void ApplyGateway(uint32_t g, bool up, bool owned) {
    if (owned) {
      if (up) {
        ++gateway_repairs_;
        if (recorder_ != nullptr) {
          recorder_->Record("district.gateway_repair", sim_.Now(), g);
        }
      } else {
        ++gateway_failures_;
        if (recorder_ != nullptr) {
          recorder_->Record("district.gateway_fail", sim_.Now(), g);
        }
      }
    }
    if ((gateway_up_[g] != 0) == up) {
      return;
    }
    AccumulateTo(sim_.Now().micros());
    gateway_up_[g] = up ? 1 : 0;
    const int delta = up ? 1 : -1;
    for (uint32_t k = local_cov_.begin(g); k < local_cov_.end(g); ++k) {
      const uint32_t ld = local_cov_.site_ids[k];
      const bool was = InService(ld);
      fleet_.AddCoveringAt(ld, delta);
      const bool is = InService(ld);
      if (was && !is) {
        --service_count_;
      } else if (!was && is) {
        ++service_count_;
      }
    }
  }

  void ArmDeviceFailure(uint32_t ld, SimTime at) {
    sim_.scheduler().ScheduleAt(at, [this, ld] { OnDeviceFailure(ld); }, "shard.devfail");
  }

  void DeployDevice(uint32_t ld) {
    AccumulateTo(sim_.Now().micros());
    if (!fleet_.alive(ld)) {
      fleet_.DeployAt(ld);
      if (InService(ld)) {
        ++service_count_;
      }
    }
    // Keyed by (global index, unit generation): the draw is identical no
    // matter which lane owns the device or when its replacement lands.
    RandomStream dev_rng = dev_root_.Derive(
        EntityKey(begin_ + ld, fleet_.unit_generation(ld)));
    const SimTime life = fleet_.class_spec(cls_).hardware.SampleLife(dev_rng).life;
    const SimTime at = sim_.Now() + life;
    fleet_.set_deadline(ld, at);  // Snapshot re-arm source.
    ArmDeviceFailure(ld, at);
  }

  void OnDeviceFailure(uint32_t ld) {
    AccumulateTo(sim_.Now().micros());
    if (InService(ld)) {
      --service_count_;
    }
    fleet_.MarkFailedAt(ld);
    ++device_failures_;
  }

  void OnZoneVisit(uint32_t zone) {
    if (recorder_ != nullptr) {
      recorder_->Record("district.zone_visit", sim_.Now(), zone);
    }
    for (uint32_t ld : zone_local_[zone]) {
      if (!fleet_.alive(ld)) {
        ++device_replacements_;
        DeployDevice(ld);
      }
    }
  }

  const DistrictConfig& config_;
  const SharedGeometry& geo_;
  ShardBus& bus_;
  const uint32_t lane_;
  const uint32_t shards_;
  const uint32_t begin_;
  const uint32_t end_;
  const RestoreState* restore_;
  FlightRecorder* recorder_;

  Simulation sim_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  RandomStream dev_root_;
  RandomStream gw_root_;
  const SeriesSystem gateway_bom_;
  const uint32_t years_;
  std::vector<U128> yearly_service_us_;
  BatchProjectScheduler batches_;

  CoverageCsr local_cov_;  // Rows over local slots (global - begin_).
  std::vector<std::vector<uint32_t>> zone_local_;
  std::vector<uint8_t> gateway_up_;        // All gateways (replicated state).
  std::vector<GatewayCursor> cursors_;     // Emission cursor, owned g only.
  std::vector<GatewayCursor> committed_;   // Lags at the last barrier.

  int64_t restore_barrier_us_ = -1;
  uint64_t service_count_ = 0;
  int64_t last_us_ = 0;
  U128 alive_us_ = 0;
  U128 service_us_ = 0;
  uint64_t device_failures_ = 0;
  uint64_t device_replacements_ = 0;
  uint64_t gateway_failures_ = 0;
  uint64_t gateway_repairs_ = 0;
};

void SaveShardCheckpoint(const DistrictConfig& config, const SharedGeometry& geo,
                         const std::vector<std::unique_ptr<DistrictShardLane>>& lanes,
                         const LaneTotals& base, uint64_t base_years, SimTime barrier,
                         DistrictReport& report) {
  const auto save_start = std::chrono::steady_clock::now();
  SnapshotMeta meta;
  meta.experiment = "district-shard";
  meta.library_version = kCentsimVersion;
  meta.structural_digest = ShardStructuralDigest(config);
  meta.barrier_us = barrier.micros();
  meta.seed = config.seed;
  SnapshotWriter writer(std::move(meta));

  ByteWriter fleet;
  fleet.U64(config.device_count);
  for (const auto& lane : lanes) {
    for (uint32_t ld = 0; ld < lane->device_count(); ++ld) {
      EncodeFleetSlot(lane->SaveSlot(ld), fleet);
    }
  }
  writer.Add(kShardFleetChunk, fleet);

  ByteWriter gw;
  const uint32_t n_gw = static_cast<uint32_t>(geo.gateway_sites.size());
  gw.U64(n_gw);
  for (uint32_t g = 0; g < n_gw; ++g) {
    const GatewayCursor& c = lanes[g % lanes.size()]->committed_cursor(g);
    gw.U8(lanes[0]->gateway_up(g));
    gw.U8(c.next_is_down);
    gw.U32(c.ordinal);
    gw.I64(c.next_at_us);
  }
  writer.Add(kShardGatewayChunk, gw);

  LaneTotals totals = base;
  totals.yearly_service_us.resize(base_years, 0);
  uint64_t executed = 0;
  for (const auto& lane : lanes) {
    lane->MergeInto(totals);
    executed += lane->sched().executed_count();
  }
  ByteWriter acc;
  acc.I64(barrier.micros());
  WriteU128(acc, totals.alive_us);
  WriteU128(acc, totals.service_us);
  acc.U64(totals.yearly_service_us.size());
  for (U128 v : totals.yearly_service_us) {
    WriteU128(acc, v);
  }
  acc.U64(totals.device_failures);
  acc.U64(totals.device_replacements);
  acc.U64(totals.gateway_failures);
  acc.U64(totals.gateway_repairs);
  acc.U64(executed);
  writer.Add(kShardAccumChunk, acc);

  const std::string path =
      config.snapshot.checkpoint_dir + "/" + CheckpointFileName(barrier.micros());
  std::string error;
  const uint64_t bytes = writer.Write(path, &error);
  if (bytes == 0) {
    std::fprintf(stderr, "[district-shard] checkpoint write failed: %s\n", error.c_str());
    return;
  }
  WriteLatestMarker(config.snapshot.checkpoint_dir, path, barrier.micros());
  ++report.checkpoints_written;
  report.last_checkpoint_bytes = bytes;
  report.last_checkpoint_path = path;
  report.save_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count();
}

bool LoadShardSnapshot(const std::string& path, const DistrictConfig& config, uint32_t n_gw,
                       uint32_t years, RestoreState& rs, std::string* error) {
  SnapshotReader reader;
  if (!reader.Open(path, error)) {
    return false;
  }
  if (reader.meta().experiment != "district-shard") {
    *error = "snapshot is for experiment '" + reader.meta().experiment +
             "', not district-shard";
    return false;
  }
  if (reader.meta().structural_digest != ShardStructuralDigest(config)) {
    *error = "structural config mismatch (snapshot " + reader.meta().structural_digest +
             ", this run " + ShardStructuralDigest(config) +
             "): seed/geometry/horizon must match the saving run; only policy fields and "
             "the shard layout may differ";
    return false;
  }

  ByteReader fleet = reader.Chunk(kShardFleetChunk);
  if (fleet.U64() != config.device_count) {
    *error = "snapshot fleet size does not match config";
    return false;
  }
  rs.slots.resize(config.device_count);
  for (uint32_t d = 0; d < config.device_count && fleet.ok(); ++d) {
    rs.slots[d] = DecodeFleetSlot(fleet);
  }
  if (!fleet.ok()) {
    *error = "fleet chunk truncated";
    return false;
  }

  ByteReader gw = reader.Chunk(kShardGatewayChunk);
  if (gw.U64() != n_gw) {
    *error = "snapshot gateway count does not match config";
    return false;
  }
  rs.gw_up.resize(n_gw);
  rs.gw_next_down.resize(n_gw);
  rs.gw_ordinal.resize(n_gw);
  rs.gw_next_at.resize(n_gw);
  for (uint32_t g = 0; g < n_gw && gw.ok(); ++g) {
    rs.gw_up[g] = gw.U8();
    rs.gw_next_down[g] = gw.U8();
    rs.gw_ordinal[g] = gw.U32();
    rs.gw_next_at[g] = gw.I64();
  }
  if (!gw.ok()) {
    *error = "gateway chunk truncated";
    return false;
  }

  ByteReader acc = reader.Chunk(kShardAccumChunk);
  rs.barrier_us = acc.I64();
  rs.base.alive_us = ReadU128(acc);
  rs.base.service_us = ReadU128(acc);
  const uint64_t year_count = acc.U64();
  if (!acc.ok() || year_count != years || year_count > acc.remaining() / 16) {
    *error = "accumulator chunk truncated or mis-shaped";
    return false;
  }
  rs.base.yearly_service_us.resize(years);
  for (uint32_t y = 0; y < years; ++y) {
    rs.base.yearly_service_us[y] = ReadU128(acc);
  }
  rs.base.device_failures = acc.U64();
  rs.base.device_replacements = acc.U64();
  rs.base.gateway_failures = acc.U64();
  rs.base.gateway_repairs = acc.U64();
  rs.executed = acc.U64();
  if (!acc.ok()) {
    *error = "accumulator chunk truncated";
    return false;
  }
  return true;
}

}  // namespace

DistrictReport RunShardedDistrictScenario(const DistrictConfig& config) {
  std::vector<std::string> diagnostics = config.Validate();
  if (config.shard.shards == 0) {
    diagnostics.push_back("shard.shards is zero: the sharded engine needs at least one lane "
                          "(use RunDistrictScenario for the serial engine)");
  }
  if (config.metrics != nullptr) {
    diagnostics.push_back("metrics registry is not supported by the sharded district engine: "
                          "run with shard.shards = 0 to bind metrics");
  }
  CheckConfigOrDie("district-shard", diagnostics);

  DistrictReport report;
  const auto build_start = std::chrono::steady_clock::now();
  const uint32_t shards = std::min(config.shard.shards, config.device_count);

  const SharedGeometry geo(config, RandomStream(config.seed).Derive(0x646973740001ULL));
  report.gateway_count = static_cast<uint32_t>(geo.gateway_sites.size());
  {
    std::vector<uint8_t> planned_cover(config.device_count, 0);
    for (uint32_t d : geo.coverage.site_ids) {
      planned_cover[d] = 1;
    }
    uint32_t covered_at_all = 0;
    for (uint8_t c : planned_cover) {
      covered_at_all += c;
    }
    report.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;
  }
  const uint32_t years = static_cast<uint32_t>(std::ceil(config.horizon.ToYears()));

  RestoreState rs;
  bool restoring = false;
  std::string resume_path = config.snapshot.resume_from;
  if (resume_path.empty() && config.snapshot.resume_latest) {
    resume_path = FindLatestValidSnapshot(config.snapshot.checkpoint_dir);
  }
  if (!resume_path.empty()) {
    const auto restore_start = std::chrono::steady_clock::now();
    std::string error;
    if (!LoadShardSnapshot(resume_path, config, report.gateway_count, years, rs, &error)) {
      CheckConfigOrDie("district-shard",
                       {"cannot resume from " + resume_path + ": " + error});
    }
    restoring = true;
    report.restore_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - restore_start)
            .count();
  }

  ShardBus bus(shards);
  std::vector<std::unique_ptr<DistrictShardLane>> lanes;
  std::vector<ShardLane*> lane_ptrs;
  const uint32_t per_lane = config.device_count / shards;
  const uint32_t remainder = config.device_count % shards;
  uint32_t begin = 0;
  for (uint32_t i = 0; i < shards; ++i) {
    const uint32_t end = begin + per_lane + (i < remainder ? 1 : 0);
    FlightRecorder* recorder =
        i < config.shard.shard_recorders.size() ? config.shard.shard_recorders[i] : nullptr;
    lanes.push_back(std::make_unique<DistrictShardLane>(
        config, geo, bus, i, shards, begin, end, restoring ? &rs : nullptr, recorder));
    lane_ptrs.push_back(lanes.back().get());
    begin = end;
  }
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();

  ThreadPool pool(config.shard.workers != 0 ? config.shard.workers : shards);
  ShardWindowOptions opts;
  opts.horizon = config.horizon;
  opts.window = config.shard.window.micros() > 0 ? config.shard.window : SimTime::Days(90);
  opts.checkpoint_every = config.snapshot.checkpoint_every;
  opts.on_barrier = [&bus] { bus.FlipPlanes(); };
  opts.progress = config.shard.shard_progress;
  opts.replica_progress = config.control.progress;
  if (config.snapshot.checkpoint_every.micros() > 0) {
    std::error_code ec;
    std::filesystem::create_directories(config.snapshot.checkpoint_dir, ec);
    opts.on_checkpoint = [&](SimTime barrier) {
      SaveShardCheckpoint(config, geo, lanes, restoring ? rs.base : LaneTotals{}, years,
                          barrier, report);
    };
  }

  const auto wall_start = std::chrono::steady_clock::now();
  report.events_executed = RunShardWindows(pool, lane_ptrs, opts);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count() -
      report.save_seconds;

  LaneTotals totals;
  totals.yearly_service_us.assign(years, 0);
  if (restoring) {
    totals = rs.base;
  }
  size_t fleet_bytes = 0;
  for (auto& lane : lanes) {
    lane->FinishAt(config.horizon);
    lane->MergeInto(totals);
    fleet_bytes += lane->fleet_bytes();
  }

  report.device_failures = totals.device_failures;
  report.device_replacements = totals.device_replacements;
  report.gateway_failures = totals.gateway_failures;
  report.gateway_repairs = totals.gateway_repairs;
  report.fleet_bytes_per_device =
      config.device_count > 0 ? static_cast<double>(fleet_bytes) / config.device_count : 0.0;

  const double total = config.horizon.ToSeconds() * config.device_count;
  report.mean_device_availability = U128Seconds(totals.alive_us) / total;
  report.mean_service_availability = U128Seconds(totals.service_us) / total;
  report.yearly_service.resize(years);
  const double year_total = SimTime::Years(1).ToSeconds() * config.device_count;
  for (uint32_t y = 0; y < years; ++y) {
    report.yearly_service[y] = U128Seconds(totals.yearly_service_us[y]) / year_total;
    report.min_yearly_service = std::min(report.min_yearly_service, report.yearly_service[y]);
  }
  return report;
}

}  // namespace centsim
