// The Ship-of-Theseus century scenario (paper §1, §3.4).
//
// "The lifetime of a sensing system is the aggregate lifetime of all of its
// devices across all their deployments. Constituent device lifetimes are
// pipelined ... even if it is unlikely for any one device to last multiple
// decades, it is both reasonable and likely for municipal-scale systems to
// last for decades."
//
// A fleet of sites is deployed across geographic zones. Devices fail on
// their hardware clocks; failed devices are only replaced when the next
// geographic batch project reaches their zone (en-masse dispatch being
// intractable). The scenario tracks aggregate fleet availability over a
// century — the quantity that must stay high even though no individual
// unit survives.

#ifndef SRC_CORE_THESEUS_H_
#define SRC_CORE_THESEUS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/shard_plan.h"
#include "src/mgmt/batch_project.h"
#include "src/reliability/component.h"
#include "src/reliability/survival.h"
#include "src/sim/run_progress.h"
#include "src/sim/sampling.h"
#include "src/sim/time.h"
#include "src/snapshot/snapshot_plan.h"
#include "src/telemetry/timeseries.h"

namespace centsim {

enum class DeviceClassKind : uint8_t {
  kBatteryPowered,
  kEnergyHarvesting,
};

struct CenturyConfig {
  uint64_t seed = 7;
  uint32_t fleet_size = 5000;
  SimTime horizon = SimTime::Years(100);
  DeviceClassKind device_class = DeviceClassKind::kEnergyHarvesting;
  BatchProjectParams batch;  // Zone refresh cadence.
  // Proactive refresh: during a zone visit, also replace working units
  // older than this (0 disables). Models "some deployments replace their
  // sensors with state-of-the-art technologies" on the project cadence.
  SimTime proactive_refresh_age = SimTime();
  // Units installed in later batches last longer by this factor per decade
  // (technology improvement across generations). 1.0 = no improvement.
  double life_improvement_per_decade = 1.0;

  // Live run-control attachments (heartbeat progress, flight recorder,
  // stall-snapshot slot) — wired per replica by EnsembleRunner when a
  // status_dir is configured; inert by default.
  RunControlHooks control;

  // Checkpoint/restore plan (src/snapshot). Structural fields (seed,
  // fleet_size, horizon, device_class, batch cadence) are pinned by the
  // snapshot's structural digest; policy fields (proactive_refresh_age,
  // life_improvement_per_decade) may differ between the saving run and a
  // resumed/branched run.
  SnapshotPlan snapshot;

  // Intra-run sharding (src/core/theseus_shard.cc). shards == 0 (default)
  // runs the serial engine — golden digests unchanged. shards > 0 splits
  // the fleet into contiguous column ranges advanced in parallel (sites
  // never interact, so there is no cross-shard traffic); results are
  // bit-identical across any shards/workers/window choice but differ from
  // the serial engine's event-order-dependent KaplanMeier observation
  // sequence. Snapshot checkpointing is not supported under sharding.
  ShardPlan shard;

  // Sampled time advance (src/sim/sampling.h, src/core/theseus_sampled.cc).
  // Default off runs the serial engine — golden digests unchanged. When
  // sampling.mode == kSampled the run alternates measured detailed windows
  // with analytic fast-forward and reports paper metrics with confidence
  // intervals. Mutually exclusive with sharding.
  SamplingPlan sampling;

  // Actionable diagnostics (empty = valid); RunCenturyScenario fails
  // fast on any diagnostic instead of running silently to garbage.
  std::vector<std::string> Validate() const;
};

struct CenturyReport {
  double mean_availability = 0.0;       // Time-averaged fleet availability.
  double min_yearly_availability = 1.0;
  std::vector<double> yearly_availability;  // One entry per year.
  uint64_t total_failures = 0;
  uint64_t total_replacements = 0;
  uint64_t proactive_replacements = 0;
  uint64_t units_deployed = 0;          // Across all generations.
  KaplanMeier unit_survival;
  double max_unit_generations = 0.0;    // Highest generation count a site saw.
  uint64_t events_executed = 0;

  // Checkpoint accounting (excluded from parity digests).
  double restore_seconds = 0.0;         // 0 when the run started fresh.
  double save_seconds = 0.0;            // Total across checkpoints written.
  uint32_t checkpoints_written = 0;
  uint64_t last_checkpoint_bytes = 0;
  std::string last_checkpoint_path;

  // Sampled-engine accounting (all zero/default under the serial engine).
  bool sampled = false;
  uint32_t windows_measured = 0;
  int64_t sim_skipped_us = 0;           // Span covered by fast-forward.
  bool ci_converged = false;            // Every tracked metric met ci_target.
  std::vector<MetricCi> metric_cis;     // Per-metric window-mean intervals.
};

// Dispatches to the sampled engine when config.sampling.enabled() and to
// the sharded engine when config.shard.enabled().
CenturyReport RunCenturyScenario(const CenturyConfig& config);

// The sharded engine directly (config.shard.shards must be > 0).
CenturyReport RunShardedCenturyScenario(const CenturyConfig& config);

// The sampled engine directly (config.sampling.mode must be kSampled).
// Alternates measured detailed windows with analytic fast-forward
// (src/core/theseus_sampled.cc); per-entity keyed lifetime draws make the
// trajectory reproducible regardless of window placement, and checkpoints
// cut at window barriers restore into either engine.
CenturyReport RunSampledCenturyScenario(const CenturyConfig& config);

}  // namespace centsim

#endif  // SRC_CORE_THESEUS_H_
