#include "src/core/hierarchy.h"

#include <cmath>

namespace centsim {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kDevice:
      return "device";
    case Tier::kAccessChannel:
      return "access-channel";
    case Tier::kGateway:
      return "gateway";
    case Tier::kBackhaul:
      return "backhaul";
    case Tier::kCloud:
      return "cloud";
  }
  return "?";
}

Tier TierForOutcome(DeliveryOutcome outcome) {
  switch (outcome) {
    case DeliveryOutcome::kDelivered:
    case DeliveryOutcome::kNoEnergy:
    case DeliveryOutcome::kDutyCycleDeferred:
    case DeliveryOutcome::kCadBusy:  // The device chose not to transmit.
      return Tier::kDevice;
    case DeliveryOutcome::kNoGatewayInRange:
    case DeliveryOutcome::kPhyLoss:
    case DeliveryOutcome::kCollision:
      return Tier::kAccessChannel;
    case DeliveryOutcome::kGatewayDown:
    case DeliveryOutcome::kBlocklisted:
    case DeliveryOutcome::kNoCredits:
      return Tier::kGateway;
    case DeliveryOutcome::kBackhaulDown:
      return Tier::kBackhaul;
    case DeliveryOutcome::kEndpointDown:
      return Tier::kCloud;
  }
  return Tier::kDevice;
}

double EndToEndAvailability(const TierAvailability& a, const FanoutSpec& fanout) {
  auto redundant = [](double avail, uint32_t r) {
    return 1.0 - std::pow(1.0 - avail, static_cast<double>(r < 1 ? 1 : r));
  };
  return a.device * a.access * redundant(a.gateway, fanout.redundancy_gateways) *
         redundant(a.backhaul, fanout.redundancy_backhauls) * a.cloud;
}

uint64_t BlastRadius(Tier tier, const FanoutSpec& fanout) {
  switch (tier) {
    case Tier::kDevice:
      return 1;
    case Tier::kAccessChannel:
      return 1;
    case Tier::kGateway:
      return fanout.devices_per_gateway;
    case Tier::kBackhaul:
      return static_cast<uint64_t>(fanout.devices_per_gateway) * fanout.gateways_per_backhaul;
    case Tier::kCloud:
      return static_cast<uint64_t>(fanout.devices_per_gateway) * fanout.gateways_per_backhaul;
  }
  return 0;
}

}  // namespace centsim
