// The deployment hierarchy of Figure 1: devices -> gateway -> backhaul ->
// cloud, with fan-out growing and lifetime variability shrinking as one
// moves up. This header gives the hierarchy an executable form: outcome ->
// tier attribution for end-to-end loss accounting, and an analytic rollup
// of per-tier availabilities into end-to-end availability.

#ifndef SRC_CORE_HIERARCHY_H_
#define SRC_CORE_HIERARCHY_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/net/packet.h"

namespace centsim {

enum class Tier : uint8_t {
  kDevice = 0,         // The edge node itself (energy, hardware).
  kAccessChannel = 1,  // The wireless hop (range, PHY, collisions).
  kGateway = 2,
  kBackhaul = 3,
  kCloud = 4,
};
inline constexpr int kTierCount = 5;

const char* TierName(Tier tier);

// Which tier is charged with a failed delivery attempt.
Tier TierForOutcome(DeliveryOutcome outcome);

// Fan-out structure of Figure 1: each tier instance serves many instances
// of the tier below and relies on one or two instances of the tier above.
struct FanoutSpec {
  uint32_t devices_per_gateway = 1000;
  uint32_t gateways_per_backhaul = 1000;
  uint32_t redundancy_gateways = 1;   // Gateways reachable per device.
  uint32_t redundancy_backhauls = 1;  // Backhauls available per gateway.
};

// Per-tier availabilities composed into the end-to-end probability that a
// device's report reaches the cloud, honoring redundancy: a tier with r
// independent instances fails only if all r fail.
struct TierAvailability {
  double device = 0.99;
  double access = 0.98;
  double gateway = 0.95;
  double backhaul = 0.999;
  double cloud = 0.9999;
};

double EndToEndAvailability(const TierAvailability& a, const FanoutSpec& fanout);

// Devices affected when a single instance at `tier` dies (the Figure 1
// blast-radius reading: higher tiers strand more devices).
uint64_t BlastRadius(Tier tier, const FanoutSpec& fanout);

}  // namespace centsim

#endif  // SRC_CORE_HIERARCHY_H_
