// District-scale rollout scenario: the municipal composition of everything
// below the cloud tier. A district's sensor sites are deployed over real
// geometry; a gateway grid is planned from the radio range; devices fail
// on their hardware clocks and are replaced only by geographic batch
// projects (§1); gateways fail and are repaired by the municipal crew.
//
// The scored quantity is *service* availability — a site counts only while
// its device is alive AND at least one operational gateway covers it —
// which is how Figure 1's reliance structure shows up in a fleet metric:
// a dead gateway silences its whole cell no matter how healthy the
// devices are.

#ifndef SRC_CORE_DISTRICT_H_
#define SRC_CORE_DISTRICT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/shard_plan.h"
#include "src/core/theseus.h"
#include "src/mgmt/batch_project.h"
#include "src/sim/run_progress.h"
#include "src/sim/time.h"
#include "src/snapshot/snapshot_plan.h"

namespace centsim {

class MetricsRegistry;

struct DistrictConfig {
  uint64_t seed = 3;
  uint32_t device_count = 4000;
  double area_km2 = 25.0;
  uint32_t zone_grid = 4;  // Batch zones per side.
  SimTime horizon = SimTime::Years(50);
  // Gateway planning: grid spacing derived from this coverage range.
  double gateway_range_m = 900.0;
  SimTime gateway_repair_delay = SimTime::Days(14);
  // Device replacement rides the roadworks cadence.
  SimTime batch_cycle = SimTime::Years(8);
  DeviceClassKind device_class = DeviceClassKind::kEnergyHarvesting;

  // Optional external registry. When set, the run binds fleet-level gauges
  // (alive devices, covered sites) and per-class counters to it; the
  // `metrics` hook also makes district ensembles metrics-capable (see
  // src/sim/ensemble.h). Never per-device label cardinality.
  MetricsRegistry* metrics = nullptr;

  // Live run-control attachments (heartbeat progress, flight recorder,
  // stall-snapshot slot) — wired per replica by EnsembleRunner when a
  // status_dir is configured; inert by default.
  RunControlHooks control;

  // Checkpoint/restore plan (src/snapshot). Structural fields above (seed,
  // device_count, area_km2, zone_grid, horizon, gateway_range_m,
  // batch_cycle, device_class) are pinned by the snapshot's structural
  // digest; policy fields (gateway_repair_delay) may differ between the
  // saving run and a resumed/branched run.
  SnapshotPlan snapshot;

  // Intra-run sharding (src/core/district_shard.cc). shards == 0 (default)
  // runs the serial engine — golden digests unchanged. shards > 0 runs the
  // city across that many lanes with conservative windowed barriers;
  // results are bit-identical across any shards/workers/window choice, but
  // (by design) differ from the serial engine's: the sharded engine keys
  // per-entity RNG streams and integrates availability in integers so its
  // merge is order-free. Sharded snapshots use the "district-shard"
  // experiment tag and restore under any shard count.
  ShardPlan shard;

  // Sampled time advance (src/sim/sampling.h, src/core/district_sampled.cc).
  // Default off runs the serial engine — golden digests unchanged. When on,
  // the run alternates measured detailed windows with a heap-merged
  // fast-forward walk; like the sharded engine it keys per-entity RNG
  // streams, so results agree with the serial engine in distribution, not
  // bit-for-bit. Mutually exclusive with sharding; sampled district runs
  // restore from serial checkpoints but do not write checkpoints.
  SamplingPlan sampling;

  // Actionable diagnostics (empty = valid); RunDistrictScenario fails
  // fast on any diagnostic instead of running silently to garbage.
  std::vector<std::string> Validate() const;
};

struct DistrictReport {
  uint32_t gateway_count = 0;
  double initial_coverage = 0.0;          // Sites inside any gateway cell.
  double mean_device_availability = 0.0;  // Device alive.
  double mean_service_availability = 0.0; // Alive AND covered.
  double min_yearly_service = 1.0;
  std::vector<double> yearly_service;
  uint64_t device_failures = 0;
  uint64_t device_replacements = 0;
  uint64_t gateway_failures = 0;
  uint64_t gateway_repairs = 0;

  // Perf accounting (additive; excluded from parity digests).
  uint64_t events_executed = 0;
  double wall_seconds = 0.0;           // sim.RunUntil only.
  double build_seconds = 0.0;          // Geometry + fleet construction.
  double fleet_bytes_per_device = 0.0; // SoA column bytes per slot.

  // Checkpoint accounting (excluded from parity digests).
  double restore_seconds = 0.0;        // 0 when the run started fresh.
  double save_seconds = 0.0;           // Total across checkpoints written.
  uint32_t checkpoints_written = 0;
  uint64_t last_checkpoint_bytes = 0;
  std::string last_checkpoint_path;

  // Sampled-engine accounting (all zero/default under the serial engine).
  bool sampled = false;
  uint32_t windows_measured = 0;
  int64_t sim_skipped_us = 0;           // Span covered by fast-forward.
  bool ci_converged = false;            // Every tracked metric met ci_target.
  std::vector<MetricCi> metric_cis;     // Per-metric window-mean intervals.

  // Availability lost to the gateway tier rather than the devices.
  double CoverageLoss() const {
    return mean_device_availability - mean_service_availability;
  }
};

// Dispatches to the sampled engine when config.sampling.enabled() and to
// the sharded engine when config.shard.enabled().
DistrictReport RunDistrictScenario(const DistrictConfig& config);

// The sharded engine directly (config.shard.shards must be > 0).
DistrictReport RunShardedDistrictScenario(const DistrictConfig& config);

// The sampled engine directly (config.sampling.mode must be kSampled).
// Detailed windows run the device/gateway/visit events on the real
// scheduler; between windows a heap-merged walk advances the same
// transitions in global time order (src/core/district_sampled.cc).
DistrictReport RunSampledDistrictScenario(const DistrictConfig& config);

}  // namespace centsim

#endif  // SRC_CORE_DISTRICT_H_
