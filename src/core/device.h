// The edge device (paper §3.1, §4.1): an energy-harvesting, transmit-only
// sensor that expects no human attention during its operational lifetime.
//
// EdgeDevice is a thin facade over a DeviceFleet handle. All hot per-device
// state (alive flag, unit generation, deployment/failure timestamps, energy
// storage level, tx grant/deny tallies) lives in the fleet's
// struct-of-arrays columns; the facade keeps only the cold per-unit pieces
// (config with the per-device name, RNG stream, sensor model, signing key,
// delivery accounting) and the reporting schedule. Shared class data —
// radio parameters, load profile, storage chemistry, hardware BOM — is
// interned once per device class in the fleet.

#ifndef SRC_CORE_DEVICE_H_
#define SRC_CORE_DEVICE_H_

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "src/core/fleet.h"
#include "src/core/network_fabric.h"
#include "src/energy/energy_manager.h"
#include "src/net/commissioning.h"
#include "src/radio/lora.h"
#include "src/reliability/component.h"
#include "src/security/siphash.h"
#include "src/sim/inline_fn.h"
#include "src/sim/simulation.h"
#include "src/telemetry/sensors.h"

namespace centsim {

struct EdgeDeviceConfig {
  uint32_t id = 0;
  double x_m = 0.0;
  double y_m = 0.0;
  RadioTech tech = RadioTech::k802154;
  LoraConfig lora;
  // LoRaWAN receive class (ignored for 802.15.4). Class B units track the
  // medium's beacons (receive energy per beacon); class C units listen
  // continuously (sleep power floor = receiver listen power).
  LoraDeviceClass lora_class = LoraDeviceClass::kClassA;
  double tx_power_dbm = 0.0;       // 0 dBm for 802.15.4; 14 dBm for LoRa.
  SimTime report_interval = SimTime::Hours(1);
  uint32_t payload_bytes = 12;
  std::string vendor;              // Empty => standards-compliant.
  DeviceCoupling coupling = DeviceCoupling::kStandardsCompliant;
  SensorKind sensor_kind = SensorKind::kTemperature;
  std::string name = "dev";
};

// Builds a LoadProfile whose tx energy matches the configured radio.
LoadProfile LoadProfileFor(const EdgeDeviceConfig& config);

class EdgeDevice {
 public:
  // Small-buffer callable: failure callbacks capture a few references and
  // must not cost one heap allocation per deployed device.
  using FailureCallback = InlineFn<void(EdgeDevice&, SimTime)>;

  EdgeDevice(Simulation& sim, EdgeDeviceConfig config, NetworkFabric& fabric,
             DeviceFleet& fleet, EnergyManager energy, SeriesSystem hardware);
  ~EdgeDevice();
  EdgeDevice(const EdgeDevice&) = delete;
  EdgeDevice& operator=(const EdgeDevice&) = delete;

  // Powers the device on: draws a hardware lifetime, registers offered
  // load, and starts the reporting schedule at a random phase.
  void Deploy();

  // Installs a fresh unit at the same site (new hardware life, charged
  // storage). Used by the management layer after diagnose-and-replace.
  void ReplaceUnit();

  // Called when the hardware dies (after internal bookkeeping).
  void SetFailureCallback(FailureCallback cb) { on_failure_ = std::move(cb); }

  // Enables frame authentication: every report carries a truncated
  // SipHash tag under the device key derived from `batch_secret`. The key
  // is provisioned at manufacture and — the device being transmit-only —
  // can never be rotated (paper §4.1).
  void EnableSigning(const SipHashKey& batch_secret);
  bool signing_enabled() const { return device_key_.has_value(); }

  bool alive() const { return fleet_.alive(slot_); }
  SimTime deployed_at() const { return fleet_.deployed_at(slot_); }
  SimTime failed_at() const { return fleet_.failed_at(slot_); }
  uint32_t unit_generation() const { return fleet_.unit_generation(slot_); }

  const EdgeDeviceConfig& config() const { return config_; }
  // Fleet-column energy state, shaped like the old EnergyManager surface.
  FleetEnergyView energy() const { return FleetEnergyView(fleet_, slot_); }
  DeviceHandle handle() const { return handle_; }
  uint32_t device_class() const { return cls_; }
  uint64_t attempts() const { return attempts_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t OutcomeCount(DeliveryOutcome outcome) const {
    return outcomes_[static_cast<size_t>(outcome)];
  }

 private:
  void ScheduleHardwareFailure();
  void ScheduleNextReport(SimTime delay);
  void OnReportTimer();
  double PacketsPerHour() const { return 1.0 / config_.report_interval.ToHours(); }

  Simulation& sim_;
  EdgeDeviceConfig config_;
  NetworkFabric& fabric_;
  DeviceFleet& fleet_;
  DeviceHandle handle_ = kInvalidDeviceHandle;
  uint32_t slot_ = 0;
  uint32_t cls_ = 0;
  RandomStream rng_;
  FailureCallback on_failure_;
  SensorModel sensor_;
  std::optional<SipHashKey> device_key_;

  bool load_registered_ = false;
  bool beacon_registered_ = false;
  uint32_t sequence_ = 0;
  SimTime next_duty_allowed_;
  EventId report_event_ = kInvalidEventId;
  uint64_t attempts_ = 0;
  uint64_t delivered_ = 0;
  std::array<uint64_t, kDeliveryOutcomeCount> outcomes_{};
};

}  // namespace centsim

#endif  // SRC_CORE_DEVICE_H_
