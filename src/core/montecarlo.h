// Monte-Carlo sweeps over the 50-year experiment: the paper runs one
// physical instance; the simulator can run the counterfactual ensemble and
// report distributions instead of anecdotes (how often does the Helium
// path die? what is the p10 weekly uptime?).
//
// The heavy lifting lives in the generic EnsembleRunner
// (src/sim/ensemble.h); this header keeps the fifty-year-specific
// aggregate and a thin compatibility wrapper. Replica seeds are derived
// with DeriveReplicaSeed(base.seed, i) — SplitMix64 stream splitting, not
// the correlation-prone `base.seed + i` of earlier versions — so for a
// fixed base seed the ensemble is bit-identical at any thread count.

#ifndef SRC_CORE_MONTECARLO_H_
#define SRC_CORE_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "src/core/experiment_api.h"
#include "src/sim/stats.h"

namespace centsim {

struct FiftyYearEnsemble {
  uint32_t runs = 0;
  SampleSet weekly_uptime;
  SampleSet owned_path_uptime;
  SampleSet helium_path_uptime;
  SampleSet longest_gap_weeks;
  SummaryStats device_failures;
  SummaryStats gateway_failures;
  SummaryStats maintenance_hours;
  SummaryStats credits_spent;
  uint32_t runs_meeting_weekly_goal = 0;   // Weekly uptime >= threshold.
  uint32_t runs_helium_path_died = 0;      // Helium path uptime < 50%.

  double GoalProbability() const {
    return runs > 0 ? static_cast<double>(runs_meeting_weekly_goal) / runs : 0.0;
  }
  double HeliumDeathProbability() const {
    return runs > 0 ? static_cast<double>(runs_helium_path_died) / runs : 0.0;
  }
};

// Folds an ordered set of replica reports into the ensemble aggregate.
// `weekly_goal` scores the paper's success criterion. Reports must be in
// replica-index order for reproducible SampleSet contents.
FiftyYearEnsemble AggregateFiftyYear(
    const std::vector<EnsembleRunner<FiftyYearExperiment>::Replica>& replicas,
    double weekly_goal = 0.95);

// Compatibility wrapper over EnsembleRunner<FiftyYearExperiment>: runs
// `runs` replicas with stream-split seeds derived from base.seed across
// `threads` workers (0 = hardware concurrency) and aggregates them. For a
// fixed base seed the output is bit-identical at any thread count.
FiftyYearEnsemble SweepFiftyYear(FiftyYearConfig base, uint32_t runs,
                                 double weekly_goal = 0.95, uint32_t threads = 1);

}  // namespace centsim

#endif  // SRC_CORE_MONTECARLO_H_
