// Monte-Carlo sweeps over the 50-year experiment: the paper runs one
// physical instance; the simulator can run the counterfactual ensemble and
// report distributions instead of anecdotes (how often does the Helium
// path die? what is the p10 weekly uptime?).

#ifndef SRC_CORE_MONTECARLO_H_
#define SRC_CORE_MONTECARLO_H_

#include <cstdint>

#include "src/core/experiment.h"
#include "src/sim/stats.h"

namespace centsim {

struct FiftyYearEnsemble {
  uint32_t runs = 0;
  SampleSet weekly_uptime;
  SampleSet owned_path_uptime;
  SampleSet helium_path_uptime;
  SampleSet longest_gap_weeks;
  SummaryStats device_failures;
  SummaryStats gateway_failures;
  SummaryStats maintenance_hours;
  SummaryStats credits_spent;
  uint32_t runs_meeting_weekly_goal = 0;   // Weekly uptime >= threshold.
  uint32_t runs_helium_path_died = 0;      // Helium path uptime < 50%.

  double GoalProbability() const {
    return runs > 0 ? static_cast<double>(runs_meeting_weekly_goal) / runs : 0.0;
  }
  double HeliumDeathProbability() const {
    return runs > 0 ? static_cast<double>(runs_helium_path_died) / runs : 0.0;
  }
};

// Runs the experiment for seeds base.seed, base.seed+1, ..., collecting
// the ensemble. `weekly_goal` scores the paper's success criterion.
FiftyYearEnsemble SweepFiftyYear(FiftyYearConfig base, uint32_t runs,
                                 double weekly_goal = 0.95);

}  // namespace centsim

#endif  // SRC_CORE_MONTECARLO_H_
