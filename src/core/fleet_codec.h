// Byte codec for DeviceFleet::SlotState — shared by every fleet-backed
// driver's checkpoint chunks. 13 fields, 85 bytes per slot, encoded in
// declaration order.

#ifndef SRC_CORE_FLEET_CODEC_H_
#define SRC_CORE_FLEET_CODEC_H_

#include "src/core/fleet.h"
#include "src/snapshot/bytes.h"

namespace centsim {

inline void EncodeFleetSlot(const DeviceFleet::SlotState& s, ByteWriter& w) {
  w.U8(s.alive);
  w.U32(s.handle_generation);
  w.U32(s.unit_generation);
  w.I64(s.deployed_at_us);
  w.I64(s.failed_at_us);
  w.I64(s.deadline_us);
  w.U32(s.covering);
  w.F64(s.charge_j);
  w.F64(s.capacity_now_j);
  w.I64(s.energy_last_update_us);
  w.I64(s.energy_last_advance_us);
  w.U64(s.tx_granted);
  w.U64(s.tx_denied);
}

inline DeviceFleet::SlotState DecodeFleetSlot(ByteReader& r) {
  DeviceFleet::SlotState s;
  s.alive = r.U8();
  s.handle_generation = r.U32();
  s.unit_generation = r.U32();
  s.deployed_at_us = r.I64();
  s.failed_at_us = r.I64();
  s.deadline_us = r.I64();
  s.covering = r.U32();
  s.charge_j = r.F64();
  s.capacity_now_j = r.F64();
  s.energy_last_update_us = r.I64();
  s.energy_last_advance_us = r.I64();
  s.tx_granted = r.U64();
  s.tx_denied = r.U64();
  return s;
}

}  // namespace centsim

#endif  // SRC_CORE_FLEET_CODEC_H_
