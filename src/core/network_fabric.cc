#include "src/core/network_fabric.h"

#include <algorithm>
#include <cmath>

#include "src/radio/medium.h"
#include "src/radio/phy_802154.h"

namespace centsim {
namespace {

uint64_t LinkSeed(uint64_t sim_seed, uint32_t device_id, uint32_t gateway_id) {
  uint64_t sm = sim_seed ^ (static_cast<uint64_t>(device_id) << 32) ^ gateway_id;
  return SplitMix64(sm);
}

}  // namespace

NetworkFabric::NetworkFabric(Simulation& sim)
    : sim_(sim),
      pl_802154_(PathLossModel::Urban24GHz()),
      pl_lora_(PathLossModel::Urban915MHz()) {
  for (size_t t = 0; t < outcome_metrics_.size(); ++t) {
    const char* tech = RadioTechName(static_cast<RadioTech>(t));
    for (int i = 0; i < kDeliveryOutcomeCount; ++i) {
      outcome_metrics_[t][i] = sim_.MetricCounter(
          "uplink.outcomes",
          MetricLabels{{"tech", tech},
                       {"outcome", DeliveryOutcomeName(static_cast<DeliveryOutcome>(i))}});
    }
  }
}

void NetworkFabric::SetPathLoss(RadioTech tech, PathLossModel model) {
  if (tech == RadioTech::k802154) {
    pl_802154_ = model;
  } else {
    pl_lora_ = model;
  }
}

void NetworkFabric::AddGateway(Gateway* gateway) { gateways_.push_back(gateway); }

void NetworkFabric::AddOfferedLoad(RadioTech tech, double packets_per_hour) {
  (tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_) += packets_per_hour;
}

void NetworkFabric::RemoveOfferedLoad(RadioTech tech, double packets_per_hour) {
  double& load = tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_;
  load = std::max(0.0, load - packets_per_hour);
}

double NetworkFabric::OfferedLoadHz(RadioTech tech) const {
  return (tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_) / 3600.0;
}

double NetworkFabric::RxPowerDbm(const Gateway& gw, const UplinkPacket& packet,
                                 const UplinkParams& params) const {
  const PathLossModel& pl = packet.tech == RadioTech::k802154 ? pl_802154_ : pl_lora_;
  const double dx = params.x_m - gw.config().x_m;
  const double dy = params.y_m - gw.config().y_m;
  const double dist = std::sqrt(dx * dx + dy * dy);
  LinkBudget lb;
  lb.tx_power_dbm = params.tx_power_dbm;
  lb.tx_antenna_gain_db = 0.0;
  lb.rx_antenna_gain_db = gw.config().rx_antenna_gain_db;
  lb.path_loss_db = pl.LinkLossDb(dist, LinkSeed(sim_.seed(), packet.device_id, gw.config().id));
  return lb.ReceivedPowerDbm();
}

DeliveryOutcome NetworkFabric::AttemptUplink(const UplinkPacket& packet,
                                             const UplinkParams& params, RandomStream& rng) {
  ++attempts_;
  auto finish = [&](DeliveryOutcome outcome) {
    ++outcome_counts_[static_cast<size_t>(outcome)];
    MetricInc(outcome_metrics_[static_cast<size_t>(packet.tech)][static_cast<size_t>(outcome)]);
    return outcome;
  };

  // --- Access channel: who can hear this frame at all? ---
  struct Candidate {
    Gateway* gw;
    double rx_dbm;
  };
  std::vector<Candidate> reachable;
  for (Gateway* gw : gateways_) {
    if (gw->config().tech != packet.tech) {
      continue;
    }
    const double rx = RxPowerDbm(*gw, packet, params);
    const double sens = packet.tech == RadioTech::k802154
                            ? Phy802154::kSensitivityDbm
                            : LoraPhy::SensitivityDbm(params.lora.sf, params.lora.bandwidth_hz);
    if (rx >= sens - 3.0) {  // Keep marginal links; PER handles the edge.
      reachable.push_back({gw, rx});
    }
  }
  if (reachable.empty()) {
    return finish(DeliveryOutcome::kNoGatewayInRange);
  }
  std::sort(reachable.begin(), reachable.end(),
            [](const Candidate& a, const Candidate& b) { return a.rx_dbm > b.rx_dbm; });

  // --- Collision: one draw per attempt (interferers are common-mode). ---
  const double load_hz = OfferedLoadHz(packet.tech);
  double p_no_collision = 1.0;
  if (packet.tech == RadioTech::k802154) {
    const SimTime airtime = Phy802154::Airtime(packet.payload_bytes);
    p_no_collision = CsmaModel::SuccessProbability(load_hz, airtime);
  } else {
    const SimTime airtime = LoraPhy::Airtime(params.lora, packet.payload_bytes);
    p_no_collision = AlohaModel::SuccessProbability(load_hz, airtime);
  }
  const bool collided = !rng.NextBool(p_no_collision);

  // --- Per-gateway reception + forwarding, strongest first. ---
  // LoRaWAN-with-server mode: every hearing gateway forwards its copy and
  // is charged for it; the network server dedups to the endpoint.
  const bool server_mode = network_server_ != nullptr && packet.tech == RadioTech::kLoRa;
  bool server_delivered = false;
  bool any_phy_received = false;
  DeliveryOutcome last_gateway_outcome = DeliveryOutcome::kGatewayDown;
  for (const Candidate& cand : reachable) {
    double per = 1.0;
    if (packet.tech == RadioTech::k802154) {
      const double noise = NoiseFloorDbm(Phy802154::kBandwidthHz, Phy802154::kNoiseFigureDb);
      per = Phy802154::PacketErrorRate(cand.rx_dbm - noise, packet.payload_bytes);
    } else {
      per = LoraPhy::PacketErrorRate(params.lora.sf, cand.rx_dbm, params.lora.bandwidth_hz);
    }
    if (rng.NextBool(per)) {
      continue;  // This gateway missed the frame.
    }
    if (collided) {
      // Capture: the strongest candidate may survive a collision.
      const bool captures = cand.gw == reachable.front().gw &&
                            rng.NextBool(0.5);  // Even odds vs a peer frame.
      if (!captures) {
        continue;
      }
    }
    any_phy_received = true;
    const DeliveryOutcome outcome = cand.gw->Accept(packet, params.vendor);
    if (outcome == DeliveryOutcome::kDelivered) {
      if (server_mode) {
        // The gateway's backhaul carried the copy to the network server;
        // the server dedups and records exactly one copy.
        const auto ingest = network_server_->Ingest(packet, cand.gw->config().id, cand.rx_dbm,
                                                    sim_.Now());
        if (ingest.first_copy) {
          server_delivered = endpoint_ == nullptr || endpoint_->operational();
        }
        continue;  // Remaining witnesses still forward (and pay).
      }
      if (endpoint_ == nullptr || !endpoint_->Record(packet, sim_.Now())) {
        return finish(DeliveryOutcome::kEndpointDown);
      }
      return finish(DeliveryOutcome::kDelivered);
    }
    last_gateway_outcome = outcome;
  }

  if (server_delivered) {
    return finish(DeliveryOutcome::kDelivered);
  }
  if (server_mode && network_server_ != nullptr && any_phy_received &&
      endpoint_ != nullptr && !endpoint_->operational()) {
    return finish(DeliveryOutcome::kEndpointDown);
  }
  if (any_phy_received) {
    return finish(last_gateway_outcome);
  }
  return finish(collided ? DeliveryOutcome::kCollision : DeliveryOutcome::kPhyLoss);
}

std::array<uint64_t, kTierCount> NetworkFabric::TierAttribution() const {
  std::array<uint64_t, kTierCount> tiers{};
  for (int i = 0; i < kDeliveryOutcomeCount; ++i) {
    const auto outcome = static_cast<DeliveryOutcome>(i);
    if (outcome == DeliveryOutcome::kDelivered) {
      continue;
    }
    tiers[static_cast<size_t>(TierForOutcome(outcome))] += outcome_counts_[i];
  }
  return tiers;
}

}  // namespace centsim
