#include "src/core/network_fabric.h"

#include <algorithm>
#include <cmath>

#include "src/radio/medium.h"
#include "src/radio/phy_802154.h"

namespace centsim {
namespace {

// Medium-owned timer tags (TimerTable re-arm registry).
constexpr uint64_t kMediumBeaconTag = 0x4D45442E42434Eull;  // "MED.BCN"
constexpr uint64_t kMediumCadTag = 0x4D45442E434144ull;     // "MED.CAD"

}  // namespace

NetworkFabric::NetworkFabric(Simulation& sim)
    : sim_(sim),
      pl_802154_(PathLossModel::Urban24GHz()),
      pl_lora_(PathLossModel::Urban915MHz()) {
  // Pre-create only the legacy outcomes: their creation order is pinned by
  // the golden digests. Outcomes appended later (kCadBusy) are created
  // lazily on first increment, so default runs emit byte-identical
  // metric files.
  for (size_t t = 0; t < outcome_metrics_.size(); ++t) {
    const char* tech = RadioTechName(static_cast<RadioTech>(t));
    for (int i = 0; i < kLegacyDeliveryOutcomeCount; ++i) {
      outcome_metrics_[t][i] = sim_.MetricCounter(
          "uplink.outcomes",
          MetricLabels{{"tech", tech},
                       {"outcome", DeliveryOutcomeName(static_cast<DeliveryOutcome>(i))}});
    }
  }
}

void NetworkFabric::SetPathLoss(RadioTech tech, PathLossModel model) {
  if (tech == RadioTech::k802154) {
    pl_802154_ = model;
  } else {
    pl_lora_ = model;
  }
}

void NetworkFabric::AddGateway(Gateway* gateway) {
  gateways_.push_back(gateway);
  capture_ewma_mw_.push_back(0.0);
  gw_grid_dirty_ = true;
}

void NetworkFabric::ConfigureMedium(const MediumConfig& config) {
  medium_ = config;
  gw_grid_dirty_ = true;
}

void NetworkFabric::RebuildGridIfNeeded() {
  if (!gw_grid_dirty_) {
    return;
  }
  std::vector<double> gx;
  std::vector<double> gy;
  gx.reserve(gateways_.size());
  gy.reserve(gateways_.size());
  for (const Gateway* gw : gateways_) {
    gx.push_back(gw->config().x_m);
    gy.push_back(gw->config().y_m);
  }
  gw_grid_ = GatewayCellGrid(gx, gy, medium_.grid_cell_m);
  gw_grid_dirty_ = false;
}

void NetworkFabric::AddOfferedLoad(RadioTech tech, double packets_per_hour) {
  (tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_) += packets_per_hour;
}

void NetworkFabric::RemoveOfferedLoad(RadioTech tech, double packets_per_hour) {
  double& load = tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_;
  load = std::max(0.0, load - packets_per_hour);
}

void NetworkFabric::AddOfferedLoadAt(RadioTech tech, double packets_per_hour, double x_m,
                                     double y_m) {
  AddOfferedLoad(tech, packets_per_hour);
  const int64_t cx = static_cast<int64_t>(std::floor(x_m / medium_.grid_cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(y_m / medium_.grid_cell_m));
  cell_pph_[static_cast<size_t>(tech)][LoadCellKey(cx, cy)] += packets_per_hour;
}

void NetworkFabric::RemoveOfferedLoadAt(RadioTech tech, double packets_per_hour, double x_m,
                                        double y_m) {
  RemoveOfferedLoad(tech, packets_per_hour);
  const int64_t cx = static_cast<int64_t>(std::floor(x_m / medium_.grid_cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(y_m / medium_.grid_cell_m));
  auto& cells = cell_pph_[static_cast<size_t>(tech)];
  auto it = cells.find(LoadCellKey(cx, cy));
  if (it != cells.end()) {
    it->second = std::max(0.0, it->second - packets_per_hour);
  }
}

double NetworkFabric::OfferedLoadHz(RadioTech tech) const {
  return (tech == RadioTech::k802154 ? offered_pph_802154_ : offered_pph_lora_) / 3600.0;
}

double NetworkFabric::LocalOfferedLoadHz(RadioTech tech, double x_m, double y_m) const {
  if (!medium_.grid_buckets) {
    return OfferedLoadHz(tech);
  }
  const auto& cells = cell_pph_[static_cast<size_t>(tech)];
  const int64_t cx = static_cast<int64_t>(std::floor(x_m / medium_.grid_cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(y_m / medium_.grid_cell_m));
  double pph = 0.0;
  for (int64_t dy = -1; dy <= 1; ++dy) {
    for (int64_t dx = -1; dx <= 1; ++dx) {
      auto it = cells.find(LoadCellKey(cx + dx, cy + dy));
      if (it != cells.end()) {
        pph += it->second;
      }
    }
  }
  return pph / 3600.0;
}

double NetworkFabric::RxPowerDbm(const Gateway& gw, const UplinkPacket& packet,
                                 const UplinkParams& params) const {
  const PathLossModel& pl = packet.tech == RadioTech::k802154 ? pl_802154_ : pl_lora_;
  const double dx = params.x_m - gw.config().x_m;
  const double dy = params.y_m - gw.config().y_m;
  const double dist = std::sqrt(dx * dx + dy * dy);
  LinkBudget lb;
  lb.tx_power_dbm = params.tx_power_dbm;
  lb.tx_antenna_gain_db = 0.0;
  lb.rx_antenna_gain_db = gw.config().rx_antenna_gain_db;
  lb.path_loss_db =
      pl.LinkLossDb(dist, RadioLinkSeed(sim_.seed(), packet.device_id, gw.config().id));
  return lb.ReceivedPowerDbm();
}

DeliveryReport NetworkFabric::Offer(const TxRequest& request, RandomStream& rng) {
  const UplinkPacket& packet = request.packet;
  const UplinkParams& params = request.params;
  ++attempts_;
  DeliveryReport report;
  auto finish = [&](DeliveryOutcome outcome) {
    const size_t idx = static_cast<size_t>(outcome);
    ++outcome_counts_[idx];
    Counter*& metric = outcome_metrics_[static_cast<size_t>(packet.tech)][idx];
    if (metric == nullptr && idx >= static_cast<size_t>(kLegacyDeliveryOutcomeCount)) {
      metric = sim_.MetricCounter(
          "uplink.outcomes",
          MetricLabels{{"tech", RadioTechName(packet.tech)},
                       {"outcome", DeliveryOutcomeName(outcome)}});
    }
    MetricInc(metric);
    report.outcome = outcome;
    return report;
  };

  const PhyModel phy = PhyModel::For(packet.tech, params.lora);

  // --- Channel-activity detection (opt-in, LoRa): listen-before-talk. ---
  // The polite device scans for a co-channel preamble and defers when the
  // neighborhood (grid on) or the whole network (grid off) is loud.
  if (medium_.cad && packet.tech == RadioTech::kLoRa) {
    const double load_hz = LocalOfferedLoadHz(packet.tech, params.x_m, params.y_m);
    const double airtime_s = phy.Airtime(packet.payload_bytes).ToSeconds();
    const double p_idle = std::exp(-load_hz * airtime_s);
    if (!rng.NextBool(p_idle)) {
      return finish(DeliveryOutcome::kCadBusy);
    }
  }

  // --- Access channel: who can hear this frame at all? ---
  struct Candidate {
    Gateway* gw;
    uint32_t index;  // Position in gateways_ (EWMA column).
    double rx_dbm;
  };
  std::vector<Candidate> reachable;
  const double sens = phy.SensitivityDbm();
  auto scan = [&](uint32_t index) {
    Gateway* gw = gateways_[index];
    if (gw->config().tech != packet.tech) {
      return;
    }
    const double rx = RxPowerDbm(*gw, packet, params);
    if (rx >= sens - 3.0) {  // Keep marginal links; PER handles the edge.
      reachable.push_back({gw, index, rx});
    }
  };
  if (medium_.grid_buckets) {
    RebuildGridIfNeeded();
    gw_grid_.ForNeighbors(params.x_m, params.y_m, scan);
  } else {
    for (uint32_t index = 0; index < gateways_.size(); ++index) {
      scan(index);
    }
  }
  if (reachable.empty()) {
    return finish(DeliveryOutcome::kNoGatewayInRange);
  }
  std::sort(reachable.begin(), reachable.end(),
            [](const Candidate& a, const Candidate& b) { return a.rx_dbm > b.rx_dbm; });

  // --- Collision: one draw per attempt (interferers are common-mode). ---
  const double load_hz = medium_.grid_buckets
                             ? LocalOfferedLoadHz(packet.tech, params.x_m, params.y_m)
                             : OfferedLoadHz(packet.tech);
  const double p_no_collision =
      phy.ContentionSuccessProbability(load_hz, packet.payload_bytes);
  const bool collided = !rng.NextBool(p_no_collision);

  // --- Per-gateway reception + forwarding, strongest first. ---
  // LoRaWAN-with-server mode: every hearing gateway forwards its copy and
  // is charged for it; the network server dedups to the endpoint.
  const bool server_mode = network_server_ != nullptr && packet.tech == RadioTech::kLoRa;
  bool server_delivered = false;
  bool any_phy_received = false;
  DeliveryOutcome last_gateway_outcome = DeliveryOutcome::kGatewayDown;
  auto note_reception = [&](const Candidate& cand, bool via_capture) {
    ++report.witnesses;
    if (report.witnesses == 1) {
      report.gateway_id = cand.gw->config().id;
      report.rssi_dbm = cand.rx_dbm;
      report.snr_db = phy.SnrDb(cand.rx_dbm);
      report.captured = via_capture;
    }
  };
  for (const Candidate& cand : reachable) {
    // Running ambient-power estimate per gateway: every arriving frame
    // nudges the EWMA the SIR capture test reads. Sampled before this
    // frame's own contribution lands.
    double ambient_mw = 0.0;
    if (medium_.sir_capture) {
      double& ewma = capture_ewma_mw_[cand.index];
      ambient_mw = ewma;
      ewma += (DbmToMilliwatts(cand.rx_dbm) - ewma) / 16.0;
    }
    const double per = phy.PacketErrorRate(cand.rx_dbm, packet.payload_bytes);
    if (rng.NextBool(per)) {
      continue;  // This gateway missed the frame.
    }
    if (collided) {
      // Capture: the strongest candidate may survive a collision.
      bool captures;
      if (medium_.sir_capture) {
        // Deterministic SIR test: survive iff this frame clears the
        // gateway's ambient interference estimate by the margin. An idle
        // band (ambient 0 => -inf dBm) always captures.
        captures = cand.gw == reachable.front().gw &&
                   cand.rx_dbm - MilliwattsToDbm(ambient_mw) >= medium_.capture_margin_db;
      } else {
        captures = cand.gw == reachable.front().gw &&
                   rng.NextBool(0.5);  // Even odds vs a peer frame.
      }
      if (!captures) {
        continue;
      }
    }
    any_phy_received = true;
    note_reception(cand, collided);
    const DeliveryOutcome outcome = cand.gw->Accept(packet, params.vendor);
    if (outcome == DeliveryOutcome::kDelivered) {
      if (server_mode) {
        // The gateway's backhaul carried the copy to the network server;
        // the server dedups and records exactly one copy.
        const auto ingest = network_server_->Ingest(packet, cand.gw->config().id, cand.rx_dbm,
                                                    sim_.Now());
        if (ingest.first_copy) {
          server_delivered = endpoint_ == nullptr || endpoint_->operational();
        }
        continue;  // Remaining witnesses still forward (and pay).
      }
      if (endpoint_ == nullptr || !endpoint_->Record(packet, sim_.Now())) {
        return finish(DeliveryOutcome::kEndpointDown);
      }
      return finish(DeliveryOutcome::kDelivered);
    }
    last_gateway_outcome = outcome;
  }

  if (server_delivered) {
    return finish(DeliveryOutcome::kDelivered);
  }
  if (server_mode && network_server_ != nullptr && any_phy_received &&
      endpoint_ != nullptr && !endpoint_->operational()) {
    return finish(DeliveryOutcome::kEndpointDown);
  }
  if (any_phy_received) {
    return finish(last_gateway_outcome);
  }
  return finish(collided ? DeliveryOutcome::kCollision : DeliveryOutcome::kPhyLoss);
}

// --- Class B beacons / CAD retries -------------------------------------

void NetworkFabric::RegisterBeaconListener(DeviceHandle handle) {
  beacon_listeners_.push_back(handle);
}

void NetworkFabric::UnregisterBeaconListener(DeviceHandle handle) {
  auto it = std::find(beacon_listeners_.begin(), beacon_listeners_.end(), handle);
  if (it != beacon_listeners_.end()) {
    beacon_listeners_.erase(it);  // Stable: keeps charge order deterministic.
  }
}

void NetworkFabric::RegisterMediumTimers(TimerTable& timers, DeviceFleet* fleet) {
  timers_ = &timers;
  fleet_ = fleet;
  timers.Register(kMediumBeaconTag, [this](const TimerRecord& rec) {
    beacon_pending_ = false;  // The saved run's pending beacon becomes ours.
    ScheduleBeaconAt(SimTime::Micros(rec.at_us));
  });
  timers.Register(kMediumCadTag, [this](const TimerRecord& rec) {
    ScheduleCadRetry(SimTime::Micros(rec.at_us), rec.a);
  });
}

void NetworkFabric::StartClassBBeacons() {
  ScheduleBeaconAt(sim_.Now() + SimTime::Seconds(LoraPhy::kBeaconPeriodS));
}

void NetworkFabric::ScheduleBeaconAt(SimTime at) {
  if (timers_ == nullptr || beacon_pending_) {
    return;
  }
  beacon_pending_ = true;
  timers_->Schedule(at, kMediumBeaconTag, 0, 0, 0.0, [this] { OnBeaconTimer(); });
}

void NetworkFabric::OnBeaconTimer() {
  beacon_pending_ = false;
  ++beacons_sent_;
  if (fleet_ != nullptr) {
    for (DeviceHandle handle : beacon_listeners_) {
      if (!fleet_->IsLive(handle)) {
        continue;  // Stale handle: unit was removed.
      }
      const uint32_t slot = DeviceFleet::SlotOf(handle);
      if (!fleet_->alive(slot)) {
        continue;  // Dead hardware does not listen.
      }
      fleet_->EnergyConsumeAt(slot, sim_.Now(), LoraPhy::kBeaconRxEnergyJ);
    }
  }
  ScheduleBeaconAt(sim_.Now() + SimTime::Seconds(LoraPhy::kBeaconPeriodS));
}

void NetworkFabric::ScheduleCadRetry(SimTime at, uint64_t device_key) {
  if (timers_ == nullptr) {
    return;
  }
  timers_->Schedule(at, kMediumCadTag, device_key, 0, 0.0, [this, device_key] {
    if (cad_retry_handler_) {
      cad_retry_handler_(device_key);
    }
  });
}

// --- Medium snapshot state ----------------------------------------------

void NetworkFabric::SaveMediumState(ByteWriter& w) const {
  w.U32(1);  // Chunk version.
  w.U64(beacons_sent_);
  w.F64Vec(capture_ewma_mw_);
}

bool NetworkFabric::RestoreMediumState(ByteReader& r) {
  const uint32_t version = r.U32();
  if (version != 1) {
    r.Fail();
    return false;
  }
  beacons_sent_ = r.U64();
  capture_ewma_mw_ = r.F64Vec();
  // Gateways are rebuilt by the restoring driver before or after this
  // call; keep the EWMA column sized either way.
  capture_ewma_mw_.resize(gateways_.size(), 0.0);
  return r.ok();
}

std::array<uint64_t, kTierCount> NetworkFabric::TierAttribution() const {
  std::array<uint64_t, kTierCount> tiers{};
  for (int i = 0; i < kDeliveryOutcomeCount; ++i) {
    const auto outcome = static_cast<DeliveryOutcome>(i);
    if (outcome == DeliveryOutcome::kDelivered) {
      continue;
    }
    tiers[static_cast<size_t>(TierForOutcome(outcome))] += outcome_counts_[i];
  }
  return tiers;
}

}  // namespace centsim
