#include "src/core/fleet.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace centsim {
namespace {

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a|", v);  // Hexfloat: lossless, locale-free.
  out += buf;
}

void AppendInt(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64 "|", v);
  out += buf;
}

// Content key for class interning: every field that changes device
// behaviour, in a fixed order. Hardware hazard models are identified by
// their component class/name lists — the BOM factories produce value-equal
// hazards for equal names.
std::string InternKey(const DeviceClassSpec& spec) {
  std::string key;
  key.reserve(256);
  key += spec.name;
  key += '|';
  AppendInt(key, static_cast<int64_t>(spec.tech));
  AppendInt(key, static_cast<int64_t>(spec.lora.sf));
  AppendDouble(key, spec.lora.bandwidth_hz);
  AppendInt(key, spec.lora.coding_rate);
  AppendInt(key, spec.lora.preamble_symbols);
  AppendInt(key, spec.lora.explicit_header ? 1 : 0);
  AppendInt(key, spec.lora.low_data_rate_optimize_auto ? 1 : 0);
  AppendInt(key, spec.lora.crc_on ? 1 : 0);
  AppendDouble(key, spec.tx_power_dbm);
  AppendInt(key, spec.report_interval.micros());
  AppendInt(key, spec.payload_bytes);
  key += spec.vendor;
  key += '|';
  AppendInt(key, static_cast<int64_t>(spec.coupling));
  AppendInt(key, static_cast<int64_t>(spec.sensor_kind));
  AppendInt(key, static_cast<int64_t>(spec.rx_class));
  AppendDouble(key, spec.load.sleep_power_w);
  AppendDouble(key, spec.load.tx_energy_j);
  AppendDouble(key, spec.load.sense_energy_j);
  AppendDouble(key, spec.load.brownout_reserve_j);
  AppendDouble(key, spec.storage.capacity_j);
  AppendDouble(key, spec.storage.initial_fraction);
  AppendDouble(key, spec.storage.charge_efficiency);
  AppendDouble(key, spec.storage.self_discharge_per_day);
  AppendDouble(key, spec.storage.capacity_fade_per_year);
  key += spec.storage.name;
  key += '|';
  for (const auto& component : spec.hardware.components()) {
    AppendInt(key, static_cast<int64_t>(component.cls));
    key += component.name;
    key += '|';
  }
  return key;
}

}  // namespace

uint32_t DeviceFleet::InternClass(const DeviceClassSpec& spec) {
  const std::string key = InternKey(spec);
  auto it = class_index_.find(key);
  if (it != class_index_.end()) {
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(classes_.size());
  ClassRecord record;
  record.spec = spec;
  // Shared per-tech instruments, created in the order the per-device
  // constructors used to create them (metrics files preserve first-creation
  // order, so this order is part of the golden-digest contract).
  const MetricLabels labels{{"tech", RadioTechName(spec.tech)}};
  record.failures = sim_.MetricCounter("device.failures", labels);
  record.replacements = sim_.MetricCounter("device.replacements", labels);
  // tx_denied before tx_granted: the legacy BindMetrics call site evaluated
  // its arguments right-to-left, and metrics files preserve creation order.
  record.energy.denied = sim_.MetricCounter("energy.tx_denied", labels);
  record.energy.granted = sim_.MetricCounter("energy.tx_granted", labels);
  record.energy.harvest_j = sim_.MetricHistogram("energy.harvest_j", labels);
  if (fleet_metrics_enabled_) {
    BindFleetMetricsFor(record);
  }
  classes_.push_back(std::move(record));
  class_index_.emplace(key, id);
  return id;
}

void DeviceFleet::Reserve(size_t devices) {
  handle_gen_.reserve(devices);
  class_.reserve(devices);
  x_.reserve(devices);
  y_.reserve(devices);
  zone_.reserve(devices);
  alive_.reserve(devices);
  unit_gen_.reserve(devices);
  deployed_at_.reserve(devices);
  failed_at_.reserve(devices);
  deadline_.reserve(devices);
  failure_event_.reserve(devices);
  covering_.reserve(devices);
  energy_.reserve(devices);
  tx_.reserve(devices);
  harvester_.reserve(devices);
}

DeviceHandle DeviceFleet::Add(uint32_t cls, double x_m, double y_m, uint32_t zone,
                              const HarvesterModel& harvester) {
  uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<uint32_t>(handle_gen_.size());
    handle_gen_.push_back(1);
    class_.push_back(cls);
    x_.push_back(x_m);
    y_.push_back(y_m);
    zone_.push_back(zone);
    alive_.push_back(0);
    unit_gen_.push_back(0);
    deployed_at_.push_back(SimTime());
    failed_at_.push_back(SimTime());
    deadline_.push_back(SimTime());
    failure_event_.push_back(kInvalidEventId);
    covering_.push_back(0);
    energy_.push_back(EnergyColumn{EnergyStorage::InitialState(classes_[cls].spec.storage),
                                   SimTime()});
    tx_.push_back(EnergyCounters{});
    harvester_.push_back(harvester);
  } else {
    slot = free_.back();
    free_.pop_back();
    class_[slot] = cls;
    x_[slot] = x_m;
    y_[slot] = y_m;
    zone_[slot] = zone;
    alive_[slot] = 0;
    unit_gen_[slot] = 0;
    deployed_at_[slot] = SimTime();
    failed_at_[slot] = SimTime();
    deadline_[slot] = SimTime();
    failure_event_[slot] = kInvalidEventId;
    covering_[slot] = 0;
    energy_[slot] =
        EnergyColumn{EnergyStorage::InitialState(classes_[cls].spec.storage), SimTime()};
    tx_[slot] = EnergyCounters{};
    harvester_[slot] = harvester;
  }
  return Pack(slot, handle_gen_[slot]);
}

DeviceHandle DeviceFleet::AddSites(const DeploymentPlan& plan, uint32_t cls,
                                   const HarvesterModel& harvester) {
  DeviceHandle first = kInvalidDeviceHandle;
  Reserve(capacity() + plan.sites().size());
  for (const Site& site : plan.sites()) {
    const DeviceHandle h = Add(cls, site.x_m, site.y_m, site.zone, harvester);
    if (first == kInvalidDeviceHandle) {
      first = h;
    }
  }
  return first;
}

DeviceHandle DeviceFleet::AddSitesRange(const DeploymentPlan& plan, uint32_t cls,
                                        const HarvesterModel& harvester, uint32_t begin,
                                        uint32_t end) {
  DeviceHandle first = kInvalidDeviceHandle;
  Reserve(capacity() + (end - begin));
  for (uint32_t i = begin; i < end; ++i) {
    const Site& site = plan.sites()[i];
    const DeviceHandle h = Add(cls, site.x_m, site.y_m, site.zone, harvester);
    if (first == kInvalidDeviceHandle) {
      first = h;
    }
  }
  return first;
}

void DeviceFleet::Remove(DeviceHandle h) {
  if (!IsLive(h)) {
    return;
  }
  const uint32_t slot = SlotOf(h);
  if (alive_[slot] != 0) {
    alive_[slot] = 0;
    --alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
  if (covering_[slot] > 0) {
    covering_[slot] = 0;
    --covered_count_;
    MetricSet(covered_gauge_, static_cast<double>(covered_count_));
  }
  BumpGeneration(slot);
  free_.push_back(slot);
}

void DeviceFleet::DeployAt(uint32_t slot) {
  if (alive_[slot] == 0) {
    alive_[slot] = 1;
    ++alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
  ++unit_gen_[slot];
  deployed_at_[slot] = sim_.Now();
}

void DeviceFleet::MarkFailedAt(uint32_t slot) {
  if (alive_[slot] != 0) {
    alive_[slot] = 0;
    --alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
  failed_at_[slot] = sim_.Now();
  MetricInc(classes_[class_[slot]].failures);
  if (failure_hook_) {
    failure_hook_(Pack(slot, handle_gen_[slot]), sim_.Now());
  }
}

void DeviceFleet::RetireAt(uint32_t slot) {
  if (alive_[slot] != 0) {
    alive_[slot] = 0;
    --alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
}

void DeviceFleet::DeployAtTime(uint32_t slot, SimTime at) {
  if (alive_[slot] == 0) {
    alive_[slot] = 1;
    ++alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
  ++unit_gen_[slot];
  deployed_at_[slot] = at;
}

void DeviceFleet::MarkFailedAtTime(uint32_t slot, SimTime at) {
  if (alive_[slot] != 0) {
    alive_[slot] = 0;
    --alive_count_;
    MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  }
  failed_at_[slot] = at;
  MetricInc(classes_[class_[slot]].failures);
  if (failure_hook_) {
    failure_hook_(Pack(slot, handle_gen_[slot]), at);
  }
}

void DeviceFleet::CountReplacementAt(uint32_t slot) {
  ClassRecord& record = classes_[class_[slot]];
  ++record.replacement_count;
  MetricInc(record.replacements);
  MetricInc(record.fleet_replacements);
}

void DeviceFleet::AddCoveringAt(uint32_t slot, int delta) {
  uint32_t& count = covering_[slot];
  const bool was = count > 0;
  count = static_cast<uint32_t>(static_cast<int>(count) + delta);
  const bool is = count > 0;
  if (was != is) {
    if (is) {
      ++covered_count_;
    } else {
      --covered_count_;
    }
    MetricSet(covered_gauge_, static_cast<double>(covered_count_));
  }
}

void DeviceFleet::EnergyAdvanceTo(uint32_t slot, SimTime now) {
  const ClassRecord& record = classes_[class_[slot]];
  EnergyColumn& e = energy_[slot];
  EnergyOps::AdvanceTo(harvester_[slot], record.spec.storage, record.spec.load, e.storage,
                       e.last_advance, record.energy, now);
}

bool DeviceFleet::EnergyTryTransmit(uint32_t slot, SimTime now) {
  const ClassRecord& record = classes_[class_[slot]];
  EnergyColumn& e = energy_[slot];
  return EnergyOps::TryTransmit(harvester_[slot], record.spec.storage, record.spec.load,
                                e.storage, e.last_advance, tx_[slot], record.energy, now);
}

void DeviceFleet::EnergyConsumeAt(uint32_t slot, SimTime now, double joules) {
  EnergyAdvanceTo(slot, now);
  EnergyStorage::State& state = energy_[slot].storage;
  state.charge_j =
      std::min(std::max(state.charge_j - joules, 0.0), state.capacity_now_j);
}

FastForwardResult DeviceFleet::FastForwardEnergyAt(uint32_t slot, SimTime to) {
  const ClassRecord& record = classes_[class_[slot]];
  EnergyColumn& e = energy_[slot];
  return EnergyOps::FastForwardTo(harvester_[slot], record.spec.storage, record.spec.load,
                                  e.storage, e.last_advance, tx_[slot], record.energy, to,
                                  record.spec.report_interval);
}

FastForwardResult DeviceFleet::FastForwardEnergy(SimTime to) {
  FastForwardResult total;
  for (uint32_t slot = 0; slot < handle_gen_.size(); ++slot) {
    if (alive_[slot] == 0) {
      continue;
    }
    const FastForwardResult r = FastForwardEnergyAt(slot, to);
    total.harvested_j += r.harvested_j;
    total.attempts += r.attempts;
    total.granted += r.granted;
    total.denied += r.denied;
  }
  return total;
}

SimTime DeviceFleet::EstimateNextAffordableAt(uint32_t slot, SimTime now, double joules) const {
  const ClassRecord& record = classes_[class_[slot]];
  return EnergyOps::EstimateNextAffordable(harvester_[slot], record.spec.storage,
                                           record.spec.load, energy_[slot].storage, now, joules);
}

DeviceFleet::SlotState DeviceFleet::SaveSlotState(uint32_t slot) const {
  SlotState s;
  s.alive = alive_[slot];
  s.handle_generation = handle_gen_[slot];
  s.unit_generation = unit_gen_[slot];
  s.deployed_at_us = deployed_at_[slot].micros();
  s.failed_at_us = failed_at_[slot].micros();
  s.deadline_us = deadline_[slot].micros();
  s.covering = covering_[slot];
  s.charge_j = energy_[slot].storage.charge_j;
  s.capacity_now_j = energy_[slot].storage.capacity_now_j;
  s.energy_last_update_us = energy_[slot].storage.last_update.micros();
  s.energy_last_advance_us = energy_[slot].last_advance.micros();
  s.tx_granted = tx_[slot].tx_granted;
  s.tx_denied = tx_[slot].tx_denied;
  return s;
}

void DeviceFleet::RestoreSlotState(uint32_t slot, const SlotState& s) {
  alive_[slot] = s.alive;
  handle_gen_[slot] = s.handle_generation;
  unit_gen_[slot] = s.unit_generation;
  deployed_at_[slot] = SimTime::Micros(s.deployed_at_us);
  failed_at_[slot] = SimTime::Micros(s.failed_at_us);
  deadline_[slot] = SimTime::Micros(s.deadline_us);
  failure_event_[slot] = kInvalidEventId;  // Rebuilt by timer re-arm.
  covering_[slot] = s.covering;
  energy_[slot].storage.charge_j = s.charge_j;
  energy_[slot].storage.capacity_now_j = s.capacity_now_j;
  energy_[slot].storage.last_update = SimTime::Micros(s.energy_last_update_us);
  energy_[slot].last_advance = SimTime::Micros(s.energy_last_advance_us);
  tx_[slot].tx_granted = s.tx_granted;
  tx_[slot].tx_denied = s.tx_denied;
}

void DeviceFleet::RecountAggregates() {
  alive_count_ = 0;
  covered_count_ = 0;
  for (size_t slot = 0; slot < handle_gen_.size(); ++slot) {
    if (alive_[slot] != 0) {
      ++alive_count_;
    }
    if (covering_[slot] > 0) {
      ++covered_count_;
    }
  }
  MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  MetricSet(covered_gauge_, static_cast<double>(covered_count_));
}

void DeviceFleet::BindFleetMetricsFor(ClassRecord& record) {
  record.fleet_replacements =
      sim_.MetricCounter("fleet.replacements", {{"class", record.spec.name}});
}

void DeviceFleet::EnableFleetMetrics() {
  if (fleet_metrics_enabled_) {
    return;
  }
  fleet_metrics_enabled_ = true;
  alive_gauge_ = sim_.MetricGauge("fleet.alive_devices");
  covered_gauge_ = sim_.MetricGauge("fleet.covered_sites");
  MetricSet(alive_gauge_, static_cast<double>(alive_count_));
  MetricSet(covered_gauge_, static_cast<double>(covered_count_));
  for (ClassRecord& record : classes_) {
    BindFleetMetricsFor(record);
  }
}

size_t DeviceFleet::MemoryBytes() const {
  size_t bytes = 0;
  bytes += handle_gen_.capacity() * sizeof(uint32_t);
  bytes += class_.capacity() * sizeof(uint32_t);
  bytes += x_.capacity() * sizeof(double);
  bytes += y_.capacity() * sizeof(double);
  bytes += zone_.capacity() * sizeof(uint32_t);
  bytes += alive_.capacity() * sizeof(uint8_t);
  bytes += unit_gen_.capacity() * sizeof(uint32_t);
  bytes += deployed_at_.capacity() * sizeof(SimTime);
  bytes += failed_at_.capacity() * sizeof(SimTime);
  bytes += deadline_.capacity() * sizeof(SimTime);
  bytes += failure_event_.capacity() * sizeof(EventId);
  bytes += covering_.capacity() * sizeof(uint32_t);
  bytes += energy_.capacity() * sizeof(EnergyColumn);
  bytes += tx_.capacity() * sizeof(EnergyCounters);
  bytes += harvester_.capacity() * sizeof(HarvesterModel);
  bytes += free_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace centsim
