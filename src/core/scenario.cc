#include "src/core/scenario.h"

namespace centsim {

FiftyYearConfig FiftyYearConfigFrom(const Config& config) {
  FiftyYearConfig cfg;
  cfg.seed = static_cast<uint64_t>(config.GetInt("experiment.seed", static_cast<int64_t>(cfg.seed)));
  cfg.horizon = SimTime::Years(config.GetDouble("experiment.horizon_years", 50.0));
  cfg.area_side_m = config.GetDouble("experiment.area_side_m", cfg.area_side_m);

  cfg.devices_802154 =
      static_cast<uint32_t>(config.GetInt("devices.count_802154", cfg.devices_802154));
  cfg.devices_lora = static_cast<uint32_t>(config.GetInt("devices.count_lora", cfg.devices_lora));
  cfg.report_interval =
      SimTime::Hours(config.GetDouble("devices.report_interval_hours", 1.0));
  cfg.replace_failed_devices = config.GetBool("devices.replace_failed", true);
  cfg.device_replacement_delay =
      SimTime::Days(config.GetDouble("devices.replacement_delay_days", 30.0));

  cfg.owned_gateways = static_cast<uint32_t>(config.GetInt("gateways.owned", cfg.owned_gateways));
  cfg.helium_hotspots =
      static_cast<uint32_t>(config.GetInt("gateways.helium_hotspots", cfg.helium_hotspots));
  cfg.hotspot_replacement_prob =
      config.GetDouble("gateways.hotspot_replacement_prob", cfg.hotspot_replacement_prob);
  cfg.hotspot_replacement_mean =
      SimTime::Days(config.GetDouble("gateways.hotspot_replacement_days", 60.0));

  cfg.maintenance.enabled = config.GetBool("maintenance.enabled", true);
  cfg.maintenance.annual_budget_hours =
      config.GetDouble("maintenance.annual_budget_hours", cfg.maintenance.annual_budget_hours);
  cfg.maintenance.mean_response =
      SimTime::Days(config.GetDouble("maintenance.mean_response_days", 3.0));
  cfg.maintenance.mean_repair =
      SimTime::Hours(config.GetDouble("maintenance.mean_repair_hours", 3.0));

  cfg.wallet_usd_per_device =
      config.GetDouble("wallet.usd_per_device", cfg.wallet_usd_per_device);
  return cfg;
}

CenturyConfig CenturyConfigFrom(const Config& config) {
  CenturyConfig cfg;
  cfg.seed = static_cast<uint64_t>(config.GetInt("century.seed", static_cast<int64_t>(cfg.seed)));
  cfg.fleet_size = static_cast<uint32_t>(config.GetInt("century.fleet_size", cfg.fleet_size));
  cfg.horizon = SimTime::Years(config.GetDouble("century.horizon_years", 100.0));
  cfg.batch.zone_count =
      static_cast<uint32_t>(config.GetInt("century.zone_count", cfg.batch.zone_count));
  cfg.batch.cycle_period =
      SimTime::Years(config.GetDouble("century.cycle_period_years", 8.0));
  cfg.device_class = config.GetString("century.device_class", "harvesting") == "battery"
                         ? DeviceClassKind::kBatteryPowered
                         : DeviceClassKind::kEnergyHarvesting;
  const double refresh = config.GetDouble("century.proactive_refresh_age_years", 0.0);
  cfg.proactive_refresh_age = refresh > 0 ? SimTime::Years(refresh) : SimTime();
  cfg.life_improvement_per_decade =
      config.GetDouble("century.life_improvement_per_decade", 1.0);
  return cfg;
}

}  // namespace centsim
