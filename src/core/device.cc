#include "src/core/device.h"

#include <algorithm>

#include "src/radio/frame.h"
#include "src/security/report_auth.h"
#include "src/security/signing.h"
#include "src/radio/phy_802154.h"

namespace centsim {

LoadProfile LoadProfileFor(const EdgeDeviceConfig& config) {
  LoadProfile load;
  if (config.tech == RadioTech::k802154) {
    load.tx_energy_j =
        Phy802154::TxEnergyJoules(config.tx_power_dbm, config.payload_bytes) + 0.002;
  } else {
    load.tx_energy_j =
        LoraPhy::TxEnergyJoules(config.lora, config.tx_power_dbm, config.payload_bytes) + 0.002;
  }
  load.sleep_power_w = 2e-6;
  load.sense_energy_j = 0.002;
  load.brownout_reserve_j = 0.02;
  return load;
}

EdgeDevice::EdgeDevice(Simulation& sim, EdgeDeviceConfig config, NetworkFabric& fabric,
                       EnergyManager energy, SeriesSystem hardware)
    : sim_(sim),
      config_(std::move(config)),
      fabric_(fabric),
      energy_(std::move(energy)),
      hardware_(std::move(hardware)),
      rng_(sim.StreamFor(0x6465760000000000ULL ^ config_.id)),
      sensor_(config_.sensor_kind, sim.seed() ^ (0x53454e53ULL << 16) ^ config_.id) {
  const MetricLabels labels{{"tech", RadioTechName(config_.tech)}};
  failures_metric_ = sim_.MetricCounter("device.failures", labels);
  replacements_metric_ = sim_.MetricCounter("device.replacements", labels);
  energy_.BindMetrics(sim_.MetricCounter("energy.tx_granted", labels),
                      sim_.MetricCounter("energy.tx_denied", labels),
                      sim_.MetricHistogram("energy.harvest_j", labels));
}

void EdgeDevice::EnableSigning(const SipHashKey& batch_secret) {
  device_key_ = DeriveDeviceKey(batch_secret, config_.id);
}

EdgeDevice::~EdgeDevice() {
  if (load_registered_) {
    fabric_.RemoveOfferedLoad(config_.tech, PacketsPerHour());
  }
}

void EdgeDevice::Deploy() {
  alive_ = true;
  deployed_at_ = sim_.Now();
  ++generation_;
  if (!load_registered_) {
    fabric_.AddOfferedLoad(config_.tech, PacketsPerHour());
    load_registered_ = true;
  }
  ScheduleHardwareFailure();
  // Random phase so fleets do not synchronize.
  ScheduleNextReport(
      SimTime::Seconds(rng_.Uniform(0.0, config_.report_interval.ToSeconds())));
}

void EdgeDevice::ReplaceUnit() {
  if (failure_event_ != kInvalidEventId) {
    sim_.scheduler().Cancel(failure_event_);
    failure_event_ = kInvalidEventId;
  }
  alive_ = true;
  ++generation_;
  deployed_at_ = sim_.Now();
  MetricInc(replacements_metric_);
  if (sim_.TraceEnabled(TraceLevel::kMaintenance)) {
    sim_.Maint(config_.name, "unit replaced (generation " + std::to_string(generation_) + ")");
  }
  ScheduleHardwareFailure();
  if (report_event_ == kInvalidEventId) {
    ScheduleNextReport(
        SimTime::Seconds(rng_.Uniform(0.0, config_.report_interval.ToSeconds())));
  }
  if (!load_registered_) {
    fabric_.AddOfferedLoad(config_.tech, PacketsPerHour());
    load_registered_ = true;
  }
}

void EdgeDevice::ScheduleHardwareFailure() {
  const auto draw = hardware_.SampleLife(rng_);
  failure_event_ = sim_.scheduler().ScheduleAfter(
      draw.life,
      [this, draw] {
        failure_event_ = kInvalidEventId;
        alive_ = false;
        failed_at_ = sim_.Now();
        MetricInc(failures_metric_);
        if (report_event_ != kInvalidEventId) {
          sim_.scheduler().Cancel(report_event_);
          report_event_ = kInvalidEventId;
        }
        if (load_registered_) {
          fabric_.RemoveOfferedLoad(config_.tech, PacketsPerHour());
          load_registered_ = false;
        }
        if (sim_.TraceEnabled(TraceLevel::kFailure)) {
          sim_.Fail(config_.name,
                    std::string("device hardware failure: ") +
                        (draw.failing_component != SIZE_MAX
                             ? hardware_.components()[draw.failing_component].name
                             : "unknown"));
        }
        if (on_failure_) {
          on_failure_(*this, sim_.Now());
        }
      },
      "device.failure");
}

void EdgeDevice::ScheduleNextReport(SimTime delay) {
  report_event_ = sim_.scheduler().ScheduleAfter(
      delay,
      [this] {
        report_event_ = kInvalidEventId;
        OnReportTimer();
      },
      "device.report");
}

void EdgeDevice::OnReportTimer() {
  if (!alive_) {
    return;
  }
  ++attempts_;
  auto account = [&](DeliveryOutcome outcome) {
    ++outcomes_[static_cast<size_t>(outcome)];
    if (outcome == DeliveryOutcome::kDelivered) {
      ++delivered_;
    }
  };

  // LoRa regulatory duty cycle (EU-style 1%).
  if (config_.tech == RadioTech::kLoRa && sim_.Now() < next_duty_allowed_) {
    account(DeliveryOutcome::kDutyCycleDeferred);
    ScheduleNextReport(config_.report_interval);
    return;
  }

  if (!energy_.TryTransmit(sim_.Now())) {
    account(DeliveryOutcome::kNoEnergy);
    // Retry when energy is forecast to suffice, capped at the interval.
    const SimTime eta =
        energy_.EstimateNextAffordable(sim_.Now(), energy_.load().tx_energy_j);
    const SimTime wait = std::min(eta - sim_.Now(), config_.report_interval);
    ScheduleNextReport(wait > SimTime::Minutes(1) ? wait : SimTime::Minutes(1));
    return;
  }

  UplinkPacket pkt;
  pkt.device_id = config_.id;
  pkt.sequence = ++sequence_;  // Counters start at 1: 0 means "none seen".
  pkt.payload_bytes = config_.payload_bytes;
  pkt.tech = config_.tech;
  pkt.sent_at = sim_.Now();
  pkt.reading.device_id = config_.id;
  pkt.reading.sequence = pkt.sequence;
  pkt.reading.value_centi = sensor_.MeasureCentiAt(sim_.Now());
  pkt.reading.sensor_type = static_cast<uint8_t>(config_.sensor_kind);
  pkt.reading.battery_soc = static_cast<uint8_t>(energy_.storage().soc() * 255.0);
  if (device_key_.has_value()) {
    pkt.authenticated = true;
    pkt.auth_tag = ComputeReadingTag(*device_key_, pkt.device_id, pkt.sequence, pkt.reading);
  }

  NetworkFabric::UplinkParams up;
  up.x_m = config_.x_m;
  up.y_m = config_.y_m;
  up.tx_power_dbm = config_.tx_power_dbm;
  up.lora = config_.lora;
  up.vendor = config_.vendor;

  account(fabric_.AttemptUplink(pkt, up, rng_));

  if (config_.tech == RadioTech::kLoRa) {
    const SimTime airtime = LoraPhy::Airtime(config_.lora, config_.payload_bytes);
    next_duty_allowed_ = DutyCycleRule{}.NextAllowed(sim_.Now(), airtime);
  }
  ScheduleNextReport(config_.report_interval);
}

}  // namespace centsim
