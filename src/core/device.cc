#include "src/core/device.h"

#include <algorithm>

#include "src/radio/frame.h"
#include "src/radio/phy_model.h"
#include "src/security/report_auth.h"
#include "src/security/signing.h"

namespace centsim {

LoadProfile LoadProfileFor(const EdgeDeviceConfig& config) {
  const PhyModel phy = PhyModel::For(config.tech, config.lora);
  LoadProfile load;
  load.tx_energy_j = phy.TxEnergyJoules(config.tx_power_dbm, config.payload_bytes) + 0.002;
  load.sleep_power_w = 2e-6;
  if (config.tech == RadioTech::kLoRa && config.lora_class == LoraDeviceClass::kClassC) {
    // Class C never closes its receive window: the radio's listen current
    // becomes the sleep floor.
    load.sleep_power_w += LoraPhy::kRxListenPowerW;
  }
  load.sense_energy_j = 0.002;
  load.brownout_reserve_j = 0.02;
  return load;
}

EdgeDevice::EdgeDevice(Simulation& sim, EdgeDeviceConfig config, NetworkFabric& fabric,
                       DeviceFleet& fleet, EnergyManager energy, SeriesSystem hardware)
    : sim_(sim),
      config_(std::move(config)),
      fabric_(fabric),
      fleet_(fleet),
      rng_(sim.StreamFor(0x6465760000000000ULL ^ config_.id)),
      sensor_(config_.sensor_kind, sim.seed() ^ (0x53454e53ULL << 16) ^ config_.id) {
  // Class spec: everything unit-independent. The fleet dedups by content,
  // so a thousand same-make devices share one record (and one set of
  // per-tech instruments, bound at first intern in the legacy order).
  DeviceClassSpec spec;
  spec.name = RadioTechName(config_.tech);
  spec.tech = config_.tech;
  spec.lora = config_.lora;
  spec.rx_class = config_.tech == RadioTech::kLoRa ? config_.lora_class
                                                   : LoraDeviceClass::kClassA;
  spec.tx_power_dbm = config_.tx_power_dbm;
  spec.report_interval = config_.report_interval;
  spec.payload_bytes = config_.payload_bytes;
  spec.vendor = config_.vendor;
  spec.coupling = config_.coupling;
  spec.sensor_kind = config_.sensor_kind;
  spec.load = energy.load();
  spec.storage = energy.storage().params();
  spec.hardware = std::move(hardware);
  cls_ = fleet_.InternClass(spec);

  handle_ = fleet_.Add(cls_, config_.x_m, config_.y_m, /*zone=*/0, energy.harvester());
  slot_ = DeviceFleet::SlotOf(handle_);
  // Carry over any pre-advanced storage state from the passed manager.
  fleet_.SetEnergyStateAt(slot_, energy.storage().state(), energy.last_advance());
}

void EdgeDevice::EnableSigning(const SipHashKey& batch_secret) {
  device_key_ = DeriveDeviceKey(batch_secret, config_.id);
}

EdgeDevice::~EdgeDevice() {
  if (load_registered_) {
    fabric_.RemoveOfferedLoadAt(config_.tech, PacketsPerHour(), config_.x_m, config_.y_m);
  }
  if (beacon_registered_) {
    fabric_.UnregisterBeaconListener(handle_);
  }
  if (report_event_ != kInvalidEventId) {
    sim_.scheduler().Cancel(report_event_);
  }
  if (fleet_.IsLive(handle_)) {
    const EventId failure = fleet_.failure_event(slot_);
    if (failure != kInvalidEventId) {
      sim_.scheduler().Cancel(failure);
    }
    fleet_.Remove(handle_);
  }
}

void EdgeDevice::Deploy() {
  fleet_.DeployAt(slot_);
  if (!load_registered_) {
    fabric_.AddOfferedLoadAt(config_.tech, PacketsPerHour(), config_.x_m, config_.y_m);
    load_registered_ = true;
  }
  if (config_.tech == RadioTech::kLoRa && config_.lora_class == LoraDeviceClass::kClassB &&
      !beacon_registered_) {
    fabric_.RegisterBeaconListener(handle_);
    beacon_registered_ = true;
  }
  ScheduleHardwareFailure();
  // Random phase so fleets do not synchronize.
  ScheduleNextReport(
      SimTime::Seconds(rng_.Uniform(0.0, config_.report_interval.ToSeconds())));
}

void EdgeDevice::ReplaceUnit() {
  const EventId failure = fleet_.failure_event(slot_);
  if (failure != kInvalidEventId) {
    sim_.scheduler().Cancel(failure);
    fleet_.set_failure_event(slot_, kInvalidEventId);
  }
  fleet_.DeployAt(slot_);
  fleet_.CountReplacementAt(slot_);
  if (sim_.TraceEnabled(TraceLevel::kMaintenance)) {
    sim_.Maint(config_.name, "unit replaced (generation " +
                                 std::to_string(fleet_.unit_generation(slot_)) + ")");
  }
  ScheduleHardwareFailure();
  if (report_event_ == kInvalidEventId) {
    ScheduleNextReport(
        SimTime::Seconds(rng_.Uniform(0.0, config_.report_interval.ToSeconds())));
  }
  if (!load_registered_) {
    fabric_.AddOfferedLoadAt(config_.tech, PacketsPerHour(), config_.x_m, config_.y_m);
    load_registered_ = true;
  }
}

void EdgeDevice::ScheduleHardwareFailure() {
  const auto draw = fleet_.class_spec(cls_).hardware.SampleLife(rng_);
  fleet_.set_deadline(slot_, sim_.Now() + draw.life);
  const EventId failure = sim_.scheduler().ScheduleAfter(
      draw.life,
      [this, draw] {
        fleet_.set_failure_event(slot_, kInvalidEventId);
        fleet_.MarkFailedAt(slot_);
        if (report_event_ != kInvalidEventId) {
          sim_.scheduler().Cancel(report_event_);
          report_event_ = kInvalidEventId;
        }
        if (load_registered_) {
          fabric_.RemoveOfferedLoadAt(config_.tech, PacketsPerHour(), config_.x_m, config_.y_m);
          load_registered_ = false;
        }
        if (sim_.TraceEnabled(TraceLevel::kFailure)) {
          const SeriesSystem& hardware = fleet_.class_spec(cls_).hardware;
          sim_.Fail(config_.name,
                    std::string("device hardware failure: ") +
                        (draw.failing_component != SIZE_MAX
                             ? hardware.components()[draw.failing_component].name
                             : "unknown"));
        }
        if (on_failure_) {
          on_failure_(*this, sim_.Now());
        }
      },
      "device.failure");
  fleet_.set_failure_event(slot_, failure);
}

void EdgeDevice::ScheduleNextReport(SimTime delay) {
  report_event_ = sim_.scheduler().ScheduleAfter(
      delay,
      [this] {
        report_event_ = kInvalidEventId;
        OnReportTimer();
      },
      "device.report");
}

void EdgeDevice::OnReportTimer() {
  if (!fleet_.alive(slot_)) {
    return;
  }
  ++attempts_;
  auto account = [&](DeliveryOutcome outcome) {
    ++outcomes_[static_cast<size_t>(outcome)];
    if (outcome == DeliveryOutcome::kDelivered) {
      ++delivered_;
    }
  };

  // LoRa regulatory duty cycle (EU-style 1%).
  if (config_.tech == RadioTech::kLoRa && sim_.Now() < next_duty_allowed_) {
    account(DeliveryOutcome::kDutyCycleDeferred);
    ScheduleNextReport(config_.report_interval);
    return;
  }

  if (!fleet_.EnergyTryTransmit(slot_, sim_.Now())) {
    account(DeliveryOutcome::kNoEnergy);
    // Retry when energy is forecast to suffice, capped at the interval.
    const SimTime eta = fleet_.EstimateNextAffordableAt(
        slot_, sim_.Now(), fleet_.class_spec(cls_).load.tx_energy_j);
    const SimTime wait = std::min(eta - sim_.Now(), config_.report_interval);
    ScheduleNextReport(wait > SimTime::Minutes(1) ? wait : SimTime::Minutes(1));
    return;
  }

  UplinkPacket pkt;
  pkt.device_id = config_.id;
  pkt.sequence = ++sequence_;  // Counters start at 1: 0 means "none seen".
  pkt.payload_bytes = config_.payload_bytes;
  pkt.tech = config_.tech;
  pkt.sent_at = sim_.Now();
  pkt.reading.device_id = config_.id;
  pkt.reading.sequence = pkt.sequence;
  pkt.reading.value_centi = sensor_.MeasureCentiAt(sim_.Now());
  pkt.reading.sensor_type = static_cast<uint8_t>(config_.sensor_kind);
  pkt.reading.battery_soc = static_cast<uint8_t>(fleet_.StorageSocAt(slot_) * 255.0);
  if (device_key_.has_value()) {
    pkt.authenticated = true;
    pkt.auth_tag = ComputeReadingTag(*device_key_, pkt.device_id, pkt.sequence, pkt.reading);
  }

  NetworkFabric::TxRequest request;
  request.packet = pkt;
  request.params.x_m = config_.x_m;
  request.params.y_m = config_.y_m;
  request.params.tx_power_dbm = config_.tx_power_dbm;
  request.params.lora = config_.lora;
  request.params.vendor = config_.vendor;

  const DeliveryReport report = fabric_.Offer(request, rng_);
  account(report.outcome);

  if (report.outcome == DeliveryOutcome::kCadBusy) {
    // The CAD scan found the band busy before the PA fired: refund the
    // pre-charged TX energy minus the scan's own receive cost, skip the
    // duty-cycle clock (nothing was sent), and retry after a short
    // desynchronizing backoff.
    const double refund_j =
        fleet_.class_spec(cls_).load.tx_energy_j - LoraPhy::CadEnergyJoules(config_.lora);
    fleet_.EnergyConsumeAt(slot_, sim_.Now(), -refund_j);
    --sequence_;  // The frame never left; reuse its sequence number.
    ScheduleNextReport(SimTime::Seconds(rng_.Uniform(1.0, 30.0)));
    return;
  }

  if (config_.tech == RadioTech::kLoRa) {
    const SimTime airtime =
        PhyModel::ForLora(config_.lora).Airtime(config_.payload_bytes);
    next_duty_allowed_ = DutyCycleRule{}.NextAllowed(sim_.Now(), airtime);
  }
  ScheduleNextReport(config_.report_interval);
}

}  // namespace centsim
