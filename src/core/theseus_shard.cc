// Sharded century engine: the embarrassingly-parallel sibling of the
// sharded district. Century sites never interact — each site's trajectory
// depends only on its own entity-keyed lifetime draws and the shared visit
// grid — so the fleet splits into contiguous column ranges with NO
// cross-shard traffic: no bus, no gateway timelines, and NextBound() is
// just each lane's earliest pending event.
//
// Determinism: the serial engine already keys every lifetime draw by
// (site index, unit generation), so lanes reproduce the serial draws
// verbatim with global indices. Counters (failures, replacements,
// deployments, generations) are bit-identical to the serial engine;
// availability means differ from serial in the last float bits only
// because lanes integrate in exact 128-bit microsecond-counts instead of
// event-ordered double sums — which is also what makes them bit-identical
// across any shard/worker/window choice. Kaplan–Meier observations are
// concatenated in lane order (failures then survivors per lane), not the
// serial global event order; the survival curve is order-free, the raw
// observation sequence is not digest-pinned.
//
// Snapshot checkpointing is NOT supported under sharding (the serial
// century's TimerTable capture assumes one scheduler); requesting both is
// a config error, reported fail-fast.

#include "src/core/theseus.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/fleet.h"
#include "src/mgmt/batch_project.h"
#include "src/reliability/component.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/shard_coordinator.h"
#include "src/sim/simulation.h"
#include "src/sim/thread_pool.h"
#include "src/snapshot/timer_table.h"

namespace centsim {
namespace {

using U128 = unsigned __int128;

double U128Seconds(U128 us) { return static_cast<double>(us) / 1e6; }

struct CenturyLaneTotals {
  U128 alive_us = 0;
  std::vector<U128> yearly_alive_us;
  uint64_t total_failures = 0;
  uint64_t total_replacements = 0;
  uint64_t proactive_replacements = 0;
  uint64_t units_deployed = 0;
  double max_unit_generations = 0.0;
};

class CenturyShardLane final : public ShardLane {
 public:
  CenturyShardLane(const CenturyConfig& config, uint32_t lane, uint32_t begin, uint32_t end,
                   FlightRecorder* recorder)
      : config_(config),
        lane_(lane),
        begin_(begin),
        end_(end),
        recorder_(recorder),
        sim_(config.seed),
        fleet_(sim_),
        timers_(sim_.scheduler(), /*track=*/false),
        rng_(sim_.StreamFor(0x7468657365757300ULL)),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_alive_us_(years_, 0),
        batches_(sim_, config.batch, [this](uint32_t zone, uint32_t cycle) {
          (void)cycle;
          OnZoneVisit(zone);
        }) {
    sim_.trace().set_min_level(TraceLevel::kFailure);
    sim_.trace().EnableRetention(false);
  }

  // --- ShardLane ----------------------------------------------------------

  void Setup(SimTime cover) override {
    (void)cover;  // No cross-shard lookahead to publish.
    DeviceClassSpec spec;
    spec.name = "century-site";
    spec.hardware = config_.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    const uint32_t count = end_ - begin_;
    fleet_.Reserve(count);
    for (uint32_t idx = begin_; idx < end_; ++idx) {
      fleet_.Add(cls_, 0.0, 0.0, idx % ZoneCount(), HarvesterModel());
    }
    zone_local_.resize(ZoneCount());
    for (uint32_t ld = 0; ld < count; ++ld) {
      zone_local_[fleet_.zone(ld)].push_back(ld);
    }
    batches_.ScheduleThrough(config_.horizon);
    for (uint32_t ld = 0; ld < count; ++ld) {
      DeploySite(ld);
    }
  }

  SimTime NextBound() override { return sim_.scheduler().EarliestPending(); }

  void RunWindow(SimTime barrier, SimTime cover) override {
    (void)cover;
    sim_.scheduler().DrainToBarrier(barrier);
  }

  Scheduler& sched() override { return sim_.scheduler(); }

  // --- Main-thread accessors (lanes quiescent) ----------------------------

  void FinishAt(SimTime horizon) {
    AccumulateTo(horizon.micros());
    // Censor survivors in ascending local (== global) order, exactly like
    // the serial engine's end-of-run sweep over its whole fleet.
    for (uint32_t ld = 0; ld < end_ - begin_; ++ld) {
      if (fleet_.alive(ld)) {
        survival_.push_back({horizon - fleet_.deployed_at(ld), /*failed=*/false});
      }
      max_gen_ = std::max(max_gen_, static_cast<double>(fleet_.unit_generation(ld)));
    }
  }

  void MergeInto(CenturyLaneTotals& t, KaplanMeier& survival) const {
    t.alive_us += alive_us_;
    for (uint32_t y = 0; y < years_; ++y) {
      t.yearly_alive_us[y] += yearly_alive_us_[y];
    }
    t.total_failures += total_failures_;
    t.total_replacements += total_replacements_;
    t.proactive_replacements += proactive_replacements_;
    t.units_deployed += units_deployed_;
    t.max_unit_generations = std::max(t.max_unit_generations, max_gen_);
    for (const SurvivalObservation& o : survival_) {
      survival.Observe(o);
    }
  }

 private:
  uint32_t ZoneCount() const { return std::max(1u, config_.batch.zone_count); }

  void AccumulateTo(int64_t now_us) {
    if (now_us <= last_us_) {
      return;
    }
    const U128 span = static_cast<uint64_t>(now_us - last_us_);
    alive_us_ += span * fleet_.alive_count();
    const int64_t year_us = SimTime::Years(1).micros();
    int64_t t0 = last_us_;
    while (t0 < now_us) {
      const uint32_t y =
          std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_us));
      const int64_t year_end = (static_cast<int64_t>(y) + 1) * year_us;
      const int64_t seg_end = std::min(now_us, year_end);
      yearly_alive_us_[y] += U128(static_cast<uint64_t>(seg_end - t0)) * fleet_.alive_count();
      t0 = seg_end;
    }
    last_us_ = now_us;
  }

  void DeploySite(uint32_t ld) {
    AccumulateTo(sim_.Now().micros());
    fleet_.DeployAt(ld);
    ++units_deployed_;

    // The serial engine's exact derivation, with the global site index:
    // the draw is identical whichever lane owns the site.
    const double decade = sim_.Now().ToYears() / 10.0;
    const double life_scale = std::pow(config_.life_improvement_per_decade, decade);
    RandomStream site_rng = rng_.Derive((static_cast<uint64_t>(begin_ + ld) << 20) +
                                        fleet_.unit_generation(ld));
    const SimTime life =
        fleet_.class_spec(cls_).hardware.SampleLife(site_rng).life * life_scale;

    fleet_.set_failure_event(
        ld, timers_.Schedule(sim_.Now() + life, 0, ld, 0, 0.0,
                             [this, ld, life] { OnSiteFailure(ld, life); }));
  }

  void OnSiteFailure(uint32_t ld, SimTime life) {
    fleet_.set_failure_event(ld, kInvalidEventId);
    AccumulateTo(sim_.Now().micros());
    fleet_.MarkFailedAt(ld);
    ++total_failures_;
    survival_.push_back({life, /*failed=*/true});
    if (recorder_ != nullptr) {
      recorder_->Record("century.site_failure", sim_.Now(), begin_ + ld);
    }
  }

  void OnZoneVisit(uint32_t zone) {
    if (recorder_ != nullptr) {
      recorder_->Record("century.zone_visit", sim_.Now(), zone);
    }
    for (uint32_t ld : zone_local_[zone]) {
      if (!fleet_.alive(ld)) {
        ++total_replacements_;
        DeploySite(ld);
        continue;
      }
      if (config_.proactive_refresh_age.micros() > 0 &&
          sim_.Now() - fleet_.deployed_at(ld) >= config_.proactive_refresh_age) {
        const EventId failure = fleet_.failure_event(ld);
        if (failure != kInvalidEventId) {
          timers_.Cancel(failure);
          fleet_.set_failure_event(ld, kInvalidEventId);
        }
        survival_.push_back({sim_.Now() - fleet_.deployed_at(ld), /*failed=*/false});
        AccumulateTo(sim_.Now().micros());
        fleet_.RetireAt(ld);
        ++proactive_replacements_;
        DeploySite(ld);
      }
    }
  }

  const CenturyConfig& config_;
  const uint32_t lane_;
  const uint32_t begin_;
  const uint32_t end_;
  FlightRecorder* recorder_;

  Simulation sim_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  TimerTable timers_;
  RandomStream rng_;
  const uint32_t years_;
  std::vector<U128> yearly_alive_us_;
  BatchProjectScheduler batches_;

  std::vector<std::vector<uint32_t>> zone_local_;  // Ascending local slots.
  std::vector<SurvivalObservation> survival_;      // Lane-local, merged in order.

  int64_t last_us_ = 0;
  U128 alive_us_ = 0;
  uint64_t total_failures_ = 0;
  uint64_t total_replacements_ = 0;
  uint64_t proactive_replacements_ = 0;
  uint64_t units_deployed_ = 0;
  double max_gen_ = 0.0;
};

}  // namespace

CenturyReport RunShardedCenturyScenario(const CenturyConfig& config) {
  std::vector<std::string> diagnostics = config.Validate();
  if (config.shard.shards == 0) {
    diagnostics.push_back("shard.shards is zero: the sharded engine needs at least one lane "
                          "(use RunCenturyScenario for the serial engine)");
  }
  if (config.snapshot.enabled()) {
    diagnostics.push_back("snapshot checkpoint/resume is not supported by the sharded "
                          "century engine: run with shard.shards = 0 to checkpoint, or use "
                          "the sharded district engine which supports both");
  }
  CheckConfigOrDie("century-shard", diagnostics);

  const uint32_t shards = std::min(config.shard.shards, config.fleet_size);
  std::vector<std::unique_ptr<CenturyShardLane>> lanes;
  std::vector<ShardLane*> lane_ptrs;
  const uint32_t per_lane = config.fleet_size / shards;
  const uint32_t remainder = config.fleet_size % shards;
  uint32_t begin = 0;
  for (uint32_t i = 0; i < shards; ++i) {
    const uint32_t end = begin + per_lane + (i < remainder ? 1 : 0);
    FlightRecorder* recorder =
        i < config.shard.shard_recorders.size() ? config.shard.shard_recorders[i] : nullptr;
    lanes.push_back(std::make_unique<CenturyShardLane>(config, i, begin, end, recorder));
    lane_ptrs.push_back(lanes.back().get());
    begin = end;
  }

  ThreadPool pool(config.shard.workers != 0 ? config.shard.workers : shards);
  ShardWindowOptions opts;
  opts.horizon = config.horizon;
  opts.window =
      config.shard.window.micros() > 0 ? config.shard.window : SimTime::Days(90);
  opts.progress = config.shard.shard_progress;
  opts.replica_progress = config.control.progress;

  CenturyReport report;
  report.events_executed = RunShardWindows(pool, lane_ptrs, opts);

  CenturyLaneTotals totals;
  totals.yearly_alive_us.assign(
      static_cast<uint32_t>(std::ceil(config.horizon.ToYears())), 0);
  for (auto& lane : lanes) {
    lane->FinishAt(config.horizon);
    lane->MergeInto(totals, report.unit_survival);
  }

  report.total_failures = totals.total_failures;
  report.total_replacements = totals.total_replacements;
  report.proactive_replacements = totals.proactive_replacements;
  report.units_deployed = totals.units_deployed;
  report.max_unit_generations = totals.max_unit_generations;

  const uint32_t years = static_cast<uint32_t>(totals.yearly_alive_us.size());
  const double total_site_seconds = config.horizon.ToSeconds() * config.fleet_size;
  report.mean_availability =
      total_site_seconds > 0 ? U128Seconds(totals.alive_us) / total_site_seconds : 0;
  report.yearly_availability.resize(years);
  const double year_site_seconds = SimTime::Years(1).ToSeconds() * config.fleet_size;
  for (uint32_t y = 0; y < years; ++y) {
    report.yearly_availability[y] = U128Seconds(totals.yearly_alive_us[y]) / year_site_seconds;
    report.min_yearly_availability =
        std::min(report.min_yearly_availability, report.yearly_availability[y]);
  }
  return report;
}

}  // namespace centsim
