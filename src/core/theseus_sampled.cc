// Sampled time advance for the century scenario (ROADMAP item 2).
//
// The serial engine (theseus.cc) pushes every site failure and zone visit
// through the event heap and samples each unit life as the minimum of ~8
// per-component inverse-CDF draws. This engine runs the same scenario as a
// two-level machine driven by a SamplingController (src/sim/sampling.h):
//
//   detailed window   the zone visits and pending site failures that fall
//                     inside [w0, w1) are armed on the real scheduler and
//                     drained to the barrier — identical event semantics
//                     to the serial engine, and the window's availability/
//                     failure-rate/replacement-rate land in SampleSets;
//   fast-forward      between windows the same transitions are advanced by
//                     a per-site walk over the pre-recorded visit schedule
//                     and the per-site next-failure column — no heap, no
//                     closures, one SurvivalTable draw per deployment.
//
// Determinism: unit lives are drawn from per-entity keyed streams
// (rng_.Derive(site << 20 | generation), the serial engine's key) through
// a SurvivalTable, so a site's trajectory is byte-identical regardless of
// where detailed windows are placed — a zero-length fast-forward is a
// no-op. The draw *pattern* differs from the serial engine (one table
// lookup vs SampleLife's component minimum), so sampled and serial runs
// agree in distribution, not bit-for-bit.
//
// Checkpoints are cut at detailed-window barriers in the serial chunk
// layout: pending walk state (visits >= barrier, per-site next failures)
// is synthesized into the serial engine's timer records, so a sampled
// checkpoint restores into either engine and vice versa (closes the
// snapshot subsystem's warm-start hook).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/core/fleet.h"
#include "src/core/fleet_codec.h"
#include "src/core/theseus.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/timer_table.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

// Same domain timer tags and operand meanings as the serial engine —
// snapshot compatibility depends on them. Visit: a=zone, b=cycle. Site
// failure: a=site index, b=sampled unit life in micros.
constexpr uint64_t kTimerVisit = 1;
constexpr uint64_t kTimerSiteFail = 2;

// Serial chunk tags (theseus.cc) — both engines read both layouts.
constexpr uint32_t kFleetChunk = SnapshotTag('f', 'l', 'e', 't');
constexpr uint32_t kAccumChunk = SnapshotTag('a', 'c', 'c', 'u');
constexpr uint32_t kSurvivalChunk = SnapshotTag('s', 'u', 'r', 'v');
constexpr uint32_t kTimerChunk = SnapshotTag('t', 'i', 'm', 'r');
constexpr uint32_t kSchedChunk = SnapshotTag('s', 'c', 'h', 'd');

class SampledCenturyRun {
 public:
  SampledCenturyRun(Simulation& sim, const CenturyConfig& config, CenturyReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        rng_(sim.StreamFor(0x7468657365757300ULL)),  // Serial engine's root key.
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_alive_seconds_(years_, 0.0),
        yearly_weight_diff_(years_ + 1, 0.0) {
    DeviceClassSpec spec;
    spec.name = "century-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.Reserve(config.fleet_size);
    for (uint32_t idx = 0; idx < config.fleet_size; ++idx) {
      fleet_.Add(cls_, 0.0, 0.0, idx % ZoneCount(), HarvesterModel());
    }
    const SeriesSystem& hardware = fleet_.class_spec(cls_).hardware;
    life_table_ = SurvivalTable::Build(
        [&hardware](SimTime t) { return hardware.Survival(t); });
    fail_at_.assign(config.fleet_size, SimTime::Max());
    life_.assign(config.fleet_size, SimTime());
    // The transition calendar only models the no-proactive site lifecycle
    // (fail -> wait -> revive); proactive refresh keeps the per-site merge
    // walk, which reads the visit schedule directly.
    use_calendar_ = config.proactive_refresh_age <= SimTime();
    if (use_calendar_) {
      calendar_.resize(
          static_cast<size_t>(config.horizon.micros() / kCalBucketUs) + 1);
    }
  }

  void Run() {
    RecordVisitSchedule();

    std::string resume_path = config_.snapshot.resume_from;
    if (resume_path.empty() && config_.snapshot.resume_latest) {
      resume_path = FindLatestValidSnapshot(config_.snapshot.checkpoint_dir);
    }
    if (!resume_path.empty()) {
      const auto restore_start = std::chrono::steady_clock::now();
      std::string error;
      if (!RestoreFrom(resume_path, &error)) {
        CheckConfigOrDie("century-sampled",
                         {"cannot resume from " + resume_path + ": " + error});
      }
      report_.restore_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - restore_start)
                                    .count();
    } else {
      // Initial roll-out: all sites deployed in year 0, serial-identically.
      for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
        DeploySiteAt(idx, sim_.Now());
      }
    }

    if (config_.snapshot.checkpoint_every.micros() > 0) {
      const int64_t every = config_.snapshot.checkpoint_every.micros();
      std::error_code ec;
      std::filesystem::create_directories(config_.snapshot.checkpoint_dir, ec);
      next_grid_us_ = (sim_.Now().micros() / every + 1) * every;
    }

    SamplingController controller(sim_.scheduler(), config_.sampling);
    controller.RegisterDomain(
        "reliability", [this](SimTime from, SimTime to) { WalkSites(from, to); });
    controller.SetWindowHooks(
        [this](SimTime w0, SimTime w1) { BeginWindow(w0, w1); },
        [this](SimTime w0, SimTime w1) { EndWindow(w0, w1); });
    controller.TrackMetric("availability", &avail_samples_);
    controller.TrackMetric("failures_per_device_year", &fail_samples_);
    controller.TrackMetric("replacements_per_device_year", &repl_samples_);
    controller.AttachProgress(config_.control.progress);
    const SamplingOutcome outcome = controller.Run(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();

    // Epilogue: censor survivors and close their open alive intervals.
    double max_gen = 0.0;
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      if (fleet_.alive(idx)) {
        report_.unit_survival.Observe(config_.horizon - fleet_.deployed_at(idx),
                                      /*failed=*/false);
        AddAliveSpan(fleet_.deployed_at(idx), config_.horizon, 1.0);
      }
      max_gen = std::max(max_gen, static_cast<double>(fleet_.unit_generation(idx)));
    }
    report_.max_unit_generations = max_gen;

    const double total_site_seconds = config_.horizon.ToSeconds() * config_.fleet_size;
    report_.mean_availability =
        total_site_seconds > 0 ? alive_site_seconds_ / total_site_seconds : 0;
    report_.yearly_availability.resize(years_);
    const double year_site_seconds = SimTime::Years(1).ToSeconds() * config_.fleet_size;
    const std::vector<double> yearly = IntegratedYearly();
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_availability[y] = yearly[y] / year_site_seconds;
      report_.min_yearly_availability =
          std::min(report_.min_yearly_availability, report_.yearly_availability[y]);
    }

    report_.sampled = true;
    report_.windows_measured = outcome.windows_measured;
    report_.sim_skipped_us = outcome.sim_skipped_us;
    report_.ci_converged = outcome.converged;
    report_.metric_cis = controller.MetricSummaries();
  }

 private:
  struct Visit {
    SimTime at;
    uint32_t zone = 0;
    uint32_t cycle = 0;
  };

  uint32_t ZoneCount() const { return std::max(1u, config_.batch.zone_count); }

  // The batch project's full visit schedule, recorded without touching the
  // scheduler: SetVisitScheduler replaces event placement and draws the
  // per-visit jitter identically to the serial engine's ScheduleThrough.
  void RecordVisitSchedule() {
    BatchProjectScheduler batches(sim_, config_.batch, [](uint32_t, uint32_t) {});
    batches.SetVisitScheduler([this](SimTime at, uint32_t zone, uint32_t cycle) {
      visits_.push_back({at, zone, cycle});
    });
    batches.ScheduleThrough(config_.horizon);
    std::stable_sort(visits_.begin(), visits_.end(),
                     [](const Visit& a, const Visit& b) { return a.at < b.at; });
    zone_visits_.assign(ZoneCount(), {});
    for (const Visit& v : visits_) {
      zone_visits_[v.zone].push_back(v.at);
    }
  }

  // Adds `weight` alive-sites over [start, end) to the global and yearly
  // availability integrals (the serial engine's AccumulateTo year-split,
  // applied per interval instead of per transition). Multi-decade spans are
  // O(1): the two partial edge years go into yearly_alive_seconds_ directly
  // and the full years in between into yearly_weight_diff_, a difference
  // array IntegratedYearly() folds back in at read time.
  void AddAliveSpan(SimTime start, SimTime end, double weight) {
    if (end <= start || weight == 0.0) {
      return;
    }
    alive_site_seconds_ += (end - start).ToSeconds() * weight;
    const double t0 = start.ToSeconds();
    const double t1 = end.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    const uint32_t y0 = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
    const uint32_t y1 = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t1 / year_s));
    if (y0 == y1) {
      yearly_alive_seconds_[y0] += (t1 - t0) * weight;
      return;
    }
    yearly_alive_seconds_[y0] += ((y0 + 1) * year_s - t0) * weight;
    yearly_alive_seconds_[y1] += (t1 - y1 * year_s) * weight;
    if (y1 > y0 + 1) {
      yearly_weight_diff_[y0 + 1] += weight;
      yearly_weight_diff_[y1] -= weight;
    }
  }

  // Folds the full-year difference array into the partial-year integrals,
  // yielding the same cumulative per-year vector the serial engine keeps.
  std::vector<double> IntegratedYearly() const {
    std::vector<double> yearly = yearly_alive_seconds_;
    const double year_s = SimTime::Years(1).ToSeconds();
    double running = 0.0;
    for (uint32_t y = 0; y < years_; ++y) {
      running += yearly_weight_diff_[y];
      yearly[y] += running * year_s;
    }
    return yearly;
  }

  // Closes the alive interval that started at deployed_at(idx): global
  // integral always, plus the clipped in-window share while measuring.
  void CloseAliveInterval(uint32_t idx, SimTime end) {
    const SimTime start = fleet_.deployed_at(idx);
    AddAliveSpan(start, end, 1.0);
    if (in_window_) {
      const SimTime clipped = std::max(start, win_w0_);
      if (end > clipped) {
        win_alive_seconds_ += (end - clipped).ToSeconds();
      }
      --win_open_count_;
      win_open_start_sum_s_ -= clipped.ToSeconds();
    }
  }

  size_t BucketFor(SimTime t) const {
    const int64_t us = std::max<int64_t>(t.micros(), 0);
    return std::min(calendar_.size() - 1, static_cast<size_t>(us / kCalBucketUs));
  }

  void CalendarPush(uint32_t kind, uint32_t idx, SimTime at) {
    if (!use_calendar_ || at >= config_.horizon) {
      return;  // Transitions at/after the horizon never run.
    }
    calendar_[BucketFor(at)].push_back({at.micros(), idx, kind});
  }

  // --- Shared site transitions (window handlers and walk) -----------------
  //
  // Each runs at an explicit time `at`: sim_.Now() inside a detailed
  // window, the walk's event time during fast-forward. Column effects are
  // identical either way, which is what makes window placement irrelevant.

  void DeploySiteAt(uint32_t idx, SimTime at) {
    fleet_.DeployAtTime(idx, at);
    ++report_.units_deployed;

    const double scale =
        config_.life_improvement_per_decade == 1.0
            ? 1.0
            : std::pow(config_.life_improvement_per_decade, at.ToYears() / 10.0);
    RandomStream site_rng =
        rng_.Derive((static_cast<uint64_t>(idx) << 20) + fleet_.unit_generation(idx));
    const SimTime life = life_table_.Sample(site_rng) * scale;
    life_[idx] = life;
    fail_at_[idx] = at + life;
    CalendarPush(kCalFail, idx, fail_at_[idx]);
    if (in_window_) {
      ++win_open_count_;
      win_open_start_sum_s_ += at.ToSeconds();
      if (fail_at_[idx] < win_w1_) {
        ArmWindowFailure(idx);
      }
    }
  }

  void SiteFailAt(uint32_t idx, SimTime at) {
    CloseAliveInterval(idx, at);
    fleet_.MarkFailedAtTime(idx, at);
    ++report_.total_failures;
    report_.unit_survival.Observe(life_[idx], /*failed=*/true);
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.site_failure", at, idx);
    }
  }

  void VisitSiteAt(uint32_t idx, SimTime at) {
    if (!fleet_.alive(idx)) {
      ++report_.total_replacements;
      DeploySiteAt(idx, at);
      return;
    }
    if (config_.proactive_refresh_age.micros() > 0 &&
        at - fleet_.deployed_at(idx) >= config_.proactive_refresh_age) {
      // A window may have this site's failure armed; release it with the
      // unit being retired.
      const EventId failure = fleet_.failure_event(idx);
      if (failure != kInvalidEventId) {
        sim_.scheduler().Cancel(failure);
        fleet_.set_failure_event(idx, kInvalidEventId);
      }
      report_.unit_survival.Observe(at - fleet_.deployed_at(idx), /*failed=*/false);
      CloseAliveInterval(idx, at);
      fleet_.RetireAt(idx);
      ++report_.proactive_replacements;
      DeploySiteAt(idx, at);
    }
  }

  // --- Detailed windows ---------------------------------------------------

  void ArmWindowFailure(uint32_t idx) {
    fleet_.set_failure_event(
        idx, sim_.scheduler().ScheduleAt(fail_at_[idx], [this, idx] {
          fleet_.set_failure_event(idx, kInvalidEventId);
          const SimTime at = sim_.Now();
          SiteFailAt(idx, at);
          if (use_calendar_) {
            // The site's revive is its zone's first visit strictly after
            // the failure (an equal-time visit fired first, as a no-op on
            // the then-alive site). In-window visits run as scheduler
            // events; a revive beyond the window is parked for the walk.
            const std::vector<SimTime>& visits = zone_visits_[idx % ZoneCount()];
            const auto it = std::upper_bound(visits.begin(), visits.end(), at);
            if (it != visits.end() && *it >= win_w1_) {
              CalendarPush(kCalRevive, idx, *it);
            }
          }
        }));
  }

  void OnZoneVisit(uint32_t zone) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record("century.zone_visit", sim_.Now(), zone);
    }
    const uint32_t zone_count = ZoneCount();
    for (uint32_t idx = zone; idx < config_.fleet_size; idx += zone_count) {
      VisitSiteAt(idx, sim_.Now());
    }
  }

  void BeginWindow(SimTime w0, SimTime w1) {
    in_window_ = true;
    win_w0_ = w0;
    win_w1_ = w1;
    win_alive_seconds_ = 0.0;
    win_fail_base_ = report_.total_failures;
    win_repl_base_ = report_.total_replacements + report_.proactive_replacements;
    // Every open interval at w0 clips to w0; transitions inside the window
    // keep the count/start-sum pair current so EndWindow closes in O(1).
    win_open_count_ = fleet_.alive_count();
    win_open_start_sum_s_ = static_cast<double>(win_open_count_) * w0.ToSeconds();

    // Visits armed before failures: scheduler insertion order is the
    // equal-time tie-break, and the walk mirrors it (visit wins ties).
    const auto first = std::lower_bound(
        visits_.begin(), visits_.end(), w0,
        [](const Visit& v, SimTime t) { return v.at < t; });
    for (auto it = first; it != visits_.end() && it->at < w1; ++it) {
      const uint32_t zone = it->zone;
      sim_.scheduler().ScheduleAt(it->at, [this, zone] { OnZoneVisit(zone); });
    }
    if (use_calendar_) {
      // Only sites with a pending failure inside the window need arming;
      // the calendar hands us exactly those (plus stale entries, skipped
      // by the validity check) without an O(fleet) scan.
      const size_t b_last = BucketFor(w1 - SimTime::Micros(1));
      for (size_t b = BucketFor(w0); b <= b_last; ++b) {
        for (const CalEntry& en : calendar_[b]) {
          const SimTime at = SimTime::Micros(en.at_us);
          if (en.kind != kCalFail || at < w0 || at >= w1) {
            continue;
          }
          if (fleet_.alive(en.idx) && fail_at_[en.idx] == at) {
            ArmWindowFailure(en.idx);
          }
        }
      }
    } else {
      for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
        if (fleet_.alive(idx) && fail_at_[idx] < w1) {
          ArmWindowFailure(idx);
        }
      }
    }
  }

  void EndWindow(SimTime w0, SimTime w1) {
    // Intervals still open at the barrier contribute their clipped share:
    // count * w1 minus the sum of their clipped starts, maintained
    // incrementally by DeploySiteAt/CloseAliveInterval.
    const double alive_s =
        win_alive_seconds_ +
        static_cast<double>(win_open_count_) * w1.ToSeconds() - win_open_start_sum_s_;
    const double device_seconds = (w1 - w0).ToSeconds() * config_.fleet_size;
    const double device_years = (w1 - w0).ToYears() * config_.fleet_size;
    avail_samples_.Add(device_seconds > 0 ? alive_s / device_seconds : 0.0);
    fail_samples_.Add(static_cast<double>(report_.total_failures - win_fail_base_) /
                      device_years);
    repl_samples_.Add(
        static_cast<double>(report_.total_replacements + report_.proactive_replacements -
                            win_repl_base_) /
        device_years);
    in_window_ = false;

    // Sampled checkpoints are cut at window barriers: the first barrier at
    // or after each serial grid point gets one. Once sampling converges
    // (no more windows), no further checkpoints are written.
    if (next_grid_us_ > 0 && w1.micros() >= next_grid_us_ &&
        w1 < config_.horizon) {
      SaveCheckpoint(w1);
      const int64_t every = config_.snapshot.checkpoint_every.micros();
      next_grid_us_ = (w1.micros() / every + 1) * every;
    }
  }

  // --- Fast-forward walk --------------------------------------------------

  // Advances every site's failure/replacement process over [from, to) by
  // merging its zone's visit schedule with its pending failure time. Same
  // transitions as the window handlers, no scheduler involved.
  void WalkSites(SimTime from, SimTime to) {
    if (use_calendar_) {
      WalkCalendar(from, to);
      return;
    }
    const uint32_t zone_count = ZoneCount();
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      const std::vector<SimTime>& visits = zone_visits_[idx % zone_count];
      size_t vi = static_cast<size_t>(
          std::lower_bound(visits.begin(), visits.end(), from) - visits.begin());
      for (;;) {
        const SimTime visit_at = vi < visits.size() ? visits[vi] : SimTime::Max();
        const SimTime fail_at = fleet_.alive(idx) ? fail_at_[idx] : SimTime::Max();
        if (visit_at <= fail_at) {  // Visit wins ties (window arm order).
          if (visit_at >= to) {
            break;
          }
          VisitSiteAt(idx, visit_at);
          ++vi;
        } else {
          if (fail_at >= to) {
            break;
          }
          SiteFailAt(idx, fail_at);
        }
      }
    }
  }

  // Calendar-driven fast-forward: only sites with a transition inside
  // [from, to) are touched — O(transitions) per span instead of O(fleet).
  // Entries are validated on scan: a failure entry must match the site's
  // live pending failure, a revive entry must find the site still dead;
  // anything else was consumed by a detailed window or superseded, and is
  // skipped. Per-site event order is preserved because a site's next entry
  // is only pushed when its previous transition is processed; cross-site
  // order within a bucket is immaterial (sites are independent).
  void WalkCalendar(SimTime from, SimTime to) {
    const uint32_t zone_count = ZoneCount();
    const size_t b_last = BucketFor(to - SimTime::Micros(1));
    // Per-zone cursor into the visit schedule, rebased once per bucket: a
    // bucket spans a couple of maintenance rounds at most, so the per-fail
    // "first visit strictly after" lookup is a short forward scan instead
    // of a binary search over the century's whole schedule.
    std::vector<uint32_t> visit_base(zone_count, 0);
    for (size_t b = BucketFor(from); b <= b_last; ++b) {
      std::vector<CalEntry>& bucket = calendar_[b];
      if (!bucket.empty()) {
        const SimTime bucket_lo =
            std::max(from, SimTime::Micros(static_cast<int64_t>(b) * kCalBucketUs));
        for (uint32_t z = 0; z < zone_count; ++z) {
          const std::vector<SimTime>& visits = zone_visits_[z];
          visit_base[z] = static_cast<uint32_t>(
              std::lower_bound(visits.begin(), visits.end(), bucket_lo) - visits.begin());
        }
      }
      // Index loop: inline revives and deploys may append to this bucket.
      for (size_t e = 0; e < bucket.size(); ++e) {
        const CalEntry en = bucket[e];
        const SimTime at = SimTime::Micros(en.at_us);
        if (at < from || at >= to) {
          continue;
        }
        if (en.kind == kCalFail) {
          if (!fleet_.alive(en.idx) || fail_at_[en.idx] != at) {
            continue;  // Stale: consumed in a window or superseded.
          }
          SiteFailAt(en.idx, at);
          // Revive at the zone's first visit strictly after the failure
          // (an equal-time visit was a no-op on the then-alive site).
          const std::vector<SimTime>& visits = zone_visits_[en.idx % zone_count];
          uint32_t k = visit_base[en.idx % zone_count];
          while (k < visits.size() && visits[k] <= at) {
            ++k;
          }
          if (k == visits.size()) {
            continue;  // No maintenance round ever reaches it again.
          }
          if (visits[k] < to) {
            VisitSiteAt(en.idx, visits[k]);  // Replacement pushes the next failure.
          } else {
            CalendarPush(kCalRevive, en.idx, visits[k]);
          }
        } else {
          if (fleet_.alive(en.idx)) {
            continue;  // Already revived by an in-window visit.
          }
          VisitSiteAt(en.idx, at);
        }
      }
      if ((static_cast<int64_t>(b) + 1) * kCalBucketUs <= to.micros()) {
        // Fully processed: release the bucket (and its stale entries).
        std::vector<CalEntry>().swap(bucket);
      }
    }
  }

  // --- Checkpoint/restore -------------------------------------------------

  // Byte-identical to the serial engine's digest: the sampling plan is a
  // policy field, so serial and sampled runs of one config interchange
  // snapshots.
  std::string StructuralDigest() const {
    ByteWriter w;
    w.U64(config_.seed);
    w.U32(config_.fleet_size);
    w.I64(config_.horizon.micros());
    w.U8(static_cast<uint8_t>(config_.device_class));
    w.U32(config_.batch.zone_count);
    w.I64(config_.batch.cycle_period.micros());
    w.I64(config_.batch.visit_jitter.micros());
    return StructuralDigestHex(w);
  }

  // Pending walk state rendered as the serial engine's timer records:
  // every visit at or after the barrier, plus each alive site's next
  // failure. Sorted by time with visits before failures on ties, the same
  // order the serial engine's table would re-arm them in.
  std::vector<TimerRecord> SyntheticTimerRecords(SimTime barrier) const {
    std::vector<TimerRecord> records;
    const auto first = std::lower_bound(
        visits_.begin(), visits_.end(), barrier,
        [](const Visit& v, SimTime t) { return v.at < t; });
    for (auto it = first; it != visits_.end(); ++it) {
      records.push_back({kTimerVisit, it->at.micros(), 0, it->zone, it->cycle, 0.0});
    }
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      if (fleet_.alive(idx)) {
        records.push_back({kTimerSiteFail, fail_at_[idx].micros(), 0, idx,
                           static_cast<uint64_t>(life_[idx].micros()), 0.0});
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const TimerRecord& a, const TimerRecord& b) {
                       if (a.at_us != b.at_us) {
                         return a.at_us < b.at_us;
                       }
                       return a.tag == kTimerVisit && b.tag != kTimerVisit;
                     });
    for (size_t i = 0; i < records.size(); ++i) {
      records[i].seq = i;
    }
    return records;
  }

  void SaveCheckpoint(SimTime barrier) {
    const auto save_start = std::chrono::steady_clock::now();
    SnapshotMeta meta;
    meta.experiment = "century";
    meta.library_version = kCentsimVersion;
    meta.structural_digest = StructuralDigest();
    meta.barrier_us = barrier.micros();
    meta.seed = config_.seed;
    SnapshotWriter writer(std::move(meta));

    ByteWriter fleet;
    fleet.U64(config_.fleet_size);
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      EncodeFleetSlot(fleet_.SaveSlotState(idx), fleet);
    }
    fleet.U64(fleet_.class_count());
    for (uint32_t c = 0; c < fleet_.class_count(); ++c) {
      fleet.U64(fleet_.class_replacements(c));
    }
    writer.Add(kFleetChunk, fleet);

    // The serial accumulator integrates up to its last transition; the
    // sampled engine closes intervals instead, so the chunk is written
    // with last_change == barrier and the integral brought fully up to the
    // barrier (open intervals' shares added into a scratch copy).
    double alive_s = alive_site_seconds_;
    std::vector<double> yearly_partial = yearly_alive_seconds_;
    std::vector<double> diff = yearly_weight_diff_;
    std::vector<double> yearly;
    {
      std::swap(alive_s, alive_site_seconds_);
      std::swap(yearly_partial, yearly_alive_seconds_);
      std::swap(diff, yearly_weight_diff_);
      for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
        if (fleet_.alive(idx)) {
          AddAliveSpan(fleet_.deployed_at(idx), barrier, 1.0);
        }
      }
      yearly = IntegratedYearly();
      std::swap(alive_s, alive_site_seconds_);
      std::swap(yearly_partial, yearly_alive_seconds_);
      std::swap(diff, yearly_weight_diff_);
    }
    ByteWriter acc;
    acc.I64(barrier.micros());
    acc.F64(alive_s);
    acc.F64Vec(yearly);
    acc.U64(report_.total_failures);
    acc.U64(report_.total_replacements);
    acc.U64(report_.proactive_replacements);
    acc.U64(report_.units_deployed);
    writer.Add(kAccumChunk, acc);

    ByteWriter surv;
    const auto& observations = report_.unit_survival.observations();
    surv.U64(observations.size());
    for (const SurvivalObservation& o : observations) {
      surv.I64(o.time.micros());
      surv.U8(o.failed ? 1 : 0);
    }
    writer.Add(kSurvivalChunk, surv);

    ByteWriter timers;
    TimerTable::Encode(SyntheticTimerRecords(barrier), timers);
    writer.Add(kTimerChunk, timers);

    ByteWriter sched;
    sched.I64(barrier.micros());
    sched.U64(sim_.scheduler().executed_count());
    sched.U64(sim_.scheduler().late_schedule_count());
    writer.Add(kSchedChunk, sched);

    const std::string path =
        config_.snapshot.checkpoint_dir + "/" + CheckpointFileName(barrier.micros());
    std::string error;
    const uint64_t bytes = writer.Write(path, &error);
    if (bytes == 0) {
      std::fprintf(stderr, "[century-sampled] checkpoint write failed: %s\n",
                   error.c_str());
      return;
    }
    WriteLatestMarker(config_.snapshot.checkpoint_dir, path, barrier.micros());
    ++report_.checkpoints_written;
    report_.last_checkpoint_bytes = bytes;
    report_.last_checkpoint_path = path;
    report_.save_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count();
  }

  bool RestoreFrom(const std::string& path, std::string* error) {
    SnapshotReader reader;
    if (!reader.Open(path, error)) {
      return false;
    }
    if (reader.meta().experiment != "century") {
      *error = "snapshot is for experiment '" + reader.meta().experiment + "', not century";
      return false;
    }
    if (reader.meta().structural_digest != StructuralDigest()) {
      *error =
          "structural config mismatch (snapshot " + reader.meta().structural_digest +
          ", this run " + StructuralDigest() +
          "): seed/fleet/horizon must match the saving run; only policy fields may differ";
      return false;
    }

    ByteReader fleet = reader.Chunk(kFleetChunk);
    if (fleet.U64() != config_.fleet_size) {
      *error = "snapshot fleet size does not match config";
      return false;
    }
    for (uint32_t idx = 0; idx < config_.fleet_size && fleet.ok(); ++idx) {
      fleet_.RestoreSlotState(idx, DecodeFleetSlot(fleet));
    }
    if (fleet.U64() != fleet_.class_count()) {
      *error = "snapshot class count does not match config";
      return false;
    }
    for (uint32_t c = 0; c < fleet_.class_count() && fleet.ok(); ++c) {
      fleet_.RestoreClassReplacements(c, fleet.U64());
    }
    if (!fleet.ok()) {
      *error = "fleet chunk truncated";
      return false;
    }
    fleet_.RecountAggregates();

    ByteReader acc = reader.Chunk(kAccumChunk);
    const SimTime last_change = SimTime::Micros(acc.I64());
    alive_site_seconds_ = acc.F64();
    const std::vector<double> yearly = acc.F64Vec();
    report_.total_failures = acc.U64();
    report_.total_replacements = acc.U64();
    report_.proactive_replacements = acc.U64();
    report_.units_deployed = acc.U64();
    if (!acc.ok() || yearly.size() != yearly_alive_seconds_.size()) {
      *error = "accumulator chunk truncated or mis-shaped";
      return false;
    }
    yearly_alive_seconds_ = yearly;
    std::fill(yearly_weight_diff_.begin(), yearly_weight_diff_.end(), 0.0);

    ByteReader surv = reader.Chunk(kSurvivalChunk);
    const uint64_t observation_count = surv.U64();
    if (!surv.ok() || observation_count > surv.remaining() / 9) {
      *error = "survival chunk truncated";
      return false;
    }
    for (uint64_t i = 0; i < observation_count && surv.ok(); ++i) {
      const SimTime time = SimTime::Micros(surv.I64());
      const bool failed = surv.U8() != 0;
      report_.unit_survival.Observe(time, failed);
    }
    if (!surv.ok()) {
      *error = "survival chunk truncated";
      return false;
    }

    ByteReader sched = reader.Chunk(kSchedChunk);
    const SimTime barrier = SimTime::Micros(sched.I64());
    const uint64_t executed = sched.U64();
    const uint64_t late = sched.U64();
    if (!sched.ok()) {
      *error = "scheduler chunk truncated";
      return false;
    }
    sim_.scheduler().RestoreClock(barrier, executed, late);

    // Convert the serial accumulator into interval form: bring the global
    // integral up to the barrier (a serial save integrates only to its
    // last transition), then back out each open interval's prefix so the
    // eventual full-interval close does not double-count it.
    AddAliveSpan(last_change, barrier, static_cast<double>(fleet_.alive_count()));
    for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
      if (fleet_.alive(idx)) {
        AddAliveSpan(fleet_.deployed_at(idx), barrier, -1.0);
      }
    }

    // Timer records → walk columns. Visit records are redundant with the
    // re-recorded schedule (jitter draws are keyed identically), so only
    // failure records carry state.
    ByteReader tr = reader.Chunk(kTimerChunk);
    const std::vector<TimerRecord> records = TimerTable::Decode(tr);
    if (!tr.ok()) {
      *error = "timer chunk truncated";
      return false;
    }
    for (const TimerRecord& r : records) {
      if (r.tag == kTimerSiteFail) {
        const uint32_t idx = static_cast<uint32_t>(r.a);
        if (idx >= config_.fleet_size) {
          *error = "site failure record out of range";
          return false;
        }
        fail_at_[idx] = SimTime::Micros(r.at_us);
        life_[idx] = SimTime::Micros(static_cast<int64_t>(r.b));
      } else if (r.tag != kTimerVisit) {
        *error = "snapshot carries timer tags this driver does not register";
        return false;
      }
    }

    // Rebuild the transition calendar from the restored columns: alive
    // sites queue their pending failure; dead sites queue their revive at
    // the first visit at or after the barrier (any earlier visit would
    // have revived them before the snapshot was cut).
    if (use_calendar_) {
      for (std::vector<CalEntry>& bucket : calendar_) {
        bucket.clear();
      }
      for (uint32_t idx = 0; idx < config_.fleet_size; ++idx) {
        if (fleet_.alive(idx)) {
          CalendarPush(kCalFail, idx, fail_at_[idx]);
        } else {
          const std::vector<SimTime>& visits = zone_visits_[idx % ZoneCount()];
          const auto it = std::lower_bound(visits.begin(), visits.end(), barrier);
          if (it != visits.end()) {
            CalendarPush(kCalRevive, idx, *it);
          }
        }
      }
    }

    if (config_.snapshot.branch_salt != 0) {
      rng_ = rng_.Derive(config_.snapshot.branch_salt);
    }
    return true;
  }

  Simulation& sim_;
  const CenturyConfig& config_;
  CenturyReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  RandomStream rng_;
  const uint32_t years_;
  SurvivalTable life_table_;

  // Pre-recorded batch visit schedule (time-sorted; per-zone views).
  std::vector<Visit> visits_;
  std::vector<std::vector<SimTime>> zone_visits_;

  // Per-site walk columns: next failure time and the sampled life behind
  // it (valid while the site is alive).
  std::vector<SimTime> fail_at_;
  std::vector<SimTime> life_;

  // Transition calendar: a coarse time-bucketed queue of upcoming site
  // transitions, so fast-forward spans and window arming only touch sites
  // that actually transition instead of scanning the whole fleet. Entries
  // are invalidated lazily — a processed or superseded entry simply fails
  // its validity check when scanned (see WalkCalendar). Maintained only
  // with proactive refresh off; the merge walk covers the proactive case.
  struct CalEntry {
    int64_t at_us;
    uint32_t idx;
    uint32_t kind;  // kCalFail or kCalRevive.
  };
  static constexpr uint32_t kCalFail = 0;
  static constexpr uint32_t kCalRevive = 1;
  static constexpr int64_t kCalBucketUs = 14LL * 24 * 3600 * 1000000;  // 14 days.
  bool use_calendar_ = false;
  std::vector<std::vector<CalEntry>> calendar_;

  // Availability integrals (interval-close form of the serial engine's
  // transition accumulator).
  double alive_site_seconds_ = 0.0;
  std::vector<double> yearly_alive_seconds_;  // Partial-year contributions only.
  std::vector<double> yearly_weight_diff_;    // Full-year weights, difference form.

  // Detailed-window state.
  bool in_window_ = false;
  SimTime win_w0_;
  SimTime win_w1_;
  double win_alive_seconds_ = 0.0;
  // Open alive intervals at the current instant: count and the sum of
  // their window-clipped starts (seconds), so EndWindow is O(1).
  int64_t win_open_count_ = 0;
  double win_open_start_sum_s_ = 0.0;
  uint64_t win_fail_base_ = 0;
  uint64_t win_repl_base_ = 0;

  // Per-window metric observations (the controller reads these).
  SampleSet avail_samples_;
  SampleSet fail_samples_;
  SampleSet repl_samples_;

  int64_t next_grid_us_ = 0;  // 0 = checkpointing off.
};

}  // namespace

CenturyReport RunSampledCenturyScenario(const CenturyConfig& config) {
  CheckConfigOrDie("century-sampled", config.Validate());
  if (!config.sampling.enabled()) {
    CheckConfigOrDie("century-sampled",
                     {"RunSampledCenturyScenario requires sampling.mode == kSampled"});
  }
  Simulation sim(config.seed);
  sim.trace().set_min_level(TraceLevel::kFailure);
  sim.trace().EnableRetention(false);

  sim.scheduler().AttachRunControl(config.control);
  CenturyReport report;
  SampledCenturyRun run(sim, config, report);
  run.Run();
  sim.scheduler().DetachRunControl(config.control);
  return report;
}

}  // namespace centsim
