#include "src/core/district.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/city/deployment.h"
#include "src/reliability/component.h"
#include "src/sim/ensemble.h"
#include "src/sim/simulation.h"

namespace centsim {
namespace {

struct DeviceState {
  bool alive = false;
  uint32_t covering_operational = 0;  // Operational gateways in range.
  uint32_t zone = 0;
};

struct GatewayState {
  bool operational = false;
  std::vector<uint32_t> covered_devices;
};

}  // namespace

std::vector<std::string> DistrictConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (device_count == 0) {
    diagnostics.push_back("device_count is zero: a district needs at least one sensor site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (area_km2 <= 0.0) {
    diagnostics.push_back("non-positive area_km2: the district needs area to site sensors");
  }
  if (zone_grid == 0) {
    diagnostics.push_back("zone_grid is zero: batch projects need at least one zone");
  }
  if (gateway_range_m <= 0.0) {
    diagnostics.push_back("non-positive gateway_range_m: the gateway grid cannot be planned "
                          "from a zero coverage range");
  }
  if (batch_cycle.micros() <= 0) {
    diagnostics.push_back("non-positive batch_cycle: device replacement rides the roadworks "
                          "cadence, which must be positive");
  }
  if (gateway_repair_delay.micros() < 0) {
    diagnostics.push_back("negative gateway_repair_delay: repairs cannot complete in the past");
  }
  return diagnostics;
}

DistrictReport RunDistrictScenario(const DistrictConfig& config) {
  CheckConfigOrDie("district", config.Validate());
  Simulation sim(config.seed);
  sim.trace().EnableRetention(false);
  DistrictReport report;

  // --- Geometry ---------------------------------------------------------
  DeploymentPlan::Params dp;
  dp.site_count = config.device_count;
  dp.area_km2 = config.area_km2;
  dp.zone_grid = config.zone_grid;
  DeploymentPlan plan(dp, sim.StreamFor(0x646973740001ULL));
  const auto gateway_sites = plan.PlanGatewayGrid(config.gateway_range_m);
  report.gateway_count = static_cast<uint32_t>(gateway_sites.size());

  std::vector<DeviceState> devices(config.device_count);
  std::vector<GatewayState> gateways(gateway_sites.size());
  for (uint32_t d = 0; d < config.device_count; ++d) {
    devices[d].zone = plan.sites()[d].zone;
    for (uint32_t g = 0; g < gateway_sites.size(); ++g) {
      if (DistanceM(plan.sites()[d], gateway_sites[g]) <= config.gateway_range_m) {
        gateways[g].covered_devices.push_back(d);
      }
    }
  }
  std::vector<uint8_t> planned_cover(config.device_count, 0);
  for (const auto& gw : gateways) {
    for (uint32_t d : gw.covered_devices) {
      planned_cover[d] = 1;
    }
  }
  uint32_t covered_at_all = 0;
  for (uint8_t c : planned_cover) {
    covered_at_all += c;
  }
  report.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;

  // --- Availability integration -----------------------------------------
  const SeriesSystem device_bom = config.device_class == DeviceClassKind::kBatteryPowered
                                      ? SeriesSystem::BatteryPoweredNode()
                                      : SeriesSystem::EnergyHarvestingNode();
  const SeriesSystem gateway_bom = SeriesSystem::RaspberryPiGateway();
  RandomStream rng = sim.StreamFor(0x646973740002ULL);

  uint64_t alive_count = 0;
  uint64_t service_count = 0;  // Alive and covered.
  SimTime last_change;
  double alive_site_seconds = 0.0;
  double service_site_seconds = 0.0;
  const uint32_t years = static_cast<uint32_t>(std::ceil(config.horizon.ToYears()));
  std::vector<double> yearly_service_seconds(years, 0.0);

  auto in_service = [&](uint32_t d) {
    return devices[d].alive && devices[d].covering_operational > 0;
  };
  auto accumulate_to = [&](SimTime now) {
    if (now <= last_change) {
      return;
    }
    const double span = (now - last_change).ToSeconds();
    alive_site_seconds += span * static_cast<double>(alive_count);
    service_site_seconds += span * static_cast<double>(service_count);
    double t0 = last_change.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years - 1, static_cast<uint32_t>(t0 / year_s));
      const double seg = std::min(t1, (y + 1) * year_s) - t0;
      yearly_service_seconds[y] += seg * static_cast<double>(service_count);
      t0 += seg;
    }
    last_change = now;
  };

  // Gateway up/down transitions adjust every covered device's counter.
  std::function<void(uint32_t, bool)> set_gateway = [&](uint32_t g, bool up) {
    if (gateways[g].operational == up) {
      return;
    }
    accumulate_to(sim.Now());
    gateways[g].operational = up;
    for (uint32_t d : gateways[g].covered_devices) {
      const bool was = in_service(d);
      devices[d].covering_operational += up ? 1 : -1;
      const bool is = in_service(d);
      if (was && !is) {
        --service_count;
      } else if (!was && is) {
        ++service_count;
      }
    }
  };

  std::function<void(uint32_t)> schedule_gateway_failure = [&](uint32_t g) {
    RandomStream gw_rng = rng.Derive(0x67770000ULL + g * 131 + report.gateway_failures);
    const SimTime life = gateway_bom.SampleLife(gw_rng).life;
    sim.scheduler().ScheduleAfter(life, [&, g] {
      ++report.gateway_failures;
      set_gateway(g, false);
      sim.scheduler().ScheduleAfter(config.gateway_repair_delay, [&, g] {
        ++report.gateway_repairs;
        set_gateway(g, true);
        schedule_gateway_failure(g);
      });
    });
  };

  std::function<void(uint32_t)> deploy_device = [&](uint32_t d) {
    accumulate_to(sim.Now());
    if (!devices[d].alive) {
      ++alive_count;
      devices[d].alive = true;
      if (in_service(d)) {
        ++service_count;
      }
    }
    RandomStream dev_rng =
        rng.Derive(0x64650000ULL + static_cast<uint64_t>(d) * 977 + report.device_replacements);
    const SimTime life = device_bom.SampleLife(dev_rng).life;
    sim.scheduler().ScheduleAfter(life, [&, d] {
      accumulate_to(sim.Now());
      if (in_service(d)) {
        --service_count;
      }
      devices[d].alive = false;
      --alive_count;
      ++report.device_failures;
    });
  };

  // --- Wiring ------------------------------------------------------------
  BatchProjectParams batch;
  batch.zone_count = config.zone_grid * config.zone_grid;
  batch.cycle_period = config.batch_cycle;
  BatchProjectScheduler batches(sim, batch, [&](uint32_t zone, uint32_t) {
    for (uint32_t d = 0; d < config.device_count; ++d) {
      if (devices[d].zone == zone && !devices[d].alive) {
        ++report.device_replacements;
        deploy_device(d);
      }
    }
  });
  batches.ScheduleThrough(config.horizon);

  for (uint32_t g = 0; g < gateways.size(); ++g) {
    set_gateway(g, true);
    schedule_gateway_failure(g);
  }
  for (uint32_t d = 0; d < config.device_count; ++d) {
    deploy_device(d);
  }

  sim.RunUntil(config.horizon);
  accumulate_to(config.horizon);

  const double total = config.horizon.ToSeconds() * config.device_count;
  report.mean_device_availability = alive_site_seconds / total;
  report.mean_service_availability = service_site_seconds / total;
  report.yearly_service.resize(years);
  const double year_total = SimTime::Years(1).ToSeconds() * config.device_count;
  for (uint32_t y = 0; y < years; ++y) {
    report.yearly_service[y] = yearly_service_seconds[y] / year_total;
    report.min_yearly_service = std::min(report.min_yearly_service, report.yearly_service[y]);
  }
  return report;
}

}  // namespace centsim
