#include "src/core/district.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/city/deployment.h"
#include "src/core/fleet.h"
#include "src/reliability/component.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"

namespace centsim {
namespace {

// District driver over DeviceFleet columns. Device hot state (alive flag,
// operational-gateways-covering count, zone) lives in the fleet's SoA
// columns; coverage is a CSR built with a spatial grid instead of the old
// quadratic all-pairs scan; zone membership is precomputed as ascending
// per-zone site lists so a batch visit walks its own zone instead of the
// whole fleet. Scheduled closures capture [this, index] — two words, well
// inside the event core's inline buffer.
class DistrictRun {
 public:
  DistrictRun(Simulation& sim, const DistrictConfig& config, DistrictReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        rng_(sim.StreamFor(0x646973740002ULL)),
        gateway_bom_(SeriesSystem::RaspberryPiGateway()),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_service_seconds_(years_, 0.0) {
    // --- Geometry --------------------------------------------------------
    DeploymentPlan::Params dp;
    dp.site_count = config.device_count;
    dp.area_km2 = config.area_km2;
    dp.zone_grid = config.zone_grid;
    DeploymentPlan plan(dp, sim.StreamFor(0x646973740001ULL));
    gateway_sites_ = plan.PlanGatewayGrid(config.gateway_range_m);
    report_.gateway_count = static_cast<uint32_t>(gateway_sites_.size());

    DeviceClassSpec spec;
    spec.name = "district-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.AddSites(plan, cls_, HarvesterModel());
    if (config.metrics != nullptr) {
      fleet_.EnableFleetMetrics();
    }

    zone_sites_.resize(plan.zone_count());
    for (uint32_t d = 0; d < config.device_count; ++d) {
      zone_sites_[fleet_.zone(d)].push_back(d);
    }

    coverage_ = BuildCoverageCsr(plan.sites(), gateway_sites_, config.gateway_range_m);
    gateway_up_.assign(gateway_sites_.size(), 0);

    std::vector<uint8_t> planned_cover(config.device_count, 0);
    for (uint32_t d : coverage_.site_ids) {
      planned_cover[d] = 1;
    }
    uint32_t covered_at_all = 0;
    for (uint8_t c : planned_cover) {
      covered_at_all += c;
    }
    report_.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;
  }

  void Run() {
    BatchProjectParams batch;
    batch.zone_count = config_.zone_grid * config_.zone_grid;
    batch.cycle_period = config_.batch_cycle;
    BatchProjectScheduler batches(sim_, batch,
                                  [this](uint32_t zone, uint32_t) { OnZoneVisit(zone); });
    batches.ScheduleThrough(config_.horizon);

    for (uint32_t g = 0; g < gateway_sites_.size(); ++g) {
      SetGateway(g, true);
      ScheduleGatewayFailure(g);
    }
    for (uint32_t d = 0; d < config_.device_count; ++d) {
      DeployDevice(d);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    sim_.RunUntil(config_.horizon);
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    AccumulateTo(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();
    report_.fleet_bytes_per_device = fleet_.BytesPerDevice();

    const double total = config_.horizon.ToSeconds() * config_.device_count;
    report_.mean_device_availability = alive_site_seconds_ / total;
    report_.mean_service_availability = service_site_seconds_ / total;
    report_.yearly_service.resize(years_);
    const double year_total = SimTime::Years(1).ToSeconds() * config_.device_count;
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_service[y] = yearly_service_seconds_[y] / year_total;
      report_.min_yearly_service =
          std::min(report_.min_yearly_service, report_.yearly_service[y]);
    }
  }

 private:
  bool InService(uint32_t d) const { return fleet_.alive(d) && fleet_.covering(d) > 0; }

  void AccumulateTo(SimTime now) {
    if (now <= last_change_) {
      return;
    }
    const double span = (now - last_change_).ToSeconds();
    alive_site_seconds_ += span * static_cast<double>(fleet_.alive_count());
    service_site_seconds_ += span * static_cast<double>(service_count_);
    double t0 = last_change_.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
      const double seg = std::min(t1, (y + 1) * year_s) - t0;
      yearly_service_seconds_[y] += seg * static_cast<double>(service_count_);
      t0 += seg;
    }
    last_change_ = now;
  }

  // Gateway up/down transitions adjust every covered device's counter.
  void SetGateway(uint32_t g, bool up) {
    if ((gateway_up_[g] != 0) == up) {
      return;
    }
    AccumulateTo(sim_.Now());
    gateway_up_[g] = up ? 1 : 0;
    const int delta = up ? 1 : -1;
    for (uint32_t k = coverage_.begin(g); k < coverage_.end(g); ++k) {
      const uint32_t d = coverage_.site_ids[k];
      const bool was = InService(d);
      fleet_.AddCoveringAt(d, delta);
      const bool is = InService(d);
      if (was && !is) {
        --service_count_;
      } else if (!was && is) {
        ++service_count_;
      }
    }
  }

  void ScheduleGatewayFailure(uint32_t g) {
    RandomStream gw_rng = rng_.Derive(0x67770000ULL + g * 131 + report_.gateway_failures);
    const SimTime life = gateway_bom_.SampleLife(gw_rng).life;
    sim_.scheduler().ScheduleAfter(life, [this, g] {
      ++report_.gateway_failures;
      RecordControl("district.gateway_fail", g);
      SetGateway(g, false);
      sim_.scheduler().ScheduleAfter(config_.gateway_repair_delay, [this, g] {
        ++report_.gateway_repairs;
        RecordControl("district.gateway_repair", g);
        SetGateway(g, true);
        ScheduleGatewayFailure(g);
      });
    });
  }

  void DeployDevice(uint32_t d) {
    AccumulateTo(sim_.Now());
    if (!fleet_.alive(d)) {
      fleet_.DeployAt(d);
      if (InService(d)) {
        ++service_count_;
      }
    }
    RandomStream dev_rng = rng_.Derive(0x64650000ULL + static_cast<uint64_t>(d) * 977 +
                                       report_.device_replacements);
    const SimTime life = fleet_.class_spec(cls_).hardware.SampleLife(dev_rng).life;
    sim_.scheduler().ScheduleAfter(life, [this, d] {
      AccumulateTo(sim_.Now());
      if (InService(d)) {
        --service_count_;
      }
      fleet_.MarkFailedAt(d);
      ++report_.device_failures;
    });
  }

  void OnZoneVisit(uint32_t zone) {
    RecordControl("district.zone_visit", zone);
    for (uint32_t d : zone_sites_[zone]) {
      if (!fleet_.alive(d)) {
        ++report_.device_replacements;
        DeployDevice(d);
      }
    }
  }

  // Subsystem flight-recorder append (no-op without a recorder): rare
  // lifecycle transitions worth having in a stall/crash dump.
  void RecordControl(const char* category, uint64_t arg) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record(category, sim_.Now(), arg);
    }
  }

  Simulation& sim_;
  const DistrictConfig& config_;
  DistrictReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  RandomStream rng_;
  const SeriesSystem gateway_bom_;
  const uint32_t years_;

  std::vector<Site> gateway_sites_;
  CoverageCsr coverage_;
  std::vector<uint8_t> gateway_up_;
  std::vector<std::vector<uint32_t>> zone_sites_;  // Ascending site indices.

  uint64_t service_count_ = 0;  // Alive and covered.
  SimTime last_change_;
  double alive_site_seconds_ = 0.0;
  double service_site_seconds_ = 0.0;
  std::vector<double> yearly_service_seconds_;
};

}  // namespace

std::vector<std::string> DistrictConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (device_count == 0) {
    diagnostics.push_back("device_count is zero: a district needs at least one sensor site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (area_km2 <= 0.0) {
    diagnostics.push_back("non-positive area_km2: the district needs area to site sensors");
  }
  if (zone_grid == 0) {
    diagnostics.push_back("zone_grid is zero: batch projects need at least one zone");
  }
  if (gateway_range_m <= 0.0) {
    diagnostics.push_back("non-positive gateway_range_m: the gateway grid cannot be planned "
                          "from a zero coverage range");
  }
  if (batch_cycle.micros() <= 0) {
    diagnostics.push_back("non-positive batch_cycle: device replacement rides the roadworks "
                          "cadence, which must be positive");
  }
  if (gateway_repair_delay.micros() < 0) {
    diagnostics.push_back("negative gateway_repair_delay: repairs cannot complete in the past");
  }
  return diagnostics;
}

DistrictReport RunDistrictScenario(const DistrictConfig& config) {
  CheckConfigOrDie("district", config.Validate());
  Simulation sim(config.seed);
  sim.trace().EnableRetention(false);
  // Bind instruments before construction so class interning can grab them.
  sim.SetMetrics(config.metrics);
  sim.scheduler().AttachRunControl(config.control);

  DistrictReport report;
  const auto build_start = std::chrono::steady_clock::now();
  DistrictRun run(sim, config, report);
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  run.Run();

  // Slot cleared first inside DetachRunControl: after this line no
  // watchdog thread can reach the scheduler we are about to destroy.
  sim.scheduler().DetachRunControl(config.control);
  sim.SetMetrics(nullptr);
  return report;
}

}  // namespace centsim
