#include "src/core/district.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "src/city/deployment.h"
#include "src/core/fleet.h"
#include "src/core/fleet_codec.h"
#include "src/reliability/component.h"
#include "src/sim/ensemble.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/simulation.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/timer_table.h"
#include "src/telemetry/run_manifest.h"

namespace centsim {
namespace {

// Domain timer tags (TimerRecord.tag) — the district's event-reconstruction
// registry. Operand meanings: visit a=zone b=cycle; gateway timers a=g;
// device failure a=slot.
constexpr uint64_t kTimerVisit = 1;
constexpr uint64_t kTimerGatewayFail = 2;
constexpr uint64_t kTimerGatewayRepair = 3;
constexpr uint64_t kTimerDeviceFail = 4;

// Snapshot chunk tags.
constexpr uint32_t kFleetChunk = SnapshotTag('f', 'l', 'e', 't');
constexpr uint32_t kGatewayChunk = SnapshotTag('g', 'w', 's', 't');
constexpr uint32_t kAccumChunk = SnapshotTag('a', 'c', 'c', 'u');
constexpr uint32_t kTimerChunk = SnapshotTag('t', 'i', 'm', 'r');
constexpr uint32_t kSchedChunk = SnapshotTag('s', 'c', 'h', 'd');
constexpr uint32_t kMetricsChunk = SnapshotTag('m', 'e', 't', 'r');

// District driver over DeviceFleet columns. Device hot state (alive flag,
// operational-gateways-covering count, zone) lives in the fleet's SoA
// columns; coverage is a CSR built with a spatial grid instead of the old
// quadratic all-pairs scan; zone membership is precomputed as ascending
// per-zone site lists so a batch visit walks its own zone instead of the
// whole fleet. Scheduled closures capture [this, index] — two words, well
// inside the event core's inline buffer.
//
// All domain timers route through a TimerTable, so a checkpoint at a
// quiescent barrier can save every pending timer as a plain record and a
// restored run can re-arm them in (time, seq) order — the registry pattern
// that makes save-at-year-N/restore runs bit-identical to straight runs.
class DistrictRun {
 public:
  DistrictRun(Simulation& sim, const DistrictConfig& config, DistrictReport& report)
      : sim_(sim),
        config_(config),
        report_(report),
        fleet_(sim),
        // Timer records exist only to be Save()d; a run that will never
        // write a checkpoint routes timers through untracked (free).
        timers_(sim.scheduler(), config.snapshot.checkpoint_every.micros() > 0),
        rng_(sim.StreamFor(0x646973740002ULL)),
        gateway_bom_(SeriesSystem::RaspberryPiGateway()),
        years_(static_cast<uint32_t>(std::ceil(config.horizon.ToYears()))),
        yearly_service_seconds_(years_, 0.0) {
    // --- Geometry --------------------------------------------------------
    DeploymentPlan::Params dp;
    dp.site_count = config.device_count;
    dp.area_km2 = config.area_km2;
    dp.zone_grid = config.zone_grid;
    DeploymentPlan plan(dp, sim.StreamFor(0x646973740001ULL));
    gateway_sites_ = plan.PlanGatewayGrid(config.gateway_range_m);
    report_.gateway_count = static_cast<uint32_t>(gateway_sites_.size());

    DeviceClassSpec spec;
    spec.name = "district-site";
    spec.hardware = config.device_class == DeviceClassKind::kBatteryPowered
                        ? SeriesSystem::BatteryPoweredNode()
                        : SeriesSystem::EnergyHarvestingNode();
    cls_ = fleet_.InternClass(spec);
    fleet_.AddSites(plan, cls_, HarvesterModel());
    if (config.metrics != nullptr) {
      fleet_.EnableFleetMetrics();
    }

    zone_sites_.resize(plan.zone_count());
    for (uint32_t d = 0; d < config.device_count; ++d) {
      zone_sites_[fleet_.zone(d)].push_back(d);
    }

    coverage_ = BuildCoverageCsr(plan.sites(), gateway_sites_, config.gateway_range_m);
    gateway_up_.assign(gateway_sites_.size(), 0);

    std::vector<uint8_t> planned_cover(config.device_count, 0);
    for (uint32_t d : coverage_.site_ids) {
      planned_cover[d] = 1;
    }
    uint32_t covered_at_all = 0;
    for (uint8_t c : planned_cover) {
      covered_at_all += c;
    }
    report_.initial_coverage = static_cast<double>(covered_at_all) / config.device_count;
  }

  void Run() {
    BatchProjectParams batch;
    batch.zone_count = config_.zone_grid * config_.zone_grid;
    batch.cycle_period = config_.batch_cycle;
    BatchProjectScheduler batches(sim_, batch,
                                  [this](uint32_t zone, uint32_t) { OnZoneVisit(zone); });
    batches.SetVisitScheduler(
        [this](SimTime at, uint32_t zone, uint32_t cycle) { ArmVisit(at, zone, cycle); });
    RegisterTimerRearms();

    std::string resume_path = config_.snapshot.resume_from;
    if (resume_path.empty() && config_.snapshot.resume_latest) {
      resume_path = FindLatestValidSnapshot(config_.snapshot.checkpoint_dir);
    }
    if (!resume_path.empty()) {
      const auto restore_start = std::chrono::steady_clock::now();
      std::string error;
      if (!RestoreFrom(resume_path, &error)) {
        CheckConfigOrDie("district", {"cannot resume from " + resume_path + ": " + error});
      }
      report_.restore_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - restore_start)
                                    .count();
    } else {
      batches.ScheduleThrough(config_.horizon);
      for (uint32_t g = 0; g < gateway_sites_.size(); ++g) {
        SetGateway(g, true);
        ScheduleGatewayFailure(g);
      }
      for (uint32_t d = 0; d < config_.device_count; ++d) {
        DeployDevice(d);
      }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    if (config_.snapshot.checkpoint_every.micros() > 0) {
      // Checkpoints land on fixed multiples of the period regardless of
      // where the run (re)started, so straight and resumed runs agree on
      // barrier times.
      const int64_t every = config_.snapshot.checkpoint_every.micros();
      std::error_code ec;
      std::filesystem::create_directories(config_.snapshot.checkpoint_dir, ec);
      for (int64_t next = (sim_.Now().micros() / every + 1) * every;
           next < config_.horizon.micros(); next += every) {
        sim_.scheduler().DrainToBarrier(SimTime::Micros(next));
        SaveCheckpoint(SimTime::Micros(next));
      }
    }
    sim_.RunUntil(config_.horizon);
    report_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count() -
        report_.save_seconds;
    AccumulateTo(config_.horizon);
    report_.events_executed = sim_.scheduler().executed_count();
    report_.fleet_bytes_per_device = fleet_.BytesPerDevice();

    const double total = config_.horizon.ToSeconds() * config_.device_count;
    report_.mean_device_availability = alive_site_seconds_ / total;
    report_.mean_service_availability = service_site_seconds_ / total;
    report_.yearly_service.resize(years_);
    const double year_total = SimTime::Years(1).ToSeconds() * config_.device_count;
    for (uint32_t y = 0; y < years_; ++y) {
      report_.yearly_service[y] = yearly_service_seconds_[y] / year_total;
      report_.min_yearly_service =
          std::min(report_.min_yearly_service, report_.yearly_service[y]);
    }
  }

 private:
  bool InService(uint32_t d) const { return fleet_.alive(d) && fleet_.covering(d) > 0; }

  void AccumulateTo(SimTime now) {
    if (now <= last_change_) {
      return;
    }
    const double span = (now - last_change_).ToSeconds();
    alive_site_seconds_ += span * static_cast<double>(fleet_.alive_count());
    service_site_seconds_ += span * static_cast<double>(service_count_);
    double t0 = last_change_.ToSeconds();
    const double t1 = now.ToSeconds();
    const double year_s = SimTime::Years(1).ToSeconds();
    while (t0 < t1) {
      const uint32_t y = std::min<uint32_t>(years_ - 1, static_cast<uint32_t>(t0 / year_s));
      const double seg = std::min(t1, (y + 1) * year_s) - t0;
      yearly_service_seconds_[y] += seg * static_cast<double>(service_count_);
      t0 += seg;
    }
    last_change_ = now;
  }

  // Gateway up/down transitions adjust every covered device's counter.
  void SetGateway(uint32_t g, bool up) {
    if ((gateway_up_[g] != 0) == up) {
      return;
    }
    AccumulateTo(sim_.Now());
    gateway_up_[g] = up ? 1 : 0;
    const int delta = up ? 1 : -1;
    for (uint32_t k = coverage_.begin(g); k < coverage_.end(g); ++k) {
      const uint32_t d = coverage_.site_ids[k];
      const bool was = InService(d);
      fleet_.AddCoveringAt(d, delta);
      const bool is = InService(d);
      if (was && !is) {
        --service_count_;
      } else if (!was && is) {
        ++service_count_;
      }
    }
  }

  // --- Domain timers (all routed through the TimerTable) ------------------

  void ArmVisit(SimTime at, uint32_t zone, uint32_t cycle) {
    timers_.Schedule(at, kTimerVisit, zone, cycle, 0.0,
                     [this, zone] { OnZoneVisit(zone); });
  }

  void ArmGatewayFailure(SimTime at, uint32_t g) {
    timers_.Schedule(at, kTimerGatewayFail, g, 0, 0.0, [this, g] { OnGatewayFailure(g); });
  }

  void ArmGatewayRepair(SimTime at, uint32_t g) {
    timers_.Schedule(at, kTimerGatewayRepair, g, 0, 0.0, [this, g] { OnGatewayRepair(g); });
  }

  void ArmDeviceFailure(SimTime at, uint32_t d) {
    timers_.Schedule(at, kTimerDeviceFail, d, 0, 0.0, [this, d] { OnDeviceFailure(d); });
  }

  void RegisterTimerRearms() {
    timers_.Register(kTimerVisit, [this](const TimerRecord& r) {
      ArmVisit(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a),
               static_cast<uint32_t>(r.b));
    });
    timers_.Register(kTimerGatewayFail, [this](const TimerRecord& r) {
      ArmGatewayFailure(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a));
    });
    timers_.Register(kTimerGatewayRepair, [this](const TimerRecord& r) {
      ArmGatewayRepair(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a));
    });
    timers_.Register(kTimerDeviceFail, [this](const TimerRecord& r) {
      ArmDeviceFailure(SimTime::Micros(r.at_us), static_cast<uint32_t>(r.a));
    });
  }

  void ScheduleGatewayFailure(uint32_t g) {
    RandomStream gw_rng = rng_.Derive(0x67770000ULL + g * 131 + report_.gateway_failures);
    const SimTime life = gateway_bom_.SampleLife(gw_rng).life;
    ArmGatewayFailure(sim_.Now() + life, g);
  }

  void OnGatewayFailure(uint32_t g) {
    ++report_.gateway_failures;
    RecordControl("district.gateway_fail", g);
    SetGateway(g, false);
    ArmGatewayRepair(sim_.Now() + config_.gateway_repair_delay, g);
  }

  void OnGatewayRepair(uint32_t g) {
    ++report_.gateway_repairs;
    RecordControl("district.gateway_repair", g);
    SetGateway(g, true);
    ScheduleGatewayFailure(g);
  }

  void DeployDevice(uint32_t d) {
    AccumulateTo(sim_.Now());
    if (!fleet_.alive(d)) {
      fleet_.DeployAt(d);
      if (InService(d)) {
        ++service_count_;
      }
    }
    RandomStream dev_rng = rng_.Derive(0x64650000ULL + static_cast<uint64_t>(d) * 977 +
                                       report_.device_replacements);
    const SimTime life = fleet_.class_spec(cls_).hardware.SampleLife(dev_rng).life;
    ArmDeviceFailure(sim_.Now() + life, d);
  }

  void OnDeviceFailure(uint32_t d) {
    AccumulateTo(sim_.Now());
    if (InService(d)) {
      --service_count_;
    }
    fleet_.MarkFailedAt(d);
    ++report_.device_failures;
  }

  void OnZoneVisit(uint32_t zone) {
    RecordControl("district.zone_visit", zone);
    for (uint32_t d : zone_sites_[zone]) {
      if (!fleet_.alive(d)) {
        ++report_.device_replacements;
        DeployDevice(d);
      }
    }
  }

  // --- Checkpoint/restore -------------------------------------------------

  // Canonical encoding of everything the constructor rebuilds from config.
  // Two runs with equal digests rebuild identical geometry, coverage, zone
  // lists, and RNG derivation roots, so overlaying a snapshot's mutable
  // state is sound. Policy fields consumed at event time (repair delay) are
  // deliberately absent — those are what branches vary.
  std::string StructuralDigest() const {
    ByteWriter w;
    w.U64(config_.seed);
    w.U32(config_.device_count);
    w.F64(config_.area_km2);
    w.U32(config_.zone_grid);
    w.I64(config_.horizon.micros());
    w.F64(config_.gateway_range_m);
    w.I64(config_.batch_cycle.micros());
    w.U8(static_cast<uint8_t>(config_.device_class));
    return StructuralDigestHex(w);
  }

  void SaveCheckpoint(SimTime barrier) {
    const auto save_start = std::chrono::steady_clock::now();
    SnapshotMeta meta;
    meta.experiment = "district";
    meta.library_version = kCentsimVersion;
    meta.structural_digest = StructuralDigest();
    meta.barrier_us = barrier.micros();
    meta.seed = config_.seed;
    SnapshotWriter writer(std::move(meta));

    ByteWriter fleet;
    fleet.U64(config_.device_count);
    for (uint32_t d = 0; d < config_.device_count; ++d) {
      EncodeFleetSlot(fleet_.SaveSlotState(d), fleet);
    }
    fleet.U64(fleet_.class_count());
    for (uint32_t c = 0; c < fleet_.class_count(); ++c) {
      fleet.U64(fleet_.class_replacements(c));
    }
    writer.Add(kFleetChunk, fleet);

    ByteWriter gw;
    gw.U64(gateway_up_.size());
    for (uint8_t up : gateway_up_) {
      gw.U8(up);
    }
    writer.Add(kGatewayChunk, gw);

    ByteWriter acc;
    acc.U64(service_count_);
    acc.I64(last_change_.micros());
    acc.F64(alive_site_seconds_);
    acc.F64(service_site_seconds_);
    acc.F64Vec(yearly_service_seconds_);
    acc.U64(report_.device_failures);
    acc.U64(report_.device_replacements);
    acc.U64(report_.gateway_failures);
    acc.U64(report_.gateway_repairs);
    writer.Add(kAccumChunk, acc);

    ByteWriter timers;
    TimerTable::Encode(timers_.Save(), timers);
    writer.Add(kTimerChunk, timers);

    ByteWriter sched;
    sched.I64(sim_.Now().micros());
    sched.U64(sim_.scheduler().executed_count());
    sched.U64(sim_.scheduler().late_schedule_count());
    writer.Add(kSchedChunk, sched);

    if (config_.metrics != nullptr) {
      ByteWriter m;
      EncodeMetrics(*config_.metrics, m);
      writer.Add(kMetricsChunk, m);
    }

    const std::string path =
        config_.snapshot.checkpoint_dir + "/" + CheckpointFileName(barrier.micros());
    std::string error;
    const uint64_t bytes = writer.Write(path, &error);
    if (bytes == 0) {
      std::fprintf(stderr, "[district] checkpoint write failed: %s\n", error.c_str());
      return;
    }
    // Marker only after the snapshot is durable: readers of LATEST.json
    // (resume, the run-status watchdog) always see a complete checkpoint.
    WriteLatestMarker(config_.snapshot.checkpoint_dir, path, barrier.micros());
    ++report_.checkpoints_written;
    report_.last_checkpoint_bytes = bytes;
    report_.last_checkpoint_path = path;
    report_.save_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count();
    RecordControl("district.checkpoint", static_cast<uint64_t>(barrier.micros()));
  }

  bool RestoreFrom(const std::string& path, std::string* error) {
    SnapshotReader reader;
    if (!reader.Open(path, error)) {
      return false;
    }
    if (reader.meta().experiment != "district") {
      *error = "snapshot is for experiment '" + reader.meta().experiment + "', not district";
      return false;
    }
    if (reader.meta().structural_digest != StructuralDigest()) {
      *error =
          "structural config mismatch (snapshot " + reader.meta().structural_digest +
          ", this run " + StructuralDigest() +
          "): seed/geometry/horizon must match the saving run; only policy fields may differ";
      return false;
    }

    ByteReader fleet = reader.Chunk(kFleetChunk);
    if (fleet.U64() != config_.device_count) {
      *error = "snapshot fleet size does not match config";
      return false;
    }
    for (uint32_t d = 0; d < config_.device_count && fleet.ok(); ++d) {
      fleet_.RestoreSlotState(d, DecodeFleetSlot(fleet));
    }
    if (fleet.U64() != fleet_.class_count()) {
      *error = "snapshot class count does not match config";
      return false;
    }
    for (uint32_t c = 0; c < fleet_.class_count() && fleet.ok(); ++c) {
      fleet_.RestoreClassReplacements(c, fleet.U64());
    }
    if (!fleet.ok()) {
      *error = "fleet chunk truncated";
      return false;
    }

    ByteReader gw = reader.Chunk(kGatewayChunk);
    if (gw.U64() != gateway_up_.size()) {
      *error = "snapshot gateway count does not match config";
      return false;
    }
    for (size_t g = 0; g < gateway_up_.size() && gw.ok(); ++g) {
      gateway_up_[g] = gw.U8();
    }
    if (!gw.ok()) {
      *error = "gateway chunk truncated";
      return false;
    }

    ByteReader acc = reader.Chunk(kAccumChunk);
    service_count_ = acc.U64();
    last_change_ = SimTime::Micros(acc.I64());
    alive_site_seconds_ = acc.F64();
    service_site_seconds_ = acc.F64();
    const std::vector<double> yearly = acc.F64Vec();
    report_.device_failures = acc.U64();
    report_.device_replacements = acc.U64();
    report_.gateway_failures = acc.U64();
    report_.gateway_repairs = acc.U64();
    if (!acc.ok() || yearly.size() != yearly_service_seconds_.size()) {
      *error = "accumulator chunk truncated or mis-shaped";
      return false;
    }
    yearly_service_seconds_ = yearly;

    if (config_.metrics != nullptr && reader.HasChunk(kMetricsChunk)) {
      ByteReader m = reader.Chunk(kMetricsChunk);
      if (DecodeMetricsOverlay(m, *config_.metrics) == SIZE_MAX) {
        *error = "metrics chunk undecodable";
        return false;
      }
    }
    fleet_.RecountAggregates();

    ByteReader sched = reader.Chunk(kSchedChunk);
    const SimTime now = SimTime::Micros(sched.I64());
    const uint64_t executed = sched.U64();
    const uint64_t late = sched.U64();
    if (!sched.ok()) {
      *error = "scheduler chunk truncated";
      return false;
    }
    // Clock before timers: re-armed ScheduleAt calls must see the barrier
    // as "now" so none of them count as late.
    sim_.scheduler().RestoreClock(now, executed, late);

    ByteReader tr = reader.Chunk(kTimerChunk);
    const std::vector<TimerRecord> records = TimerTable::Decode(tr);
    if (!tr.ok()) {
      *error = "timer chunk truncated";
      return false;
    }
    if (timers_.Restore(records) != 0) {
      *error = "snapshot carries timer tags this driver does not register";
      return false;
    }

    // What-if divergence: re-key the driver's RNG root so post-restore
    // lifetime draws explore a different future than the parent run. The
    // default (salt 0) keeps the parent's streams — common random numbers.
    if (config_.snapshot.branch_salt != 0) {
      rng_ = rng_.Derive(config_.snapshot.branch_salt);
    }
    return true;
  }

  // Subsystem flight-recorder append (no-op without a recorder): rare
  // lifecycle transitions worth having in a stall/crash dump.
  void RecordControl(const char* category, uint64_t arg) {
    if (config_.control.recorder != nullptr) {
      config_.control.recorder->Record(category, sim_.Now(), arg);
    }
  }

  Simulation& sim_;
  const DistrictConfig& config_;
  DistrictReport& report_;
  DeviceFleet fleet_;
  uint32_t cls_ = 0;
  TimerTable timers_;
  RandomStream rng_;
  const SeriesSystem gateway_bom_;
  const uint32_t years_;

  std::vector<Site> gateway_sites_;
  CoverageCsr coverage_;
  std::vector<uint8_t> gateway_up_;
  std::vector<std::vector<uint32_t>> zone_sites_;  // Ascending site indices.

  uint64_t service_count_ = 0;  // Alive and covered.
  SimTime last_change_;
  double alive_site_seconds_ = 0.0;
  double service_site_seconds_ = 0.0;
  std::vector<double> yearly_service_seconds_;
};

}  // namespace

std::vector<std::string> DistrictConfig::Validate() const {
  std::vector<std::string> diagnostics;
  if (device_count == 0) {
    diagnostics.push_back("device_count is zero: a district needs at least one sensor site");
  }
  if (horizon.micros() <= 0) {
    diagnostics.push_back("non-positive horizon (" + horizon.ToString() +
                          "): set horizon to a positive duration");
  }
  if (area_km2 <= 0.0) {
    diagnostics.push_back("non-positive area_km2: the district needs area to site sensors");
  }
  if (zone_grid == 0) {
    diagnostics.push_back("zone_grid is zero: batch projects need at least one zone");
  }
  if (gateway_range_m <= 0.0) {
    diagnostics.push_back("non-positive gateway_range_m: the gateway grid cannot be planned "
                          "from a zero coverage range");
  }
  if (batch_cycle.micros() <= 0) {
    diagnostics.push_back("non-positive batch_cycle: device replacement rides the roadworks "
                          "cadence, which must be positive");
  }
  if (gateway_repair_delay.micros() < 0) {
    diagnostics.push_back("negative gateway_repair_delay: repairs cannot complete in the past");
  }
  for (std::string& diagnostic : snapshot.Validate()) {
    diagnostics.push_back(std::move(diagnostic));
  }
  for (std::string& diagnostic : shard.Validate()) {
    diagnostics.push_back(std::move(diagnostic));
  }
  if (sampling.enabled()) {
    for (std::string& diagnostic : sampling.Validate()) {
      diagnostics.push_back(std::move(diagnostic));
    }
    if (shard.enabled()) {
      diagnostics.push_back(
          "sampling and sharding are mutually exclusive: pick one engine");
    }
    if (snapshot.checkpoint_every.micros() > 0) {
      diagnostics.push_back(
          "sampled district runs restore from serial checkpoints but do not "
          "write them: clear snapshot.checkpoint_every");
    }
  }
  return diagnostics;
}

DistrictReport RunDistrictScenario(const DistrictConfig& config) {
  if (config.sampling.enabled()) {
    return RunSampledDistrictScenario(config);
  }
  if (config.shard.enabled()) {
    return RunShardedDistrictScenario(config);
  }
  CheckConfigOrDie("district", config.Validate());
  Simulation sim(config.seed);
  sim.trace().EnableRetention(false);
  // Bind instruments before construction so class interning can grab them.
  sim.SetMetrics(config.metrics);
  sim.scheduler().AttachRunControl(config.control);

  DistrictReport report;
  const auto build_start = std::chrono::steady_clock::now();
  DistrictRun run(sim, config, report);
  report.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  run.Run();

  // Slot cleared first inside DetachRunControl: after this line no
  // watchdog thread can reach the scheduler we are about to destroy.
  sim.scheduler().DetachRunControl(config.control);
  sim.SetMetrics(nullptr);
  return report;
}

}  // namespace centsim
