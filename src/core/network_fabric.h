// The uplink pipeline: given a transmit-only device's frame, decide its
// fate across the access channel, gateway, backhaul, and cloud tiers, and
// attribute every loss to the tier that caused it (Figure 1 accounting).
//
// Devices are broadcast transmitters: every reachable, technology-matching
// gateway may hear a frame; the frame is delivered if at least one of them
// receives it (PHY + collision draws) and forwards it through its backhaul
// to an operational endpoint.

#ifndef SRC_CORE_NETWORK_FABRIC_H_
#define SRC_CORE_NETWORK_FABRIC_H_

#include <array>
#include <string>
#include <vector>

#include "src/core/hierarchy.h"
#include "src/net/cloud_endpoint.h"
#include "src/net/gateway.h"
#include "src/net/network_server.h"
#include "src/net/packet.h"
#include "src/radio/link_budget.h"
#include "src/radio/lora.h"
#include "src/sim/simulation.h"

namespace centsim {

class NetworkFabric {
 public:
  explicit NetworkFabric(Simulation& sim);

  void SetPathLoss(RadioTech tech, PathLossModel model);
  void AddGateway(Gateway* gateway);
  void SetEndpoint(CloudEndpoint* endpoint) { endpoint_ = endpoint; }
  CloudEndpoint* endpoint() const { return endpoint_; }

  // LoRaWAN semantics: every gateway that hears a frame forwards (and is
  // paid for) its copy; the network server deduplicates before the
  // endpoint. Without a server, the strongest successful gateway delivers
  // directly (the 802.15.4/owned-infrastructure model). The server must
  // already point at the same endpoint.
  void SetNetworkServer(NetworkServer* server) { network_server_ = server; }

  // Offered-load bookkeeping for the analytic collision models: devices
  // register their schedule so concurrent-transmission probability scales
  // with fleet size.
  void AddOfferedLoad(RadioTech tech, double packets_per_hour);
  void RemoveOfferedLoad(RadioTech tech, double packets_per_hour);
  double OfferedLoadHz(RadioTech tech) const;

  struct UplinkParams {
    double x_m = 0.0;
    double y_m = 0.0;
    double tx_power_dbm = 0.0;
    LoraConfig lora;          // Consulted when packet.tech == kLoRa.
    std::string vendor;       // Empty => standards-compliant device.
  };

  // Runs the full pipeline. Counts the outcome and, on success, records
  // the arrival at the endpoint.
  DeliveryOutcome AttemptUplink(const UplinkPacket& packet, const UplinkParams& params,
                                RandomStream& rng);

  uint64_t attempts() const { return attempts_; }
  uint64_t delivered() const { return outcome_counts_[0]; }
  uint64_t OutcomeCount(DeliveryOutcome outcome) const {
    return outcome_counts_[static_cast<size_t>(outcome)];
  }
  // Failed attempts charged to each tier (delivered attempts excluded).
  std::array<uint64_t, kTierCount> TierAttribution() const;

  const std::vector<Gateway*>& gateways() const { return gateways_; }

 private:
  // Received power at `gw` for a transmitter at (x, y), with per-link
  // frozen shadowing.
  double RxPowerDbm(const Gateway& gw, const UplinkPacket& packet,
                    const UplinkParams& params) const;

  Simulation& sim_;
  PathLossModel pl_802154_;
  PathLossModel pl_lora_;
  std::vector<Gateway*> gateways_;
  CloudEndpoint* endpoint_ = nullptr;
  NetworkServer* network_server_ = nullptr;
  double offered_pph_802154_ = 0.0;
  double offered_pph_lora_ = 0.0;
  uint64_t attempts_ = 0;
  std::array<uint64_t, kDeliveryOutcomeCount> outcome_counts_{};
  // Per-tech x per-outcome counters (uplink.outcomes{tech,outcome}),
  // pre-created in the constructor; all null without a registry.
  std::array<std::array<Counter*, kDeliveryOutcomeCount>, 2> outcome_metrics_{};
};

}  // namespace centsim

#endif  // SRC_CORE_NETWORK_FABRIC_H_
