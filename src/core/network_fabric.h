// The uplink medium: given a transmit-only device's frame, decide its
// fate across the access channel, gateway, backhaul, and cloud tiers, and
// attribute every loss to the tier that caused it (Figure 1 accounting).
//
// Devices are broadcast transmitters: every reachable, technology-matching
// gateway may hear a frame; the frame is delivered if at least one of them
// receives it (PHY + collision draws) and forwards it through its backhaul
// to an operational endpoint.
//
// The medium entrypoint is Offer(TxRequest): one call, one DeliveryReport
// carrying the outcome plus the physical detail (delivering gateway, RSSI,
// SNR, witness count, capture flag) that used to be scattered across
// DeliveryOutcome returns, bools, and gateway tuples. AttemptUplink
// remains as a thin legacy shim over Offer.
//
// Fidelity mechanisms beyond the legacy pipeline are opt-in via
// MediumConfig — grid-bucketed gateway lookup with per-cell offered load,
// SIR-based capture (strongest signal survives when it clears the ambient
// interference estimate by the capture margin), and LoRa channel-activity
// detection — all default-off so seeded runs pinned to golden digests are
// bit-identical until a scenario turns a knob.

#ifndef SRC_CORE_NETWORK_FABRIC_H_
#define SRC_CORE_NETWORK_FABRIC_H_

#include <array>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/fleet.h"
#include "src/core/hierarchy.h"
#include "src/net/cloud_endpoint.h"
#include "src/net/gateway.h"
#include "src/net/network_server.h"
#include "src/net/packet.h"
#include "src/radio/contention.h"
#include "src/radio/link_budget.h"
#include "src/radio/lora.h"
#include "src/radio/phy_model.h"
#include "src/sim/simulation.h"
#include "src/snapshot/bytes.h"
#include "src/snapshot/timer_table.h"

namespace centsim {

// Opt-in medium fidelity knobs. Defaults reproduce the legacy pipeline
// draw-for-draw; each knob is independent.
struct MediumConfig {
  // Gateway candidate lookup through a uniform grid (3x3 neighborhood,
  // cell = grid_cell_m) instead of a full scan, and collision/CAD math on
  // the offered load local to the transmitter's neighborhood instead of
  // the global aggregate.
  bool grid_buckets = false;
  double grid_cell_m = 2000.0;

  // Capture effect by signal-to-interference ratio: during a collision the
  // strongest candidate survives iff it clears the gateway's running
  // interference estimate by capture_margin_db — deterministic, replacing
  // the legacy even-odds coin.
  bool sir_capture = false;
  double capture_margin_db = LoraPhy::kCaptureMarginDb;

  // LoRa channel-activity detection: before transmitting, the device
  // listens for a co-channel preamble (P(idle) = exp(-load * airtime))
  // and defers politely (kCadBusy) when the band is busy.
  bool cad = false;
};

class NetworkFabric {
 public:
  explicit NetworkFabric(Simulation& sim);

  void SetPathLoss(RadioTech tech, PathLossModel model);
  void AddGateway(Gateway* gateway);
  void SetEndpoint(CloudEndpoint* endpoint) { endpoint_ = endpoint; }
  CloudEndpoint* endpoint() const { return endpoint_; }

  // LoRaWAN semantics: every gateway that hears a frame forwards (and is
  // paid for) its copy; the network server deduplicates before the
  // endpoint. Without a server, the strongest successful gateway delivers
  // directly (the 802.15.4/owned-infrastructure model). The server must
  // already point at the same endpoint.
  void SetNetworkServer(NetworkServer* server) { network_server_ = server; }

  void ConfigureMedium(const MediumConfig& config);
  const MediumConfig& medium_config() const { return medium_; }

  // Offered-load bookkeeping for the analytic collision models: devices
  // register their schedule so concurrent-transmission probability scales
  // with fleet size. The positional variants additionally bin the load
  // into grid cells so grid-bucketed runs contend against their
  // neighborhood, not the whole city; they are safe to call with the grid
  // off (the global aggregate stays identical).
  void AddOfferedLoad(RadioTech tech, double packets_per_hour);
  void RemoveOfferedLoad(RadioTech tech, double packets_per_hour);
  void AddOfferedLoadAt(RadioTech tech, double packets_per_hour, double x_m, double y_m);
  void RemoveOfferedLoadAt(RadioTech tech, double packets_per_hour, double x_m, double y_m);
  double OfferedLoadHz(RadioTech tech) const;
  // Offered load (Hz) visible in the 3x3 cell neighborhood of (x, y).
  // Falls back to the global aggregate when the grid is off.
  double LocalOfferedLoadHz(RadioTech tech, double x_m, double y_m) const;

  struct UplinkParams {
    double x_m = 0.0;
    double y_m = 0.0;
    double tx_power_dbm = 0.0;
    LoraConfig lora;          // Consulted when packet.tech == kLoRa.
    std::string vendor;       // Empty => standards-compliant device.
  };

  // One transmission offered to the medium: the frame plus its radio
  // parameters. The struct form keeps call sites stable as fidelity knobs
  // add fields.
  struct TxRequest {
    UplinkPacket packet;
    UplinkParams params;
  };

  // Runs the full pipeline. Counts the outcome and, on success, records
  // the arrival at the endpoint. The report carries the delivering
  // gateway, RSSI/SNR of the best reception, how many gateways witnessed
  // the frame, and whether it survived a collision via capture.
  DeliveryReport Offer(const TxRequest& request, RandomStream& rng);

  // Legacy shim: outcome-only view of Offer().
  DeliveryOutcome AttemptUplink(const UplinkPacket& packet, const UplinkParams& params,
                                RandomStream& rng) {
    return Offer(TxRequest{packet, params}, rng).outcome;
  }

  // --- Class B beacons and CAD retries (snapshot-safe timers) -----------

  // Class B devices track the medium's beacon (every LoraPhy::kBeaconPeriodS
  // seconds) and pay receive energy per beacon. The beacon is one
  // medium-owned timer routed through `timers`, so checkpoints capture it;
  // each fire charges every live registered listener via the fleet's
  // energy columns.
  void RegisterBeaconListener(DeviceHandle handle);
  void UnregisterBeaconListener(DeviceHandle handle);
  size_t beacon_listener_count() const { return beacon_listeners_.size(); }
  uint64_t beacons_sent() const { return beacons_sent_; }

  // Registers the re-arm callbacks for the medium's timer tags (beacon,
  // CAD retry) and remembers `timers`/`fleet` for future scheduling. Call
  // before TimerTable::Restore() on the restore path.
  void RegisterMediumTimers(TimerTable& timers, DeviceFleet* fleet);

  // Starts the beacon cadence (first fire one period from now). Requires
  // RegisterMediumTimers. Idempotent: a pending beacon is not doubled.
  void StartClassBBeacons();

  // CAD-deferred devices retry after a backoff; the retry timer lives in
  // the TimerTable so a checkpoint taken during the backoff restores it.
  // The handler receives the opaque `device_key` given at schedule time.
  void SetCadRetryHandler(std::function<void(uint64_t)> handler) {
    cad_retry_handler_ = std::move(handler);
  }
  void ScheduleCadRetry(SimTime at, uint64_t device_key);

  // --- Medium snapshot state -------------------------------------------
  // Capture-EWMA columns and beacon bookkeeping; pending timers travel
  // separately through the TimerTable chunk. Listener registrations are
  // rebuilt by device reconstruction.
  void SaveMediumState(ByteWriter& w) const;
  bool RestoreMediumState(ByteReader& r);

  uint64_t attempts() const { return attempts_; }
  uint64_t delivered() const { return outcome_counts_[0]; }
  uint64_t OutcomeCount(DeliveryOutcome outcome) const {
    return outcome_counts_[static_cast<size_t>(outcome)];
  }
  // Failed attempts charged to each tier (delivered attempts excluded).
  std::array<uint64_t, kTierCount> TierAttribution() const;

  const std::vector<Gateway*>& gateways() const { return gateways_; }

 private:
  // Received power at `gw` for a transmitter at (x, y), with per-link
  // frozen shadowing.
  double RxPowerDbm(const Gateway& gw, const UplinkPacket& packet,
                    const UplinkParams& params) const;

  // Lazily (re)builds the gateway cell grid after AddGateway calls.
  void RebuildGridIfNeeded();

  // Flat cell key for the offered-load bins (independent of the gateway
  // grid's bounding box, so load registration never depends on gateway
  // insertion order).
  static uint64_t LoadCellKey(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(cx) << 32) ^ (static_cast<uint64_t>(cy) & 0xFFFFFFFFull);
  }

  void OnBeaconTimer();
  void ScheduleBeaconAt(SimTime at);

  Simulation& sim_;
  PathLossModel pl_802154_;
  PathLossModel pl_lora_;
  std::vector<Gateway*> gateways_;
  CloudEndpoint* endpoint_ = nullptr;
  NetworkServer* network_server_ = nullptr;
  MediumConfig medium_;

  double offered_pph_802154_ = 0.0;
  double offered_pph_lora_ = 0.0;
  // Per-cell offered load (pph), keyed by LoadCellKey, one map per tech.
  std::array<std::unordered_map<uint64_t, double>, 2> cell_pph_;

  // Gateway lookup grid (cell = medium_.grid_cell_m); rebuilt lazily.
  GatewayCellGrid gw_grid_;
  bool gw_grid_dirty_ = true;

  // Per-gateway running interference estimate (mW, EWMA alpha = 1/16):
  // the ambient power the SIR capture test compares against. Indexed
  // parallel to gateways_.
  std::vector<double> capture_ewma_mw_;

  // Class B / CAD timer plumbing.
  TimerTable* timers_ = nullptr;
  DeviceFleet* fleet_ = nullptr;
  std::vector<DeviceHandle> beacon_listeners_;
  bool beacon_pending_ = false;
  uint64_t beacons_sent_ = 0;
  std::function<void(uint64_t)> cad_retry_handler_;

  uint64_t attempts_ = 0;
  std::array<uint64_t, kDeliveryOutcomeCount> outcome_counts_{};
  // Per-tech x per-outcome counters (uplink.outcomes{tech,outcome}). The
  // legacy outcomes are pre-created in the constructor — that creation
  // order is part of the golden-digest contract — while outcomes appended
  // after the goldens were pinned (kCadBusy) are created lazily on first
  // increment, so runs that never see them emit byte-identical metrics.
  std::array<std::array<Counter*, kDeliveryOutcomeCount>, 2> outcome_metrics_{};
};

}  // namespace centsim

#endif  // SRC_CORE_NETWORK_FABRIC_H_
