// Scenario loading: build experiment configurations from INI text so
// experiment definitions are versioned data, not recompiled constants.

#ifndef SRC_CORE_SCENARIO_H_
#define SRC_CORE_SCENARIO_H_

#include "src/core/experiment.h"
#include "src/core/theseus.h"
#include "src/sim/config.h"

namespace centsim {

// Reads [experiment], [devices], [gateways], [maintenance], [wallet]
// sections; every key is optional and falls back to the struct default.
// Recognized keys (all in the example scenario file):
//   experiment.seed, experiment.horizon_years, experiment.area_side_m
//   devices.count_802154, devices.count_lora, devices.report_interval_hours
//   devices.replace_failed, devices.replacement_delay_days
//   gateways.owned, gateways.helium_hotspots
//   gateways.hotspot_replacement_prob, gateways.hotspot_replacement_days
//   maintenance.enabled, maintenance.annual_budget_hours
//   maintenance.mean_response_days, maintenance.mean_repair_hours
//   wallet.usd_per_device
FiftyYearConfig FiftyYearConfigFrom(const Config& config);

// Reads [century]: seed, fleet_size, horizon_years, zone_count,
// cycle_period_years, device_class (battery|harvesting),
// proactive_refresh_age_years, life_improvement_per_decade.
CenturyConfig CenturyConfigFrom(const Config& config);

}  // namespace centsim

#endif  // SRC_CORE_SCENARIO_H_
