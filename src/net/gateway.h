// Gateway model (paper §3.2, §4.2).
//
// "Gateways should primarily act only as routers, and defer decision-making
// to other system components." Accordingly the Gateway class does exactly
// four things on receive: check it is alive, check the blocklist, charge
// the per-packet payment hook (Helium data credits), and hand the packet to
// its backhaul. Hardware failures are drawn from a reliability bill of
// materials; a pluggable repair policy (set by the management layer) decides
// whether and when a failed gateway comes back.

#ifndef SRC_NET_GATEWAY_H_
#define SRC_NET_GATEWAY_H_

#include <functional>
#include <memory>
#include <string>

#include "src/net/backhaul.h"
#include "src/net/blocklist.h"
#include "src/net/packet.h"
#include "src/reliability/component.h"
#include "src/sim/simulation.h"

namespace centsim {

struct GatewayConfig {
  uint32_t id = 0;
  double x_m = 0.0;
  double y_m = 0.0;
  RadioTech tech = RadioTech::k802154;
  double rx_antenna_gain_db = 3.0;
  // Vendor lock (paper §3.2): a locked gateway serves only its vendor's
  // devices; an open gateway serves any standards-compliant device.
  bool vendor_locked = false;
  std::string vendor;
  std::string name = "gw";
};

class Gateway {
 public:
  // Repair policy: given the failure time, returns when the gateway is
  // operational again, or SimTime::Max() for "never" (abandoned).
  using RepairPolicy = std::function<SimTime(SimTime fail_time)>;
  // Payment hook: charged per accepted packet; returning false rejects it.
  using PaymentHook = std::function<bool(const UplinkPacket&)>;

  Gateway(Simulation& sim, GatewayConfig config, SeriesSystem hardware);

  // Brings the gateway up and schedules its first hardware failure.
  void Deploy();
  // Administratively removes the gateway (vendor exit, decommissioning).
  void Decommission(const std::string& reason);

  bool operational() const { return operational_ && !decommissioned_; }
  bool decommissioned() const { return decommissioned_; }

  void AttachBackhaul(Backhaul* backhaul) { backhaul_ = backhaul; }
  Backhaul* backhaul() const { return backhaul_; }
  void SetBlocklist(const Blocklist* blocklist) { blocklist_ = blocklist; }
  void SetRepairPolicy(RepairPolicy policy) { repair_policy_ = std::move(policy); }
  void SetPaymentHook(PaymentHook hook) { payment_hook_ = std::move(hook); }

  // Gateway-side handling of a frame that survived the PHY. `vendor` is
  // the transmitting device's vendor (empty = standards-compliant device).
  DeliveryOutcome Accept(const UplinkPacket& packet, const std::string& device_vendor = "");

  const GatewayConfig& config() const { return config_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t rejected() const { return rejected_; }
  uint32_t failure_count() const { return failures_; }
  // Total time spent non-operational since Deploy (through `now`).
  SimTime DowntimeThrough(SimTime now) const;

 private:
  void ScheduleNextFailure();
  void OnFailure();

  Simulation& sim_;
  GatewayConfig config_;
  SeriesSystem hardware_;
  RandomStream rng_;
  Backhaul* backhaul_ = nullptr;
  const Blocklist* blocklist_ = nullptr;
  RepairPolicy repair_policy_;
  PaymentHook payment_hook_;

  bool operational_ = false;
  bool decommissioned_ = false;
  uint32_t failures_ = 0;
  uint64_t forwarded_ = 0;
  uint64_t rejected_ = 0;
  SimTime down_since_;
  SimTime accumulated_downtime_;
  EventId pending_event_ = kInvalidEventId;

  // Shared per-tech instruments; null when no registry is attached.
  Counter* forwarded_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Counter* failures_metric_ = nullptr;
  HistogramMetric* outage_hours_metric_ = nullptr;
};

}  // namespace centsim

#endif  // SRC_NET_GATEWAY_H_
