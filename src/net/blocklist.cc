#include "src/net/blocklist.h"

namespace centsim {

void Blocklist::Block(uint32_t device_id, std::string reason) {
  entries_[device_id] = std::move(reason);
}

void Blocklist::Unblock(uint32_t device_id) { entries_.erase(device_id); }

bool Blocklist::IsBlocked(uint32_t device_id) const { return entries_.count(device_id) > 0; }

const std::string* Blocklist::ReasonFor(uint32_t device_id) const {
  auto it = entries_.find(device_id);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace centsim
