// Gateway commissioning and trusted-third-party migration (paper §3.2).
//
// Two of the paper's architectural rules become executable here:
//  - "Devices should rely on properties of infrastructure, but not specific
//    instances of infrastructure": a device bound only to *properties*
//    (an open 802.15.4 network exists nearby) migrates to a replacement
//    gateway for free; a device authenticated to a gateway *instance*
//    strands when that instance is retired.
//  - Gateway upgrades use the outgoing unit as a trusted third party: the
//    old gateway endorses the new one to the backhaul and escrows device
//    session state across the swap.

#ifndef SRC_NET_COMMISSIONING_H_
#define SRC_NET_COMMISSIONING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/gateway.h"
#include "src/sim/simulation.h"

namespace centsim {

// How a device is coupled to the gateway tier.
enum class DeviceCoupling : uint8_t {
  kStandardsCompliant,  // Any conforming gateway will do (IP-style, §3.1).
  kInstanceBound,       // Keys/enrollment tied to one gateway instance.
  kVendorBound,         // Works only with one vendor's gateways.
};

struct DeviceBinding {
  uint32_t device_id = 0;
  DeviceCoupling coupling = DeviceCoupling::kStandardsCompliant;
  std::string vendor;
};

enum class CommissionMethod : uint8_t {
  kFreshSecureBootstrap,   // Router-style first-time enrollment.
  kTrustedThirdParty,      // Endorsed by the outgoing gateway.
};

struct CommissionResult {
  bool success = false;
  CommissionMethod method = CommissionMethod::kFreshSecureBootstrap;
  SimTime duration;  // Technician/automation time consumed.
};

// Commissions `incoming` onto a backhaul. With an `outgoing` unit present
// and operational, the TTP path is used (faster, no truck roll for manual
// re-keying); otherwise the fresh bootstrap path runs.
CommissionResult CommissionGateway(Simulation& sim, Gateway& incoming, Gateway* outgoing);

struct MigrationReport {
  uint32_t migrated = 0;
  uint32_t stranded = 0;
  std::vector<uint32_t> stranded_ids;

  double StrandedFraction() const {
    const uint32_t total = migrated + stranded;
    return total > 0 ? static_cast<double>(stranded) / total : 0.0;
  }
};

// Moves the device population from `outgoing` to `incoming`. Standards-
// compliant devices migrate unconditionally. Instance-bound devices migrate
// only via the TTP path while the outgoing gateway is still alive to escrow
// their state; vendor-bound devices migrate only if the incoming gateway
// is the same vendor (or open).
MigrationReport MigrateDevices(Simulation& sim, Gateway* outgoing, Gateway& incoming,
                               const std::vector<DeviceBinding>& devices);

}  // namespace centsim

#endif  // SRC_NET_COMMISSIONING_H_
