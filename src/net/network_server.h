// LoRaWAN-style network server: the dedup-and-route function sitting
// between gateways and the application endpoint.
//
// A broadcast uplink is typically heard by several gateways; each forwards
// its copy with reception metadata. The network server deduplicates by
// (device, counter) within a window, keeps the best-signal witness for
// routing decisions, pays each forwarding gateway (Helium rewards every
// witness), and emits exactly one copy upstream. This is the component
// that makes "devices rely on properties of infrastructure, not specific
// instances" (§3.1) operational: any gateway's copy is as good as any
// other's.

#ifndef SRC_NET_NETWORK_SERVER_H_
#define SRC_NET_NETWORK_SERVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/net/cloud_endpoint.h"
#include "src/net/packet.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace centsim {

struct NetworkServerParams {
  SimTime dedup_window = SimTime::Seconds(2);
  // Maximum distinct (device, counter) entries retained; oldest evicted.
  size_t max_tracked = 1 << 16;
};

class NetworkServer {
 public:
  using Params = NetworkServerParams;

  explicit NetworkServer(Params params = Params()) : params_(params) {}

  NetworkServer(CloudEndpoint* endpoint, Params params = Params())
      : endpoint_(endpoint), params_(params) {}

  void SetEndpoint(CloudEndpoint* endpoint) { endpoint_ = endpoint; }

  // Publishes ingest activity to `registry` (counters ns.frames_forwarded
  // and ns.duplicates_suppressed, histogram ns.witnesses). Null detaches.
  void BindMetrics(MetricsRegistry* registry);

  struct IngestResult {
    bool first_copy = false;     // This copy was forwarded upstream.
    bool duplicate = false;      // Suppressed within the dedup window.
    uint32_t witnesses = 0;      // Copies seen so far for this frame.
  };

  // One gateway's copy of an uplink. `rx_power_dbm` is that gateway's
  // reception strength (used to keep the best witness).
  IngestResult Ingest(const UplinkPacket& packet, uint32_t gateway_id, double rx_power_dbm,
                      SimTime now);

  uint64_t frames_forwarded() const { return forwarded_; }
  uint64_t duplicates_suppressed() const { return duplicates_; }
  // Mean witnesses per forwarded frame (redundancy the fleet paid for).
  double MeanWitnesses() const;
  // Best-signal gateway for the most recent frame of `device_id`, or 0.
  uint32_t BestGatewayFor(uint32_t device_id) const;

 private:
  struct FrameKey {
    uint64_t packed;
    bool operator==(const FrameKey& other) const { return packed == other.packed; }
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const { return std::hash<uint64_t>()(k.packed); }
  };
  struct FrameState {
    SimTime first_seen;
    uint32_t witnesses = 0;
    uint32_t best_gateway = 0;
    double best_rx_dbm = -1e9;
  };

  static FrameKey KeyOf(const UplinkPacket& packet) {
    return {static_cast<uint64_t>(packet.device_id) << 32 | packet.sequence};
  }
  void EvictExpired(SimTime now);

  CloudEndpoint* endpoint_ = nullptr;
  Params params_;
  std::unordered_map<FrameKey, FrameState, FrameKeyHash> frames_;
  std::deque<std::pair<SimTime, FrameKey>> order_;
  std::unordered_map<uint32_t, uint32_t> best_gateway_by_device_;
  uint64_t forwarded_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t witness_total_ = 0;

  Counter* forwarded_metric_ = nullptr;
  Counter* duplicates_metric_ = nullptr;
  HistogramMetric* witnesses_metric_ = nullptr;
};

}  // namespace centsim

#endif  // SRC_NET_NETWORK_SERVER_H_
