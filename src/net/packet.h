// Uplink packet metadata passed between the device, gateway, backhaul, and
// endpoint tiers. Payload bytes ride separately (see radio/frame.h); tiers
// above the PHY only need sizes and identities.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <cstdint>

#include "src/radio/frame.h"
#include "src/sim/time.h"

namespace centsim {

enum class RadioTech : uint8_t {
  k802154,
  kLoRa,
};

const char* RadioTechName(RadioTech tech);

struct UplinkPacket {
  uint32_t device_id = 0;
  uint32_t sequence = 0;
  uint32_t payload_bytes = 12;
  RadioTech tech = RadioTech::k802154;
  SimTime sent_at;
  // Application payload: the actual sensor reading carried in the frame.
  // Kept inline (fixed size) so fleet-scale runs avoid per-packet heap
  // traffic. When `authenticated`, `auth_tag` is a truncated SipHash-2-4
  // over (device_id, sequence, reading) under the device's frozen key.
  SensorReading reading;
  uint32_t auth_tag = 0;
  bool authenticated = false;
};

// Terminal fate of one uplink attempt, for accounting.
enum class DeliveryOutcome : uint8_t {
  kDelivered,
  kNoEnergy,          // Device could not afford the transmission.
  kDutyCycleDeferred, // Regional duty limit pushed the attempt.
  kNoGatewayInRange,  // No operational gateway with adequate link budget.
  kPhyLoss,           // Channel PER draw failed.
  kCollision,         // Lost to co-channel interference.
  kGatewayDown,
  kBlocklisted,
  kNoCredits,         // Helium wallet exhausted.
  kBackhaulDown,
  kEndpointDown,
  // Channel-activity detection sensed an ongoing frame; the polite device
  // did not transmit. Appended after the legacy outcomes so historical
  // metric orderings (and the golden digests pinned to them) are stable.
  kCadBusy,
};

const char* DeliveryOutcomeName(DeliveryOutcome outcome);
inline constexpr int kDeliveryOutcomeCount = 12;
// Outcomes that existed before CAD; the fabric pre-creates metric series
// only for these so runs with CAD disabled emit byte-identical telemetry.
inline constexpr int kLegacyDeliveryOutcomeCount = 11;

// Everything one uplink attempt resolved to, returned in one piece from
// Medium::Offer. Replaces the DeliveryOutcome + bool + gateway-id tuples
// that used to be threaded separately through the fabric, gateway, and
// network-server layers.
struct DeliveryReport {
  DeliveryOutcome outcome = DeliveryOutcome::kNoGatewayInRange;
  uint32_t gateway_id = 0;    // Delivering (or best-receiving) gateway; 0 = none.
  double rssi_dbm = -200.0;   // Strongest reception among receiving gateways.
  double snr_db = -200.0;     // SNR of that reception at the receiver.
  uint32_t witnesses = 0;     // Gateways whose PHY received the frame.
  bool captured = false;      // Survived co-channel interference via capture.

  bool Delivered() const { return outcome == DeliveryOutcome::kDelivered; }
};

}  // namespace centsim

#endif  // SRC_NET_PACKET_H_
