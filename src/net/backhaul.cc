#include "src/net/backhaul.h"

namespace centsim {

Backhaul::Backhaul(std::string name, OutageParams outage, RandomStream rng)
    : name_(std::move(name)), outage_(outage), rng_(rng) {
  next_transition_ = SimTime::Seconds(rng_.Exponential(outage_.mean_uptime.ToSeconds()));
}

void Backhaul::AdvanceTo(SimTime now) {
  while (next_transition_ <= now) {
    up_ = !up_;
    const SimTime mean = up_ ? outage_.mean_uptime : outage_.mean_outage;
    next_transition_ += SimTime::Seconds(rng_.Exponential(mean.ToSeconds()));
  }
}

bool Backhaul::IsUp(SimTime now) {
  if (terminated_) {
    return false;
  }
  AdvanceTo(now);
  return up_;
}

void Backhaul::Terminate(SimTime now, std::string reason) {
  AdvanceTo(now);
  terminated_ = true;
  termination_reason_ = std::move(reason);
}

bool Backhaul::Deliver(const UplinkPacket& packet, SimTime now) {
  (void)packet;
  if (!IsUp(now)) {
    ++dropped_;
    return false;
  }
  ++delivered_;
  return true;
}

double Backhaul::SteadyStateAvailability() const {
  const double up = outage_.mean_uptime.ToSeconds();
  const double down = outage_.mean_outage.ToSeconds();
  return up / (up + down);
}

std::unique_ptr<Backhaul> MakeFiberBackhaul(RandomStream rng) {
  Backhaul::OutageParams p;
  p.mean_uptime = SimTime::Years(3);   // Backhoe fade / transceiver swap.
  p.mean_outage = SimTime::Hours(12);  // Splice crew dispatch.
  auto b = std::make_unique<Backhaul>("fiber", p, rng);
  b->set_monthly_cost_usd(0.0);  // Owned: capex handled in econ.
  return b;
}

std::unique_ptr<Backhaul> MakeCampusBackhaul(RandomStream rng) {
  Backhaul::OutageParams p;
  p.mean_uptime = SimTime::Days(60);
  p.mean_outage = SimTime::Hours(4);
  auto b = std::make_unique<Backhaul>("campus", p, rng);
  b->set_monthly_cost_usd(0.0);  // Free to the experimenters.
  return b;
}

CellularBackhaul::CellularBackhaul(std::string generation, const TechnologyTimeline& timeline,
                                   RandomStream rng, double monthly_fee_usd)
    : Backhaul("cellular-" + generation,
               OutageParams{SimTime::Days(30), SimTime::Hours(1)}, rng),
      generation_(std::move(generation)),
      timeline_(timeline) {
  set_monthly_cost_usd(monthly_fee_usd);
}

bool CellularBackhaul::IsUpAt(SimTime now) {
  if (!terminated() && timeline_.IsSunset("cellular-" + generation_, now)) {
    Terminate(now, "spectrum sunset of " + generation_);
  }
  return IsUp(now);
}

std::unique_ptr<Backhaul> MakeHeliumOpaqueBackhaul(RandomStream rng) {
  Backhaul::OutageParams p;
  p.mean_uptime = SimTime::Days(7);
  p.mean_outage = SimTime::Minutes(30);
  auto b = std::make_unique<Backhaul>("helium-opaque", p, rng);
  b->set_monthly_cost_usd(0.0);  // Paid per packet in data credits.
  return b;
}

}  // namespace centsim
