#include "src/net/packet.h"

namespace centsim {

const char* RadioTechName(RadioTech tech) {
  switch (tech) {
    case RadioTech::k802154:
      return "802.15.4";
    case RadioTech::kLoRa:
      return "LoRa";
  }
  return "?";
}

const char* DeliveryOutcomeName(DeliveryOutcome outcome) {
  switch (outcome) {
    case DeliveryOutcome::kDelivered:
      return "delivered";
    case DeliveryOutcome::kNoEnergy:
      return "no-energy";
    case DeliveryOutcome::kDutyCycleDeferred:
      return "duty-cycle-deferred";
    case DeliveryOutcome::kNoGatewayInRange:
      return "no-gateway-in-range";
    case DeliveryOutcome::kPhyLoss:
      return "phy-loss";
    case DeliveryOutcome::kCollision:
      return "collision";
    case DeliveryOutcome::kGatewayDown:
      return "gateway-down";
    case DeliveryOutcome::kBlocklisted:
      return "blocklisted";
    case DeliveryOutcome::kNoCredits:
      return "no-credits";
    case DeliveryOutcome::kBackhaulDown:
      return "backhaul-down";
    case DeliveryOutcome::kEndpointDown:
      return "endpoint-down";
    case DeliveryOutcome::kCadBusy:
      return "cad-busy";
  }
  return "?";
}

}  // namespace centsim
