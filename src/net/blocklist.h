// Known-bad-device blocklist (paper §3.2: a transmit-only data gateway "may
// only need to forward data (possibly while minding a blocklist of
// known-bad devices)").

#ifndef SRC_NET_BLOCKLIST_H_
#define SRC_NET_BLOCKLIST_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace centsim {

class Blocklist {
 public:
  void Block(uint32_t device_id, std::string reason);
  void Unblock(uint32_t device_id);
  bool IsBlocked(uint32_t device_id) const;
  const std::string* ReasonFor(uint32_t device_id) const;
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<uint32_t, std::string> entries_;
};

}  // namespace centsim

#endif  // SRC_NET_BLOCKLIST_H_
