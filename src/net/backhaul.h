// Backhaul models (paper §3.3): the link between gateways and the internet.
//
// Every backhaul is an alternating up/down renewal process advanced lazily
// (state is sampled forward only when queried, in time order), plus an
// optional hard cut: cellular backhauls die permanently when their spectrum
// generation sunsets (§3.3.2, §3.4); wired backhauls have no such cliff.

#ifndef SRC_NET_BACKHAUL_H_
#define SRC_NET_BACKHAUL_H_

#include <memory>
#include <string>

#include "src/net/packet.h"
#include "src/reliability/obsolescence.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

class Backhaul {
 public:
  struct OutageParams {
    SimTime mean_uptime = SimTime::Days(365);
    SimTime mean_outage = SimTime::Hours(8);
  };

  Backhaul(std::string name, OutageParams outage, RandomStream rng);
  virtual ~Backhaul() = default;

  // Availability at `now`. Must be called with non-decreasing `now`.
  bool IsUp(SimTime now);

  // Permanently disables the backhaul (sunset, contract termination).
  void Terminate(SimTime now, std::string reason);
  bool terminated() const { return terminated_; }
  const std::string& termination_reason() const { return termination_reason_; }

  // Delivery attempt; counts. Returns false while down or terminated.
  bool Deliver(const UplinkPacket& packet, SimTime now);

  const std::string& name() const { return name_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  // Long-run availability implied by the outage parameters.
  double SteadyStateAvailability() const;

  double monthly_cost_usd() const { return monthly_cost_usd_; }
  void set_monthly_cost_usd(double usd) { monthly_cost_usd_ = usd; }

 private:
  void AdvanceTo(SimTime now);

  std::string name_;
  OutageParams outage_;
  RandomStream rng_;
  bool up_ = true;
  bool terminated_ = false;
  std::string termination_reason_;
  SimTime next_transition_;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  double monthly_cost_usd_ = 0.0;
};

// Factory presets matching the paper's §3.3 taxonomy and §4.3 deployment.

// Municipal/owned fiber: rare cuts (construction), fast professional repair.
std::unique_ptr<Backhaul> MakeFiberBackhaul(RandomStream rng);

// University campus network (the paper's "municipal-provided" stand-in):
// very good but sees maintenance windows.
std::unique_ptr<Backhaul> MakeCampusBackhaul(RandomStream rng);

// Cellular of a given generation: flappier, subscription-priced, and bound
// to `timeline` — IsUp() is false forever once the generation sunsets.
class CellularBackhaul : public Backhaul {
 public:
  CellularBackhaul(std::string generation, const TechnologyTimeline& timeline, RandomStream rng,
                   double monthly_fee_usd);

  // Checks the sunset schedule in addition to the outage process.
  bool IsUpAt(SimTime now);

  const std::string& generation() const { return generation_; }

 private:
  std::string generation_;
  const TechnologyTimeline& timeline_;
};

// Helium-style opaque third-party backhaul: availability reflects a fleet
// of residential ISP links; individually flappy, collectively decent.
std::unique_ptr<Backhaul> MakeHeliumOpaqueBackhaul(RandomStream rng);

}  // namespace centsim

#endif  // SRC_NET_BACKHAUL_H_
