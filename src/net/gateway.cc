#include "src/net/gateway.h"

namespace centsim {

Gateway::Gateway(Simulation& sim, GatewayConfig config, SeriesSystem hardware)
    : sim_(sim),
      config_(std::move(config)),
      hardware_(std::move(hardware)),
      rng_(sim.StreamFor(0x6757000000000000ULL ^ config_.id)) {
  const MetricLabels labels{{"tech", RadioTechName(config_.tech)}};
  forwarded_metric_ = sim_.MetricCounter("gateway.forwarded", labels);
  rejected_metric_ = sim_.MetricCounter("gateway.rejected", labels);
  failures_metric_ = sim_.MetricCounter("gateway.failures", labels);
  outage_hours_metric_ = sim_.MetricHistogram("gateway.outage_hours", labels);
}

void Gateway::Deploy() {
  operational_ = true;
  decommissioned_ = false;
  if (sim_.TraceEnabled(TraceLevel::kInfo)) {
    sim_.Info(config_.name, "deployed");
  }
  ScheduleNextFailure();
}

void Gateway::Decommission(const std::string& reason) {
  if (pending_event_ != kInvalidEventId) {
    sim_.scheduler().Cancel(pending_event_);
    pending_event_ = kInvalidEventId;
  }
  if (operational_) {
    down_since_ = sim_.Now();
  }
  operational_ = false;
  decommissioned_ = true;
  if (sim_.TraceEnabled(TraceLevel::kWarning)) {
    sim_.Warn(config_.name, "decommissioned: " + reason);
  }
}

void Gateway::ScheduleNextFailure() {
  const auto draw = hardware_.SampleLife(rng_);
  pending_event_ = sim_.scheduler().ScheduleAfter(
      draw.life,
      [this, draw] {
        pending_event_ = kInvalidEventId;
        if (sim_.TraceEnabled(TraceLevel::kFailure)) {
          sim_.Fail(config_.name,
                    std::string("hardware failure: ") +
                        (draw.failing_component != SIZE_MAX
                             ? hardware_.components()[draw.failing_component].name
                             : "unknown"));
        }
        OnFailure();
      },
      "gateway.failure");
}

void Gateway::OnFailure() {
  ++failures_;
  MetricInc(failures_metric_);
  operational_ = false;
  down_since_ = sim_.Now();
  const SimTime repaired_at =
      repair_policy_ ? repair_policy_(sim_.Now()) : SimTime::Max();
  if (repaired_at == SimTime::Max()) {
    if (sim_.TraceEnabled(TraceLevel::kWarning)) {
      sim_.Warn(config_.name, "no repair scheduled; gateway abandoned");
    }
    return;
  }
  pending_event_ = sim_.scheduler().ScheduleAt(
      repaired_at,
      [this] {
        pending_event_ = kInvalidEventId;
        const SimTime outage = sim_.Now() - down_since_;
        accumulated_downtime_ += outage;
        MetricObserve(outage_hours_metric_, outage.ToHours());
        operational_ = true;
        if (sim_.TraceEnabled(TraceLevel::kMaintenance)) {
          sim_.Maint(config_.name, "repaired and back in service");
        }
        ScheduleNextFailure();
      },
      "gateway.repair");
}

DeliveryOutcome Gateway::Accept(const UplinkPacket& packet, const std::string& device_vendor) {
  if (!operational()) {
    ++rejected_;
    MetricInc(rejected_metric_);
    return DeliveryOutcome::kGatewayDown;
  }
  if (config_.vendor_locked && device_vendor != config_.vendor) {
    ++rejected_;
    MetricInc(rejected_metric_);
    return DeliveryOutcome::kGatewayDown;  // Invisible to foreign devices.
  }
  if (blocklist_ != nullptr && blocklist_->IsBlocked(packet.device_id)) {
    ++rejected_;
    MetricInc(rejected_metric_);
    return DeliveryOutcome::kBlocklisted;
  }
  if (payment_hook_ && !payment_hook_(packet)) {
    ++rejected_;
    MetricInc(rejected_metric_);
    return DeliveryOutcome::kNoCredits;
  }
  if (backhaul_ == nullptr || !backhaul_->Deliver(packet, sim_.Now())) {
    ++rejected_;
    MetricInc(rejected_metric_);
    return DeliveryOutcome::kBackhaulDown;
  }
  ++forwarded_;
  MetricInc(forwarded_metric_);
  return DeliveryOutcome::kDelivered;
}

SimTime Gateway::DowntimeThrough(SimTime now) const {
  SimTime total = accumulated_downtime_;
  if (!operational() && down_since_ <= now) {
    total += now - down_since_;
  }
  return total;
}

}  // namespace centsim
