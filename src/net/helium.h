// Synthetic model of the Helium network's public-gateway population
// (paper §4.3 footnote 5): ~12,400 gateways with public IPs, where the top
// ten ASes carry ~50% of gateways and the long tail spans ~200 ASes.
//
// A Zipf(s=1) rank distribution over 200 ASes reproduces the measured
// top-10 share (H(10)/H(200) = 2.929/5.878 = 49.8%), so the synthetic
// population is generated that way; the bench then *re-measures* the share
// from the generated population, mirroring the paper's probe methodology.

#ifndef SRC_NET_HELIUM_H_
#define SRC_NET_HELIUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/random.h"

namespace centsim {

struct HeliumHotspotInfo {
  uint32_t hotspot_id = 0;
  uint32_t as_rank = 0;  // 1 = largest AS (e.g. a national cable ISP).
  double x_m = 0.0;
  double y_m = 0.0;
};

class HeliumPopulation {
 public:
  struct Params {
    uint32_t hotspot_count = 12400;
    uint32_t as_count = 200;
    double zipf_exponent = 1.0;
    double region_size_m = 60000.0;  // Hotspots scattered over ~60 km.
  };

  HeliumPopulation(const Params& params, RandomStream rng);

  const std::vector<HeliumHotspotInfo>& hotspots() const { return hotspots_; }

  // Measurement-side statistics (what the paper's probe computed).
  uint32_t UniqueAsCount() const;
  // Fraction of hotspots hosted by the `k` most-populous ASes as observed.
  double TopAsShare(uint32_t k) const;
  // Observed hotspot count per AS rank, descending.
  std::vector<uint32_t> AsCensus() const;

 private:
  Params params_;
  std::vector<HeliumHotspotInfo> hotspots_;
};

}  // namespace centsim

#endif  // SRC_NET_HELIUM_H_
