#include "src/net/cloud_endpoint.h"

#include "src/security/report_auth.h"
#include "src/security/signing.h"

#include <algorithm>

namespace centsim {
namespace {

void MarkWeek(std::vector<uint8_t>& weeks, uint64_t index) {
  if (weeks.size() <= index) {
    weeks.resize(index + 1, 0);
  }
  weeks[index] = 1;
}

uint64_t CountMarked(const std::vector<uint8_t>& weeks, uint64_t elapsed) {
  uint64_t n = 0;
  const uint64_t limit = std::min<uint64_t>(weeks.size(), elapsed);
  for (uint64_t i = 0; i < limit; ++i) {
    n += weeks[i];
  }
  return n;
}

}  // namespace

const SipHashKey& CloudEndpoint::KeyFor(uint32_t device_id) {
  auto it = key_cache_.find(device_id);
  if (it == key_cache_.end()) {
    it = key_cache_.emplace(device_id, DeriveDeviceKey(*batch_secret_, device_id)).first;
  }
  return it->second;
}

bool CloudEndpoint::Record(const UplinkPacket& packet, SimTime now) {
  if (!operational_) {
    ++lost_down_;
    return false;
  }
  auto& dev = per_device_[packet.device_id];
  if (batch_secret_.has_value() && packet.authenticated) {
    if (!VerifyReadingTag(KeyFor(packet.device_id), packet.device_id, packet.sequence,
                          packet.reading, packet.auth_tag)) {
      ++auth_rejected_;
      return false;
    }
    if (dev.has_counter && packet.sequence <= dev.last_counter) {
      ++replay_rejected_;
      return false;
    }
    dev.last_counter = packet.sequence;
    dev.has_counter = true;
  }
  ++total_packets_;
  const uint64_t week = WeekIndex(now);
  MarkWeek(weekly_any_, week);
  ++dev.packets;
  dev.last_seen = now;
  MarkWeek(dev.weekly, week);
  return true;
}

uint64_t CloudEndpoint::PacketsFrom(uint32_t device_id) const {
  auto it = per_device_.find(device_id);
  return it == per_device_.end() ? 0 : it->second.packets;
}

SimTime CloudEndpoint::LastSeen(uint32_t device_id) const {
  auto it = per_device_.find(device_id);
  return it == per_device_.end() ? SimTime() : it->second.last_seen;
}

uint64_t CloudEndpoint::WeeksWithData(SimTime through) const {
  return CountMarked(weekly_any_, WeekIndex(through));
}

double CloudEndpoint::WeeklyUptime(SimTime through) const {
  const uint64_t elapsed = WeekIndex(through);
  if (elapsed == 0) {
    return 1.0;
  }
  return static_cast<double>(WeeksWithData(through)) / static_cast<double>(elapsed);
}

uint64_t CloudEndpoint::LongestGapWeeks(SimTime through) const {
  const uint64_t elapsed = WeekIndex(through);
  uint64_t longest = 0;
  uint64_t run = 0;
  for (uint64_t i = 0; i < elapsed; ++i) {
    const bool has = i < weekly_any_.size() && weekly_any_[i];
    if (has) {
      run = 0;
    } else {
      ++run;
      longest = std::max(longest, run);
    }
  }
  return longest;
}

double CloudEndpoint::GroupWeeklyUptime(const std::vector<uint32_t>& device_ids,
                                        SimTime through) const {
  const uint64_t elapsed = WeekIndex(through);
  if (elapsed == 0) {
    return 1.0;
  }
  std::vector<uint8_t> any(elapsed, 0);
  for (uint32_t id : device_ids) {
    auto it = per_device_.find(id);
    if (it == per_device_.end()) {
      continue;
    }
    const auto& weekly = it->second.weekly;
    const uint64_t limit = std::min<uint64_t>(weekly.size(), elapsed);
    for (uint64_t i = 0; i < limit; ++i) {
      any[i] |= weekly[i];
    }
  }
  uint64_t n = 0;
  for (uint8_t w : any) {
    n += w;
  }
  return static_cast<double>(n) / static_cast<double>(elapsed);
}

double CloudEndpoint::DeviceWeeklyUptime(uint32_t device_id, SimTime through) const {
  const uint64_t elapsed = WeekIndex(through);
  if (elapsed == 0) {
    return 1.0;
  }
  auto it = per_device_.find(device_id);
  if (it == per_device_.end()) {
    return 0.0;
  }
  return static_cast<double>(CountMarked(it->second.weekly, elapsed)) /
         static_cast<double>(elapsed);
}

}  // namespace centsim
