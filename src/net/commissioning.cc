#include "src/net/commissioning.h"

namespace centsim {

CommissionResult CommissionGateway(Simulation& sim, Gateway& incoming, Gateway* outgoing) {
  CommissionResult result;
  if (outgoing != nullptr && outgoing->operational()) {
    result.method = CommissionMethod::kTrustedThirdParty;
    result.duration = SimTime::Minutes(10);  // Automated endorsement.
    sim.Maint(incoming.config().name,
              "commissioned via trusted third party " + outgoing->config().name);
  } else {
    result.method = CommissionMethod::kFreshSecureBootstrap;
    result.duration = SimTime::Hours(1);  // Manual secure enrollment.
    sim.Maint(incoming.config().name, "commissioned via fresh secure bootstrap");
  }
  if (outgoing != nullptr && outgoing->backhaul() != nullptr &&
      incoming.backhaul() == nullptr) {
    incoming.AttachBackhaul(outgoing->backhaul());
  }
  result.success = incoming.backhaul() != nullptr;
  if (!result.success) {
    sim.Warn(incoming.config().name, "commissioning failed: no backhaul available");
  }
  return result;
}

MigrationReport MigrateDevices(Simulation& sim, Gateway* outgoing, Gateway& incoming,
                               const std::vector<DeviceBinding>& devices) {
  MigrationReport report;
  const bool ttp_available = outgoing != nullptr && outgoing->operational();
  for (const auto& dev : devices) {
    bool ok = false;
    switch (dev.coupling) {
      case DeviceCoupling::kStandardsCompliant:
        // Relies on properties, not instances: migration is a no-op.
        ok = true;
        break;
      case DeviceCoupling::kInstanceBound:
        // Session state must be escrowed by the old instance.
        ok = ttp_available;
        break;
      case DeviceCoupling::kVendorBound:
        ok = !incoming.config().vendor_locked || incoming.config().vendor == dev.vendor;
        break;
    }
    if (ok) {
      ++report.migrated;
    } else {
      ++report.stranded;
      report.stranded_ids.push_back(dev.device_id);
    }
  }
  sim.Maint(incoming.config().name,
            "migration complete: " + std::to_string(report.migrated) + " migrated, " +
                std::to_string(report.stranded) + " stranded");
  return report;
}

}  // namespace centsim
