// The data endpoint (paper §4.4-4.5): receives forwarded uplinks and scores
// the experiment's headline metric — "some data arrives at some interval of
// time up to once a week that is publicly accessible".
//
// Arrivals aggregate directly into weekly buckets (system-wide and
// per-device), so a 50-year run costs O(weeks + packets) memory-wise and the
// uptime metric is computed exactly as defined.

#ifndef SRC_NET_CLOUD_ENDPOINT_H_
#define SRC_NET_CLOUD_ENDPOINT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/net/packet.h"
#include "src/security/siphash.h"
#include "src/sim/time.h"

namespace centsim {

class CloudEndpoint {
 public:
  CloudEndpoint() = default;

  // Endpoint availability (domain lapse, hosting failure) is controlled by
  // the management layer; packets arriving while down are lost.
  void SetOperational(bool up) { operational_ = up; }
  bool operational() const { return operational_; }

  // Enables authentication: packets flagged `authenticated` must carry a
  // valid tag under the device key derived from `batch_secret` and a
  // strictly-increasing sequence, or they are discarded (and counted).
  void RequireAuthentication(const SipHashKey& batch_secret) { batch_secret_ = batch_secret; }
  uint64_t auth_rejected() const { return auth_rejected_; }
  uint64_t replay_rejected() const { return replay_rejected_; }

  // Records an arrival. Returns false (packet lost) while non-operational.
  bool Record(const UplinkPacket& packet, SimTime now);

  uint64_t total_packets() const { return total_packets_; }
  uint64_t packets_lost_down() const { return lost_down_; }
  uint64_t DeviceCount() const { return per_device_.size(); }
  uint64_t PacketsFrom(uint32_t device_id) const;
  SimTime LastSeen(uint32_t device_id) const;  // SimTime() if never.

  // Number of distinct weeks (since t=0) with at least one arrival,
  // counting only weeks fully elapsed by `through`.
  uint64_t WeeksWithData(SimTime through) const;
  // The paper's uptime metric: fraction of elapsed weeks with data.
  double WeeklyUptime(SimTime through) const;
  // Longest run of consecutive weeks with no data (the worst outage).
  uint64_t LongestGapWeeks(SimTime through) const;

  // Per-device weekly uptime (devices report hourly; a week with zero
  // arrivals from the device means the device+path was dark all week).
  double DeviceWeeklyUptime(uint32_t device_id, SimTime through) const;

  // Fraction of elapsed weeks in which at least one of `device_ids`
  // delivered data (per-path uptime: e.g. "the 802.15.4 side of the
  // experiment was heard from this week").
  double GroupWeeklyUptime(const std::vector<uint32_t>& device_ids, SimTime through) const;

 private:
  struct DeviceRecord {
    uint64_t packets = 0;
    SimTime last_seen;
    uint32_t last_counter = 0;
    bool has_counter = false;
    std::vector<uint8_t> weekly;  // 1 if any arrival in week i.
  };

  static uint64_t WeekIndex(SimTime t) { return static_cast<uint64_t>(t.ToWeeks()); }

  // Per-device key cache (derivation is a PRF; memoize it).
  const SipHashKey& KeyFor(uint32_t device_id);

  bool operational_ = true;
  std::optional<SipHashKey> batch_secret_;
  std::unordered_map<uint32_t, SipHashKey> key_cache_;
  uint64_t auth_rejected_ = 0;
  uint64_t replay_rejected_ = 0;
  uint64_t total_packets_ = 0;
  uint64_t lost_down_ = 0;
  std::vector<uint8_t> weekly_any_;
  std::unordered_map<uint32_t, DeviceRecord> per_device_;
};

}  // namespace centsim

#endif  // SRC_NET_CLOUD_ENDPOINT_H_
