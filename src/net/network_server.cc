#include "src/net/network_server.h"

namespace centsim {

void NetworkServer::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    forwarded_metric_ = nullptr;
    duplicates_metric_ = nullptr;
    witnesses_metric_ = nullptr;
    return;
  }
  forwarded_metric_ = registry->GetCounter("ns.frames_forwarded");
  duplicates_metric_ = registry->GetCounter("ns.duplicates_suppressed");
  witnesses_metric_ = registry->GetHistogram("ns.witnesses");
}

void NetworkServer::EvictExpired(SimTime now) {
  while (!order_.empty() &&
         (now - order_.front().first > params_.dedup_window ||
          frames_.size() > params_.max_tracked)) {
    auto it = frames_.find(order_.front().second);
    if (it != frames_.end()) {
      // Witness count is final once the dedup window closes.
      MetricObserve(witnesses_metric_, static_cast<double>(it->second.witnesses));
      frames_.erase(it);
    }
    order_.pop_front();
  }
}

NetworkServer::IngestResult NetworkServer::Ingest(const UplinkPacket& packet,
                                                  uint32_t gateway_id, double rx_power_dbm,
                                                  SimTime now) {
  EvictExpired(now);
  IngestResult result;
  const FrameKey key = KeyOf(packet);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    FrameState state;
    state.first_seen = now;
    state.witnesses = 1;
    state.best_gateway = gateway_id;
    state.best_rx_dbm = rx_power_dbm;
    frames_.emplace(key, state);
    order_.emplace_back(now, key);
    best_gateway_by_device_[packet.device_id] = gateway_id;
    ++forwarded_;
    ++witness_total_;
    MetricInc(forwarded_metric_);
    result.first_copy = true;
    result.witnesses = 1;
    if (endpoint_ != nullptr) {
      endpoint_->Record(packet, now);
    }
    return result;
  }
  FrameState& state = it->second;
  ++state.witnesses;
  ++witness_total_;
  ++duplicates_;
  MetricInc(duplicates_metric_);
  if (rx_power_dbm > state.best_rx_dbm) {
    state.best_rx_dbm = rx_power_dbm;
    state.best_gateway = gateway_id;
    best_gateway_by_device_[packet.device_id] = gateway_id;
  }
  result.duplicate = true;
  result.witnesses = state.witnesses;
  return result;
}

double NetworkServer::MeanWitnesses() const {
  return forwarded_ > 0 ? static_cast<double>(witness_total_) / forwarded_ : 0.0;
}

uint32_t NetworkServer::BestGatewayFor(uint32_t device_id) const {
  auto it = best_gateway_by_device_.find(device_id);
  return it == best_gateway_by_device_.end() ? 0 : it->second;
}

}  // namespace centsim
