#include "src/net/network_server.h"

namespace centsim {

void NetworkServer::EvictExpired(SimTime now) {
  while (!order_.empty() &&
         (now - order_.front().first > params_.dedup_window ||
          frames_.size() > params_.max_tracked)) {
    frames_.erase(order_.front().second);
    order_.pop_front();
  }
}

NetworkServer::IngestResult NetworkServer::Ingest(const UplinkPacket& packet,
                                                  uint32_t gateway_id, double rx_power_dbm,
                                                  SimTime now) {
  EvictExpired(now);
  IngestResult result;
  const FrameKey key = KeyOf(packet);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    FrameState state;
    state.first_seen = now;
    state.witnesses = 1;
    state.best_gateway = gateway_id;
    state.best_rx_dbm = rx_power_dbm;
    frames_.emplace(key, state);
    order_.emplace_back(now, key);
    best_gateway_by_device_[packet.device_id] = gateway_id;
    ++forwarded_;
    ++witness_total_;
    result.first_copy = true;
    result.witnesses = 1;
    if (endpoint_ != nullptr) {
      endpoint_->Record(packet, now);
    }
    return result;
  }
  FrameState& state = it->second;
  ++state.witnesses;
  ++witness_total_;
  ++duplicates_;
  if (rx_power_dbm > state.best_rx_dbm) {
    state.best_rx_dbm = rx_power_dbm;
    state.best_gateway = gateway_id;
    best_gateway_by_device_[packet.device_id] = gateway_id;
  }
  result.duplicate = true;
  result.witnesses = state.witnesses;
  return result;
}

double NetworkServer::MeanWitnesses() const {
  return forwarded_ > 0 ? static_cast<double>(witness_total_) / forwarded_ : 0.0;
}

uint32_t NetworkServer::BestGatewayFor(uint32_t device_id) const {
  auto it = best_gateway_by_device_.find(device_id);
  return it == best_gateway_by_device_.end() ? 0 : it->second;
}

}  // namespace centsim
