#include "src/net/helium.h"

#include <algorithm>
#include <map>

namespace centsim {

HeliumPopulation::HeliumPopulation(const Params& params, RandomStream rng) : params_(params) {
  ZipfTable zipf(params.as_count, params.zipf_exponent);
  hotspots_.reserve(params.hotspot_count);
  for (uint32_t i = 0; i < params.hotspot_count; ++i) {
    HeliumHotspotInfo h;
    h.hotspot_id = i;
    h.as_rank = static_cast<uint32_t>(zipf.Sample(rng));
    h.x_m = rng.Uniform(0.0, params.region_size_m);
    h.y_m = rng.Uniform(0.0, params.region_size_m);
    hotspots_.push_back(h);
  }
}

std::vector<uint32_t> HeliumPopulation::AsCensus() const {
  std::map<uint32_t, uint32_t> by_as;
  for (const auto& h : hotspots_) {
    ++by_as[h.as_rank];
  }
  std::vector<uint32_t> counts;
  counts.reserve(by_as.size());
  for (const auto& [rank, count] : by_as) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  return counts;
}

uint32_t HeliumPopulation::UniqueAsCount() const {
  return static_cast<uint32_t>(AsCensus().size());
}

double HeliumPopulation::TopAsShare(uint32_t k) const {
  const auto census = AsCensus();
  uint64_t top = 0;
  uint64_t total = 0;
  for (uint32_t i = 0; i < census.size(); ++i) {
    total += census[i];
    if (i < k) {
      top += census[i];
    }
  }
  return total > 0 ? static_cast<double>(top) / static_cast<double>(total) : 0.0;
}

}  // namespace centsim
