#include "src/security/siphash.h"

namespace centsim {
namespace {

uint64_t Rotl64(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

uint64_t ReadLe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl64(v1, 13);
  v1 ^= v0;
  v0 = Rotl64(v0, 32);
  v2 += v3;
  v3 = Rotl64(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl64(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl64(v1, 17);
  v1 ^= v2;
  v2 = Rotl64(v2, 32);
}

}  // namespace

uint64_t SipHash24(const SipHashKey& key, const uint8_t* data, size_t len) {
  const uint64_t k0 = ReadLe64(key.data());
  const uint64_t k1 = ReadLe64(key.data() + 8);
  uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const size_t whole = len / 8;
  for (size_t i = 0; i < whole; ++i) {
    const uint64_t m = ReadLe64(data + i * 8);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  uint64_t tail = static_cast<uint64_t>(len & 0xff) << 56;
  for (size_t i = 0; i < (len & 7); ++i) {
    tail |= static_cast<uint64_t>(data[whole * 8 + i]) << (8 * i);
  }
  v3 ^= tail;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= tail;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace centsim
