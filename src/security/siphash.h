// SipHash-2-4 (Aumasson & Bernstein): the keyed PRF used to authenticate
// transmit-only sensor frames. Chosen because it is the standard MAC for
// short inputs on microcontroller-class hardware.

#ifndef SRC_SECURITY_SIPHASH_H_
#define SRC_SECURITY_SIPHASH_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace centsim {

using SipHashKey = std::array<uint8_t, 16>;

// 64-bit SipHash-2-4 of `data` under `key`.
uint64_t SipHash24(const SipHashKey& key, const uint8_t* data, size_t len);

}  // namespace centsim

#endif  // SRC_SECURITY_SIPHASH_H_
