#include "src/security/trust.h"

#include <cmath>
#include <limits>

namespace centsim {

double LongitudinalTrust::SecurityBitsAt(double years) const {
  const double bits = params_.initial_security_bits - params_.bits_lost_per_year * years;
  return bits > 0 ? bits : 0.0;
}

double LongitudinalTrust::AlgorithmHorizonYears() const {
  if (params_.bits_lost_per_year <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return (params_.initial_security_bits - params_.feasible_attack_bits) /
         params_.bits_lost_per_year;
}

double LongitudinalTrust::KeyIntactProbability(double years) const {
  if (years <= 0) {
    return 1.0;
  }
  const double survive_per_year = 1.0 - params_.annual_leak_probability;
  if (params_.rekey_period_years <= 0) {
    // Never re-keyed: exposure accumulates over the whole life.
    return std::pow(survive_per_year, years);
  }
  // Rotation: only the exposure since the last rotation matters for the
  // *current* key. Trust in the stream requires the current key intact.
  const double since_rotation = std::fmod(years, params_.rekey_period_years);
  return std::pow(survive_per_year, since_rotation);
}

double LongitudinalTrust::TrustAt(double years) const {
  if (years >= AlgorithmHorizonYears()) {
    return 0.0;
  }
  return KeyIntactProbability(years);
}

double LongitudinalTrust::TrustHorizonYears(double threshold) const {
  for (double t = 0.0; t <= 200.0; t += 0.25) {
    if (TrustAt(t) < threshold) {
      return t;
    }
  }
  return -1.0;
}

}  // namespace centsim
