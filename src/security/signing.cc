#include "src/security/signing.h"

namespace centsim {
namespace {

std::vector<uint8_t> SigningInput(uint32_t device_id, uint32_t counter,
                                  const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> buf;
  buf.reserve(8 + payload.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(device_id >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(counter >> (8 * i)));
  }
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

}  // namespace

SipHashKey DeriveDeviceKey(const SipHashKey& batch_secret, uint32_t device_id) {
  // Two PRF applications with distinct domain separators fill 16 bytes.
  uint8_t msg[5];
  for (int i = 0; i < 4; ++i) {
    msg[i] = static_cast<uint8_t>(device_id >> (8 * i));
  }
  SipHashKey key{};
  msg[4] = 0x01;
  const uint64_t lo = SipHash24(batch_secret, msg, sizeof(msg));
  msg[4] = 0x02;
  const uint64_t hi = SipHash24(batch_secret, msg, sizeof(msg));
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<uint8_t>(lo >> (8 * i));
    key[8 + i] = static_cast<uint8_t>(hi >> (8 * i));
  }
  return key;
}

SignedReport SignReport(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                        std::vector<uint8_t> payload) {
  SignedReport report;
  report.device_id = device_id;
  report.counter = counter;
  report.payload = std::move(payload);
  const auto input = SigningInput(device_id, counter, report.payload);
  report.tag = static_cast<uint32_t>(SipHash24(device_key, input.data(), input.size()));
  return report;
}

bool VerifyTag(const SipHashKey& device_key, const SignedReport& report) {
  const auto input = SigningInput(report.device_id, report.counter, report.payload);
  const uint32_t expected =
      static_cast<uint32_t>(SipHash24(device_key, input.data(), input.size()));
  return expected == report.tag;
}

ReportVerifier::Verdict ReportVerifier::Verify(const SignedReport& report) {
  const SipHashKey key = DeriveDeviceKey(batch_secret_, report.device_id);
  if (!VerifyTag(key, report)) {
    ++rejected_;
    return Verdict::kBadTag;
  }
  auto it = last_counter_.find(report.device_id);
  if (it != last_counter_.end()) {
    if (report.counter <= it->second) {
      ++rejected_;
      return Verdict::kReplayed;
    }
    if (report.counter - it->second > max_jump_) {
      ++rejected_;
      return Verdict::kCounterJump;
    }
  }
  last_counter_[report.device_id] = report.counter;
  ++accepted_;
  return Verdict::kAccepted;
}

}  // namespace centsim
