// Inline authentication of the fixed-size SensorReading payload: the
// allocation-free path used on every simulated uplink (the SignedReport
// path in signing.h covers variable payloads).

#ifndef SRC_SECURITY_REPORT_AUTH_H_
#define SRC_SECURITY_REPORT_AUTH_H_

#include <cstdint>

#include "src/radio/frame.h"
#include "src/security/siphash.h"

namespace centsim {

// Truncated SipHash-2-4 tag over (device_id, counter, 12-byte reading).
uint32_t ComputeReadingTag(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                           const SensorReading& reading);

bool VerifyReadingTag(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                      const SensorReading& reading, uint32_t tag);

}  // namespace centsim

#endif  // SRC_SECURITY_REPORT_AUTH_H_
