// Longitudinal trust of frozen-crypto devices (paper §4.1).
//
// A transmit-only device's signing key and algorithm are fixed for life.
// Two clocks erode its trustworthiness:
//  - cryptanalytic/compute progress: the effective security level of the
//    frozen primitive shrinks by some bits per year (a Moore's-law-style
//    drift plus occasional break events);
//  - key-exposure accumulation: each year carries a small probability that
//    the key leaks (supply chain, physical extraction, side channel), and
//    leaks are forever — the device cannot re-key.
//
// The model turns those into P(still trustworthy at year t), the quantity
// an operator needs when deciding how long to keep believing a sensor that
// cannot be updated, and contrasts it with a serviceable device that
// re-keys on a fixed cadence.

#ifndef SRC_SECURITY_TRUST_H_
#define SRC_SECURITY_TRUST_H_

#include <cstdint>

namespace centsim {

struct TrustModelParams {
  double initial_security_bits = 64.0;   // Truncated-tag + key budget.
  double bits_lost_per_year = 0.7;       // Compute/cryptanalysis drift.
  double feasible_attack_bits = 40.0;    // Below this, forgery is practical.
  double annual_leak_probability = 0.005;  // Key exposure per deployed year.
  // Serviceable devices rotate keys on this cadence (0 = never, i.e. the
  // transmit-only case). Rotation resets exposure accumulation but not the
  // algorithm-aging clock.
  double rekey_period_years = 0.0;
};

class LongitudinalTrust {
 public:
  explicit LongitudinalTrust(const TrustModelParams& params) : params_(params) {}

  // Effective security level of the frozen primitive at year t.
  double SecurityBitsAt(double years) const;
  // Year at which the primitive itself becomes forgeable (bits fall to the
  // feasible-attack threshold). Infinity if drift is zero.
  double AlgorithmHorizonYears() const;

  // P(key never leaked by year t), accounting for rotation if configured.
  double KeyIntactProbability(double years) const;

  // P(device still trustworthy at year t): primitive not yet forgeable AND
  // key intact.
  double TrustAt(double years) const;

  // First year trust falls below `threshold` (searched at 0.25-year steps,
  // up to 200 years). Returns -1 if it never does.
  double TrustHorizonYears(double threshold = 0.5) const;

  const TrustModelParams& params() const { return params_; }

 private:
  TrustModelParams params_;
};

}  // namespace centsim

#endif  // SRC_SECURITY_TRUST_H_
