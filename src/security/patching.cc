#include "src/security/patching.h"

#include <algorithm>

namespace centsim {

ExposureParams FirewalledUnidirectionalGateway() {
  ExposureParams p;
  // No inbound listeners at all: only supply-chain/management incidents
  // reach the box, and an attacker who cannot see it exploits slowly.
  p.reachable_fraction = 0.001;
  p.compromise_rate_per_exposed_year = 0.1;
  p.patching_enabled = false;  // The point: it is safe to neglect.
  return p;
}

ExposureParams MaintainedPublicGateway() {
  ExposureParams p;
  p.reachable_fraction = 0.5;
  p.patching_enabled = true;
  p.mean_patch_lag = SimTime::Days(14);
  return p;
}

ExposureParams UnattendedPublicGateway() {
  ExposureParams p;
  p.reachable_fraction = 0.5;
  p.patching_enabled = false;
  return p;
}

ExposureReport SimulateExposure(const ExposureParams& params, SimTime horizon,
                                RandomStream rng) {
  ExposureReport report;
  const double mean_gap_years = 1.0 / params.cves_per_year;
  SimTime t;
  while (true) {
    t += SimTime::Years(rng.Exponential(mean_gap_years));
    if (t >= horizon) {
      break;
    }
    ++report.vulnerabilities;
    if (!rng.NextBool(params.reachable_fraction)) {
      continue;
    }
    ++report.reachable;
    const SimTime weaponized_at =
        t + SimTime::Seconds(rng.Exponential(params.mean_weaponization.ToSeconds()));
    const SimTime patched_at =
        params.patching_enabled
            ? t + SimTime::Seconds(rng.Exponential(params.mean_patch_lag.ToSeconds()))
            : SimTime::Max();
    const SimTime exposure_start = weaponized_at;
    const SimTime exposure_end = std::min(patched_at, horizon);
    if (exposure_end <= exposure_start) {
      continue;
    }
    const double exposed_years = (exposure_end - exposure_start).ToYears();
    report.exposed_years += exposed_years;
    if (!report.compromised) {
      // Exponential race over the exposed window.
      const double t_compromise_years =
          rng.Exponential(1.0 / params.compromise_rate_per_exposed_year);
      if (t_compromise_years < exposed_years) {
        report.compromised = true;
        report.compromised_at = exposure_start + SimTime::Years(t_compromise_years);
      }
    }
  }
  return report;
}

double CompromiseProbability(const ExposureParams& params, SimTime horizon, uint32_t trials,
                             RandomStream rng) {
  if (trials == 0) {
    return 0.0;
  }
  uint32_t compromised = 0;
  for (uint32_t i = 0; i < trials; ++i) {
    if (SimulateExposure(params, horizon, rng.Derive(i)).compromised) {
      ++compromised;
    }
  }
  return static_cast<double>(compromised) / trials;
}

}  // namespace centsim
