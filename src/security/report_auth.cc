#include "src/security/report_auth.h"

namespace centsim {

uint32_t ComputeReadingTag(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                           const SensorReading& reading) {
  uint8_t buf[20];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<uint8_t>(device_id >> (8 * i));
    buf[4 + i] = static_cast<uint8_t>(counter >> (8 * i));
  }
  const auto bytes = reading.Serialize();
  for (size_t i = 0; i < bytes.size() && i < 12; ++i) {
    buf[8 + i] = bytes[i];
  }
  return static_cast<uint32_t>(SipHash24(device_key, buf, sizeof(buf)));
}

bool VerifyReadingTag(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                      const SensorReading& reading, uint32_t tag) {
  return ComputeReadingTag(device_key, device_id, counter, reading) == tag;
}

}  // namespace centsim
