// Frame authentication for transmit-only devices (paper §4.1: "devices
// with minimal security risk, as they are incapable of receiving data, but
// also of limited longitudinal trust, as their security and signing
// techniques can never be modified").
//
// A device is provisioned with a per-device key at manufacture and signs
// every report with a truncated SipHash tag over (device id, counter,
// payload). The verifier enforces a monotone counter window for replay
// protection. Because the device can never receive, the key and the
// algorithm are frozen for its entire service life — the trust model in
// trust.h quantifies what that costs over decades.

#ifndef SRC_SECURITY_SIGNING_H_
#define SRC_SECURITY_SIGNING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/security/siphash.h"

namespace centsim {

inline constexpr size_t kTagBytes = 4;  // Truncated tag, LoRa-payload friendly.

struct SignedReport {
  uint32_t device_id = 0;
  uint32_t counter = 0;        // Strictly increasing per device.
  std::vector<uint8_t> payload;
  uint32_t tag = 0;            // Truncated SipHash-2-4.
};

// Derives a per-device key from a batch provisioning secret. One leaked
// device key must not reveal its siblings', hence the derivation is a PRF
// application, not a shared key.
SipHashKey DeriveDeviceKey(const SipHashKey& batch_secret, uint32_t device_id);

// Signs (device_id, counter, payload).
SignedReport SignReport(const SipHashKey& device_key, uint32_t device_id, uint32_t counter,
                        std::vector<uint8_t> payload);

// Stateless tag check.
bool VerifyTag(const SipHashKey& device_key, const SignedReport& report);

// Stateful verifier with replay protection: accepts a report only if the
// tag verifies and the counter is strictly greater than the last accepted
// counter for that device (with a bounded forward-jump allowance so lost
// frames do not wedge the stream).
class ReportVerifier {
 public:
  explicit ReportVerifier(SipHashKey batch_secret, uint32_t max_counter_jump = 1 << 20)
      : batch_secret_(batch_secret), max_jump_(max_counter_jump) {}

  enum class Verdict : uint8_t {
    kAccepted,
    kBadTag,
    kReplayed,       // Counter not strictly increasing.
    kCounterJump,    // Counter implausibly far ahead.
  };

  Verdict Verify(const SignedReport& report);

  uint64_t accepted() const { return accepted_; }
  uint64_t rejected() const { return rejected_; }

 private:
  SipHashKey batch_secret_;
  uint32_t max_jump_;
  std::unordered_map<uint32_t, uint32_t> last_counter_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace centsim

#endif  // SRC_SECURITY_SIGNING_H_
