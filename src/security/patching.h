// Gateway software-exposure model (paper §4.4).
//
// "The initial application supported by the gateway is transmit-only,
// which would allow it to be aggressively firewalled and limit the
// security risk of not attending to updates. Unidirectional gateways limit
// the utility of our deployed infrastructure, however. Thus we anticipate
// a more traditional server model, with the requisite upkeep of any
// public-facing, networked device."
//
// Vulnerabilities affecting the gateway's software stack arrive as a
// Poisson process. Each becomes exploitable-in-the-wild after a short
// delay; a patching policy closes it after its patch lag (infinite for
// unattended gateways). Exposure that overlaps an exploitability window
// converts to compromise with some rate. The model compares the paper's
// three postures: firewalled-unidirectional, maintained server, and
// unattended server.

#ifndef SRC_SECURITY_PATCHING_H_
#define SRC_SECURITY_PATCHING_H_

#include <cstdint>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

struct ExposureParams {
  double cves_per_year = 6.0;          // Relevant vulns in the stack.
  // Fraction of vulns reachable given the network posture: a strict
  // unidirectional firewall leaves almost nothing reachable.
  double reachable_fraction = 1.0;
  SimTime mean_weaponization = SimTime::Days(30);  // Disclosure -> exploit.
  SimTime mean_patch_lag = SimTime::Days(14);      // Patch applied after.
  bool patching_enabled = true;
  // Rate of compromise while a weaponized, unpatched vuln is exposed.
  double compromise_rate_per_exposed_year = 2.0;
};

// Posture presets from §4.4.
ExposureParams FirewalledUnidirectionalGateway();
ExposureParams MaintainedPublicGateway();
ExposureParams UnattendedPublicGateway();

struct ExposureReport {
  uint32_t vulnerabilities = 0;
  uint32_t reachable = 0;
  double exposed_years = 0.0;      // Sum of weaponized-and-unpatched time.
  bool compromised = false;
  SimTime compromised_at;          // Valid iff compromised.
};

// Simulates one gateway's exposure over `horizon`. Deterministic in rng.
ExposureReport SimulateExposure(const ExposureParams& params, SimTime horizon,
                                RandomStream rng);

// Monte-Carlo probability of compromise by `horizon` over `trials` runs.
double CompromiseProbability(const ExposureParams& params, SimTime horizon, uint32_t trials,
                             RandomStream rng);

}  // namespace centsim

#endif  // SRC_SECURITY_PATCHING_H_
