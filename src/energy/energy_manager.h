// Energy-neutral operation manager for a transmit-only sensor node.
//
// Couples a HarvesterModel to an EnergyStorage and answers two questions:
//  1. Planning: what reporting interval is sustainable year-round?
//  2. Runtime: at simulated time t, is there energy for one transmission
//     (sleep overheads included) — and if not, when will there be?
//
// The runtime side is event-driven: between calls, harvested energy is
// integrated analytically over the elapsed interval, so a 50-year device
// costs one call per transmission attempt.
//
// All transition math lives in the `EnergyOps` statics, which operate on
// (shared params, per-device state) pairs. EnergyManager is the
// one-device convenience wrapper; DeviceFleet (src/core/fleet.h) applies
// the same statics to its struct-of-arrays columns, so both paths compute
// bit-identical doubles.

#ifndef SRC_ENERGY_ENERGY_MANAGER_H_
#define SRC_ENERGY_ENERGY_MANAGER_H_

#include <cstdint>
#include <optional>

#include "src/energy/harvester.h"
#include "src/energy/storage.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace centsim {

// Static electrical profile of the node.
struct LoadProfile {
  double sleep_power_w = 2e-6;     // 2 uW sleep floor (RTC + leakage).
  double tx_energy_j = 0.015;      // Energy per transmission event
                                   // (wakeup + sense + radio on-air).
  double sense_energy_j = 0.002;   // Sensor sampling without transmit.
  double brownout_reserve_j = 0.05;  // Keep-alive floor below which the node
                                     // refuses to fire the radio.
};

// Per-device grant/deny tallies; 16 bytes, fleet-column friendly.
struct EnergyCounters {
  uint64_t tx_granted = 0;
  uint64_t tx_denied = 0;
};

// Shared (typically per-class) instruments; any pointer may be null.
struct EnergyMetricHooks {
  Counter* granted = nullptr;
  Counter* denied = nullptr;
  HistogramMetric* harvest_j = nullptr;
};

// What one fast-forwarded span did to a device, for window metrics and the
// sampled drivers' expected-traffic accounting.
struct FastForwardResult {
  double harvested_j = 0.0;    // Energy banked over the span (pre-efficiency).
  uint64_t attempts = 0;       // Transmission attempts the span covered.
  uint64_t granted = 0;        // Expected grants out of those attempts.
  uint64_t denied = 0;         // attempts - granted.
};

// Stateless transition functions over (shared params, per-device state).
struct EnergyOps {
  // Advances the energy state to `now` (harvest in, sleep + leakage out).
  static void AdvanceTo(const HarvesterModel& harvester, const EnergyStorage::Params& storage,
                        const LoadProfile& load, EnergyStorage::State& state,
                        SimTime& last_advance, const EnergyMetricHooks& hooks, SimTime now);

  // Attempts one transmission at `now`. Advances state first. Returns true
  // and deducts energy if affordable; false otherwise (energy untouched
  // apart from the advance).
  static bool TryTransmit(const HarvesterModel& harvester, const EnergyStorage::Params& storage,
                          const LoadProfile& load, EnergyStorage::State& state,
                          SimTime& last_advance, EnergyCounters& counters,
                          const EnergyMetricHooks& hooks, SimTime now);

  // Analytic bulk advance for the sampled engine: one call covers
  // [last_advance, to) — closed-form harvest (EnergyOverAnalytic), one
  // leakage/aging step, one sleep draw, and the expected outcome of the
  // `n = floor(span / tx_interval)` transmission attempts the skipped span
  // would have carried (grants limited by the span's energy throughput —
  // opening charge plus efficiency-discounted harvest minus the sleep
  // floor — above the brownout reserve; a non-positive tx_interval means
  // no transmit duty cycle). Counters and hooks are updated exactly like n
  // detailed TryTransmit calls would in expectation. A call with
  // to <= last_advance is a bit-identical no-op — the zero-length
  // fast-forward contract the parity tests pin.
  static FastForwardResult FastForwardTo(const HarvesterModel& harvester,
                                         const EnergyStorage::Params& storage,
                                         const LoadProfile& load, EnergyStorage::State& state,
                                         SimTime& last_advance, EnergyCounters& counters,
                                         const EnergyMetricHooks& hooks, SimTime to,
                                         SimTime tx_interval);

  // Estimate of when the storage will next hold `joules` above the reserve,
  // assuming average harvest conditions. Never less than `now`.
  static SimTime EstimateNextAffordable(const HarvesterModel& harvester,
                                        const EnergyStorage::Params& storage,
                                        const LoadProfile& load,
                                        const EnergyStorage::State& state, SimTime now,
                                        double joules);

  // Largest sustainable transmissions-per-day given mean harvest over a
  // representative year minus the sleep floor. Returns 0 if the harvester
  // cannot even cover sleep.
  static double SustainableTxPerDay(const HarvesterModel& harvester,
                                    const EnergyStorage::Params& storage,
                                    const LoadProfile& load);
};

class EnergyManager {
 public:
  EnergyManager(HarvesterModel harvester, EnergyStorage storage, LoadProfile load);

  // --- Planning -----------------------------------------------------------

  double SustainableTxPerDay() const {
    return EnergyOps::SustainableTxPerDay(harvester_, storage_.params(), load_);
  }

  // The corresponding reporting interval, if any.
  std::optional<SimTime> SustainableInterval() const;

  // --- Runtime ------------------------------------------------------------

  void AdvanceTo(SimTime now);
  bool TryTransmit(SimTime now);

  // Attaches shared instruments (typically per-tech): grant/deny counters
  // and a per-advance harvested-joules histogram. Any may be null.
  void BindMetrics(Counter* granted, Counter* denied, HistogramMetric* harvest_j);

  SimTime EstimateNextAffordable(SimTime now, double joules) const {
    return EnergyOps::EstimateNextAffordable(harvester_, storage_.params(), load_,
                                             storage_.state(), now, joules);
  }

  const EnergyStorage& storage() const { return storage_; }
  const HarvesterModel& harvester() const { return harvester_; }
  const LoadProfile& load() const { return load_; }
  SimTime last_advance() const { return last_advance_; }
  uint64_t tx_granted() const { return counters_.tx_granted; }
  uint64_t tx_denied() const { return counters_.tx_denied; }

 private:
  HarvesterModel harvester_;
  EnergyStorage storage_;
  LoadProfile load_;
  SimTime last_advance_;
  EnergyCounters counters_;
  EnergyMetricHooks hooks_;
};

}  // namespace centsim

#endif  // SRC_ENERGY_ENERGY_MANAGER_H_
