// Energy-neutral operation manager for a transmit-only sensor node.
//
// Couples a Harvester to an EnergyStorage and answers two questions:
//  1. Planning: what reporting interval is sustainable year-round?
//  2. Runtime: at simulated time t, is there energy for one transmission
//     (sleep overheads included) — and if not, when will there be?
//
// The runtime side is event-driven: between calls, harvested energy is
// integrated analytically over the elapsed interval, so a 50-year device
// costs one call per transmission attempt.

#ifndef SRC_ENERGY_ENERGY_MANAGER_H_
#define SRC_ENERGY_ENERGY_MANAGER_H_

#include <memory>
#include <optional>

#include "src/energy/harvester.h"
#include "src/energy/storage.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace centsim {

// Static electrical profile of the node.
struct LoadProfile {
  double sleep_power_w = 2e-6;     // 2 uW sleep floor (RTC + leakage).
  double tx_energy_j = 0.015;      // Energy per transmission event
                                   // (wakeup + sense + radio on-air).
  double sense_energy_j = 0.002;   // Sensor sampling without transmit.
  double brownout_reserve_j = 0.05;  // Keep-alive floor below which the node
                                     // refuses to fire the radio.
};

class EnergyManager {
 public:
  EnergyManager(std::unique_ptr<Harvester> harvester, EnergyStorage storage, LoadProfile load);

  // --- Planning -----------------------------------------------------------

  // Largest sustainable transmissions-per-day given mean harvest over a
  // representative year minus the sleep floor. Returns 0 if the harvester
  // cannot even cover sleep.
  double SustainableTxPerDay() const;

  // The corresponding reporting interval, if any.
  std::optional<SimTime> SustainableInterval() const;

  // --- Runtime ------------------------------------------------------------

  // Advances the energy state to `now` (harvest in, sleep + leakage out).
  void AdvanceTo(SimTime now);

  // Attempts one transmission at `now`. Advances state first. Returns true
  // and deducts energy if affordable; false otherwise (energy untouched
  // apart from the advance).
  bool TryTransmit(SimTime now);

  // Attaches shared instruments (typically per-tech): grant/deny counters
  // and a per-advance harvested-joules histogram. Any may be null.
  void BindMetrics(Counter* granted, Counter* denied, HistogramMetric* harvest_j);

  // Estimate of when the storage will next hold `joules` above the reserve,
  // assuming average harvest conditions. Never less than `now`.
  SimTime EstimateNextAffordable(SimTime now, double joules) const;

  const EnergyStorage& storage() const { return storage_; }
  const Harvester& harvester() const { return *harvester_; }
  const LoadProfile& load() const { return load_; }
  uint64_t tx_granted() const { return tx_granted_; }
  uint64_t tx_denied() const { return tx_denied_; }

 private:
  std::unique_ptr<Harvester> harvester_;
  EnergyStorage storage_;
  LoadProfile load_;
  SimTime last_advance_;
  uint64_t tx_granted_ = 0;
  uint64_t tx_denied_ = 0;
  Counter* granted_metric_ = nullptr;
  Counter* denied_metric_ = nullptr;
  HistogramMetric* harvest_metric_ = nullptr;
};

}  // namespace centsim

#endif  // SRC_ENERGY_ENERGY_MANAGER_H_
