#include "src/energy/energy_manager.h"

#include <algorithm>
#include <cassert>

namespace centsim {

EnergyManager::EnergyManager(HarvesterModel harvester, EnergyStorage storage, LoadProfile load)
    : harvester_(harvester), storage_(std::move(storage)), load_(load) {}

void EnergyManager::BindMetrics(Counter* granted, Counter* denied, HistogramMetric* harvest_j) {
  hooks_.granted = granted;
  hooks_.denied = denied;
  hooks_.harvest_j = harvest_j;
}

std::optional<SimTime> EnergyManager::SustainableInterval() const {
  const double per_day = SustainableTxPerDay();
  if (per_day <= 0) {
    return std::nullopt;
  }
  return SimTime::Days(1.0 / per_day);
}

void EnergyManager::AdvanceTo(SimTime now) {
  EnergyOps::AdvanceTo(harvester_, storage_.params(), load_, storage_.mutable_state(),
                       last_advance_, hooks_, now);
}

bool EnergyManager::TryTransmit(SimTime now) {
  return EnergyOps::TryTransmit(harvester_, storage_.params(), load_, storage_.mutable_state(),
                                last_advance_, counters_, hooks_, now);
}

// --- EnergyOps -----------------------------------------------------------

void EnergyOps::AdvanceTo(const HarvesterModel& harvester, const EnergyStorage::Params& storage,
                          const LoadProfile& load, EnergyStorage::State& state,
                          SimTime& last_advance, const EnergyMetricHooks& hooks, SimTime now) {
  assert(now >= last_advance);
  if (now == last_advance) {
    return;
  }
  const double span_s = (now - last_advance).ToSeconds();
  // Harvest in (through charge efficiency, applied by StoreInto).
  const double harvested = harvester.EnergyOver(last_advance, now);
  MetricObserve(hooks.harvest_j, harvested);
  // Leakage/aging first (on the pre-harvest charge), then bank the new
  // energy, then pay the sleep floor. Ordering bias is negligible at the
  // event granularity we run (minutes to weeks).
  EnergyStorage::AdvanceState(storage, state, now);
  EnergyStorage::StoreInto(storage, state, harvested);
  EnergyStorage::DrawFrom(state, std::min(state.charge_j, load.sleep_power_w * span_s));
  last_advance = now;
}

bool EnergyOps::TryTransmit(const HarvesterModel& harvester, const EnergyStorage::Params& storage,
                            const LoadProfile& load, EnergyStorage::State& state,
                            SimTime& last_advance, EnergyCounters& counters,
                            const EnergyMetricHooks& hooks, SimTime now) {
  AdvanceTo(harvester, storage, load, state, last_advance, hooks, now);
  const double need = load.tx_energy_j + load.brownout_reserve_j;
  if (state.charge_j < need) {
    ++counters.tx_denied;
    MetricInc(hooks.denied);
    return false;
  }
  EnergyStorage::DrawFrom(state, load.tx_energy_j);
  ++counters.tx_granted;
  MetricInc(hooks.granted);
  return true;
}

FastForwardResult EnergyOps::FastForwardTo(const HarvesterModel& harvester,
                                           const EnergyStorage::Params& storage,
                                           const LoadProfile& load, EnergyStorage::State& state,
                                           SimTime& last_advance, EnergyCounters& counters,
                                           const EnergyMetricHooks& hooks, SimTime to,
                                           SimTime tx_interval) {
  FastForwardResult result;
  if (to <= last_advance) {
    return result;  // Zero-length fast-forward: bit-identical no-op.
  }
  const double span_s = (to - last_advance).ToSeconds();
  // Same transition order as AdvanceTo — aging on the pre-harvest charge,
  // bank the span's harvest, pay the sleep floor — but with the closed-form
  // integral, so a multi-year span costs one call instead of a tick loop.
  result.harvested_j = harvester.EnergyOverAnalytic(last_advance, to);
  MetricObserve(hooks.harvest_j, result.harvested_j);
  EnergyStorage::AdvanceState(storage, state, to);
  last_advance = to;
  // Expected transmission outcome over the span. The detailed loop drains
  // the storage as it harvests, so what bounds grants is the span's energy
  // *throughput* (harvest after efficiency, minus the sleep floor, plus the
  // opening charge) — NOT the storage capacity, which only caps what is
  // left over at the end. Banking the whole integral through StoreInto
  // first would clip a year's harvest to one storage-full and then starve
  // every attempt, which no detailed trajectory does.
  const double banked = result.harvested_j * storage.charge_efficiency;
  const double sleep_j = load.sleep_power_w * span_s;
  double flow = state.charge_j + banked - sleep_j;
  if (tx_interval > SimTime() && load.tx_energy_j > 0.0) {
    result.attempts = static_cast<uint64_t>(span_s / tx_interval.ToSeconds());
    const double headroom = std::max(0.0, flow - load.brownout_reserve_j);
    const uint64_t affordable = static_cast<uint64_t>(headroom / load.tx_energy_j);
    result.granted = std::min(result.attempts, affordable);
    result.denied = result.attempts - result.granted;
    flow -= static_cast<double>(result.granted) * load.tx_energy_j;
    counters.tx_granted += result.granted;
    counters.tx_denied += result.denied;
    if (result.granted > 0) {
      MetricInc(hooks.granted, static_cast<double>(result.granted));
    }
    if (result.denied > 0) {
      MetricInc(hooks.denied, static_cast<double>(result.denied));
    }
  }
  state.charge_j = std::min(std::max(flow, 0.0), state.capacity_now_j);
  return result;
}

SimTime EnergyOps::EstimateNextAffordable(const HarvesterModel& harvester,
                                          const EnergyStorage::Params& storage,
                                          const LoadProfile& load,
                                          const EnergyStorage::State& state, SimTime now,
                                          double joules) {
  const double target = joules + load.brownout_reserve_j;
  const double deficit = target - state.charge_j;
  if (deficit <= 0) {
    return now;
  }
  const double mean_w =
      harvester.MeanPower(now, now + SimTime::Days(1)) * storage.charge_efficiency -
      load.sleep_power_w;
  if (mean_w <= 0) {
    // Night/dead calm: retry in a quarter day when conditions rotate.
    return now + SimTime::Hours(6);
  }
  return now + SimTime::Seconds(deficit / mean_w);
}

double EnergyOps::SustainableTxPerDay(const HarvesterModel& harvester,
                                      const EnergyStorage::Params& storage,
                                      const LoadProfile& load) {
  // Mean harvest over a representative year, discounted by charge
  // efficiency since everything round-trips through storage.
  const double mean_w =
      harvester.MeanPower(SimTime(), SimTime::Years(1)) * storage.charge_efficiency;
  const double surplus_w = mean_w - load.sleep_power_w;
  if (surplus_w <= 0) {
    return 0.0;
  }
  const double j_per_day = surplus_w * 86400.0;
  return j_per_day / load.tx_energy_j;
}

}  // namespace centsim
