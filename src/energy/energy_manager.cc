#include "src/energy/energy_manager.h"

#include <algorithm>
#include <cassert>

namespace centsim {

EnergyManager::EnergyManager(std::unique_ptr<Harvester> harvester, EnergyStorage storage,
                             LoadProfile load)
    : harvester_(std::move(harvester)), storage_(std::move(storage)), load_(load) {
  assert(harvester_ != nullptr);
}

void EnergyManager::BindMetrics(Counter* granted, Counter* denied, HistogramMetric* harvest_j) {
  granted_metric_ = granted;
  denied_metric_ = denied;
  harvest_metric_ = harvest_j;
}

double EnergyManager::SustainableTxPerDay() const {
  // Mean harvest over a representative year, discounted by charge
  // efficiency since everything round-trips through storage.
  const double mean_w = harvester_->MeanPower(SimTime(), SimTime::Years(1)) *
                        storage_.params().charge_efficiency;
  const double surplus_w = mean_w - load_.sleep_power_w;
  if (surplus_w <= 0) {
    return 0.0;
  }
  const double j_per_day = surplus_w * 86400.0;
  return j_per_day / load_.tx_energy_j;
}

std::optional<SimTime> EnergyManager::SustainableInterval() const {
  const double per_day = SustainableTxPerDay();
  if (per_day <= 0) {
    return std::nullopt;
  }
  return SimTime::Days(1.0 / per_day);
}

void EnergyManager::AdvanceTo(SimTime now) {
  assert(now >= last_advance_);
  if (now == last_advance_) {
    return;
  }
  const double span_s = (now - last_advance_).ToSeconds();
  // Harvest in (through charge efficiency, applied by Store).
  const double harvested = harvester_->EnergyOver(last_advance_, now);
  MetricObserve(harvest_metric_, harvested);
  // Leakage/aging first (on the pre-harvest charge), then bank the new
  // energy, then pay the sleep floor. Ordering bias is negligible at the
  // event granularity we run (minutes to weeks).
  storage_.AdvanceTo(now);
  storage_.Store(harvested);
  storage_.Draw(std::min(storage_.charge_j(), load_.sleep_power_w * span_s));
  last_advance_ = now;
}

bool EnergyManager::TryTransmit(SimTime now) {
  AdvanceTo(now);
  const double need = load_.tx_energy_j + load_.brownout_reserve_j;
  if (storage_.charge_j() < need) {
    ++tx_denied_;
    MetricInc(denied_metric_);
    return false;
  }
  storage_.Draw(load_.tx_energy_j);
  ++tx_granted_;
  MetricInc(granted_metric_);
  return true;
}

SimTime EnergyManager::EstimateNextAffordable(SimTime now, double joules) const {
  const double target = joules + load_.brownout_reserve_j;
  const double deficit = target - storage_.charge_j();
  if (deficit <= 0) {
    return now;
  }
  const double mean_w = harvester_->MeanPower(now, now + SimTime::Days(1)) *
                            storage_.params().charge_efficiency -
                        load_.sleep_power_w;
  if (mean_w <= 0) {
    // Night/dead calm: retry in a quarter day when conditions rotate.
    return now + SimTime::Hours(6);
  }
  return now + SimTime::Seconds(deficit / mean_w);
}

}  // namespace centsim
