#include "src/energy/storage.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace centsim {

void EnergyStorage::AdvanceState(const Params& params, State& state, SimTime now) {
  assert(now >= state.last_update);
  const double days = (now - state.last_update).ToDays();
  if (days > 0) {
    // Exponential self-discharge.
    state.charge_j *= std::pow(1.0 - params.self_discharge_per_day, days);
    // Capacity fade.
    state.capacity_now_j =
        params.capacity_j * std::pow(1.0 - params.capacity_fade_per_year, now.ToYears());
    state.charge_j = std::min(state.charge_j, state.capacity_now_j);
  }
  state.last_update = now;
}

double EnergyStorage::StoreInto(const Params& params, State& state, double joules) {
  assert(joules >= 0);
  const double banked =
      std::min(joules * params.charge_efficiency, state.capacity_now_j - state.charge_j);
  state.charge_j += std::max(0.0, banked);
  return std::max(0.0, banked);
}

bool EnergyStorage::DrawFrom(State& state, double joules) {
  assert(joules >= 0);
  if (state.charge_j + 1e-12 < joules) {
    return false;
  }
  state.charge_j -= joules;
  if (state.charge_j < 0) {
    state.charge_j = 0;
  }
  return true;
}

EnergyStorage EnergyStorage::Supercap(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.5;
  p.charge_efficiency = 0.85;
  p.self_discharge_per_day = 0.02;
  p.capacity_fade_per_year = 0.01;
  p.name = "supercap";
  return EnergyStorage(p);
}

EnergyStorage EnergyStorage::LithiumPrimary(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 1.0;
  p.charge_efficiency = 0.0;  // Primary cell: not rechargeable.
  p.self_discharge_per_day = 0.3 / 365.25 / 100.0;  // ~0.3%/yr.
  p.capacity_fade_per_year = 0.0;  // Handled by self-discharge + reliability.
  p.name = "li-primary";
  return EnergyStorage(p);
}

EnergyStorage EnergyStorage::CapBank(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.0;
  p.charge_efficiency = 0.9;
  p.self_discharge_per_day = 0.10;
  p.capacity_fade_per_year = 0.002;
  p.name = "cap-bank";
  return EnergyStorage(p);
}

}  // namespace centsim
