#include "src/energy/storage.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace centsim {

EnergyStorage::EnergyStorage(const Params& params)
    : params_(params),
      capacity_now_j_(params.capacity_j),
      charge_j_(params.capacity_j * params.initial_fraction) {}

void EnergyStorage::AdvanceTo(SimTime now) {
  assert(now >= last_update_);
  const double days = (now - last_update_).ToDays();
  if (days > 0) {
    // Exponential self-discharge.
    charge_j_ *= std::pow(1.0 - params_.self_discharge_per_day, days);
    // Capacity fade.
    capacity_now_j_ =
        params_.capacity_j * std::pow(1.0 - params_.capacity_fade_per_year, now.ToYears());
    charge_j_ = std::min(charge_j_, capacity_now_j_);
  }
  last_update_ = now;
}

double EnergyStorage::Store(double joules) {
  assert(joules >= 0);
  const double banked =
      std::min(joules * params_.charge_efficiency, capacity_now_j_ - charge_j_);
  charge_j_ += std::max(0.0, banked);
  return std::max(0.0, banked);
}

bool EnergyStorage::Draw(double joules) {
  assert(joules >= 0);
  if (charge_j_ + 1e-12 < joules) {
    return false;
  }
  charge_j_ -= joules;
  if (charge_j_ < 0) {
    charge_j_ = 0;
  }
  return true;
}

EnergyStorage EnergyStorage::Supercap(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.5;
  p.charge_efficiency = 0.85;
  p.self_discharge_per_day = 0.02;
  p.capacity_fade_per_year = 0.01;
  p.name = "supercap";
  return EnergyStorage(p);
}

EnergyStorage EnergyStorage::LithiumPrimary(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 1.0;
  p.charge_efficiency = 0.0;  // Primary cell: not rechargeable.
  p.self_discharge_per_day = 0.3 / 365.25 / 100.0;  // ~0.3%/yr.
  p.capacity_fade_per_year = 0.0;  // Handled by self-discharge + reliability.
  p.name = "li-primary";
  return EnergyStorage(p);
}

EnergyStorage EnergyStorage::CapBank(double capacity_j) {
  Params p;
  p.capacity_j = capacity_j;
  p.initial_fraction = 0.0;
  p.charge_efficiency = 0.9;
  p.self_discharge_per_day = 0.10;
  p.capacity_fade_per_year = 0.002;
  p.name = "cap-bank";
  return EnergyStorage(p);
}

}  // namespace centsim
