// Energy-harvester models ("Ambient Batteries", paper §1 and refs [20, 21]).
//
// A harvester exposes its instantaneous output power as a deterministic
// function of simulated time (environmental cycles plus long-term
// degradation), with an optional per-device multiplicative efficiency drawn
// at construction. Deterministic profiles let the energy manager integrate
// harvested energy analytically between events instead of ticking.

#ifndef SRC_ENERGY_HARVESTER_H_
#define SRC_ENERGY_HARVESTER_H_

#include <memory>
#include <string>

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace centsim {

class Harvester {
 public:
  virtual ~Harvester() = default;

  // Instantaneous output power in watts at simulated time `t`.
  virtual double PowerAt(SimTime t) const = 0;

  // Energy in joules harvested over [from, to]. The default implementation
  // integrates PowerAt with an adaptive trapezoid; subclasses with closed
  // forms override it.
  virtual double EnergyOver(SimTime from, SimTime to) const;

  virtual std::string name() const = 0;

  // Long-run average power (W) over the given window; used for sizing.
  double MeanPower(SimTime from, SimTime to) const;
};

// Indoor/outdoor photovoltaic: diurnal half-sine, seasonal modulation,
// weather attenuation (slow random walk via hashed day index so the profile
// stays a pure function of time), and panel degradation per year.
class SolarHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 0.010;       // 10 mW peak for a cm-scale cell.
    double seasonal_swing = 0.35;      // +-35% seasonal amplitude.
    double weather_min = 0.25;         // Worst-day cloud attenuation factor.
    double degradation_per_year = 0.005;  // 0.5%/yr output fade.
    double latitude_phase = 0.0;       // Season phase offset (radians).
    uint64_t weather_seed = 1;         // Per-site weather sequence.
  };

  explicit SolarHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  std::string name() const override { return "solar"; }

  const Params& params() const { return params_; }

 private:
  double WeatherFactor(int64_t day_index) const;

  Params params_;
};

// Rebar-corrosion cathodic "ambient battery" (paper §1; ref [21]): a
// near-constant few-hundred-µW source whose output decays on the timescale
// of the host structure's service life. Powers a bridge sensor for
// literally as long as the structure lasts.
class CorrosionHarvester : public Harvester {
 public:
  struct Params {
    double initial_power_w = 300e-6;   // 300 uW from a galvanic couple.
    SimTime structure_life = SimTime::Years(50);  // Host bridge service life.
    // Output at end of structure life as a fraction of initial (the anode
    // depletes roughly linearly in delivered charge).
    double end_of_life_fraction = 0.4;
  };

  explicit CorrosionHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  double EnergyOver(SimTime from, SimTime to) const override;  // Closed form.
  std::string name() const override { return "rebar-corrosion"; }

 private:
  Params params_;
};

// Diurnal thermal-gradient harvester (TEG across a surface/ambient delta).
class ThermalHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 1e-3;
    double baseline_fraction = 0.1;  // Fraction of peak available at night.
  };

  explicit ThermalHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  std::string name() const override { return "thermal"; }

 private:
  Params params_;
};

// Traffic-induced vibration harvester: weekday/weekend and rush-hour
// structure, suitable for roadway-embedded nodes.
class VibrationHarvester : public Harvester {
 public:
  struct Params {
    double peak_power_w = 2e-3;
    double night_fraction = 0.05;
    double weekend_factor = 0.6;
  };

  explicit VibrationHarvester(const Params& params) : params_(params) {}

  double PowerAt(SimTime t) const override;
  std::string name() const override { return "vibration"; }

 private:
  Params params_;
};

}  // namespace centsim

#endif  // SRC_ENERGY_HARVESTER_H_
